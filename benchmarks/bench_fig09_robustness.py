"""Figure 9 (and Appendix Figures 19/20): robustness to data errors.

COMPAS training data is corrupted with the paper's three recipes (T1
swapped attributes, T2 scaled+noisy attributes, T3 missing-and-imputed
S/Y), disproportionately hitting the unprivileged group (50% vs 10%).
For every variant the bench prints the corrupted-vs-clean deltas of
accuracy/F1 and the fairness metrics — the shape under test is that
post-processing moves least under T1/T2 and that error-aware notions
degrade more than demography-aware ones.
"""

import pytest

from common import CAUSAL_SAMPLES, emit, load_sized, once
from repro.datasets import train_test_split
from repro.errors import corrupt
from repro.fairness import MAIN_APPROACHES
from repro.pipeline import format_delta_table, run_experiment

COLUMNS = ["accuracy", "f1", "di_star", "tprb", "tnrb", "te"]


def run_recipe(recipe: str) -> str:
    dataset = load_sized("compas")
    split = train_test_split(dataset, seed=0)
    corrupted_train = corrupt(split.train, recipe, seed=0)
    clean, corrupted = [], []
    for name in (None, *MAIN_APPROACHES):
        clean.append(run_experiment(name, split.train, split.test,
                                    causal_samples=CAUSAL_SAMPLES, seed=0))
        corrupted.append(run_experiment(name, corrupted_train, split.test,
                                        causal_samples=CAUSAL_SAMPLES,
                                        seed=0))
    return format_delta_table(
        clean, corrupted, columns=COLUMNS,
        title=f"Figure 9 ({recipe.upper()}): corrupted-minus-clean deltas "
              "on COMPAS")


@pytest.mark.parametrize("recipe", ["t1", "t2", "t3"])
def test_fig09(benchmark, recipe):
    table = once(benchmark, lambda: run_recipe(recipe))
    emit(f"fig09_{recipe}", table)
