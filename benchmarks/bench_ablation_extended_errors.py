"""Extension: robustness under error types beyond the paper's T1–T3.

Section 4.4 corrupts attributes and labels; this bench extends the
sweep to the rest of the data-quality taxonomy — label flipping (T4),
selection bias (T5), and outliers + duplicates (T6), all applied at
the paper's disproportionate 50%/10% group rates — and reports the
corrupted-minus-clean deltas for the baseline plus one approach per
stage.

Shape under test: the paper's headline conclusion (post-processing
moves least; demography-aware approaches cope better than error-aware
ones) should extend to label flips and duplication, while selection
bias — which changes the group mix itself — hurts the demography-aware
approaches most.
"""

import pytest

from common import CAUSAL_SAMPLES, emit, load_sized, once
from repro.datasets import train_test_split
from repro.errors import corrupt_extended
from repro.pipeline import format_delta_table, run_experiment

APPROACHES = (None, "KamCal-dp", "Feld-dp", "Zafar-dp-fair", "ZhaLe-eo",
              "KamKar-dp", "Hardt-eo")
COLUMNS = ["accuracy", "f1", "di_star", "tprb", "tnrb"]


def run_recipe(recipe: str) -> str:
    dataset = load_sized("compas")
    split = train_test_split(dataset, seed=0)
    corrupted_train = corrupt_extended(split.train, recipe, seed=0)
    clean, corrupted = [], []
    for name in APPROACHES:
        clean.append(run_experiment(name, split.train, split.test,
                                    causal_samples=CAUSAL_SAMPLES, seed=0))
        corrupted.append(run_experiment(name, corrupted_train, split.test,
                                        causal_samples=CAUSAL_SAMPLES,
                                        seed=0))
    return format_delta_table(
        clean, corrupted, columns=COLUMNS,
        title=f"Extended robustness ({recipe.upper()}): corrupted-minus-"
              "clean deltas on COMPAS")


@pytest.mark.parametrize("recipe", ["t4", "t5", "t6"])
def test_extended_errors(benchmark, recipe):
    table = once(benchmark, lambda: run_recipe(recipe))
    emit(f"ablation_errors_{recipe}", table)
