"""Appendix Figures 16-18: 5-fold cross-validation metric tables.

For each dataset, every variant (main + additional) is trained and
evaluated across 5 stratified folds and the per-metric averages are
printed — the tabular form of the paper's Figures 16 (Adult),
17 (COMPAS), and 18 (German)."""

import numpy as np
import pytest

from common import CAUSAL_SAMPLES, CV_SIZES, FULL, emit, once
from repro.datasets import stratified_k_fold
from repro.fairness.registry import ALL_APPROACHES, MAIN_APPROACHES
from repro.pipeline import (CORRECTNESS_COLUMNS, FAIRNESS_COLUMNS,
                            run_experiment)
from repro.pipeline.report import HEADER_LABELS

APPROACHES = list(ALL_APPROACHES) if FULL else list(MAIN_APPROACHES)
COLUMNS = [*CORRECTNESS_COLUMNS, *FAIRNESS_COLUMNS]
FIGURE_BY_DATASET = {"adult": 16, "compas": 17, "german": 18}


def run_crossval(dataset_name: str) -> str:
    from repro.datasets import load

    dataset = load(dataset_name, n=CV_SIZES[dataset_name], seed=0)
    splits = stratified_k_fold(dataset, k=5, seed=0)
    lines = [f"Figure {FIGURE_BY_DATASET[dataset_name]} ({dataset_name}): "
             "5-fold cross-validated averages"]
    header = " ".join(f"{HEADER_LABELS[c]:>8s}" for c in COLUMNS)
    lines.append(f"{'approach':18s} {header}")
    lines.append("-" * (19 + 9 * len(COLUMNS)))
    for name in (None, *APPROACHES):
        per_fold = []
        for fold, split in enumerate(splits):
            r = run_experiment(name, split.train, split.test,
                               causal_samples=CAUSAL_SAMPLES, seed=fold)
            merged = {**r.correctness_scores(), **r.fairness_scores()}
            per_fold.append([merged[c] for c in COLUMNS])
        means = np.nanmean(np.array(per_fold, dtype=float), axis=0)
        row = " ".join(f"{v:8.2f}" for v in means)
        lines.append(f"{(name or 'LR'):18s} {row}")
    return "\n".join(lines)


@pytest.mark.parametrize("dataset_name", ["adult", "compas", "german"])
def test_fig16_18(benchmark, dataset_name):
    emit(f"fig{FIGURE_BY_DATASET[dataset_name]}_crossval_{dataset_name}",
         once(benchmark, lambda: run_crossval(dataset_name)))
