"""Ablation: how much tradeoff control does each stage really offer?

Section 4.3's takeaway is that pre-/in-processing "offer more
flexibility in controlling correctness-fairness tradeoffs" than
post-processing.  This bench makes that claim measurable by sweeping
each approach's own control knob and printing the resulting
accuracy-vs-DI* frontier:

* Zafar-dp (in): the covariance bound c (tight → fair, loose → LR);
* Feld (pre): the repair level λ;
* Calmon (pre): the distortion cap;
* KamKar (post): the parity target — whose frontier is short, because
  the reject-option mechanism saturates.

A second ablation contrasts the two Salimi repair back-ends (MaxSAT vs
MatFac rounding) head-to-head.
"""

import numpy as np

from common import CAUSAL_SAMPLES, emit, load_sized, once
from repro.datasets import train_test_split
from repro.fairness.inprocessing import ZafarDPFair
from repro.fairness.postprocessing import KamKar
from repro.fairness.preprocessing import (Calmon, Feld, SalimiMatFac,
                                          SalimiMaxSAT)
from repro.pipeline import FairPipeline, evaluate_pipeline


def frontier(split, factory, knob_name, knob_values):
    rows = []
    for value in knob_values:
        pipe = FairPipeline(factory(value), seed=0).fit(split.train)
        r = evaluate_pipeline(pipe, split.test,
                              causal_samples=CAUSAL_SAMPLES)
        rows.append(f"  {knob_name}={value:<8g} acc={r.accuracy:.3f} "
                    f"DI*={r.di_star:.3f}")
    return rows


def run_tradeoff() -> str:
    split = train_test_split(load_sized("adult"), seed=0)
    lines = ["Ablation: accuracy-vs-DI* frontiers per control knob "
             "(Adult)"]
    lines.append("Zafar-dp-fair (in): covariance bound c")
    lines += frontier(split, lambda c: ZafarDPFair(covariance_bound=c),
                      "c", [1e-4, 1e-3, 1e-2, 1e-1])
    lines.append("Feld (pre): repair level λ")
    lines += frontier(split, lambda lam: Feld(lam=lam),
                      "λ", [0.0, 0.5, 0.8, 1.0])
    lines.append("Calmon (pre): distortion cap (max flip fraction)")
    lines += frontier(split, lambda cap: Calmon(max_flip=cap, seed=0),
                      "cap", [0.05, 0.2, 0.6, 1.0])
    lines.append("KamKar (post): parity target")
    lines += frontier(split, lambda t: KamKar(parity_target=t),
                      "target", [0.2, 0.1, 0.05, 0.01])
    return "\n".join(lines)


def run_salimi_backends() -> str:
    lines = ["Ablation: Salimi repair back-end (MaxSAT vs MatFac "
             "rounding), COMPAS"]
    split = train_test_split(load_sized("compas"), seed=0)
    for cls in (SalimiMaxSAT, SalimiMatFac):
        pipe = FairPipeline(cls(seed=0), seed=0).fit(split.train)
        r = evaluate_pipeline(pipe, split.test,
                              causal_samples=CAUSAL_SAMPLES)
        lines.append(f"  {cls.__name__:13s} acc={r.accuracy:.3f} "
                     f"DI*={r.di_star:.3f} 1-|TE|={r.te:.3f} "
                     f"fit={pipe.fit_seconds_:.2f}s")
    return "\n".join(lines)


def test_ablation_tradeoff(benchmark):
    emit("ablation_tradeoff", once(benchmark, run_tradeoff))


def test_ablation_salimi_backend(benchmark):
    emit("ablation_salimi", once(benchmark, run_salimi_backends))
