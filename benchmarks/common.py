"""Shared benchmark configuration and helpers.

Every paper table/figure has one bench module.  Benches run at reduced
scale by default so ``pytest benchmarks/ --benchmark-only`` finishes on
a laptop; set ``REPRO_FULL=1`` for paper-scale sweeps.  Each bench
prints the rows/series the corresponding figure reports and also writes
them under ``benchmarks/out/`` for EXPERIMENTS.md.
"""

from __future__ import annotations

import os
import pathlib

FULL = os.environ.get("REPRO_FULL", "") == "1"

OUT_DIR = pathlib.Path(__file__).parent / "out"

#: Per-dataset sample sizes (reduced / paper-scale).
SIZES = {
    "adult": 31000 if FULL else 4000,
    "compas": 7200 if FULL else 4000,
    "german": 1000,
}

#: Monte-Carlo samples for the interventional causal metrics.
CAUSAL_SAMPLES = 20000 if FULL else 4000

#: Smaller sizes for the 5-fold cross-validation sweep (it multiplies
#: every run by the number of folds).
CV_SIZES = {
    "adult": 31000 if FULL else 2500,
    "compas": 7200 if FULL else 2500,
    "german": 1000 if FULL else 800,
}


def emit(name: str, text: str) -> str:
    """Print a bench's table and persist it under benchmarks/out/."""
    OUT_DIR.mkdir(exist_ok=True)
    (OUT_DIR / f"{name}.txt").write_text(text + "\n")
    print("\n" + text)
    return text


def load_sized(dataset_name: str, seed: int = 0):
    from repro.datasets import load

    return load(dataset_name, n=SIZES[dataset_name], seed=seed)


def once(benchmark, fn):
    """Run ``fn`` exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)
