"""Shared benchmark configuration and helpers.

Every paper table/figure has one bench module.  Benches run at reduced
scale by default so ``pytest benchmarks/ --benchmark-only`` finishes on
a laptop; set ``REPRO_FULL=1`` for paper-scale sweeps.  Each bench
prints the rows/series the corresponding figure reports and also writes
them under ``benchmarks/out/`` for EXPERIMENTS.md.
"""

from __future__ import annotations

import os
import pathlib

FULL = os.environ.get("REPRO_FULL", "") == "1"

OUT_DIR = pathlib.Path(__file__).parent / "out"

#: Worker processes for engine-driven sweeps (1 = serial timing runs).
JOBS = int(os.environ.get("REPRO_JOBS", "1"))

#: Content-addressed cache shared by all engine-driven benches; a
#: re-run of a bench refits nothing that already finished.  Set
#: ``REPRO_NO_CACHE=1`` for cold-cache timing.
CACHE_DIR = OUT_DIR / "cache"

#: Per-dataset sample sizes (reduced / paper-scale).
SIZES = {
    "adult": 31000 if FULL else 4000,
    "compas": 7200 if FULL else 4000,
    "german": 1000,
}

#: Monte-Carlo samples for the interventional causal metrics.
CAUSAL_SAMPLES = 20000 if FULL else 4000

#: Smaller sizes for the 5-fold cross-validation sweep (it multiplies
#: every run by the number of folds).
CV_SIZES = {
    "adult": 31000 if FULL else 2500,
    "compas": 7200 if FULL else 2500,
    "german": 1000 if FULL else 800,
}


def emit(name: str, text: str) -> str:
    """Print a bench's table and persist it under benchmarks/out/."""
    OUT_DIR.mkdir(exist_ok=True)
    (OUT_DIR / f"{name}.txt").write_text(text + "\n")
    print("\n" + text)
    return text


def load_sized(dataset_name: str, seed: int = 0):
    from repro.datasets import load

    return load(dataset_name, n=SIZES[dataset_name], seed=seed)


def once(benchmark, fn):
    """Run ``fn`` exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)


def run_grid(grid):
    """Sweep a scenario grid through the engine with the shared bench
    cache; raises if any cell failed so benches can't silently report
    partial figures."""
    from repro.engine import ResultCache, run_sweep

    cache = (None if os.environ.get("REPRO_NO_CACHE", "") == "1"
             else ResultCache(CACHE_DIR))
    report = run_sweep(grid.expand(), cache=cache, max_workers=JOBS)
    if report.failures:
        details = "\n".join(f"{o.job.label()}:\n{o.error}"
                            for o in report.failures)
        raise RuntimeError(f"{len(report.failures)} grid cells failed:\n"
                           f"{details}")
    return report
