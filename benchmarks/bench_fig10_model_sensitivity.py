"""Figure 10 (and Appendix Figure 21): sensitivity to the ML model.

Every pre- and post-processing variant is paired with the paper's five
downstream models (LR, SVM, kNN, RF, MLP) on Adult.  The bench prints
accuracy, DI*, and 1-|TE| per (approach, model) pair plus the
across-model spread; the shape under test is that pre-processing
repairs vary with the model while post-processing accuracy does not.
"""

import numpy as np
import pytest

from common import CAUSAL_SAMPLES, FULL, emit, load_sized, once
from repro.datasets import train_test_split
from repro.fairness import Stage, make_approach
from repro.fairness.registry import ALL_APPROACHES
from repro.models import make_model
from repro.pipeline import FairPipeline, evaluate_pipeline

MODELS = ("lr", "svm", "knn", "rf", "mlp")

PRE_POST = [name for name in ALL_APPROACHES
            if make_approach(name).stage in (Stage.PRE, Stage.POST)]


def _model(name: str):
    if name == "rf" and not FULL:
        return make_model("rf", n_trees=15, max_depth=12)
    return make_model(name)


def run_sensitivity() -> str:
    dataset = load_sized("adult")
    split = train_test_split(dataset, seed=0)
    lines = [
        "Figure 10/21: pre- & post-processing × downstream model (Adult)",
        f"{'approach':18s} {'model':5s} {'acc':>6s} {'DI*':>6s} "
        f"{'1-|TE|':>7s}",
        "-" * 48,
    ]
    for approach_name in PRE_POST:
        accs, dis = [], []
        for model_name in MODELS:
            pipe = FairPipeline(make_approach(approach_name, seed=0),
                                model=_model(model_name), seed=0)
            pipe.fit(split.train)
            r = evaluate_pipeline(pipe, split.test,
                                  causal_samples=CAUSAL_SAMPLES)
            accs.append(r.accuracy)
            dis.append(r.di_star)
            lines.append(f"{approach_name:18s} {model_name:5s} "
                         f"{r.accuracy:6.3f} {r.di_star:6.3f} {r.te:7.3f}")
        lines.append(f"{approach_name:18s} spread    acc="
                     f"{max(accs) - min(accs):5.3f} DI*="
                     f"{np.nanmax(dis) - np.nanmin(dis):5.3f}")
        lines.append("")
    return "\n".join(lines)


def test_fig10(benchmark):
    emit("fig10_model_sensitivity", once(benchmark, run_sensitivity))
