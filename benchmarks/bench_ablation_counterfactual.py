"""Extension: counterfactual (rung-3) audit across stages.

The paper stops at interventional metrics; this bench climbs to the
counterfactual rung and asks which stage best removes *individual*
counterfactual discrimination: for the baseline and one approach per
stage on COMPAS it reports the mean counterfactual prediction gap, the
fraction of individuals whose prediction flips under ``do(race)``, the
Ctf-DE/IE decomposition, and the counterfactual FPR gap.

Shape under test: S-discarding approaches (Feld) drive the
counterfactual direct effect and flip rate to ~0; post-processing —
which conditions its adjustment on S — *retains* individual
counterfactual discrimination even while satisfying its group notion,
the rung-3 version of the paper's "post-processing violates ID"
finding.
"""

from common import emit, load_sized, once
from repro.datasets import train_test_split
from repro.pipeline import evaluate_counterfactual

APPROACHES = (None, "Feld-dp", "KamCal-dp", "Zafar-dp-fair", "KamKar-dp")


def run_audit() -> str:
    dataset = load_sized("compas")
    split = train_test_split(dataset, seed=0)
    lines = ["Counterfactual audit (COMPAS): rung-3 metrics per stage",
             f"{'approach':<14} {'mean gap':>9} {'flip %':>7} "
             f"{'Ctf-DE':>8} {'Ctf-IE':>8} {'cf-FPR gap':>11}"]
    for name in APPROACHES:
        audit = evaluate_counterfactual(
            name, split.train, split.test,
            n_samples=8000, n_particles=80, max_rows=40, seed=0)
        lines.append(
            f"{audit.approach:<14} {audit.fairness.mean_gap:>9.3f} "
            f"{audit.fairness.unfair_fraction:>7.1%} "
            f"{audit.effects.de:>+8.3f} {audit.effects.ie:>+8.3f} "
            f"{audit.error_rates.fpr_gap:>+11.3f}")
    return "\n".join(lines)


def test_ablation_counterfactual(benchmark):
    emit("ablation_counterfactual", once(benchmark, run_audit))
