"""Ablation: does the imputer choice change robustness conclusions?

The paper's T3 recipe re-imputes missing values with "standard
Scikit-learn imputers" (mean/mode) and finds post-processing most
robust.  This ablation asks whether that conclusion is an artefact of
the simple imputer: COMPAS features get disproportionate missingness
and are re-imputed with four imputers of increasing sophistication
(mean, median, k-NN, iterative regression), then the baseline and one
approach per stage are retrained on each variant.

Shape under test: better imputers recover more accuracy, but the
*ordering* of stages by fairness robustness is stable across imputers.
"""

import numpy as np

from common import CAUSAL_SAMPLES, emit, load_sized, once
from repro.datasets import train_test_split
from repro.errors import (affected_rows, impute_iterative, impute_knn,
                          impute_mean, impute_median)
from repro.pipeline import run_experiment

APPROACHES = (None, "KamCal-dp", "Zafar-dp-fair", "Hardt-eo")

MATRIX_IMPUTERS = {
    "mean": lambda X: np.column_stack(
        [impute_mean(X[:, j]) for j in range(X.shape[1])]),
    "median": lambda X: np.column_stack(
        [impute_median(X[:, j]) for j in range(X.shape[1])]),
    "knn": lambda X: impute_knn(X, k=5),
    "iterative": lambda X: impute_iterative(X, n_iter=3),
}


def corrupt_features(train, seed: int):
    """Disproportionate missingness (50%/10%) on all feature columns."""
    rng = np.random.default_rng(seed)
    mask = affected_rows(train, 0.5, 0.1, rng)
    X = train.X.copy()
    # Each affected row loses a random half of its features.
    holes = mask[:, None] & (rng.random(X.shape) < 0.5)
    X[holes] = np.nan
    return X, holes


def run_ablation() -> str:
    dataset = load_sized("compas")
    split = train_test_split(dataset, seed=0)
    X_missing, _ = corrupt_features(split.train, seed=0)

    lines = ["Ablation: imputer choice under disproportionate feature "
             "missingness (COMPAS)",
             f"{'imputer':<10} {'approach':<14} {'acc':>6} {'DI*':>6} "
             f"{'1-|TPRB|':>9}"]
    for imputer_name, imputer in MATRIX_IMPUTERS.items():
        X_fixed = imputer(X_missing)
        table = split.train.table
        for j, feature in enumerate(split.train.feature_names):
            table = table.assign(**{feature: X_fixed[:, j]})
        repaired_train = split.train.with_table(table)
        for name in APPROACHES:
            r = run_experiment(name, repaired_train, split.test,
                               causal_samples=CAUSAL_SAMPLES, seed=0)
            lines.append(f"{imputer_name:<10} {r.approach:<14} "
                         f"{r.accuracy:>6.3f} {r.di_star:>6.3f} "
                         f"{r.tprb:>9.3f}")
    return "\n".join(lines)


def test_ablation_imputers(benchmark):
    emit("ablation_imputers", once(benchmark, run_ablation))
