"""Appendix Figure 15: the three additional approaches (Madras-dp,
Agarwal-dp, Agarwal-eo) on Adult, COMPAS, and German, alongside the LR
baseline — same protocol as Figure 7."""

import pytest

from common import CAUSAL_SAMPLES, emit, load_sized, once
from repro.datasets import train_test_split
from repro.fairness.registry import ADDITIONAL_APPROACHES
from repro.pipeline import format_results_table, run_experiment


def run_dataset(dataset_name: str) -> str:
    dataset = load_sized(dataset_name)
    split = train_test_split(dataset, test_fraction=0.3, seed=0)
    results = [run_experiment(None, split.train, split.test,
                              causal_samples=CAUSAL_SAMPLES, seed=0)]
    for name in ADDITIONAL_APPROACHES:
        results.append(run_experiment(name, split.train, split.test,
                                      causal_samples=CAUSAL_SAMPLES,
                                      seed=0))
    return format_results_table(
        results, title=f"Figure 15 ({dataset_name}): additional "
                       "approaches + LR baseline")


@pytest.mark.parametrize("dataset_name", ["adult", "compas", "german"])
def test_fig15(benchmark, dataset_name):
    emit(f"fig15_{dataset_name}",
         once(benchmark, lambda: run_dataset(dataset_name)))
