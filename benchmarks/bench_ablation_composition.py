"""Extension: measuring Section 5's claim about combining approaches.

The paper states that "combining multiple approaches is possible, but
faces practical hurdles such as substantial penalties in correctness
[and] runtime overhead" — without measuring it.  This bench does: on
COMPAS it compares the baseline, each single-stage approach, and the
pre+post compositions, reporting accuracy, the fairness metrics both
stages target, and fit time.

Shape under test: composition pushes DI* at or above the best single
stage, at a visible extra accuracy cost and the summed runtime.
"""

from common import CAUSAL_SAMPLES, emit, load_sized, once
from repro.datasets import train_test_split
from repro.fairness.postprocessing import Hardt, KamKar
from repro.fairness.preprocessing import Feld, KamCal
from repro.pipeline import (ComposedPipeline, FairPipeline,
                            evaluate_pipeline)


def run_composition() -> str:
    dataset = load_sized("compas")
    split = train_test_split(dataset, seed=0)

    configs = {
        "LR baseline": FairPipeline(None, seed=0),
        "KamCal (pre)": FairPipeline(KamCal(seed=0), seed=0),
        "KamKar (post)": FairPipeline(KamKar(), seed=0),
        "Hardt (post)": FairPipeline(Hardt(), seed=0),
        "KamCal→KamKar": ComposedPipeline(pre=KamCal(seed=0),
                                          post=KamKar(), seed=0),
        "KamCal→Hardt": ComposedPipeline(pre=KamCal(seed=0),
                                         post=Hardt(), seed=0),
        "Feld→Hardt": ComposedPipeline(pre=Feld(lam=1.0),
                                       post=Hardt(), seed=0),
    }

    lines = ["Composition ablation (COMPAS): single stages vs pre+post "
             "stacks",
             f"{'pipeline':<16} {'acc':>6} {'DI*':>6} {'1-|TPRB|':>9} "
             f"{'fit s':>7}"]
    for label, pipe in configs.items():
        pipe.fit(split.train)
        r = evaluate_pipeline(pipe, split.test,
                              causal_samples=CAUSAL_SAMPLES)
        lines.append(f"{label:<16} {r.accuracy:>6.3f} {r.di_star:>6.3f} "
                     f"{r.tprb:>9.3f} {pipe.fit_seconds_:>7.2f}")
    return "\n".join(lines)


def test_ablation_composition(benchmark):
    emit("ablation_composition", once(benchmark, run_composition))
