"""Perf benchmark: the vectorized rung-3 audit vs the loop reference.

Times the counterfactual-fairness audit (batched abduction, two
predict calls per chunk) and the situation-testing audit (shared
block-matmul top-k kernel, ``repro.metrics.pairwise``) against the
retained loop references in ``repro.causal.reference`` /
``repro.metrics.reference``, at n ∈ {1k, 5k, 20k} rows of the
synthetic COMPAS dataset, and writes the result as
``BENCH_counterfactual.json`` — the repo's perf-trajectory record for
this hot path.

The headline timings run with telemetry *disabled* — exactly the
configuration ``--assert-no-regression`` guards — so a hold against
the committed baseline doubles as the proof that the instrumented
kernels' disabled-mode overhead stays under the noise floor.  A
separate traced pass (skippable with ``--no-phases``) then re-runs
both audits under ``repro.obs.recording`` and embeds the per-phase
span durations and kernel counters (``abduction.chunks``,
``pairwise.blocks``, ...) into each size's record.

The loop reference is skipped above ``--loop-max`` rows (it is the
point of this benchmark that the loop does not scale; the dense
situation-testing matrix alone is 3.2 GB at n=20k).

A cores-vs-speedup pass (skippable with ``--no-threads-curve``)
re-times both audits at each thread count in ``--threads-curve``
(default 1/2/4) and records the curve per size — embedded in the main
record and written standalone to ``--threads-out``
(``BENCH_threads.json``).  The threaded kernels are byte-identical to
the single-threaded ones (asserted here against the headline result),
so the curve measures pure scheduling, not numerics.  Under
``--assert-no-regression`` the curve is also gated: situation testing
must reach a 2x speedup at 4 threads for n >= 20k — skipped with a
printed note on machines with fewer than 4 CPUs, where the scaling
physically cannot appear.

Run:  PYTHONPATH=src python benchmarks/bench_perf_counterfactual.py
      (--sizes 1000 20000 --particles 25 --out
      BENCH_counterfactual.ci.json for the CI smoke variant)

``--assert-no-regression BASELINE.json`` compares the run against a
committed baseline record: at every common size, the vectorized-path
speedup over the loop reference must stay within ``--regression-slack``
of the baseline's (ratios absorb machine differences better than raw
seconds do), and at sizes where the loop was skipped on both sides
(n=20k) the vectorized wall times themselves may not exceed
``baseline / slack`` — so the large-n paths are guarded even without
a loop to ratio against.  Checks are gated on the knobs the numbers
depend on (``cf_*`` needs matching particle counts, ``st_*`` matching
``k``/``block_size``) and skipped with a printed note otherwise — the
CI smoke runs reduced particles, so only its situation-testing
numbers are compared.  A violation exits non-zero so CI fails.
"""

from __future__ import annotations

import argparse
import json
import os
import pathlib
import platform
import time

import numpy as np

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
DEFAULT_OUT = REPO_ROOT / "BENCH_counterfactual.json"
DEFAULT_THREADS_OUT = REPO_ROOT / "BENCH_threads.json"


def build_audit(size: int, seed: int = 0):
    """Dataset, SCM, and a fixed linear predictor mirroring the
    ``evaluate_counterfactual`` pipeline setup."""
    from repro.causal import CounterfactualSCM
    from repro.datasets import discretize_dataset, load_compas

    ds = discretize_dataset(load_compas(n=size, seed=seed), n_bins=4)
    nodes = ds.causal_graph.nodes
    cols = {n: ds.table[n].astype(float) for n in nodes}
    fit_start = time.perf_counter()
    scm = CounterfactualSCM.fit(cols, ds.causal_graph)
    fit_s = time.perf_counter() - fit_start

    features = [n for n in nodes if n != ds.label]
    weights = np.random.default_rng(7).normal(size=len(features))

    def predict(values: dict) -> np.ndarray:
        score = np.zeros_like(np.asarray(values[features[0]], dtype=float))
        for w, name in zip(weights, features):
            score = score + w * np.asarray(values[name], dtype=float)
        return (score > 0).astype(float)

    return ds, scm, cols, predict, fit_s


def timed(fn):
    start = time.perf_counter()
    out = fn()
    return time.perf_counter() - start, out


def traced_phases(ds, scm, cols, predict, n_particles: int, k: int,
                  block_size: int | None) -> tuple[dict, dict]:
    """Re-run both audits under a recorder; per-phase seconds and the
    merged kernel counters (not comparable to the untraced headline
    timings — this pass pays the instrumentation)."""
    from repro import obs
    from repro.metrics import counterfactual_fairness, situation_testing

    rng = np.random.default_rng
    with obs.recording() as rec:
        with obs.span("cf_audit"):
            counterfactual_fairness(
                scm, cols, ds.sensitive, ds.label, predict, rng(1),
                n_particles=n_particles, max_rows=None)
        with obs.span("situation_testing"):
            situation_testing(ds.X, ds.s, predict(cols), k=k,
                              block_size=block_size)
    snapshot = rec.snapshot()
    phases = {s["name"]: round(s["dur"], 4)
              for s in snapshot["spans"] if s["depth"] == 0}
    return phases, snapshot["counters"]


def bench_size(size: int, n_particles: int, k: int,
               run_loop: bool, block_size: int | None = None,
               collect_phases: bool = True,
               thread_counts: list[int] | None = None) -> dict:
    from repro.metrics import counterfactual_fairness, situation_testing
    from repro.metrics.reference import (counterfactual_fairness_loop,
                                         situation_testing_loop)

    ds, scm, cols, predict, fit_s = build_audit(size)
    rng = np.random.default_rng
    entry: dict = {"rows": size, "fit_s": round(fit_s, 4)}

    cf_vec_s, cf_vec = timed(lambda: counterfactual_fairness(
        scm, cols, ds.sensitive, ds.label, predict, rng(1),
        n_particles=n_particles, max_rows=None))
    entry["cf_vectorized_s"] = round(cf_vec_s, 4)
    entry["cf_mean_gap"] = round(cf_vec.mean_gap, 6)

    y_hat = predict(cols)
    st_vec_s, st_vec = timed(lambda: situation_testing(
        ds.X, ds.s, y_hat, k=k, block_size=block_size))
    entry["st_vectorized_s"] = round(st_vec_s, 4)
    entry["st_mean_gap"] = round(st_vec.mean_gap, 6)

    if run_loop:
        cf_loop_s, cf_loop = timed(lambda: counterfactual_fairness_loop(
            scm, cols, ds.sensitive, ds.label, predict, rng(2),
            n_particles=n_particles, max_rows=None))
        entry["cf_loop_s"] = round(cf_loop_s, 4)
        entry["cf_loop_mean_gap"] = round(cf_loop.mean_gap, 6)
        entry["cf_speedup"] = round(cf_loop_s / cf_vec_s, 2)

        st_loop_s, st_loop = timed(lambda: situation_testing_loop(
            ds.X, ds.s, y_hat, k=k))
        entry["st_loop_s"] = round(st_loop_s, 4)
        entry["st_speedup"] = round(st_loop_s / st_vec_s, 2)
        # Discretized features produce tied distances, which top-k
        # selection and stable argsort break differently; the audits
        # agree up to that tie noise (exact parity is asserted on
        # tie-free data in the test-suite).
        assert abs(st_loop.mean_gap - st_vec.mean_gap) < 0.05, \
            "situation-testing parity violated beyond tie noise"

    if thread_counts:
        curve: dict = {}
        for t in thread_counts:
            cf_t_s, cf_t = timed(lambda t=t: counterfactual_fairness(
                scm, cols, ds.sensitive, ds.label, predict, rng(1),
                n_particles=n_particles, max_rows=None, threads=t))
            st_t_s, st_t = timed(lambda t=t: situation_testing(
                ds.X, ds.s, y_hat, k=k, block_size=block_size,
                threads=t))
            # The threaded kernels are byte-identical at every thread
            # count, so the curve points must reproduce the headline
            # audits exactly.
            assert cf_t.mean_gap == cf_vec.mean_gap, \
                f"threaded cf audit diverged at threads={t}"
            assert st_t.mean_gap == st_vec.mean_gap, \
                f"threaded situation testing diverged at threads={t}"
            curve[str(t)] = {"cf_s": round(cf_t_s, 4),
                             "st_s": round(st_t_s, 4)}
        base = curve.get("1")
        if base:
            for point in curve.values():
                point["cf_speedup"] = round(base["cf_s"] / point["cf_s"], 2)
                point["st_speedup"] = round(base["st_s"] / point["st_s"], 2)
        entry["threads_curve"] = curve

    if collect_phases:
        entry["phases"], entry["counters"] = traced_phases(
            ds, scm, cols, predict, n_particles, k, block_size)
    return entry


def check_regression(payload: dict, baseline_path: pathlib.Path,
                     slack: float) -> list[str]:
    """Regressions of a run ``payload`` vs a baseline record.

    Comparisons are gated on the knobs each number actually depends
    on, so a configuration drift between the run and the baseline is
    skipped loudly instead of producing a meaningless 50%-slack pass:

    * counterfactual-audit checks require matching ``n_particles``;
    * situation-testing checks require matching ``k`` and
      ``block_size``.

    Where both runs timed the loop reference, the speedup *ratio*
    must stay within ``slack`` of the baseline's (ratios absorb
    machine differences).  At sizes where neither did (above
    ``--loop-max``, e.g. the n=20k smoke), the vectorized wall time
    itself is held to ``baseline / slack``.
    """
    baseline_payload = json.loads(baseline_path.read_text())
    baseline = baseline_payload["results"]
    # Absent in pre-schema-4 baselines, where headlines were always
    # single-threaded.
    same_threads = (baseline_payload.get("threads", 1)
                    == payload.get("threads", 1))
    comparable = {
        "cf": (baseline_payload.get("n_particles") == payload.get(
            "n_particles") and same_threads),
        "st": (baseline_payload.get("k") == payload.get("k")
               and baseline_payload.get("block_size")
               == payload.get("block_size")
               and same_threads),
    }
    for prefix, ok in comparable.items():
        if not ok:
            print(f"note: {prefix}_* checks skipped — run/baseline "
                  "configs differ "
                  f"(run {payload.get('n_particles')} particles / "
                  f"k={payload.get('k')} / "
                  f"block_size={payload.get('block_size')}, baseline "
                  f"{baseline_payload.get('n_particles')} / "
                  f"k={baseline_payload.get('k')} / "
                  f"block_size={baseline_payload.get('block_size')})")
    problems = []
    for size, entry in payload["results"].items():
        reference = baseline.get(size)
        if reference is None:
            continue
        for prefix in ("cf", "st"):
            if not comparable[prefix]:
                continue
            ratio = f"{prefix}_speedup"
            if ratio in entry and ratio in reference:
                floor = reference[ratio] * slack
                if entry[ratio] < floor:
                    problems.append(
                        f"n={size}: {ratio} {entry[ratio]:.2f}x is "
                        f"below {slack:.0%} of the baseline's "
                        f"{reference[ratio]:.2f}x")
            elif ratio not in entry and ratio not in reference:
                seconds = f"{prefix}_vectorized_s"
                if seconds not in entry or seconds not in reference:
                    continue
                ceiling = reference[seconds] / slack
                if entry[seconds] > ceiling:
                    problems.append(
                        f"n={size}: {seconds} {entry[seconds]:.2f}s "
                        f"exceeds {ceiling:.2f}s (baseline "
                        f"{reference[seconds]:.2f}s / {slack:.0%} "
                        "slack)")
    return problems


def check_scaling(payload: dict, min_rows: int = 20000,
                  want_threads: int = 4, floor: float = 2.0
                  ) -> list[str]:
    """Threaded-kernel scaling gate on the run's own curve.

    At every size >= ``min_rows`` whose curve has a ``want_threads``
    point, situation testing must reach ``floor``x over the curve's
    single-threaded point.  Skipped with a printed note on machines
    with fewer than ``want_threads`` CPUs (the scaling physically
    cannot appear there) or when no eligible curve point was recorded.
    """
    cpus = payload.get("machine", {}).get("cpu_count") or 0
    if cpus < want_threads:
        print(f"note: thread-scaling gate skipped — {cpus} CPU(s) "
              f"available, needs >= {want_threads}")
        return []
    problems = []
    checked = False
    for size, entry in payload["results"].items():
        if int(size) < min_rows:
            continue
        point = entry.get("threads_curve", {}).get(str(want_threads))
        if point is None or "st_speedup" not in point:
            continue
        checked = True
        if point["st_speedup"] < floor:
            problems.append(
                f"n={size}: situation testing at {want_threads} threads "
                f"is only {point['st_speedup']:.2f}x over one thread "
                f"(needs {floor:.1f}x)")
    if not checked:
        print("note: thread-scaling gate skipped — no curve point at "
              f"n>={min_rows} with {want_threads} threads")
    return problems


def main(argv: list[str] | None = None) -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--sizes", type=int, nargs="+",
                        default=[1000, 5000, 20000])
    parser.add_argument("--particles", type=int, default=100)
    parser.add_argument("--k", type=int, default=10,
                        help="situation-testing neighbourhood size")
    parser.add_argument("--loop-max", type=int, default=5000,
                        help="largest size at which the loop reference "
                             "is also timed")
    parser.add_argument("--block-size", type=int, default=None,
                        metavar="N",
                        help="pairwise-kernel query rows per block for "
                             "situation testing (default: kernel "
                             "default)")
    parser.add_argument("--no-phases", action="store_true",
                        help="skip the traced pass that embeds "
                             "per-phase durations and kernel counters")
    parser.add_argument("--threads-curve", type=int, nargs="+",
                        default=[1, 2, 4], metavar="T",
                        help="thread counts for the cores-vs-speedup "
                             "pass (speedups are computed against the "
                             "curve's t=1 point)")
    parser.add_argument("--no-threads-curve", action="store_true",
                        help="skip the cores-vs-speedup pass")
    parser.add_argument("--threads-out", type=pathlib.Path,
                        default=DEFAULT_THREADS_OUT,
                        help="standalone thread-scaling record "
                             "(default BENCH_threads.json)")
    parser.add_argument("--out", type=pathlib.Path, default=DEFAULT_OUT)
    parser.add_argument("--assert-no-regression", type=pathlib.Path,
                        default=None, metavar="BASELINE",
                        help="fail if any speedup falls below "
                             "--regression-slack of this record's")
    parser.add_argument("--regression-slack", type=float, default=0.5,
                        help="fraction of the baseline speedup that "
                             "must be retained (default 0.5)")
    args = parser.parse_args(argv)

    thread_counts = (None if args.no_threads_curve
                     else list(dict.fromkeys(args.threads_curve)))
    results = {}
    for size in args.sizes:
        run_loop = size <= args.loop_max
        print(f"n={size}: benchmarking "
              f"({'with' if run_loop else 'without'} loop reference) ...",
              flush=True)
        results[str(size)] = bench_size(size, args.particles, args.k,
                                        run_loop,
                                        block_size=args.block_size,
                                        collect_phases=not args.no_phases,
                                        thread_counts=thread_counts)
        entry = results[str(size)]
        line = (f"  cf audit {entry['cf_vectorized_s']:.3f}s"
                f"  situation testing {entry['st_vectorized_s']:.3f}s")
        if run_loop:
            line += (f"  (loop: {entry['cf_loop_s']:.3f}s / "
                     f"{entry['st_loop_s']:.3f}s — "
                     f"{entry['cf_speedup']:.1f}x / "
                     f"{entry['st_speedup']:.1f}x)")
        print(line, flush=True)
        if "threads_curve" in entry:
            print("  threads curve: "
                  + "  ".join(
                      f"t={t} st {p['st_s']:.3f}s"
                      + (f" ({p['st_speedup']:.2f}x)"
                         if "st_speedup" in p else "")
                      for t, p in entry["threads_curve"].items()),
                  flush=True)
        if "phases" in entry:
            print("  traced phases: "
                  + "  ".join(f"{name} {secs:.3f}s" for name, secs
                              in entry["phases"].items()), flush=True)

    from repro.metrics.pairwise import resolve_threads

    payload = {
        "bench": "counterfactual_audit",
        "schema": 4,
        "dataset": "compas (synthetic generator, 4-bin discretized)",
        "n_particles": args.particles,
        "k": args.k,
        "block_size": args.block_size,
        # Thread count the *headline* timings resolved to (REPRO_THREADS
        # applied); the scaling curve varies it explicitly.
        "threads": resolve_threads(None),
        "machine": {
            "python": platform.python_version(),
            "numpy": np.__version__,
            "platform": platform.platform(),
            "cpu_count": os.cpu_count(),
        },
        "results": results,
    }
    args.out.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {args.out}")

    if thread_counts:
        curve_payload = {
            "bench": "thread_scaling",
            "schema": 1,
            "dataset": payload["dataset"],
            "n_particles": args.particles,
            "k": args.k,
            "block_size": args.block_size,
            "thread_counts": thread_counts,
            "machine": payload["machine"],
            "results": {size: entry["threads_curve"]
                        for size, entry in results.items()
                        if "threads_curve" in entry},
        }
        args.threads_out.write_text(
            json.dumps(curve_payload, indent=2) + "\n")
        print(f"wrote {args.threads_out}")

    if args.assert_no_regression is not None:
        problems = check_regression(payload, args.assert_no_regression,
                                    args.regression_slack)
        problems += check_scaling(payload)
        if problems:
            raise SystemExit("PERF REGRESSION vs "
                             f"{args.assert_no_regression}:\n  "
                             + "\n  ".join(problems))
        print(f"no regression vs {args.assert_no_regression} "
              f"(slack {args.regression_slack:.0%})")


if __name__ == "__main__":
    main()
