"""Appendix Figure 23: data efficiency.

Each variant is retrained on growing prefixes of Adult (0.1K up to the
full sample) and evaluated on a fixed held-out set; the bench prints
accuracy and DI* series per approach.  Shape under test: most curves
flatten by ~1K rows (the paper's data-efficiency finding)."""

import numpy as np

from common import CAUSAL_SAMPLES, FULL, emit, load_sized, once
from repro.datasets import train_test_split
from repro.fairness.registry import ALL_APPROACHES
from repro.pipeline import run_experiment

SIZES_SWEEP = ([100, 1000, 5000, 10000, 20000, 36000] if FULL
               else [100, 500, 1000, 2000])
APPROACHES = list(ALL_APPROACHES) if FULL else [
    "KamCal-dp", "Feld-dp", "ZhaWu-psf", "Salimi-jf-maxsat",
    "Zafar-dp-fair", "ZhaLe-eo", "Kearns-pe", "Thomas-dp",
    "KamKar-dp", "Hardt-eo", "Pleiss-eop",
]


def run_data_efficiency() -> str:
    dataset = load_sized("adult")
    split = train_test_split(dataset, test_fraction=0.3, seed=0)
    lines = ["Figure 23: accuracy / DI* vs training-set size (Adult)"]
    header = " ".join(f"{n:>11d}" for n in SIZES_SWEEP
                      if n <= split.train.n_rows)
    lines.append(f"{'approach':18s} {'metric':6s} {header}")
    lines.append("-" * (26 + 12 * len(SIZES_SWEEP)))
    for name in (None, *APPROACHES):
        accs, dis = [], []
        for n_train in SIZES_SWEEP:
            if n_train > split.train.n_rows:
                continue
            r = run_experiment(name, split.train.head(n_train), split.test,
                               causal_samples=CAUSAL_SAMPLES, seed=0)
            accs.append(r.accuracy)
            dis.append(r.di_star)
        label = name or "LR"
        lines.append(f"{label:18s} {'acc':6s} "
                     + " ".join(f"{v:11.3f}" for v in accs))
        lines.append(f"{'':18s} {'DI*':6s} "
                     + " ".join(f"{v:11.3f}" for v in dis))
    return "\n".join(lines)


def test_fig23(benchmark):
    emit("fig23_data_efficiency", once(benchmark, run_data_efficiency))
