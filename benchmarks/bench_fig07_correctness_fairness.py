"""Figure 7: correctness and fairness of the 18 main variants on
Adult, COMPAS, and German (LR downstream, 70/30 split).

Regenerates one bar-group table per dataset: the four correctness
metrics and the five headline normalised fairness metrics (plus
NDE/NIE) for every approach, with the LR baseline as the first row.
"""

import pytest

from common import CAUSAL_SAMPLES, emit, load_sized, once
from repro.datasets import train_test_split
from repro.fairness import MAIN_APPROACHES
from repro.pipeline import format_results_table, run_experiment


def run_dataset(dataset_name: str) -> str:
    dataset = load_sized(dataset_name)
    split = train_test_split(dataset, test_fraction=0.3, seed=0)
    results = [run_experiment(None, split.train, split.test,
                              causal_samples=CAUSAL_SAMPLES, seed=0)]
    for name in MAIN_APPROACHES:
        results.append(run_experiment(name, split.train, split.test,
                                      causal_samples=CAUSAL_SAMPLES,
                                      seed=0))
    return format_results_table(
        results, title=f"Figure 7 ({dataset_name}): correctness & "
                       "fairness, 18 variants + LR baseline")


@pytest.mark.parametrize("dataset_name", ["adult", "compas", "german"])
def test_fig07(benchmark, dataset_name):
    table = once(benchmark, lambda: run_dataset(dataset_name))
    emit(f"fig07_{dataset_name}", table)
