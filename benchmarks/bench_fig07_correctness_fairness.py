"""Figure 7: correctness and fairness of the 18 main variants on
Adult, COMPAS, and German (LR downstream, 70/30 split).

Regenerates one bar-group table per dataset: the four correctness
metrics and the five headline normalised fairness metrics (plus
NDE/NIE) for every approach, with the LR baseline as the first row.

Runs through the declarative facade: the (dataset × 19 variants) grid
is one :class:`repro.api.SweepSpec`, executed with the shared result
cache (re-runs refit nothing), and pivoted back into the paper's
table.  ``REPRO_JOBS=N`` fans the grid out over N worker processes.
"""

import pytest

from common import CAUSAL_SAMPLES, SIZES, emit, once, run_grid
from repro.api import SweepSpec
from repro.engine import grid_table
from repro.registry import APPROACHES


def run_dataset(dataset_name: str) -> str:
    spec = SweepSpec(
        datasets=[dataset_name],
        approaches=[None, *APPROACHES.keys(group="main")],
        rows=[SIZES[dataset_name]],
        causal_samples=CAUSAL_SAMPLES,
        seeds=[0],
    )
    report = run_grid(spec.to_grid())
    return grid_table(
        report.outcomes, dataset=dataset_name,
        title=f"Figure 7 ({dataset_name}): correctness & "
              "fairness, 18 variants + LR baseline")


@pytest.mark.parametrize("dataset_name", ["adult", "compas", "german"])
def test_fig07(benchmark, dataset_name):
    table = once(benchmark, lambda: run_dataset(dataset_name))
    emit(f"fig07_{dataset_name}", table)
