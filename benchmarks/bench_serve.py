"""Perf benchmark: the online audit path (``repro serve``).

Packs a serving bundle for one german-credit cell, loads it back
through :class:`repro.serve.AuditService`, and measures the two
request shapes the HTTP front end exposes:

* **audit-one-row** — single-row requests in a tight loop; reported as
  req/s plus p50/p95/p99 latency in milliseconds.  This is the
  serving hot path: one situation-testing k-NN probe against the
  frozen reference plus one ``2 × n_particles + 1``-world pipeline
  call per request.
* **audit-batch** — fixed-size batches; reported as rows/s.  The
  batch path amortises request decoding and the k-NN probe, so its
  per-row rate bounds the one-row rate from above.

All timings run in-process (no HTTP) with telemetry disabled, so the
numbers isolate the audit arithmetic from socket and JSON-framing
costs; the recorded ``serve.requests``/``serve.rows`` counters from a
short traced pass are embedded for the CI counter gate.  Results are
written to ``BENCH_serve.json`` — the repo's perf-trajectory record
for this path.

Run:  PYTHONPATH=src python benchmarks/bench_serve.py
      (--one-row-requests 300 --out BENCH_serve.ci.json for the CI
      smoke variant)

``--assert-no-regression BASELINE.json`` holds one-row req/s and
batch rows/s to ``--regression-slack`` of the committed baseline's,
gated on matching knobs (rows / particles / batch size) so a
configuration drift is skipped loudly rather than compared
meaninglessly.  A violation exits non-zero so CI fails.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import platform
import time

import numpy as np

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
DEFAULT_OUT = REPO_ROOT / "BENCH_serve.json"


def timed(fn):
    start = time.perf_counter()
    out = fn()
    return time.perf_counter() - start, out


def build_service(rows: int, n_particles: int, seed: int = 0):
    """Pack a bundle for one cell and load the service from it, so the
    benchmark exercises the exact object a ``repro serve`` process
    runs."""
    import tempfile

    from repro.artifacts import build_serving_components, pack_bundle
    from repro.engine import Job
    from repro.serve import AuditService

    job = Job(dataset="german", approach="Hardt-eo", model="lr",
              seed=seed, rows=rows, causal_samples=300,
              audit_params={"n_particles": n_particles})
    pack_s, components = timed(lambda: build_serving_components(job))
    with tempfile.TemporaryDirectory() as tmp:
        bundle = pack_bundle(job, pathlib.Path(tmp) / "bundle",
                             components=components)
        load_s, service = timed(
            lambda: AuditService.from_bundle(bundle))
    return service, round(pack_s, 4), round(load_s, 4)


def request_rows(service, count: int, seed: int = 1) -> list[dict]:
    """Synthesize ``count`` valid request rows from the dataset's own
    distribution (fresh draw, not the training split)."""
    from repro.datasets import train_test_split
    from repro.registry import DATASETS

    dataset = DATASETS.build("german", n=max(2 * count, 400), seed=seed)
    split = train_test_split(dataset, seed=seed)
    table = split.test.table
    n = min(count, split.test.n_rows)
    rows = [{name: float(table[name][i]) for name in service.required}
            for i in range(n)]
    while len(rows) < count:
        rows.extend(rows[:count - len(rows)])
    return rows


def bench_one_row(service, rows: list[dict], warmup: int) -> dict:
    for row in rows[:warmup]:
        service.audit_row(row)
    latencies = []
    start = time.perf_counter()
    for row in rows:
        t0 = time.perf_counter()
        service.audit_row(row)
        latencies.append(time.perf_counter() - t0)
    total = time.perf_counter() - start
    ms = np.sort(np.asarray(latencies)) * 1e3
    return {
        "requests": len(rows),
        "req_per_s": round(len(rows) / total, 1),
        "p50_ms": round(float(np.percentile(ms, 50)), 3),
        "p95_ms": round(float(np.percentile(ms, 95)), 3),
        "p99_ms": round(float(np.percentile(ms, 99)), 3),
        "max_ms": round(float(ms[-1]), 3),
    }


def bench_batch(service, rows: list[dict], batch_size: int) -> dict:
    batches = [rows[i:i + batch_size]
               for i in range(0, len(rows) - batch_size + 1, batch_size)]
    service.audit_batch(batches[0])  # warmup
    start = time.perf_counter()
    audited = 0
    for batch in batches:
        service.audit_batch(batch)
        audited += len(batch)
    total = time.perf_counter() - start
    return {
        "batch_size": batch_size,
        "batches": len(batches),
        "rows_per_s": round(audited / total, 1),
        "batch_p50_ms": round(total / len(batches) * 1e3, 3),
    }


def traced_counters(service, rows: list[dict]) -> dict:
    """A short instrumented pass; returns the serve.* counters (the CI
    gate checks these, not the headline timings)."""
    from repro import obs

    with obs.recording() as rec:
        service.audit_batch(rows[:8])
        for row in rows[:4]:
            service.audit_row(row)
    return {name: value for name, value in rec.counters.items()
            if name.startswith("serve.")}


def check_regression(payload: dict, baseline_path: pathlib.Path,
                     slack: float) -> list[str]:
    """Throughput floors vs a baseline record, knob-gated.

    One-row req/s and batch rows/s must each stay at or above
    ``baseline * slack``.  Latency percentiles are recorded but not
    gated — they follow 1/throughput and double-gating them only adds
    noise sensitivity.
    """
    baseline_payload = json.loads(baseline_path.read_text())
    knobs = ("rows", "n_particles", "batch_size")
    if any(baseline_payload.get(k) != payload.get(k) for k in knobs):
        print("note: serve throughput checks skipped — run/baseline "
              "configs differ ("
              + ", ".join(f"{k}: run {payload.get(k)} vs baseline "
                          f"{baseline_payload.get(k)}" for k in knobs)
              + ")")
        return []
    problems = []
    pairs = (("one_row", "req_per_s"), ("batch", "rows_per_s"))
    for section, rate in pairs:
        current = payload["results"][section][rate]
        reference = baseline_payload["results"][section][rate]
        floor = reference * slack
        if current < floor:
            problems.append(
                f"{section}: {rate} {current:.0f} is below "
                f"{slack:.0%} of the baseline's {reference:.0f}")
    return problems


def main(argv: list[str] | None = None) -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--rows", type=int, default=2000,
                        help="training rows for the packed cell")
    parser.add_argument("--particles", type=int, default=25,
                        help="counterfactual particles per request")
    parser.add_argument("--one-row-requests", type=int, default=2000,
                        help="measured audit-one-row requests")
    parser.add_argument("--warmup", type=int, default=50,
                        help="unmeasured warmup requests")
    parser.add_argument("--batch-size", type=int, default=64)
    parser.add_argument("--out", type=pathlib.Path, default=DEFAULT_OUT)
    parser.add_argument("--assert-no-regression", type=pathlib.Path,
                        default=None, metavar="BASELINE",
                        help="fail if throughput falls below "
                             "--regression-slack of this record's")
    parser.add_argument("--regression-slack", type=float, default=0.5,
                        help="fraction of the baseline throughput that "
                             "must be retained (default 0.5)")
    args = parser.parse_args(argv)

    print(f"packing german cell (rows={args.rows}, "
          f"particles={args.particles}) ...", flush=True)
    service, pack_s, load_s = build_service(args.rows, args.particles)
    rows = request_rows(service, args.one_row_requests)
    print(f"  pack {pack_s:.2f}s  bundle load {load_s:.3f}s  "
          f"({len(rows)} request rows)", flush=True)

    one_row = bench_one_row(service, rows, args.warmup)
    print(f"  audit-one-row: {one_row['req_per_s']:.0f} req/s  "
          f"p50 {one_row['p50_ms']:.2f}ms  p95 {one_row['p95_ms']:.2f}ms"
          f"  p99 {one_row['p99_ms']:.2f}ms", flush=True)

    batch = bench_batch(service, rows, args.batch_size)
    print(f"  audit-batch(x{args.batch_size}): "
          f"{batch['rows_per_s']:.0f} rows/s  "
          f"batch p50 {batch['batch_p50_ms']:.1f}ms", flush=True)

    counters = traced_counters(service, rows)
    payload = {
        "bench": "serve_audit",
        "schema": 1,
        "dataset": "german (synthetic generator)",
        "rows": args.rows,
        "n_particles": args.particles,
        "batch_size": args.batch_size,
        "pack_s": pack_s,
        "bundle_load_s": load_s,
        "machine": {
            "python": platform.python_version(),
            "numpy": np.__version__,
            "platform": platform.platform(),
        },
        "results": {"one_row": one_row, "batch": batch},
        "traced_counters": counters,
    }
    args.out.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {args.out}")

    if args.assert_no_regression is not None:
        problems = check_regression(payload, args.assert_no_regression,
                                    args.regression_slack)
        if problems:
            raise SystemExit("PERF REGRESSION vs "
                             f"{args.assert_no_regression}:\n  "
                             + "\n  ".join(problems))
        print(f"no regression vs {args.assert_no_regression} "
              f"(slack {args.regression_slack:.0%})")


if __name__ == "__main__":
    main()
