"""Figure 8 (and Appendix Figure 24): efficiency and scalability.

Two sweeps on Adult, as in the paper: runtime overhead (fit time minus
the plain-LR fit time) as (a-c) the number of data points grows and
(d-f) the number of attributes grows.  One runtime table per stage is
printed; the log-scale "who is slowest" ordering is the shape under
test.

Runs through the sweep engine: each sweep is a declarative grid (rows
or feature-count axis × approaches + baseline) and the overhead
subtraction is the engine's ``overhead_series`` pivot over the
recorded per-cell fit times.  Causal sampling is dialed down because
only fit time feeds the figure.
"""

from common import FULL, emit, once, run_grid
from repro.api import SweepSpec
from repro.engine import overhead_series
from repro.fairness import Stage
from repro.pipeline import format_runtime_table
from repro.registry import APPROACHES, parse_spec

ROW_SWEEP = ([1000, 5000, 10000, 20000, 31000] if FULL
             else [500, 1000, 2000, 4000])
ATTR_SWEEP = [2, 4, 6, 8, 9]

#: Monte-Carlo samples for the (unreported) causal metrics of each
#: cell — kept tiny so the sweep time is the fit time.
EVAL_SAMPLES = 200

#: Representative per-stage selections (all variants when FULL).
SWEEP_APPROACHES = APPROACHES.keys() if FULL else [
    "KamCal-dp", "Feld-dp", "Calmon-dp", "ZhaWu-psf", "Salimi-jf-maxsat",
    "Salimi-jf-matfac",
    "Zafar-dp-fair", "ZhaLe-eo", "Kearns-pe", "Celis-pp", "Thomas-dp",
    "KamKar-dp", "Hardt-eo", "Pleiss-eop",
]

#: The engine's protocol fits on the 70% train split, so each sweep
#: point loads enough rows that the *training* size equals the figure's
#: label (the paper's axis is training-set size).
TEST_FRACTION = 0.3


def _loaded_size(train_size: int) -> int:
    return round(train_size / (1.0 - TEST_FRACTION))


def sweep_rows() -> dict[str, dict[int, float]]:
    loaded = {_loaded_size(n): n for n in ROW_SWEEP}
    spec = SweepSpec(
        datasets=["adult"],
        approaches=[None, *SWEEP_APPROACHES],
        rows=list(loaded),
        causal_samples=EVAL_SAMPLES,
        test_fraction=TEST_FRACTION,
        seeds=[0],
    )
    series = overhead_series(run_grid(spec.to_grid()).outcomes,
                             sweep="rows")
    return {approach: {loaded[rows]: seconds
                       for rows, seconds in points.items()}
            for approach, points in series.items()}


def sweep_attributes() -> dict[str, dict[int, float]]:
    spec = SweepSpec(
        datasets=["adult"],
        approaches=[None, *SWEEP_APPROACHES],
        rows=[_loaded_size(ROW_SWEEP[-1])],
        feature_counts=ATTR_SWEEP,
        causal_samples=EVAL_SAMPLES,
        test_fraction=TEST_FRACTION,
        seeds=[0],
    )
    return overhead_series(run_grid(spec.to_grid()).outcomes,
                           sweep="n_features")


def _stage_tables(series: dict[str, dict[int, float]], sweep_label: str,
                  figure: str) -> str:
    blocks = []
    for stage in (Stage.PRE, Stage.IN, Stage.POST):
        rows = [(name, values) for name, values in series.items()
                if APPROACHES.get(parse_spec(name)[0])
                .metadata["stage"] is stage]
        if rows:
            blocks.append(format_runtime_table(
                rows, sweep_label=sweep_label,
                title=f"{figure} [{stage.value}] overhead seconds over LR"))
    return "\n\n".join(blocks)


def test_fig08_rows(benchmark):
    series = once(benchmark, sweep_rows)
    emit("fig08_rows", _stage_tables(series, "#rows", "Figure 8(a-c)"))


def test_fig08_attributes(benchmark):
    series = once(benchmark, sweep_attributes)
    emit("fig08_attrs", _stage_tables(series, "#attrs", "Figure 8(d-f)"))
