"""Figure 8 (and Appendix Figure 24): efficiency and scalability.

Two sweeps on Adult, exactly as in the paper: runtime overhead (total
fit time minus the plain-LR fit time) as (a-c) the number of data
points grows and (d-f) the number of attributes grows.  One runtime
table per stage is printed; the log-scale "who is slowest" ordering is
the shape under test.
"""

import numpy as np
import pytest

from common import FULL, emit, once
from repro.datasets import load_adult
from repro.fairness import Stage, make_approach
from repro.fairness.registry import ALL_APPROACHES
from repro.pipeline import FairPipeline, format_runtime_table

ROW_SWEEP = ([1000, 5000, 10000, 20000, 31000] if FULL
             else [500, 1000, 2000, 4000])
ATTR_SWEEP = [2, 4, 6, 8, 9]

#: Representative per-stage selections (all variants when FULL).
SWEEP_APPROACHES = list(ALL_APPROACHES) if FULL else [
    "KamCal-dp", "Feld-dp", "Calmon-dp", "ZhaWu-psf", "Salimi-jf-maxsat",
    "Salimi-jf-matfac",
    "Zafar-dp-fair", "ZhaLe-eo", "Kearns-pe", "Celis-pp", "Thomas-dp",
    "KamKar-dp", "Hardt-eo", "Pleiss-eop",
]


def _overhead(approach_name: str, train) -> float:
    baseline = FairPipeline().fit(train).fit_seconds_
    pipeline = FairPipeline(make_approach(approach_name, seed=0), seed=0)
    pipeline.fit(train)
    return max(pipeline.fit_seconds_ - baseline, 0.0)


def sweep_rows() -> dict[str, dict[int, float]]:
    dataset = load_adult(max(ROW_SWEEP), seed=0)
    series: dict[str, dict[int, float]] = {n: {} for n in SWEEP_APPROACHES}
    for n_rows in ROW_SWEEP:
        train = dataset.head(n_rows)
        for name in SWEEP_APPROACHES:
            series[name][n_rows] = _overhead(name, train)
    return series


def sweep_attributes() -> dict[str, dict[int, float]]:
    dataset = load_adult(ROW_SWEEP[-1], seed=0)
    series: dict[str, dict[int, float]] = {n: {} for n in SWEEP_APPROACHES}
    for n_attrs in ATTR_SWEEP:
        train = dataset.select_features(dataset.feature_names[:n_attrs])
        for name in SWEEP_APPROACHES:
            series[name][n_attrs] = _overhead(name, train)
    return series


def _stage_tables(series: dict[str, dict[int, float]], sweep_label: str,
                  figure: str) -> str:
    blocks = []
    for stage in (Stage.PRE, Stage.IN, Stage.POST):
        rows = [(name, values) for name, values in series.items()
                if make_approach(name).stage is stage]
        if rows:
            blocks.append(format_runtime_table(
                rows, sweep_label=sweep_label,
                title=f"{figure} [{stage.value}] overhead seconds over LR"))
    return "\n\n".join(blocks)


def test_fig08_rows(benchmark):
    series = once(benchmark, sweep_rows)
    emit("fig08_rows", _stage_tables(series, "#rows", "Figure 8(a-c)"))


def test_fig08_attributes(benchmark):
    series = once(benchmark, sweep_attributes)
    emit("fig08_attrs", _stage_tables(series, "#attrs", "Figure 8(d-f)"))
