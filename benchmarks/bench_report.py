"""Perf benchmark: report compilation over the result-store backends.

Fills a file cache and a SQLite cache with the same synthetic sweep
(deterministic results derived from each cell's fingerprint — no
model fitting, so the numbers isolate store and report costs), then
measures the report surface both ways:

* **load-outcomes** — materializing every cell as a ``JobOutcome``
  (what ``repro report`` tables consume).  The file path stats and
  parses one JSON shard per cell; the SQL path scans one table.
* **pivot** — ``approach × rows`` pivot of one metric.  In-memory on
  the file cache; compiled to SQL (``GROUP BY`` + a ``ROW_NUMBER()``
  window, exact-``repr`` value transport) on the SQLite cache, where
  it never materializes outcomes at all.
* **where-filter** — a one-axis ``--where`` selection; pushed down
  into the SQL row scan on the SQLite cache.

Results go to ``BENCH_report.json`` — the repo's perf-trajectory
record for this path — with the ``store.rows`` counter from an
instrumented fill embedded for the CI counter gate.

Run:  PYTHONPATH=src python benchmarks/bench_report.py
      (--cells 120 --out BENCH_report.ci.json for the CI smoke
      variant)

``--assert-no-regression BASELINE.json`` holds the SQL pivot and both
load rates to ``--regression-slack`` of the committed baseline's,
gated on a matching cell count so a configuration drift is skipped
loudly rather than compared meaninglessly.  A violation exits
non-zero so CI fails.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import platform
import time

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
DEFAULT_OUT = REPO_ROOT / "BENCH_report.json"


def timed(fn):
    start = time.perf_counter()
    out = fn()
    return time.perf_counter() - start, out


def synth_result(job):
    from repro.pipeline import EvaluationResult

    seed = int(job.fingerprint[:12], 16)

    def v(shift: int) -> float:
        return ((seed >> shift) % 997) / 997.0

    return EvaluationResult(
        approach=job.approach_label, dataset=job.dataset, stage="bench",
        accuracy=v(0), precision=v(3), recall=v(5), f1=v(7),
        di_star=v(9), tprb=v(11), tnrb=v(13), id=v(15), te=v(17),
        nde=v(19), nie=v(21), raw={"di": v(2)},
        fit_seconds=0.05 + v(6))


def grid_jobs(cells: int):
    """A grid of at least ``cells`` cells (seeds × approaches × rows),
    truncated to exactly ``cells``."""
    from repro.engine import ScenarioGrid

    approaches = [None, "Hardt-eo", "Feld-dp", "Celis-pp"]
    rows = [300, 600, 1200]
    seeds = list(range(max(1, -(-cells // (len(approaches)
                                           * len(rows))))))
    grid = ScenarioGrid(datasets=["german"], approaches=approaches,
                        seeds=seeds, rows=rows, causal_samples=200)
    return grid.expand()[:cells]


def fill(cache, jobs) -> float:
    from repro import obs

    with obs.recording() as rec:
        elapsed, _ = timed(lambda: [cache.put(job, synth_result(job))
                                    for job in jobs])
    assert rec.counters.get("store.rows") == len(jobs)
    return elapsed


def bench_cache(cache, jobs, repeats: int) -> dict:
    """Load/pivot/filter wall times for one backend (best of
    ``repeats``, so a cold page cache or a GC pause does not write the
    record)."""
    def best(fn):
        return min(timed(fn)[0] for _ in range(repeats))

    load_s = best(lambda: cache.outcomes())
    pivot_s = best(lambda: cache.pivot(index="approach", columns="rows",
                                       value="accuracy"))
    where_s = best(lambda: cache.outcomes(where={"seed": 0}))
    n = len(jobs)
    return {
        "load_outcomes_s": round(load_s, 4),
        "load_cells_per_s": round(n / load_s, 1),
        "pivot_s": round(pivot_s, 4),
        "pivot_cells_per_s": round(n / pivot_s, 1),
        "where_filter_s": round(where_s, 4),
    }


def check_regression(payload: dict, baseline_path: pathlib.Path,
                     slack: float) -> list[str]:
    """Rate floors vs a baseline record, gated on the cell count."""
    baseline_payload = json.loads(baseline_path.read_text())
    if baseline_payload.get("cells") != payload.get("cells"):
        print("note: report rate checks skipped — run/baseline cell "
              f"counts differ (run {payload.get('cells')} vs baseline "
              f"{baseline_payload.get('cells')})")
        return []
    problems = []
    pairs = (("sqlite", "pivot_cells_per_s"),
             ("sqlite", "load_cells_per_s"),
             ("file", "load_cells_per_s"))
    for backend, rate in pairs:
        current = payload["results"][backend][rate]
        reference = baseline_payload["results"][backend][rate]
        floor = reference * slack
        if current < floor:
            problems.append(
                f"{backend}: {rate} {current:.0f} is below "
                f"{slack:.0%} of the baseline's {reference:.0f}")
    return problems


def main(argv: list[str] | None = None) -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--cells", type=int, default=600,
                        help="synthetic sweep cells per backend")
    parser.add_argument("--repeats", type=int, default=3,
                        help="timing repeats (best-of)")
    parser.add_argument("--out", type=pathlib.Path, default=DEFAULT_OUT)
    parser.add_argument("--assert-no-regression", type=pathlib.Path,
                        default=None, metavar="BASELINE",
                        help="fail if report rates fall below "
                             "--regression-slack of this record's")
    parser.add_argument("--regression-slack", type=float, default=0.4,
                        help="fraction of the baseline rate that must "
                             "be retained (default 0.4)")
    args = parser.parse_args(argv)

    import tempfile

    from repro.engine import ResultCache

    jobs = grid_jobs(args.cells)
    print(f"filling both stores with {len(jobs)} synthetic cells ...",
          flush=True)
    results = {}
    with tempfile.TemporaryDirectory() as tmp:
        stores = {
            "file": ResultCache(pathlib.Path(tmp) / "cache"),
            "sqlite": ResultCache(
                f"sqlite:{pathlib.Path(tmp) / 'cells.db'}"),
        }
        fill_s = {name: fill(cache, jobs)
                  for name, cache in stores.items()}
        parity = None
        for name, cache in stores.items():
            stats = bench_cache(cache, jobs, args.repeats)
            stats["fill_s"] = round(fill_s[name], 4)
            results[name] = stats
            print(f"  {name:>6}: fill {stats['fill_s']:.2f}s  "
                  f"load {stats['load_cells_per_s']:.0f} cells/s  "
                  f"pivot {stats['pivot_cells_per_s']:.0f} cells/s",
                  flush=True)
            table = cache.pivot(index="approach", columns="rows",
                                value="accuracy")
            if parity is None:
                parity = table
            assert table == parity, "backends disagree on the pivot"

    payload = {
        "bench": "report_backends",
        "schema": 1,
        "cells": len(jobs),
        "repeats": args.repeats,
        "machine": {
            "python": platform.python_version(),
            "platform": platform.platform(),
        },
        "results": results,
    }
    args.out.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {args.out}")

    if args.assert_no_regression is not None:
        problems = check_regression(payload, args.assert_no_regression,
                                    args.regression_slack)
        if problems:
            raise SystemExit("PERF REGRESSION vs "
                             f"{args.assert_no_regression}:\n  "
                             + "\n  ".join(problems))
        print(f"no regression vs {args.assert_no_regression} "
              f"(slack {args.regression_slack:.0%})")


if __name__ == "__main__":
    main()
