"""Extension: how redundant are the fairness metrics, empirically?

Section 2.2.2 justifies evaluating only five fairness metrics by citing
prior findings that "a large number of metrics (and their notions)
strongly correlate with one another, and, thus, are highly redundant"
[Friedler et al.; Majumder et al.].  This bench verifies that premise
on this repository's own results: it evaluates every approach on every
dataset, collects the seven normalised fairness scores per run, and
prints the Pearson correlation matrix plus the strongly
correlated/anti-correlated pairs.

Shape under test: the two equalized-odds components (1-|TPRB| and
1-|TNRB|) and the causal trio (1-|TE|/|NDE|/|NIE|) form correlated
blocks, while DI* and 1-ID carry independent signal — exactly the
redundancy structure the paper's metric selection assumes.
"""

import numpy as np

from common import CAUSAL_SAMPLES, emit, load_sized, once
from repro.datasets import train_test_split
from repro.fairness import MAIN_APPROACHES
from repro.pipeline import run_experiment

METRICS = ["di_star", "tprb", "tnrb", "id", "te", "nde", "nie"]


def run_correlation() -> str:
    rows = []
    for dataset_name in ("compas", "german"):
        split = train_test_split(load_sized(dataset_name), seed=0)
        for name in (None, *MAIN_APPROACHES):
            r = run_experiment(name, split.train, split.test,
                               causal_samples=CAUSAL_SAMPLES, seed=0)
            rows.append([r.fairness_scores()[m] for m in METRICS])
    matrix = np.asarray(rows)
    corr = np.corrcoef(matrix, rowvar=False)

    lines = [f"Fairness-metric correlations over "
             f"{matrix.shape[0]} (approach × dataset) runs",
             "        " + " ".join(f"{m:>7}" for m in METRICS)]
    for i, metric in enumerate(METRICS):
        lines.append(f"{metric:<7} " + " ".join(
            f"{corr[i, j]:>7.2f}" for j in range(len(METRICS))))

    lines.append("")
    lines.append("strongly correlated pairs (|r| >= 0.6):")
    for i in range(len(METRICS)):
        for j in range(i + 1, len(METRICS)):
            if abs(corr[i, j]) >= 0.6:
                lines.append(f"  {METRICS[i]} ~ {METRICS[j]}: "
                             f"r={corr[i, j]:+.2f}")
    return "\n".join(lines)


def test_ablation_metric_correlation(benchmark):
    emit("ablation_metric_correlation", once(benchmark, run_correlation))
