"""Appendix Figure 22: stability over random train/test folds.

Each variant runs 10 times on random 2/3-train folds of Adult; the
bench prints the per-metric standard deviations (the whisker widths of
the paper's box plots).  The shape under test: variances are small and
no stage stands out."""

import numpy as np

from common import CAUSAL_SAMPLES, FULL, emit, load_sized, once
from repro.datasets import train_test_split
from repro.fairness.registry import ALL_APPROACHES, MAIN_APPROACHES
from repro.pipeline import run_experiment

N_FOLDS = 10 if FULL else 5
APPROACHES = list(ALL_APPROACHES) if FULL else [
    "KamCal-dp", "Feld-dp", "Calmon-dp", "ZhaWu-psf", "Salimi-jf-maxsat",
    "Zafar-dp-fair", "Zafar-eo-fair", "ZhaLe-eo", "Kearns-pe", "Celis-pp",
    "Thomas-dp", "KamKar-dp", "Hardt-eo", "Pleiss-eop",
]
COLUMNS = ("accuracy", "f1", "di_star", "tprb", "id", "te")


def run_stability() -> str:
    dataset = load_sized("adult")
    lines = ["Figure 22: std-dev over random 2/3 train folds (Adult)"]
    header = " ".join(f"σ{c:>8s}" for c in COLUMNS)
    lines.append(f"{'approach':18s} {header}")
    lines.append("-" * (19 + 10 * len(COLUMNS)))
    for name in (None, *APPROACHES):
        values = {c: [] for c in COLUMNS}
        for fold in range(N_FOLDS):
            split = train_test_split(dataset, test_fraction=1 / 3,
                                     seed=fold)
            r = run_experiment(name, split.train, split.test,
                               causal_samples=CAUSAL_SAMPLES, seed=fold)
            merged = {**r.correctness_scores(), **r.fairness_scores()}
            for c in COLUMNS:
                values[c].append(merged[c])
        row = " ".join(
            f"{np.nanstd(np.array(values[c], dtype=float)):9.3f}"
            for c in COLUMNS)
        lines.append(f"{(name or 'LR'):18s} {row}")
    return "\n".join(lines)


def test_fig22(benchmark):
    emit("fig22_stability", once(benchmark, run_stability))
