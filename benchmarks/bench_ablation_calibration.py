"""Ablation: Pleiss's calibration assumption, made explicit.

Pleiss et al. assume the underlying classifier is *calibrated* before
their randomised TPR-equalising mix is applied.  This ablation wires
the repository's calibration module into the pipeline: the downstream
model is (a) raw logistic regression, (b) Platt-scaled, (c)
isotonic-calibrated, and for each we report the model's expected
calibration error next to Pleiss's resulting accuracy and fairness.

Shape under test: logistic regression is already nearly calibrated on
this data (Platt/isotonic change little), while a deliberately
over-confident model (naive Bayes) shows a large ECE drop from
calibration and a visible effect on Pleiss's achieved TPR balance.
"""

from common import CAUSAL_SAMPLES, emit, load_sized, once
from repro.fairness.postprocessing import Pleiss
from repro.models import (CalibratedClassifier, GaussianNB,
                          LogisticRegression,
                          expected_calibration_error)
from repro.datasets import train_test_split
from repro.pipeline import FairPipeline, evaluate_pipeline

MODELS = {
    "lr-raw": lambda: LogisticRegression(),
    "lr-platt": lambda: CalibratedClassifier(LogisticRegression(),
                                             method="platt"),
    "nb-raw": lambda: GaussianNB(),
    "nb-platt": lambda: CalibratedClassifier(GaussianNB(), method="platt"),
    "nb-isotonic": lambda: CalibratedClassifier(GaussianNB(),
                                                method="isotonic"),
}


def run_ablation() -> str:
    dataset = load_sized("compas")
    split = train_test_split(dataset, seed=0)
    lines = ["Ablation: calibration of the model under Pleiss (COMPAS)",
             f"{'model':<12} {'ECE':>6} {'acc':>6} {'1-|TPRB|':>9} "
             f"{'DI*':>6}"]
    for name, factory in MODELS.items():
        pipe = FairPipeline(Pleiss(), model=factory(), seed=0)
        pipe.fit(split.train)
        scores = pipe.predict_proba(split.test)
        ece = expected_calibration_error(split.test.y, scores)
        r = evaluate_pipeline(pipe, split.test,
                              causal_samples=CAUSAL_SAMPLES)
        lines.append(f"{name:<12} {ece:>6.3f} {r.accuracy:>6.3f} "
                     f"{r.tprb:>9.3f} {r.di_star:>6.3f}")
    return "\n".join(lines)


def test_ablation_calibration(benchmark):
    emit("ablation_calibration", once(benchmark, run_ablation))
