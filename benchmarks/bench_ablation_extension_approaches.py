"""Extension approaches vs their closest evaluated counterparts.

The three extension variants each mirror a mechanism family from the
paper's evaluated set:

* CaldersVerwer (massaging, label flips)  ↔  KamCal (reweighed rows);
* Kamishima (MI regulariser)              ↔  Zafar-dp (covariance
  constraint);
* OmniFair (declarative thresholds)       ↔  KamKar (reject-option).

This bench runs each pair on COMPAS so the paper's Figure-5 taxonomy
can be extended with measured placements: the extension approaches
should land in the same accuracy/fairness region as their family, with
the mechanism differences visible in the secondary metrics (e.g.
massaging keeps more recall than resampling; thresholding is
deterministic where the reject-option is randomised).
"""

from common import CAUSAL_SAMPLES, emit, load_sized, once
from repro.datasets import train_test_split
from repro.pipeline import run_experiment

PAIRS = (
    ("KamCal-dp", "CaldersVerwer-dp"),
    ("Zafar-dp-fair", "Kamishima-pr"),
    ("KamKar-dp", "OmniFair-dp"),
)


def run_pairs() -> str:
    dataset = load_sized("compas")
    split = train_test_split(dataset, seed=0)
    lines = ["Extension approaches vs evaluated counterparts (COMPAS)",
             f"{'approach':<18} {'acc':>6} {'recall':>7} {'DI*':>6} "
             f"{'1-|TPRB|':>9} {'1-ID':>6}"]
    baseline = run_experiment(None, split.train, split.test,
                              causal_samples=CAUSAL_SAMPLES, seed=0)
    lines.append(f"{'LR baseline':<18} {baseline.accuracy:>6.3f} "
                 f"{baseline.recall:>7.3f} {baseline.di_star:>6.3f} "
                 f"{baseline.tprb:>9.3f} {baseline.id:>6.3f}")
    for main_name, extension_name in PAIRS:
        for name in (main_name, extension_name):
            r = run_experiment(name, split.train, split.test,
                               causal_samples=CAUSAL_SAMPLES, seed=0)
            lines.append(f"{name:<18} {r.accuracy:>6.3f} {r.recall:>7.3f} "
                         f"{r.di_star:>6.3f} {r.tprb:>9.3f} {r.id:>6.3f}")
        lines.append("")
    return "\n".join(lines).rstrip()


def test_ablation_extension_approaches(benchmark):
    emit("ablation_extension_approaches", once(benchmark, run_pairs))
