"""Identification of causal effects from observational data.

The paper's causal metrics assume the sensitive attribute is a root of
the causal graph (true for its Adult/COMPAS/German graphs), in which
case ``P(Y | do(S)) = P(Y | S)``.  A production causal-fairness library
must also handle graphs where that shortcut fails.  This module
implements the two classic graphical identification strategies:

* the **backdoor criterion** — find a covariate set ``Z`` that contains
  no descendant of the treatment and blocks every path into the
  treatment; then ``P(y | do(x)) = Σ_z P(z) P(y | x, z)``;
* the **frontdoor criterion** — find a mediator set ``Z`` intercepting
  all directed treatment→outcome paths with the appropriate
  unconfoundedness conditions; then
  ``P(y | do(x)) = Σ_z P(z | x) Σ_x' P(x') P(y | x', z)``.

plus helpers for enumerating minimal adjustment sets, detecting
instrumental variables, and computing the adjusted estimates on
discrete data.
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping
from dataclasses import dataclass
from itertools import combinations

import numpy as np

from .graph import CausalGraph

__all__ = [
    "Identification",
    "is_backdoor_set",
    "backdoor_sets",
    "is_frontdoor_set",
    "frontdoor_sets",
    "instruments",
    "identify_effect",
    "backdoor_estimate",
    "frontdoor_estimate",
    "interventional_distribution",
]


@dataclass(frozen=True)
class Identification:
    """A resolved identification strategy for ``P(outcome | do(treatment))``.

    Attributes
    ----------
    strategy:
        One of ``"root"`` (treatment has no parents; condition
        directly), ``"backdoor"``, ``"frontdoor"``, or ``"none"``.
    adjustment:
        The covariate / mediator set used by the strategy (empty for
        ``"root"`` and ``"none"``).
    """

    strategy: str
    adjustment: frozenset[str]

    @property
    def identified(self) -> bool:
        """Whether the effect is identified by this strategy."""
        return self.strategy != "none"


def _candidates(graph: CausalGraph, treatment: str, outcome: str
                ) -> list[str]:
    """Observed nodes usable in an adjustment set."""
    banned = graph.descendants(treatment) | {treatment, outcome}
    return sorted(n for n in graph.nodes if n not in banned)


def _graph_without_outgoing(graph: CausalGraph, node: str) -> CausalGraph:
    """Copy of the graph with all edges out of ``node`` removed."""
    return graph.without_edges(
        [(node, child) for child in graph.children(node)])


def is_backdoor_set(graph: CausalGraph, treatment: str, outcome: str,
                    adjustment: Iterable[str]) -> bool:
    """Check Pearl's backdoor criterion for ``adjustment``.

    ``adjustment`` must (1) contain no descendant of ``treatment`` and
    (2) d-separate treatment from outcome in the graph with treatment's
    outgoing edges removed.
    """
    z = set(adjustment)
    if treatment in z or outcome in z:
        return False
    if z & graph.descendants(treatment):
        return False
    stripped = _graph_without_outgoing(graph, treatment)
    return stripped.d_separated(treatment, outcome, z)


def backdoor_sets(graph: CausalGraph, treatment: str, outcome: str,
                  max_size: int | None = None
                  ) -> list[frozenset[str]]:
    """Enumerate all *minimal* backdoor adjustment sets.

    A set is minimal if no proper subset also satisfies the criterion.
    Sets are returned smallest-first; ``max_size`` caps the search.
    """
    pool = _candidates(graph, treatment, outcome)
    limit = len(pool) if max_size is None else min(max_size, len(pool))
    found: list[frozenset[str]] = []
    for size in range(limit + 1):
        for combo in combinations(pool, size):
            z = frozenset(combo)
            if any(prev <= z for prev in found):
                continue  # a subset already works; z is not minimal
            if is_backdoor_set(graph, treatment, outcome, z):
                found.append(z)
    return found


def is_frontdoor_set(graph: CausalGraph, treatment: str, outcome: str,
                     mediators: Iterable[str]) -> bool:
    """Check Pearl's frontdoor criterion for ``mediators``.

    Requires: (1) the mediators intercept every directed
    treatment→outcome path, (2) there is no unblocked backdoor path
    from treatment to the mediators, and (3) all backdoor paths from
    the mediators to the outcome are blocked by the treatment.
    """
    z = set(mediators)
    if not z or treatment in z or outcome in z:
        return False
    for path in graph.directed_paths(treatment, outcome):
        if not z & set(path[1:-1]):
            return False
    # (2): in the graph with treatment's outgoing edges removed, any
    # remaining treatment–mediator dependence is a backdoor path.
    stripped_t = _graph_without_outgoing(graph, treatment)
    if not stripped_t.d_separated(treatment, z, ()):
        return False
    # (3): remove the mediators' outgoing edges; treatment must block
    # the remaining mediator–outcome paths.
    stripped_z = graph
    for m in z:
        stripped_z = _graph_without_outgoing(stripped_z, m)
    return stripped_z.d_separated(z, outcome, {treatment})


def frontdoor_sets(graph: CausalGraph, treatment: str, outcome: str,
                   max_size: int | None = None) -> list[frozenset[str]]:
    """Enumerate minimal frontdoor mediator sets, smallest-first."""
    pool = sorted(graph.mediators(treatment, outcome))
    limit = len(pool) if max_size is None else min(max_size, len(pool))
    found: list[frozenset[str]] = []
    for size in range(1, limit + 1):
        for combo in combinations(pool, size):
            z = frozenset(combo)
            if any(prev <= z for prev in found):
                continue
            if is_frontdoor_set(graph, treatment, outcome, z):
                found.append(z)
    return found


def instruments(graph: CausalGraph, treatment: str, outcome: str
                ) -> list[str]:
    """Nodes usable as instrumental variables for treatment → outcome.

    A node ``I`` qualifies when it is d-connected to the treatment, is
    not a descendant of it, and is d-separated from the outcome once
    the treatment's outgoing edges are removed (its only route to the
    outcome is *through* the treatment).
    """
    stripped = _graph_without_outgoing(graph, treatment)
    banned = graph.descendants(treatment) | {treatment, outcome}
    out = []
    for node in graph.nodes:
        if node in banned:
            continue
        connected = not graph.d_separated(node, treatment, ())
        clean = stripped.d_separated(node, outcome, ())
        if connected and clean:
            out.append(node)
    return sorted(out)


def identify_effect(graph: CausalGraph, treatment: str, outcome: str,
                    max_size: int | None = None) -> Identification:
    """Pick an identification strategy for ``P(outcome | do(treatment))``.

    Preference order: root shortcut, then the smallest backdoor set,
    then the smallest frontdoor set, else ``"none"``.  ``max_size``
    bounds the *backdoor* search (0 disables covariate adjustment
    entirely); the frontdoor search is unbounded since its sets are
    usually tiny.
    """
    if not graph.parents(treatment):
        return Identification(strategy="root", adjustment=frozenset())
    back = backdoor_sets(graph, treatment, outcome, max_size=max_size)
    if back:
        return Identification(strategy="backdoor", adjustment=back[0])
    front = frontdoor_sets(graph, treatment, outcome)
    if front:
        return Identification(strategy="frontdoor", adjustment=front[0])
    return Identification(strategy="none", adjustment=frozenset())


# ----------------------------------------------------------------------
# Discrete adjustment estimators
# ----------------------------------------------------------------------
def _row_keys(columns: list[np.ndarray]) -> np.ndarray:
    if not columns:
        raise ValueError("need at least one column to build row keys")
    matrix = np.column_stack(columns)
    _, inverse = np.unique(matrix, axis=0, return_inverse=True)
    return inverse


def _mean_where(y: np.ndarray, mask: np.ndarray, fallback: float) -> float:
    return float(np.mean(y[mask])) if np.any(mask) else fallback


def backdoor_estimate(columns: Mapping[str, np.ndarray], treatment: str,
                      outcome: str, adjustment: Iterable[str],
                      treatment_value: float) -> float:
    """``P(outcome=1 | do(treatment=v))`` via the adjustment formula.

    All columns are treated as small discrete variables; cells with no
    support fall back to the marginal outcome mean.
    """
    x = np.asarray(columns[treatment], dtype=float)
    y = np.asarray(columns[outcome], dtype=float)
    z_names = sorted(adjustment)
    fallback = float(np.mean(y))
    if not z_names:
        return _mean_where(y, x == treatment_value, fallback)
    keys = _row_keys([np.asarray(columns[z], dtype=float) for z in z_names])
    total = 0.0
    for key in np.unique(keys):
        z_mask = keys == key
        p_z = float(np.mean(z_mask))
        cell = z_mask & (x == treatment_value)
        total += p_z * _mean_where(y, cell, fallback)
    return total


def frontdoor_estimate(columns: Mapping[str, np.ndarray], treatment: str,
                       outcome: str, mediators: Iterable[str],
                       treatment_value: float) -> float:
    """``P(outcome=1 | do(treatment=v))`` via the frontdoor formula."""
    x = np.asarray(columns[treatment], dtype=float)
    y = np.asarray(columns[outcome], dtype=float)
    m_names = sorted(mediators)
    if not m_names:
        raise ValueError("frontdoor estimation needs at least one mediator")
    keys = _row_keys([np.asarray(columns[m], dtype=float) for m in m_names])
    fallback = float(np.mean(y))
    x_values, x_counts = np.unique(x, return_counts=True)
    p_x = x_counts / x_counts.sum()
    treated = x == treatment_value
    if not np.any(treated):
        raise ValueError(f"no rows with {treatment}={treatment_value}")
    total = 0.0
    for key in np.unique(keys):
        z_mask = keys == key
        p_z_given_x = float(np.mean(z_mask[treated]))
        inner = 0.0
        for xv, pxv in zip(x_values, p_x):
            cell = z_mask & (x == xv)
            inner += pxv * _mean_where(y, cell, fallback)
        total += p_z_given_x * inner
    return total


def interventional_distribution(columns: Mapping[str, np.ndarray],
                                graph: CausalGraph, treatment: str,
                                outcome: str, treatment_value: float,
                                max_size: int | None = None) -> float:
    """Identify and estimate ``P(outcome=1 | do(treatment=v))``.

    Raises
    ------
    ValueError
        If the effect is not identified by the root / backdoor /
        frontdoor strategies on this graph.
    """
    ident = identify_effect(graph, treatment, outcome, max_size=max_size)
    if ident.strategy in ("root", "backdoor"):
        return backdoor_estimate(columns, treatment, outcome,
                                 ident.adjustment, treatment_value)
    if ident.strategy == "frontdoor":
        return frontdoor_estimate(columns, treatment, outcome,
                                  ident.adjustment, treatment_value)
    raise ValueError(
        f"effect of {treatment!r} on {outcome!r} is not identified "
        "by backdoor or frontdoor on this graph"
    )
