"""Causal graphs: directed acyclic graphs over attribute names.

``CausalGraph`` wraps a :mod:`networkx` DiGraph and exposes the graph
queries the fairness layer needs: parents/ancestors, directed paths,
d-separation, and the mediator sets used by the mediation formulas of
the natural direct/indirect effects.
"""

from __future__ import annotations

from collections.abc import Iterable

import networkx as nx


class CausalGraph:
    """A DAG over named attributes.

    Parameters
    ----------
    edges:
        Iterable of ``(cause, effect)`` pairs.
    nodes:
        Optional extra isolated nodes.

    Raises
    ------
    ValueError
        If the resulting directed graph has a cycle.
    """

    def __init__(self, edges: Iterable[tuple[str, str]],
                 nodes: Iterable[str] = ()):
        g = nx.DiGraph()
        g.add_nodes_from(nodes)
        g.add_edges_from(edges)
        if not nx.is_directed_acyclic_graph(g):
            cycle = nx.find_cycle(g)
            raise ValueError(f"causal graph must be acyclic; found cycle {cycle}")
        self._g = g
        # The graph is immutable after construction, so structural
        # queries memoise; the SCM hot paths (evaluate/abduct) ask for
        # the same parent and descendant sets on every call.
        self._parents: dict[str, tuple[str, ...]] = {}
        self._descendants: dict[str, frozenset[str]] = {}

    # ------------------------------------------------------------------
    @property
    def nodes(self) -> list[str]:
        return list(self._g.nodes)

    @property
    def edges(self) -> list[tuple[str, str]]:
        return list(self._g.edges)

    def __contains__(self, node: str) -> bool:
        return node in self._g

    def parents(self, node: str) -> list[str]:
        cached = self._parents.get(node)
        if cached is None:
            cached = tuple(sorted(self._g.predecessors(node)))
            self._parents[node] = cached
        return list(cached)

    def children(self, node: str) -> list[str]:
        return sorted(self._g.successors(node))

    def ancestors(self, node: str) -> set[str]:
        return set(nx.ancestors(self._g, node))

    def descendants(self, node: str) -> set[str]:
        cached = self._descendants.get(node)
        if cached is None:
            cached = frozenset(nx.descendants(self._g, node))
            self._descendants[node] = cached
        return set(cached)

    def topological_order(self) -> list[str]:
        """Nodes in an order where every cause precedes its effects."""
        return list(nx.topological_sort(self._g))

    # ------------------------------------------------------------------
    # Path queries
    # ------------------------------------------------------------------
    def directed_paths(self, source: str, target: str) -> list[list[str]]:
        """All directed paths from ``source`` to ``target``."""
        return [list(p) for p in nx.all_simple_paths(self._g, source, target)]

    def has_directed_path(self, source: str, target: str) -> bool:
        return nx.has_path(self._g, source, target)

    def mediators(self, source: str, target: str) -> set[str]:
        """Nodes on some directed path from source to target (exclusive).

        These are the ``Z`` of the paper's NDE/NIE definitions: the
        attributes carrying indirect causal influence of ``S`` on the
        outcome.
        """
        out: set[str] = set()
        for path in self.directed_paths(source, target):
            out.update(path[1:-1])
        return out

    def confounders(self, a: str, b: str) -> set[str]:
        """Common ancestors of ``a`` and ``b`` (potential confounders)."""
        return self.ancestors(a) & self.ancestors(b)

    # ------------------------------------------------------------------
    # d-separation
    # ------------------------------------------------------------------
    def d_separated(self, x: Iterable[str] | str, y: Iterable[str] | str,
                    given: Iterable[str] = ()) -> bool:
        """True if every path between ``x`` and ``y`` is blocked by ``given``."""
        xs = {x} if isinstance(x, str) else set(x)
        ys = {y} if isinstance(y, str) else set(y)
        return nx.is_d_separator(self._g, xs, ys, set(given))

    def blocking_parents(self, source: str, target: str) -> list[str]:
        """Parents of ``target`` that block all *indirect* directed paths
        from ``source`` to ``target``.

        This is the set ``Q`` used by Zha-Wu's direct-causal-effect
        repair: every directed path ``source → … → target`` of length
        at least 2 must pass through one of the returned parents.
        """
        parents = set(self.parents(target)) - {source}
        needed: set[str] = set()
        for path in self.directed_paths(source, target):
            if len(path) <= 2:
                continue  # the direct edge, not an indirect path
            last_hop = path[-2]
            if last_hop in parents:
                needed.add(last_hop)
        return sorted(needed)

    def without_edges(self, edges: Iterable[tuple[str, str]]) -> "CausalGraph":
        """Return a copy with the given edges removed."""
        removed = set(edges)
        return CausalGraph(
            (e for e in self._g.edges if e not in removed), nodes=self._g.nodes
        )

    def to_networkx(self) -> nx.DiGraph:
        """Return a copy of the underlying networkx digraph."""
        return self._g.copy()

    # ------------------------------------------------------------------
    # Serialization (the artifact-bundle state protocol; the wrapped
    # DiGraph is not attribute-serializable, edges + nodes are)
    # ------------------------------------------------------------------
    def get_state(self) -> dict:
        return {"edges": self.edges, "nodes": self.nodes}

    def set_state(self, state: dict) -> None:
        self.__init__(state["edges"], nodes=state["nodes"])

    def __repr__(self) -> str:
        return f"CausalGraph({len(self._g)} nodes, {self._g.number_of_edges()} edges)"
