"""Path-specific effects (PSE) on counterfactual SCMs.

The paper's Figure 3 lists *path-specific fairness* [Zhang et al.] and
*path-specific counterfactuals* [Wu et al.] among the causal notions,
and the Zha-Wu pre-processing approach repairs labels until the
path-specific effect of the sensitive attribute is small.  This module
computes those estimands directly on a
:class:`~repro.causal.counterfactual.CounterfactualSCM`.

A path-specific effect asks: *how much of the sensitive attribute's
influence on the outcome travels along a chosen bundle of causal
paths?*  Formally, with treatment values ``s1`` (active) and ``s0``
(reference) and an active path set ``π``::

    PSE_π = P(Y_{s1|π, s0|π̄} = 1) − P(Y_{s0} = 1)

i.e. the outcome when the treatment change propagates *only along π*
(edges off π transmit the reference value), compared against the
all-reference world.

The implementation uses the standard dual-world evaluation: exogenous
noise is shared between the two worlds, and each node reads a parent's
*active* value through edges that lie on an active path and its
*natural* (reference-world) value otherwise.  Sharing the noise is what
makes the two worlds counterfactually consistent — it requires the
explicit-noise SCM rather than the sampling-only
:class:`~repro.causal.scm.StructuralCausalModel`.
"""

from __future__ import annotations

from collections.abc import Callable, Mapping, Sequence
from dataclasses import dataclass

import numpy as np

from .counterfactual import CounterfactualSCM

__all__ = [
    "PathSpecificEffect",
    "edges_of_paths",
    "active_edges_for_direct",
    "active_edges_for_indirect",
    "path_specific_effect",
    "pse_decomposition",
]

Predictor = Callable[[dict[str, np.ndarray]], np.ndarray]


@dataclass(frozen=True)
class PathSpecificEffect:
    """A computed path-specific effect.

    Attributes
    ----------
    effect:
        ``P(outcome=1 | treatment along active paths) − P(outcome=1 |
        reference everywhere)``, in ``[-1, 1]``.
    active_edges:
        The edges through which the treatment change propagated.
    p_active, p_reference:
        The two positive rates whose difference is ``effect``.
    """

    effect: float
    active_edges: frozenset[tuple[str, str]]
    p_active: float
    p_reference: float


def edges_of_paths(paths: Sequence[Sequence[str]]
                   ) -> frozenset[tuple[str, str]]:
    """Return the union of consecutive-node edges over the given paths."""
    edges: set[tuple[str, str]] = set()
    for path in paths:
        if len(path) < 2:
            raise ValueError(f"a path needs at least two nodes, got {path}")
        edges.update(zip(path[:-1], path[1:]))
    return frozenset(edges)


def active_edges_for_direct(scm: CounterfactualSCM, source: str,
                            outcome: str) -> frozenset[tuple[str, str]]:
    """The active set for the *direct* path ``source → outcome``.

    Raises
    ------
    ValueError
        If the graph has no direct edge from source to outcome.
    """
    if (source, outcome) not in set(scm.graph.edges):
        raise ValueError(f"no direct edge {source!r} → {outcome!r}")
    return frozenset({(source, outcome)})


def active_edges_for_indirect(scm: CounterfactualSCM, source: str,
                              outcome: str) -> frozenset[tuple[str, str]]:
    """The active set covering every *indirect* path source → outcome."""
    indirect = [p for p in scm.graph.directed_paths(source, outcome)
                if len(p) > 2]
    if not indirect:
        return frozenset()
    return edges_of_paths(indirect)


def path_specific_effect(scm: CounterfactualSCM, source: str, outcome: str,
                         active_edges: frozenset[tuple[str, str]] | set,
                         n: int, rng: np.random.Generator,
                         s1: float = 1.0, s0: float = 0.0,
                         predict: Predictor | None = None,
                         ) -> PathSpecificEffect:
    """Estimate the effect of ``source`` on ``outcome`` along a path set.

    Parameters
    ----------
    scm:
        The explicit-noise SCM.
    source, outcome:
        Treatment (sensitive attribute) and outcome nodes.
    active_edges:
        Edges along which the treatment change ``s0 → s1`` propagates.
        Use :func:`edges_of_paths` to derive them from whole paths, or
        the :func:`active_edges_for_direct` /
        :func:`active_edges_for_indirect` helpers.
    n:
        Monte-Carlo sample size.
    rng:
        Randomness source.
    s1, s0:
        Active and reference treatment values.
    predict:
        Optional classifier replacing the outcome node — the PSE is
        then computed on the *predictions*, which is how a deployed
        model is audited for path-specific discrimination.

    Notes
    -----
    Every edge in ``active_edges`` must exist in the graph.  Edges that
    do not lie on any directed ``source → outcome`` path are allowed but
    have no influence on the estimate.
    """
    graph_edges = set(scm.graph.edges)
    unknown = [e for e in active_edges if e not in graph_edges]
    if unknown:
        raise ValueError(f"active edges not in graph: {unknown}")

    noise = scm.sample_noise(n, rng)
    natural = scm.evaluate(noise, {source: s0})

    # Dual evaluation: each node's "active" value reads active parents
    # through active edges and natural parents otherwise.  A node whose
    # active-edge parents all coincide with the natural world sees the
    # same inputs and noise, so its active value is shared rather than
    # recomputed — only the subgraph actually reached by the treatment
    # change through the active edges is re-evaluated.
    active: dict[str, np.ndarray] = {}
    divergent = {source}
    for node in scm.graph.topological_order():
        if node == source:
            active[node] = np.full(n, float(s1))
            continue
        parents = scm.graph.parents(node)
        if not any(p in divergent and (p, node) in active_edges
                   for p in parents):
            active[node] = natural[node]
            continue
        divergent.add(node)
        parent_vals = {
            p: (active[p] if (p, node) in active_edges else natural[p])
            for p in parents
        }
        active[node] = scm.cpt(node).apply(parent_vals, noise[node])

    def positive_rate(values: dict[str, np.ndarray]) -> float:
        out = predict(values) if predict is not None else values[outcome]
        return float(np.mean(np.asarray(out, dtype=float) > 0.5))

    p_active = positive_rate(active)
    p_reference = positive_rate(natural)
    return PathSpecificEffect(
        effect=p_active - p_reference,
        active_edges=frozenset(active_edges),
        p_active=p_active,
        p_reference=p_reference,
    )


def pse_decomposition(scm: CounterfactualSCM, source: str, outcome: str,
                      n: int, rng: np.random.Generator,
                      s1: float = 1.0, s0: float = 0.0,
                      predict: Predictor | None = None,
                      ) -> dict[str, PathSpecificEffect]:
    """Decompose the total effect into direct / indirect / total PSEs.

    Returns a dict with keys ``"total"`` (all paths active),
    ``"direct"`` (the edge ``source → outcome`` only, present only when
    the graph has that edge) and ``"indirect"`` (every other path).

    The "total" entry equals the interventional TE up to Monte-Carlo
    error, which the test-suite uses as a consistency invariant.
    """
    all_paths = scm.graph.directed_paths(source, outcome)
    if not all_paths:
        raise ValueError(f"no directed path {source!r} → {outcome!r}")
    out: dict[str, PathSpecificEffect] = {}
    out["total"] = path_specific_effect(
        scm, source, outcome, edges_of_paths(all_paths), n, rng,
        s1=s1, s0=s0, predict=predict)
    if (source, outcome) in set(scm.graph.edges):
        out["direct"] = path_specific_effect(
            scm, source, outcome,
            active_edges_for_direct(scm, source, outcome), n, rng,
            s1=s1, s0=s0, predict=predict)
    indirect = active_edges_for_indirect(scm, source, outcome)
    if indirect:
        out["indirect"] = path_specific_effect(
            scm, source, outcome, indirect, n, rng,
            s1=s1, s0=s0, predict=predict)
    return out
