"""The PC algorithm: order-free causal structure discovery.

:mod:`repro.causal.discovery` learns a DAG when the user supplies a
causal ordering.  This module removes that requirement: it implements
the classic PC algorithm (Spirtes-Glymour-Scheines), which recovers the
Markov equivalence class of the data-generating DAG from conditional
independence tests alone:

1. **Skeleton** — start complete; for growing conditioning-set sizes
   ``ℓ = 0, 1, 2, …`` remove the edge ``X — Y`` whenever some subset
   ``Z`` of a neighbourhood with ``|Z| = ℓ`` renders them independent,
   remembering ``Z`` as the *separating set*.
2. **v-structures** — orient ``X → W ← Y`` for every unshielded triple
   whose middle node is *not* in the stored separating set.
3. **Meek rules** — propagate orientations that any DAG in the
   equivalence class must share.

The output is a :class:`CPDAG` — a partially directed graph whose
undirected edges are genuinely unidentifiable from observational data.
``CPDAG.to_dag`` extends it to one member DAG (useful when downstream
code, like the Zha-Wu repairs, needs *some* consistent DAG), and
``orient_with`` applies background knowledge such as "the sensitive
attribute is a root", the assumption all the paper's graphs make.
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping
from itertools import combinations

import numpy as np

from .discovery import _discretise, g_test
from .graph import CausalGraph

__all__ = ["CPDAG", "pc_skeleton", "pc_algorithm"]


class CPDAG:
    """A partially directed acyclic graph (PC output).

    Attributes
    ----------
    nodes:
        All variable names.
    directed:
        Set of oriented edges ``(cause, effect)``.
    undirected:
        Set of unoriented adjacencies, stored as sorted pairs.
    """

    def __init__(self, nodes: Iterable[str],
                 directed: Iterable[tuple[str, str]] = (),
                 undirected: Iterable[tuple[str, str]] = ()):
        self.nodes = list(nodes)
        self.directed: set[tuple[str, str]] = set(directed)
        self.undirected: set[tuple[str, str]] = {
            tuple(sorted(e)) for e in undirected}

    # ------------------------------------------------------------------
    def adjacent(self, a: str, b: str) -> bool:
        return ((a, b) in self.directed or (b, a) in self.directed
                or tuple(sorted((a, b))) in self.undirected)

    def neighbours(self, node: str) -> set[str]:
        out = set()
        for x, y in self.directed:
            if x == node:
                out.add(y)
            elif y == node:
                out.add(x)
        for x, y in self.undirected:
            if x == node:
                out.add(y)
            elif y == node:
                out.add(x)
        return out

    def orient(self, cause: str, effect: str) -> bool:
        """Orient an undirected edge; returns True if anything changed."""
        key = tuple(sorted((cause, effect)))
        if key not in self.undirected:
            return False
        self.undirected.discard(key)
        self.directed.add((cause, effect))
        return True

    # ------------------------------------------------------------------
    def apply_meek_rules(self) -> None:
        """Propagate forced orientations (Meek rules 1–3) to a fixpoint."""
        changed = True
        while changed:
            changed = False
            for a, b in list(self.undirected):
                for x, y in ((a, b), (b, a)):
                    # Rule 1: z → x, z not adjacent to y  ⇒  x → y.
                    for z in self.nodes:
                        if (z, x) in self.directed \
                                and not self.adjacent(z, y):
                            changed |= self.orient(x, y)
                            break
                    # Rule 2: x → z → y  ⇒  x → y (else a cycle).
                    for z in self.nodes:
                        if (x, z) in self.directed \
                                and (z, y) in self.directed:
                            changed |= self.orient(x, y)
                            break
                    # Rule 3: x — z1 → y and x — z2 → y with z1, z2
                    # non-adjacent  ⇒  x → y.
                    spokes = [z for z in self.nodes
                              if tuple(sorted((x, z))) in self.undirected
                              and (z, y) in self.directed]
                    if any(not self.adjacent(z1, z2)
                           for z1, z2 in combinations(spokes, 2)):
                        changed |= self.orient(x, y)

    def orient_with(self, roots: Iterable[str] = (),
                    sinks: Iterable[str] = ()) -> None:
        """Apply background knowledge, then re-propagate.

        ``roots`` have no parents (every incident undirected edge
        points away); ``sinks`` have no children.  This is how the
        paper's standing assumptions — sensitive attributes are roots,
        the label is a sink — are injected.
        """
        for root in roots:
            for other in list(self.neighbours(root)):
                self.orient(root, other)
        for sink in sinks:
            for other in list(self.neighbours(sink)):
                self.orient(other, sink)
        self.apply_meek_rules()

    def to_dag(self) -> CausalGraph:
        """Extend to one member DAG of the equivalence class.

        Remaining undirected edges are oriented greedily in a way that
        never creates a cycle or a new v-structure (Dor-Tarsi style
        extension; falls back to acyclicity-only if needed).

        Raises
        ------
        ValueError
            If the directed part already contains a cycle (inconsistent
            CI-test results on finite samples can cause this).
        """
        import networkx as nx

        g = nx.DiGraph()
        g.add_nodes_from(self.nodes)
        g.add_edges_from(self.directed)
        if not nx.is_directed_acyclic_graph(g):
            raise ValueError("directed part of the CPDAG is cyclic; "
                             "lower alpha or provide more data")
        for a, b in sorted(self.undirected):
            for cause, effect in ((a, b), (b, a)):
                g.add_edge(cause, effect)
                if nx.is_directed_acyclic_graph(g):
                    break
                g.remove_edge(cause, effect)
            else:
                raise ValueError(
                    f"cannot orient {a!r} — {b!r} without a cycle")
        return CausalGraph(edges=g.edges, nodes=self.nodes)

    def __repr__(self) -> str:
        return (f"CPDAG({len(self.nodes)} nodes, "
                f"{len(self.directed)} directed, "
                f"{len(self.undirected)} undirected)")


# ----------------------------------------------------------------------
# PC proper
# ----------------------------------------------------------------------
def _strata(data: Mapping[str, np.ndarray],
            names: tuple[str, ...]) -> np.ndarray | None:
    if not names:
        return None
    matrix = np.column_stack([data[n] for n in names])
    _, inverse = np.unique(matrix, axis=0, return_inverse=True)
    return inverse


def pc_skeleton(columns: Mapping[str, np.ndarray], alpha: float = 0.01,
                max_condition: int = 3, max_levels: int = 4
                ) -> tuple[set[tuple[str, str]],
                           dict[tuple[str, str], frozenset[str]]]:
    """Phase 1 of PC: the undirected skeleton plus separating sets.

    Returns ``(edges, sepsets)`` where ``edges`` holds sorted node
    pairs and ``sepsets`` records, for each *removed* pair, the subset
    that separated it.
    """
    names = list(columns)
    if len(names) < 2:
        raise ValueError("need at least two variables")
    data = {n: _discretise(np.asarray(columns[n]), max_levels)
            for n in names}
    edges = {tuple(sorted(pair)) for pair in combinations(names, 2)}
    sepsets: dict[tuple[str, str], frozenset[str]] = {}

    def neighbours(node: str) -> set[str]:
        return {b for a, b in edges if a == node} | \
               {a for a, b in edges if b == node}

    for level in range(max_condition + 1):
        removed_any = False
        for pair in sorted(edges):
            x, y = pair
            candidates = (neighbours(x) | neighbours(y)) - {x, y}
            if len(candidates) < level:
                continue
            for subset in combinations(sorted(candidates), level):
                p = g_test(data[x], data[y], given=_strata(data, subset))
                if p > alpha:
                    edges.discard(pair)
                    sepsets[pair] = frozenset(subset)
                    removed_any = True
                    break
        if not removed_any and level > 0:
            break
    return edges, sepsets


def pc_algorithm(columns: Mapping[str, np.ndarray], alpha: float = 0.01,
                 max_condition: int = 3, max_levels: int = 4) -> CPDAG:
    """Run the full PC algorithm on discrete observational columns.

    Parameters
    ----------
    columns:
        Column name → values; continuous columns are quantile-bucketed
        into ``max_levels`` levels first.
    alpha:
        Significance level of the G-test CI oracle.
    max_condition:
        Largest conditioning-set size searched (computation grows
        combinatorially beyond 3–4).
    """
    edges, sepsets = pc_skeleton(columns, alpha=alpha,
                                 max_condition=max_condition,
                                 max_levels=max_levels)
    cpdag = CPDAG(nodes=list(columns), undirected=edges)

    # v-structures: unshielded x — w — y with w ∉ sepset(x, y).
    for x, y in sorted(sepsets):
        for w in sorted(cpdag.nodes):
            if w in (x, y) or w in sepsets[(x, y)]:
                continue
            if cpdag.adjacent(x, w) and cpdag.adjacent(y, w) \
                    and not cpdag.adjacent(x, y):
                cpdag.orient(x, w)
                cpdag.orient(y, w)

    cpdag.apply_meek_rules()
    return cpdag
