"""Estimation of causal fairness quantities: TE, NDE, and NIE.

Two estimators are provided, mirroring the two ways the paper computes
causal metrics:

* :func:`interventional_effects` — given a fully specified
  :class:`~repro.causal.scm.StructuralCausalModel` and (optionally) a
  trained predictor spliced in as the outcome, simulate Pearl's ``do``
  operator directly.  This is the paper's DoWhy usage: evaluate the
  deployed pipeline under interventions on the sensitive attribute.

* :func:`observational_effects` — given only observational data and the
  causal graph, apply the discrete mediation formulas (Theorems 4 and 5
  of Zhang et al., IJCAI 2017) that the paper reproduces in Examples
  5 and 6 of its appendix.

Both return an :class:`Effects` record with total, natural direct, and
natural indirect effect.
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass

import numpy as np

from .graph import CausalGraph
from .scm import StructuralCausalModel

Predictor = Callable[[dict[str, np.ndarray]], np.ndarray]


@dataclass(frozen=True)
class Effects:
    """Causal effects of the sensitive attribute on the outcome.

    All three lie in ``[-1, 1]``; 0 means no causal influence.
    """

    te: float
    nde: float
    nie: float


# ----------------------------------------------------------------------
# Interventional estimation on an SCM
# ----------------------------------------------------------------------
def interventional_effects(scm: StructuralCausalModel, source: str,
                           outcome: str, n: int,
                           rng: np.random.Generator,
                           predict: Predictor | None = None) -> Effects:
    """Estimate TE/NDE/NIE by simulating interventions on ``source``.

    Parameters
    ----------
    scm:
        The structural causal model of the data-generating process.
    source:
        The sensitive attribute (binary; interventions set it to 0/1).
    outcome:
        Node whose positive probability is compared across regimes.
    n:
        Monte-Carlo sample size per regime.
    rng:
        Randomness source.
    predict:
        If given, replaces the outcome: a callable mapping the sampled
        columns to predictions.  This is how a *trained classifier* is
        audited — the SCM generates counterfactual populations and the
        classifier labels them.
    """
    mediators = sorted(scm.graph.mediators(source, outcome))

    def positive_rate(sample: dict[str, np.ndarray]) -> float:
        values = predict(sample) if predict is not None else sample[outcome]
        return float(np.mean(np.asarray(values) > 0.5))

    sample1 = scm.do(**{source: 1}).sample(n, rng)
    sample0 = scm.do(**{source: 0}).sample(n, rng)
    p1 = positive_rate(sample1)
    p0 = positive_rate(sample0)
    te = p1 - p0

    if not mediators:
        # Without mediators all influence is direct: NDE = TE, NIE = 0.
        return Effects(te=te, nde=te, nie=0.0)

    # NDE: S set to 1 while mediators keep their do(S=0) distribution.
    z0 = {m: sample0[m] for m in mediators}
    nde_sample = scm.do(**{source: 1}).sample(n, rng, overrides=z0)
    nde = positive_rate(nde_sample) - p0

    # NIE: S stays 0 while mediators follow their do(S=1) distribution.
    z1 = {m: sample1[m] for m in mediators}
    nie_sample = scm.do(**{source: 0}).sample(n, rng, overrides=z1)
    nie = positive_rate(nie_sample) - p0

    return Effects(te=te, nde=nde, nie=nie)


# ----------------------------------------------------------------------
# Observational estimation from data + graph
# ----------------------------------------------------------------------
def _group_mean(y: np.ndarray, mask: np.ndarray, fallback: float) -> float:
    return float(np.mean(y[mask])) if np.any(mask) else fallback


def _row_keys(matrix: np.ndarray) -> np.ndarray:
    """Map each row of a small discrete matrix to an integer group id."""
    if matrix.shape[1] == 0:
        return np.zeros(matrix.shape[0], dtype=int)
    _, inverse = np.unique(matrix, axis=0, return_inverse=True)
    return inverse


def observational_effects(columns: dict[str, np.ndarray], graph: CausalGraph,
                          source: str, outcome: str,
                          outcome_values: np.ndarray | None = None) -> Effects:
    """Estimate TE/NDE/NIE from discrete observational data.

    Implements the empirical mediation formulas of the paper's
    Examples 4–6:

    * ``TE  = P(Y=1 | S=1) − P(Y=1 | S=0)`` (the sensitive attribute is
      a root in all the paper's causal graphs, so no adjustment set is
      needed; a ``ValueError`` is raised otherwise).
    * ``NDE = Σ_{c,z} P(c) P(z|S=0) E[Y | S=1, Z=z, C=c] − P(Y=1|S=0)``
    * ``NIE = Σ_{c,z} P(c) P(z|S=1) E[Y | S=0, Z=z, C=c] − P(Y=1|S=0)``

    where ``Z`` are the mediators of ``source → outcome`` and ``C`` the
    remaining observed covariates that are not descendants of the
    source.  Attribute combinations are enumerated from the observed
    rows (empty cells fall back to the group-level mean).

    Parameters
    ----------
    columns:
        Column name → 1-D array of small discrete values.
    graph:
        The causal DAG over the column names.
    source, outcome:
        Sensitive attribute and outcome node names.
    outcome_values:
        Optional replacement for ``columns[outcome]`` (e.g. classifier
        predictions aligned with the data rows).
    """
    if graph.parents(source):
        raise ValueError(
            f"{source!r} has parents {graph.parents(source)}; observational "
            "TE needs a root sensitive attribute (use interventional_effects)"
        )
    s = np.asarray(columns[source]).astype(int)
    y = np.asarray(outcome_values if outcome_values is not None
                   else columns[outcome]).astype(float)
    if s.shape != y.shape:
        raise ValueError("source and outcome columns must be aligned")

    overall = float(np.mean(y))
    p1 = _group_mean(y, s == 1, overall)
    p0 = _group_mean(y, s == 0, overall)
    te = p1 - p0

    mediators = sorted(graph.mediators(source, outcome))
    descendants = graph.descendants(source)
    covariates = sorted(
        name for name in columns
        if name not in (source, outcome)
        and name not in descendants
        and name in graph
    )

    if not mediators:
        return Effects(te=te, nde=te, nie=0.0)

    z_keys = _row_keys(np.column_stack([columns[m] for m in mediators]))
    c_keys = _row_keys(
        np.column_stack([columns[c] for c in covariates])
        if covariates else np.zeros((len(y), 0))
    )

    def mediation_mean(s_outcome: int, s_mediator: int) -> float:
        """Σ_c P(c) Σ_z P(z | S=s_mediator) E[Y | S=s_outcome, z, c]."""
        total = 0.0
        base = _group_mean(y, s == s_outcome, overall)
        s_med_mask = s == s_mediator
        for c_val in np.unique(c_keys):
            c_mask = c_keys == c_val
            p_c = float(np.mean(c_mask))
            for z_val in np.unique(z_keys[s_med_mask]):
                p_z = float(np.mean(z_keys[s_med_mask] == z_val))
                cell = (s == s_outcome) & (z_keys == z_val) & c_mask
                total += p_c * p_z * _group_mean(y, cell, base)
        return total

    nde = mediation_mean(s_outcome=1, s_mediator=0) - p0
    nie = mediation_mean(s_outcome=0, s_mediator=1) - p0
    return Effects(te=te, nde=nde, nie=nie)
