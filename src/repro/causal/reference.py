"""Loop reference implementations of the counterfactual hot path.

These are the pre-vectorization algorithms of
:mod:`repro.causal.counterfactual` — per-row dict lookups in the CPT
operations and per-individual abduction — kept verbatim for two jobs:

* the parity test-suite asserts the compiled fast paths compute the
  same quantities (exactly where the computation is deterministic, to
  statistical tolerance where vectorization reorders RNG draws);
* ``benchmarks/bench_perf_counterfactual.py`` times the vectorized
  pipeline against them, so the recorded speedup always refers to a
  live baseline rather than a number from an old commit.

No production code path imports this module.
"""

from __future__ import annotations

from collections.abc import Mapping

import numpy as np

from .counterfactual import CounterfactualSCM, DiscreteCPT, NoiseAssignment

__all__ = [
    "cpt_probabilities_loop",
    "cpt_apply_loop",
    "cpt_abduct_loop",
    "scm_abduct_loop",
    "scm_evaluate_loop",
    "fit_tables_loop",
]


def cpt_probabilities_loop(cpt: DiscreteCPT,
                           parent_values: Mapping[str, np.ndarray],
                           n: int) -> np.ndarray:
    """Row-wise distributions via one dict lookup per row."""
    if not cpt.parents:
        row = cpt.table.get((), cpt.fallback)
        return np.tile(row, (n, 1))
    columns = [np.asarray(parent_values[p], dtype=float)
               for p in cpt.parents]
    out = np.empty((n, cpt.domain.size))
    for i in range(n):
        key = tuple(float(col[i]) for col in columns)
        out[i] = cpt.table.get(key, cpt.fallback)
    return out


def cpt_apply_loop(cpt: DiscreteCPT,
                   parent_values: Mapping[str, np.ndarray],
                   noise: np.ndarray) -> np.ndarray:
    """Monotone inverse-CDF evaluation on looped-up distributions."""
    noise = np.asarray(noise, dtype=float)
    probs = cpt_probabilities_loop(cpt, parent_values, noise.shape[0])
    cdf = np.cumsum(probs, axis=1)
    cdf[:, -1] = 1.0
    idx = (noise[:, None] >= cdf).sum(axis=1)
    return cpt.domain[idx]


def cpt_abduct_loop(cpt: DiscreteCPT,
                    parent_values: Mapping[str, np.ndarray],
                    observed: np.ndarray,
                    rng: np.random.Generator) -> np.ndarray:
    """Interval-posterior noise sampling on looped-up distributions."""
    observed = np.asarray(observed, dtype=float)
    n = observed.shape[0]
    probs = cpt_probabilities_loop(cpt, parent_values, n)
    cdf = np.cumsum(probs, axis=1)
    cdf[:, -1] = 1.0
    idx = np.searchsorted(cpt.domain, observed)
    bad = (idx >= cpt.domain.size) | (cpt.domain[np.minimum(
        idx, cpt.domain.size - 1)] != observed)
    if np.any(bad):
        raise ValueError(
            f"observed values outside domain: {np.unique(observed[bad])}"
        )
    hi = cdf[np.arange(n), idx]
    lo = np.where(idx > 0, cdf[np.arange(n), np.maximum(idx - 1, 0)], 0.0)
    if np.any(hi <= lo):
        raise ValueError("evidence has zero probability under the model")
    return lo + rng.random(n) * (hi - lo)


def scm_abduct_loop(scm: CounterfactualSCM, evidence: Mapping[str, float],
                    n_particles: int,
                    rng: np.random.Generator) -> NoiseAssignment:
    """Single-row abduction with looped CPT operations."""
    noise: NoiseAssignment = {}
    for node in scm.graph.topological_order():
        parent_vals = {
            p: np.full(n_particles, float(evidence[p]))
            for p in scm.graph.parents(node)
        }
        observed = np.full(n_particles, float(evidence[node]))
        noise[node] = cpt_abduct_loop(scm.cpt(node), parent_vals, observed,
                                      rng)
    return noise


def scm_evaluate_loop(scm: CounterfactualSCM, noise: NoiseAssignment,
                      interventions: Mapping[str, float] | None = None,
                      ) -> dict[str, np.ndarray]:
    """Forward evaluation with looped CPT operations, no world sharing."""
    interventions = dict(interventions or {})
    n = next(iter(noise.values())).shape[0]
    values: dict[str, np.ndarray] = {}
    for node in scm.graph.topological_order():
        if node in interventions:
            values[node] = np.full(n, float(interventions[node]))
        else:
            parent_vals = {p: values[p] for p in scm.graph.parents(node)}
            values[node] = cpt_apply_loop(scm.cpt(node), parent_vals,
                                          noise[node])
    return values


def fit_tables_loop(columns: Mapping[str, np.ndarray], graph,
                    laplace: float = 0.5
                    ) -> dict[str, tuple[np.ndarray, dict]]:
    """Per-domain-value counting loops of the original ``fit``.

    Returns ``{node: (domain, {combo: probability_vector})}`` for
    direct comparison against the bincount-based estimator.
    """
    out: dict[str, tuple[np.ndarray, dict]] = {}
    for node in graph.nodes:
        values = np.asarray(columns[node], dtype=float)
        domain = np.unique(values)
        parents = tuple(graph.parents(node))
        table: dict[tuple, np.ndarray] = {}
        if parents:
            stacked = np.column_stack(
                [np.asarray(columns[p], dtype=float) for p in parents])
            combos, inverse = np.unique(stacked, axis=0, return_inverse=True)
            for j, combo in enumerate(combos):
                sub = values[inverse == j]
                counts = np.array(
                    [np.sum(sub == v) for v in domain], dtype=float)
                counts += laplace
                table[tuple(float(v) for v in combo)] = counts / counts.sum()
        else:
            counts = np.array(
                [np.sum(values == v) for v in domain], dtype=float)
            counts += laplace
            table[()] = counts / counts.sum()
        out[node] = (domain, table)
    return out
