"""Causal substrate: DAGs, structural causal models, effect estimation
(TE/NDE/NIE), counterfactual inference, path-specific effects, and
graphical identification."""

from .counterfactual import CounterfactualSCM, DiscreteCPT, NoiseAssignment
from .discovery import g_test, learn_dataset_graph, learn_graph
from .effects import Effects, interventional_effects, observational_effects
from .graph import CausalGraph
from .identification import (Identification, backdoor_estimate,
                             backdoor_sets, frontdoor_estimate,
                             frontdoor_sets, identify_effect, instruments,
                             interventional_distribution, is_backdoor_set,
                             is_frontdoor_set)
from .pc import CPDAG, pc_algorithm, pc_skeleton
from .pse import (PathSpecificEffect, active_edges_for_direct,
                  active_edges_for_indirect, edges_of_paths,
                  path_specific_effect, pse_decomposition)
from .scm import Mechanism, SizedRNG, StructuralCausalModel

__all__ = [
    "CausalGraph", "StructuralCausalModel", "Mechanism", "SizedRNG",
    "Effects", "interventional_effects", "observational_effects",
    "g_test", "learn_graph", "learn_dataset_graph",
    "CPDAG", "pc_skeleton", "pc_algorithm",
    "DiscreteCPT", "CounterfactualSCM", "NoiseAssignment",
    "PathSpecificEffect", "edges_of_paths", "active_edges_for_direct",
    "active_edges_for_indirect", "path_specific_effect",
    "pse_decomposition",
    "Identification", "is_backdoor_set", "backdoor_sets",
    "is_frontdoor_set", "frontdoor_sets", "instruments", "identify_effect",
    "backdoor_estimate", "frontdoor_estimate",
    "interventional_distribution",
]
