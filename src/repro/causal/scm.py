"""Structural causal models: mechanisms, sampling, and interventions.

A :class:`StructuralCausalModel` pairs a :class:`~repro.causal.graph.
CausalGraph` with one structural equation per node.  Each equation is a
callable ``f(parents: dict[str, np.ndarray], rng) -> np.ndarray`` that
produces the node's values given its parents' sampled values — exogenous
noise is drawn inside the equation from ``rng``.

Interventions follow Pearl's ``do`` operator: ``scm.do(S=1)`` replaces
the equation of ``S`` by the constant 1 and removes its dependence on
its parents, which is exactly the graph surgery described in the paper's
Appendix A.2.
"""

from __future__ import annotations

from collections.abc import Callable, Mapping

import numpy as np

from .graph import CausalGraph

Mechanism = Callable[[dict[str, np.ndarray], np.random.Generator], np.ndarray]


class SizedRNG:
    """A numpy ``Generator`` proxy that also carries the sample size.

    Root mechanisms have no parent arrays to infer the batch size from,
    so :meth:`StructuralCausalModel.sample` hands mechanisms this proxy
    and they may read ``rng.n``.  All ``Generator`` methods pass through.
    """

    def __init__(self, rng: np.random.Generator, n: int):
        self._rng = rng
        self.n = n

    def __getattr__(self, name):
        return getattr(self._rng, name)


class StructuralCausalModel:
    """A fully specified SCM over a causal graph.

    Parameters
    ----------
    graph:
        The causal DAG.
    mechanisms:
        Mapping node → structural equation.  Every graph node needs one.
    """

    def __init__(self, graph: CausalGraph,
                 mechanisms: Mapping[str, Mechanism]):
        missing = [n for n in graph.nodes if n not in mechanisms]
        if missing:
            raise ValueError(f"no mechanism for nodes: {missing}")
        extra = [n for n in mechanisms if n not in graph]
        if extra:
            raise ValueError(f"mechanisms for unknown nodes: {extra}")
        self.graph = graph
        self._mechanisms = dict(mechanisms)
        self._interventions: dict[str, float] = {}

    # ------------------------------------------------------------------
    def do(self, **interventions: float) -> "StructuralCausalModel":
        """Return a new SCM with the given nodes forced to constants."""
        unknown = [n for n in interventions if n not in self.graph]
        if unknown:
            raise ValueError(f"cannot intervene on unknown nodes: {unknown}")
        new = StructuralCausalModel(self.graph, self._mechanisms)
        new._interventions = {**self._interventions, **interventions}
        return new

    # ------------------------------------------------------------------
    def sample(self, n: int, rng: np.random.Generator,
               overrides: Mapping[str, np.ndarray] | None = None,
               ) -> dict[str, np.ndarray]:
        """Draw ``n`` joint samples in topological order.

        Parameters
        ----------
        n:
            Number of rows to draw.
        rng:
            Source of exogenous randomness.
        overrides:
            Optional per-node arrays that replace the node's sampled
            values (used by the mediation estimators, which need to fix
            mediators to values drawn under a different regime).
        """
        overrides = overrides or {}
        sized_rng = rng if isinstance(rng, SizedRNG) else SizedRNG(rng, n)
        values: dict[str, np.ndarray] = {}
        for node in self.graph.topological_order():
            if node in overrides:
                arr = np.asarray(overrides[node])
                if arr.shape != (n,):
                    raise ValueError(
                        f"override for {node!r} has shape {arr.shape}, want ({n},)"
                    )
                values[node] = arr
            elif node in self._interventions:
                values[node] = np.full(n, self._interventions[node])
            else:
                parents = {p: values[p] for p in self.graph.parents(node)}
                out = np.asarray(self._mechanisms[node](parents, sized_rng))
                if out.shape != (n,):
                    raise ValueError(
                        f"mechanism of {node!r} returned shape {out.shape}, want ({n},)"
                    )
                values[node] = out
        return values

    def mechanism(self, node: str) -> Mechanism:
        """Return the structural equation of ``node``."""
        return self._mechanisms[node]

    def with_mechanism(self, node: str,
                       mechanism: Mechanism) -> "StructuralCausalModel":
        """Return an SCM where ``node``'s equation is replaced.

        The causal-metric estimators use this to splice a *trained
        classifier* in as the outcome equation, so that interventional
        quantities of the deployed prediction pipeline can be computed.
        """
        mechanisms = {**self._mechanisms, node: mechanism}
        new = StructuralCausalModel(self.graph, mechanisms)
        new._interventions = dict(self._interventions)
        return new

    def __repr__(self) -> str:
        dos = f", do={self._interventions}" if self._interventions else ""
        return f"StructuralCausalModel({self.graph!r}{dos})"
