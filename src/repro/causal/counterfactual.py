"""Counterfactual inference for discrete structural causal models.

The interventional estimators in :mod:`repro.causal.effects` answer rung-2
questions of Pearl's ladder of causation ("what if everyone's sensitive
attribute were set to 1?").  Several fairness notions in the paper's
Figure 3 — counterfactual fairness [Kusner et al.], path-specific
counterfactuals [Wu et al.], counterfactual error rates [Zhang &
Bareinboim] — live on rung 3: they ask what *would have happened to this
very individual* had the sensitive attribute been different.

Answering rung-3 questions requires an SCM with *explicit* exogenous
noise so that the three-step abduction–action–prediction recipe applies:

1. **Abduction** — infer the posterior of the exogenous noise given the
   observed evidence for an individual.
2. **Action** — perform the intervention (graph surgery) on the model.
3. **Prediction** — push the abducted noise through the mutilated model.

This module provides :class:`DiscreteCPT`, a conditional probability
table with the *monotone inverse-CDF* noise representation (each node is
a deterministic function of its parents and a single uniform noise
``u ∈ [0, 1)``), and :class:`CounterfactualSCM`, which composes CPTs
over a :class:`~repro.causal.graph.CausalGraph` and implements the full
recipe.  With complete evidence the abduction step is *exact*: given the
parents and the realised value, the posterior of ``u`` is uniform on the
CDF interval of that value.

A :meth:`CounterfactualSCM.fit` constructor estimates the CPTs from
discrete observational data plus a graph, which is how the repository's
counterfactual fairness metrics operate on the synthetic Adult/COMPAS/
German datasets.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence
from dataclasses import dataclass

import numpy as np

from .graph import CausalGraph

__all__ = [
    "DiscreteCPT",
    "CounterfactualSCM",
    "NoiseAssignment",
]

#: Mapping node → per-row exogenous noise in ``[0, 1)``.
NoiseAssignment = dict[str, np.ndarray]


def _as_key(values: Sequence) -> tuple:
    """Normalise a parent-value combination to a hashable tuple of floats."""
    return tuple(float(v) for v in values)


@dataclass(frozen=True)
class DiscreteCPT:
    """A conditional probability table with monotone noise semantics.

    Parameters
    ----------
    parents:
        Ordered parent names.  The order fixes the key layout of
        ``table``.
    domain:
        The node's value domain, sorted ascending.  Values are stored as
        floats so integer-coded categoricals and binary indicators both
        work.
    table:
        Mapping from a parent-value tuple (ordered as ``parents``) to a
        probability vector over ``domain``.  Every vector must be
        non-negative and sum to 1 (within tolerance).
    fallback:
        Distribution used for parent combinations absent from
        ``table``.  Defaults to the uniform distribution over
        ``domain``.

    Notes
    -----
    The noise representation is the *monotone* one: node value is
    ``domain[k]`` where ``k`` is the first index with
    ``u < cdf[k]``.  Monotonicity makes the representation canonical and
    the abduction posterior an interval, which is what allows exact
    counterfactuals for discrete models.

    Construction compiles the table into a row-stacked ``(n_combos + 1,
    |domain|)`` probability/CDF matrix (the extra row is the fallback),
    so the batched operations resolve each row's parent combination to
    a matrix row index once and then run as pure gathers — no per-row
    dict lookups on the hot path.
    """

    parents: tuple[str, ...]
    domain: np.ndarray
    table: Mapping[tuple, np.ndarray]
    fallback: np.ndarray | None = None

    def __post_init__(self):
        domain = np.asarray(self.domain, dtype=float)
        if domain.ndim != 1 or domain.size == 0:
            raise ValueError("domain must be a non-empty 1-D array")
        if np.any(np.diff(domain) <= 0):
            raise ValueError("domain must be strictly increasing")
        object.__setattr__(self, "domain", domain)
        normalised = {}
        for key, probs in self.table.items():
            vec = np.asarray(probs, dtype=float)
            if vec.shape != domain.shape:
                raise ValueError(
                    f"probability vector for {key} has shape {vec.shape}, "
                    f"expected {domain.shape}"
                )
            if np.any(vec < 0) or not np.isclose(vec.sum(), 1.0, atol=1e-8):
                raise ValueError(f"invalid distribution for {key}: {vec}")
            normalised[_as_key(key)] = vec / vec.sum()
        object.__setattr__(self, "table", normalised)
        fallback = (np.full(domain.size, 1.0 / domain.size)
                    if self.fallback is None
                    else np.asarray(self.fallback, dtype=float))
        if fallback.shape != domain.shape:
            raise ValueError("fallback distribution has wrong shape")
        object.__setattr__(self, "fallback", fallback / fallback.sum())
        self._compile()

    def _compile(self) -> None:
        """Stack the (already normalised) table into matrices so the
        batched paths are gathers.  Row ``len(table)`` holds the
        fallback.  Separated from ``__post_init__`` so deserialization
        can restore the normalised attributes verbatim and recompile —
        re-normalising an already-normalised vector shifts ulps, and
        the serving path promises bit-identical audits."""
        probs = np.empty((len(self.table) + 1, self.domain.size))
        index: dict[tuple, int] = {}
        for row, (key, vec) in enumerate(self.table.items()):
            index[key] = row
            probs[row] = vec
        probs[len(self.table)] = self.fallback
        cdf = np.cumsum(probs, axis=1)
        # Guard against floating error leaving the last cdf below 1.
        cdf[:, -1] = 1.0
        object.__setattr__(self, "_index", index)
        object.__setattr__(self, "_probs", probs)
        object.__setattr__(self, "_cdf", cdf)

    # ------------------------------------------------------------------
    # Serialization (the artifact-bundle state protocol)
    # ------------------------------------------------------------------
    def get_state(self) -> dict:
        return {
            "parents": self.parents,
            "domain": self.domain,
            "table": [[list(key), vec] for key, vec in self.table.items()],
            "fallback": self.fallback,
        }

    def set_state(self, state: dict) -> None:
        # Restore the normalised attributes verbatim (no re-validation,
        # no re-normalisation) and recompile the gather matrices.
        object.__setattr__(self, "parents", tuple(state["parents"]))
        object.__setattr__(self, "domain",
                           np.asarray(state["domain"], dtype=float))
        object.__setattr__(self, "table",
                           {_as_key(key): np.asarray(vec, dtype=float)
                            for key, vec in state["table"]})
        object.__setattr__(self, "fallback",
                           np.asarray(state["fallback"], dtype=float))
        self._compile()

    # ------------------------------------------------------------------
    def _rows(self, parent_values: Mapping[str, np.ndarray],
              n: int) -> np.ndarray:
        """Map each row's parent combination to its compiled-matrix row.

        Each distinct combination is resolved exactly once: the parent
        columns are integer-coded per column, combined into a single
        mixed-radix code, and deduplicated with :func:`np.unique` — so
        the dict is consulted per *unique* combination, not per row.
        Small batches (the per-request serving path, where ``n`` is a
        particle count) skip the array machinery entirely: at that size
        the fixed cost of a few :func:`np.unique` calls dwarfs a memoised
        dict walk.
        """
        fallback_row = len(self._index)
        if not self.parents:
            return np.full(n, self._index.get((), fallback_row),
                           dtype=np.intp)
        columns = [np.asarray(parent_values[p], dtype=float)
                   for p in self.parents]
        if all(col.ndim == 1 and col.strides == (0,) for col in columns):
            # All parents are stride-0 broadcast views (per-row-constant
            # evidence, as the serving path's abduction passes): one
            # combination, one lookup.
            key = tuple(col.item(0) for col in columns)
            return np.full(n, self._index.get(key, fallback_row),
                           dtype=np.intp)
        if n <= 128:
            rows = np.empty(n, dtype=np.intp)
            memo: dict[tuple, int] = {}
            for i, key in enumerate(zip(*(col.tolist()
                                          for col in columns))):
                row = memo.get(key)
                if row is None:
                    row = self._index.get(key, fallback_row)
                    memo[key] = row
                rows[i] = row
            return rows
        codes = np.zeros(n, dtype=np.int64)
        for col in columns:
            uniq, inv = np.unique(col, return_inverse=True)
            codes = codes * (uniq.size + 1) + inv
        first, inverse = np.unique(codes, return_index=True,
                                   return_inverse=True)[1:]
        rows = np.fromiter(
            (self._index.get(_as_key(col[i] for col in columns),
                             fallback_row)
             for i in first),
            dtype=np.intp, count=first.size)
        return rows[inverse]

    def probabilities(self, parent_values: Mapping[str, np.ndarray],
                      n: int) -> np.ndarray:
        """Return the ``(n, |domain|)`` matrix of row-wise distributions."""
        return self._probs[self._rows(parent_values, n)]

    def apply(self, parent_values: Mapping[str, np.ndarray],
              noise: np.ndarray) -> np.ndarray:
        """Deterministically map parents + noise to node values.

        Implements the monotone representation: the value is the first
        domain element whose cumulative probability exceeds the noise.
        """
        noise = np.asarray(noise, dtype=float)
        rows = self._rows(parent_values, noise.shape[0])
        # Counting cdf entries <= noise equals a side="right"
        # searchsorted on each row's (non-decreasing) cdf, with no
        # per-unique-row loop; the domain is a handful of bins, so the
        # (n, |domain|) comparison is small.
        idx = np.sum(self._cdf[rows] <= noise[:, None], axis=1)
        np.minimum(idx, self.domain.size - 1, out=idx)
        return self.domain[idx]

    def abduct(self, parent_values: Mapping[str, np.ndarray],
               observed: np.ndarray,
               rng: np.random.Generator) -> np.ndarray:
        """Sample noise from its posterior given parents and value.

        For the monotone representation the posterior of ``u`` given
        value ``domain[k]`` is uniform on ``[cdf[k-1], cdf[k])``.

        Raises
        ------
        ValueError
            If an observed value is outside the domain or has zero
            probability under the corresponding parent combination (the
            evidence is then inconsistent with the model).
        """
        observed = np.asarray(observed, dtype=float)
        n = observed.shape[0]
        rows = self._rows(parent_values, n)
        idx = np.searchsorted(self.domain, observed)
        bad = (idx >= self.domain.size) | (self.domain[np.minimum(
            idx, self.domain.size - 1)] != observed)
        if np.any(bad):
            raise ValueError(
                f"observed values outside domain: {np.unique(observed[bad])}"
            )
        hi = self._cdf[rows, idx]
        lo = np.where(idx > 0, self._cdf[rows, np.maximum(idx - 1, 0)], 0.0)
        if np.any(hi <= lo):
            raise ValueError(
                "evidence has zero probability under the model; "
                "refit with Laplace smoothing or check the graph"
            )
        return lo + rng.random(n) * (hi - lo)

    def sample(self, parent_values: Mapping[str, np.ndarray], n: int,
               rng: np.random.Generator) -> tuple[np.ndarray, np.ndarray]:
        """Draw ``n`` values and return ``(values, noise)``."""
        noise = rng.random(n)
        return self.apply(parent_values, noise), noise


class CounterfactualSCM:
    """A discrete SCM with explicit noise, supporting counterfactuals.

    Parameters
    ----------
    graph:
        The causal DAG.
    cpts:
        One :class:`DiscreteCPT` per node.  Each CPT's ``parents`` must
        match the node's parents in ``graph`` (as a set).
    """

    def __init__(self, graph: CausalGraph, cpts: Mapping[str, DiscreteCPT]):
        missing = [n for n in graph.nodes if n not in cpts]
        if missing:
            raise ValueError(f"no CPT for nodes: {missing}")
        for node, cpt in cpts.items():
            if node not in graph:
                raise ValueError(f"CPT for unknown node {node!r}")
            if set(cpt.parents) != set(graph.parents(node)):
                raise ValueError(
                    f"CPT parents {cpt.parents} of {node!r} do not match "
                    f"graph parents {graph.parents(node)}"
                )
        self.graph = graph
        self._cpts = dict(cpts)
        self._order = graph.topological_order()

    # ------------------------------------------------------------------
    # Construction from data
    # ------------------------------------------------------------------
    @classmethod
    def fit(cls, columns: Mapping[str, np.ndarray], graph: CausalGraph,
            laplace: float = 0.5) -> "CounterfactualSCM":
        """Estimate CPTs from discrete observational data.

        Parameters
        ----------
        columns:
            Column name → 1-D array of discrete values; must cover every
            graph node.
        graph:
            The causal DAG over the column names.
        laplace:
            Additive smoothing pseudo-count; keeps every domain value
            reachable so abduction never hits zero-probability evidence.
        """
        missing = [n for n in graph.nodes if n not in columns]
        if missing:
            raise ValueError(f"columns missing for graph nodes: {missing}")
        if laplace <= 0:
            raise ValueError("laplace must be positive")
        cpts = {}
        for node in graph.nodes:
            values = np.asarray(columns[node], dtype=float)
            domain, val_codes = np.unique(values, return_inverse=True)
            parents = tuple(graph.parents(node))
            parent_cols = [np.asarray(columns[p], dtype=float)
                           for p in parents]
            table: dict[tuple, np.ndarray] = {}
            if parents:
                stacked = np.column_stack(parent_cols)
                combos, inverse = np.unique(stacked, axis=0,
                                            return_inverse=True)
                # One bincount over joint (combo, value) codes replaces
                # the per-combo, per-value counting loops.
                counts = np.bincount(
                    inverse * domain.size + val_codes,
                    minlength=combos.shape[0] * domain.size,
                ).reshape(combos.shape[0], domain.size).astype(float)
                counts += laplace
                for j, combo in enumerate(combos):
                    table[_as_key(combo)] = counts[j] / counts[j].sum()
            else:
                counts = (np.bincount(val_codes, minlength=domain.size)
                          .astype(float))
                counts += laplace
                table[()] = counts / counts.sum()
            cpts[node] = DiscreteCPT(parents=parents, domain=domain,
                                     table=table)
        return cls(graph, cpts)

    def cpt(self, node: str) -> DiscreteCPT:
        """Return the CPT of ``node``."""
        return self._cpts[node]

    # ------------------------------------------------------------------
    # Sampling and deterministic evaluation
    # ------------------------------------------------------------------
    def sample_noise(self, n: int, rng: np.random.Generator
                     ) -> NoiseAssignment:
        """Draw fresh exogenous noise for every node."""
        return {node: rng.random(n) for node in self._order}

    def evaluate(self, noise: NoiseAssignment,
                 interventions: Mapping[str, float] | None = None,
                 overrides: Mapping[str, np.ndarray] | None = None,
                 *, base: Mapping[str, np.ndarray] | None = None,
                 ) -> dict[str, np.ndarray]:
        """Push noise through the (possibly mutilated) model.

        Parameters
        ----------
        noise:
            Per-node noise arrays of a common length (as produced by
            :meth:`sample_noise` or :meth:`abduct`).
        interventions:
            Optional ``{node: constant}`` assignments implementing the
            *action* step; intervened nodes ignore parents and noise.
        overrides:
            Optional ``{node: array}`` per-row value assignments.  The
            nested counterfactuals of the Ctf-DE/IE estimands fix
            mediators to the values they took in a *different* world;
            overrides are how those cross-world values are injected.
        base:
            Optional node values from a previous :meth:`evaluate` over
            the *same* noise (e.g. the factual world).  Nodes that are
            neither intervened/overridden nor downstream of an
            intervened/overridden node are copied from ``base`` instead
            of recomputed — exact, because the model is deterministic
            given the noise, and it turns the action–prediction step of
            a counterfactual query into work proportional to the
            affected subgraph only.
        """
        interventions = dict(interventions or {})
        overrides = dict(overrides or {})
        unknown = [k for k in (*interventions, *overrides)
                   if k not in self.graph]
        if unknown:
            raise ValueError(f"cannot intervene on unknown nodes: {unknown}")
        lengths = {arr.shape[0] for arr in noise.values()}
        if len(lengths) != 1:
            raise ValueError(f"noise arrays have differing lengths: {lengths}")
        n = lengths.pop()
        reuse: set[str] = set()
        if base is not None:
            changed = set(interventions) | set(overrides)
            affected = set(changed)
            for node in changed:
                affected |= self.graph.descendants(node)
            reuse = set(self._order) - affected
        values: dict[str, np.ndarray] = {}
        for node in self._order:
            if node in overrides:
                arr = np.asarray(overrides[node], dtype=float)
                if arr.shape != (n,):
                    raise ValueError(
                        f"override for {node!r} has shape {arr.shape}, "
                        f"want ({n},)"
                    )
                values[node] = arr
            elif node in interventions:
                values[node] = np.full(n, float(interventions[node]))
            elif node in reuse:
                if node not in base:
                    raise ValueError(
                        f"base is missing a value for unaffected node "
                        f"{node!r}; pass the full world dict of a "
                        "previous evaluate over the same noise"
                    )
                arr = np.asarray(base[node], dtype=float)
                if arr.shape != (n,):
                    raise ValueError(
                        f"base value for {node!r} has shape {arr.shape}, "
                        f"want ({n},)"
                    )
                values[node] = arr
            else:
                parent_vals = {p: values[p]
                               for p in self.graph.parents(node)}
                values[node] = self._cpts[node].apply(parent_vals, noise[node])
        return values

    def sample(self, n: int, rng: np.random.Generator,
               interventions: Mapping[str, float] | None = None,
               ) -> dict[str, np.ndarray]:
        """Draw ``n`` joint samples (optionally under interventions)."""
        return self.evaluate(self.sample_noise(n, rng), interventions)

    # ------------------------------------------------------------------
    # Abduction and counterfactual prediction
    # ------------------------------------------------------------------
    def abduct(self, evidence: Mapping[str, float], n_particles: int,
               rng: np.random.Generator) -> NoiseAssignment:
        """Sample exogenous noise consistent with a fully observed row.

        With complete evidence, abduction factorises: for each node the
        parents are observed, so the noise posterior is the per-node
        interval posterior of :meth:`DiscreteCPT.abduct`.

        Parameters
        ----------
        evidence:
            ``{node: value}`` covering *every* node of the graph.
        n_particles:
            Number of posterior noise samples to draw.
        rng:
            Randomness source.
        """
        rows = {node: np.full(n_particles, float(value))
                for node, value in evidence.items() if node in self.graph}
        return self.abduct_rows(rows, rng)

    def abduct_rows(self, columns: Mapping[str, np.ndarray],
                    rng: np.random.Generator) -> NoiseAssignment:
        """Batched abduction over many fully observed rows at once.

        The batched counterpart of :meth:`abduct`: each row of
        ``columns`` is a complete evidence assignment, and the returned
        noise arrays hold one posterior draw per row.  To get several
        posterior particles per individual, repeat the rows (e.g. with
        :func:`np.repeat`) before calling — that is how the vectorized
        counterfactual-fairness audit turns ``rows × n_particles``
        per-row abductions into one call per node.

        Parameters
        ----------
        columns:
            ``{node: 1-D array}`` covering *every* node of the graph,
            all of one common length.
        rng:
            Randomness source.
        """
        missing = [n for n in self.graph.nodes if n not in columns]
        if missing:
            raise ValueError(
                f"abduction needs full evidence; missing: {missing} "
                "(use abduct_partial for incomplete rows)"
            )
        cols = {node: np.asarray(columns[node], dtype=float)
                for node in self.graph.nodes}
        lengths = {arr.shape[0] for arr in cols.values()}
        if len(lengths) != 1:
            raise ValueError(
                f"evidence columns have differing lengths: {lengths}")
        noise: NoiseAssignment = {}
        for node in self._order:
            parent_vals = {p: cols[p] for p in self.graph.parents(node)}
            noise[node] = self._cpts[node].abduct(parent_vals, cols[node],
                                                  rng)
        return noise

    def abduct_partial(self, evidence: Mapping[str, float],
                       n_particles: int, rng: np.random.Generator,
                       max_tries: int = 1000) -> NoiseAssignment:
        """Rejection-sample noise consistent with a *partial* row.

        Unobserved nodes get prior noise; observed nodes constrain the
        joint via rejection.  Complexity grows with the evidence
        probability, so this is intended for low-dimensional queries.

        Raises
        ------
        RuntimeError
            If fewer than ``n_particles`` consistent samples are found
            within ``max_tries`` batches.
        """
        observed = {k: float(v) for k, v in evidence.items()
                    if k in self.graph}
        if len(observed) == len(self.graph.nodes):
            return self.abduct(observed, n_particles, rng)
        kept: list[dict[str, float]] = []
        accepted: dict[str, list[np.ndarray]] = {
            node: [] for node in self._order}
        total = 0
        batch = max(n_particles * 4, 256)
        for _ in range(max_tries):
            noise = self.sample_noise(batch, rng)
            values = self.evaluate(noise)
            mask = np.ones(batch, dtype=bool)
            for node, val in observed.items():
                mask &= values[node] == val
            if np.any(mask):
                for node in self._order:
                    accepted[node].append(noise[node][mask])
                total += int(mask.sum())
            if total >= n_particles:
                return {
                    node: np.concatenate(parts)[:n_particles]
                    for node, parts in accepted.items()
                }
        raise RuntimeError(
            f"abduct_partial found only {total}/{n_particles} consistent "
            f"samples for evidence {observed}; kept={len(kept)}"
        )

    def counterfactual(self, evidence: Mapping[str, float],
                       interventions: Mapping[str, float],
                       n_particles: int, rng: np.random.Generator,
                       ) -> dict[str, np.ndarray]:
        """Full abduction–action–prediction for one individual.

        Returns the per-node counterfactual sample ("what this row would
        have looked like under the interventions"), each an array of
        ``n_particles`` draws from the counterfactual posterior.
        """
        noise = self.abduct(evidence, n_particles, rng)
        return self.evaluate(noise, interventions)

    def counterfactual_mean(self, evidence: Mapping[str, float],
                            interventions: Mapping[str, float],
                            outcome: str, n_particles: int,
                            rng: np.random.Generator) -> float:
        """Posterior mean of ``outcome`` in the counterfactual world."""
        cf = self.counterfactual(evidence, interventions, n_particles, rng)
        return float(np.mean(cf[outcome]))

    # ------------------------------------------------------------------
    # Serialization (the artifact-bundle state protocol)
    # ------------------------------------------------------------------
    def get_state(self) -> dict:
        return {"edges": self.graph.edges, "nodes": self.graph.nodes,
                "cpts": self._cpts}

    def set_state(self, state: dict) -> None:
        graph = CausalGraph(state["edges"], nodes=state["nodes"])
        self.__init__(graph, state["cpts"])

    def __repr__(self) -> str:
        return f"CounterfactualSCM({self.graph!r})"
