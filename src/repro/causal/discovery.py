"""Causal structure learning from discrete observational data.

The Zha-Wu repair approaches "exploit a (learned) causal model over the
attributes" (paper Figure 5); when a dataset carries no ground-truth
graph this module recovers one.  The learner is the classic
score/constraint hybrid for a *known node ordering* (sensitive
attributes and exogenous demographics first, label last — the ordering
every benchmark dataset's schema implies): for each node, parents are
selected greedily from its predecessors while the G-test (likelihood-
ratio test of conditional independence) rejects independence.

This is the ordered variant of the PC algorithm's parent search; with a
correct ordering it is consistent, and it needs no orientation phase.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence

import numpy as np
from scipy import stats

from .graph import CausalGraph


def g_test(x: np.ndarray, y: np.ndarray,
           given: np.ndarray | None = None) -> float:
    """p-value of the G-test of (conditional) independence of two
    discrete variables.

    ``given`` is an optional array of stratum ids; the statistic and
    degrees of freedom are summed over strata (the standard CI-test
    construction used by constraint-based structure learners).
    """
    x = np.asarray(x)
    y = np.asarray(y)
    if x.shape != y.shape:
        raise ValueError("x and y must be aligned")
    strata = (np.zeros(len(x), dtype=int) if given is None
              else np.asarray(given))
    g_stat = 0.0
    dof = 0
    for value in np.unique(strata):
        mask = strata == value
        xs, ys = x[mask], y[mask]
        x_values, x_codes = np.unique(xs, return_inverse=True)
        y_values, y_codes = np.unique(ys, return_inverse=True)
        if len(x_values) < 2 or len(y_values) < 2:
            continue
        counts = np.zeros((len(x_values), len(y_values)))
        np.add.at(counts, (x_codes, y_codes), 1)
        total = counts.sum()
        expected = np.outer(counts.sum(1), counts.sum(0)) / total
        observed = counts[counts > 0]
        g_stat += 2.0 * float(np.sum(
            observed * np.log(observed / expected[counts > 0])))
        dof += (len(x_values) - 1) * (len(y_values) - 1)
    if dof == 0:
        return 1.0
    return float(stats.chi2.sf(g_stat, dof))


def _discretise(values: np.ndarray, max_levels: int = 4) -> np.ndarray:
    """Quantile-bucket a column whose domain is large."""
    values = np.asarray(values, dtype=float)
    uniques = np.unique(values)
    if len(uniques) <= max_levels:
        return values
    quantiles = np.quantile(values,
                            np.linspace(0, 1, max_levels + 1)[1:-1])
    return np.searchsorted(np.unique(quantiles), values,
                           side="right").astype(float)


def learn_graph(columns: Mapping[str, np.ndarray], order: Sequence[str],
                alpha: float = 0.01, max_parents: int = 4,
                max_levels: int = 4) -> CausalGraph:
    """Learn a causal DAG over discrete columns given a node ordering.

    Parameters
    ----------
    columns:
        Column name → values (continuous columns are quantile-bucketed
        into ``max_levels`` levels first).
    order:
        Causal node ordering: causes precede effects.  Every learned
        edge points forward in this ordering.
    alpha:
        Significance level of the G-test; a candidate parent is kept
        while it remains dependent at level ``alpha`` conditioned on
        the parents selected so far.
    max_parents:
        Cap on the parent-set size per node (keeps the CI tests
        well-powered on modest samples).
    """
    missing = [name for name in order if name not in columns]
    if missing:
        raise ValueError(f"order names absent from columns: {missing}")
    data = {name: _discretise(columns[name], max_levels)
            for name in order}

    def strata_of(names: list[str]) -> np.ndarray | None:
        if not names:
            return None
        matrix = np.column_stack([data[n] for n in names])
        _, inverse = np.unique(matrix, axis=0, return_inverse=True)
        return inverse

    edges: list[tuple[str, str]] = []
    for i, node in enumerate(order):
        predecessors = list(order[:i])
        parents: list[str] = []
        # Greedy forward selection: repeatedly add the most dependent
        # remaining predecessor until none is significant.
        while predecessors and len(parents) < max_parents:
            p_values = {
                cand: g_test(data[cand], data[node],
                             given=strata_of(parents))
                for cand in predecessors
            }
            best = min(p_values, key=p_values.get)
            if p_values[best] > alpha:
                break
            parents.append(best)
            predecessors.remove(best)
        # Backward elimination: drop any parent that became independent
        # given the rest (greedy forward picks can be screened off by
        # parents selected later, e.g. a chain's grandparent).
        pruned = True
        while pruned and len(parents) > 1:
            pruned = False
            for cand in list(parents):
                rest = [p for p in parents if p != cand]
                if g_test(data[cand], data[node],
                          given=strata_of(rest)) > alpha:
                    parents.remove(cand)
                    pruned = True
        edges.extend((parent, node) for parent in parents)
    return CausalGraph(edges=edges, nodes=order)


def learn_dataset_graph(dataset, alpha: float = 0.01,
                        max_parents: int = 4) -> CausalGraph:
    """Learn a graph for an annotated dataset.

    The ordering places the sensitive attribute first (it is a root in
    all the paper's graphs), then the features in schema order, then
    the label last.
    """
    order = [dataset.sensitive, *dataset.feature_names, dataset.label]
    columns = {name: dataset.table[name] for name in order}
    return learn_graph(columns, order, alpha=alpha,
                       max_parents=max_parents)
