"""Kam-Kar: reject-option classification for demographic parity.

Kamiran, Karim & Zhang (ICDM 2012).  Tuples whose prediction confidence
``max(p, 1−p)`` falls below a threshold θ lie in the *critical region*
around the decision boundary, where discriminatory decisions
concentrate.  Inside that region the prediction is overridden: the
unprivileged group receives the favorable label and the privileged
group the unfavorable one.  θ is tuned on held-in data to the smallest
region achieving demographic parity (paper Appendix B.3.1).
"""

from __future__ import annotations

import numpy as np

from ..base import Notion, PostProcessor


class KamKar(PostProcessor):
    """Reject-option prediction override in the low-confidence region.

    Parameters
    ----------
    parity_target:
        Allowed |P(ŷ=1|S=0) − P(ŷ=1|S=1)| after adjustment.
    n_grid:
        Candidate θ values scanned during fitting.
    """

    notion = Notion.DEMOGRAPHIC_PARITY
    uses_sensitive_feature = True  # the override itself keys on S

    def __init__(self, parity_target: float = 0.02, n_grid: int = 50):
        if not 0 <= parity_target < 1:
            raise ValueError("parity_target must be in [0, 1)")
        self.parity_target = parity_target
        self.n_grid = n_grid
        self.theta_: float | None = None

    @staticmethod
    def _apply(scores: np.ndarray, s: np.ndarray,
               theta: float) -> np.ndarray:
        y_hat = (scores >= 0.5).astype(int)
        confidence = np.maximum(scores, 1 - scores)
        critical = confidence < theta
        y_hat[critical & (s == 0)] = 1
        y_hat[critical & (s == 1)] = 0
        return y_hat

    @staticmethod
    def _parity_gap(y_hat: np.ndarray, s: np.ndarray) -> float:
        if not (s == 0).any() or not (s == 1).any():
            return 0.0
        return abs(float(np.mean(y_hat[s == 0]) - np.mean(y_hat[s == 1])))

    def fit(self, y: np.ndarray, scores: np.ndarray,
            s: np.ndarray) -> "KamKar":
        scores = np.asarray(scores, float)
        s = np.asarray(s).astype(int)
        # Smallest critical region achieving the parity target; if none
        # does, the gap-minimising region (ties -> smaller region, i.e.
        # fewer overridden predictions).
        best_theta = 0.5
        best_gap = np.inf
        for theta in np.linspace(0.5, 1.0, self.n_grid):
            gap = self._parity_gap(self._apply(scores, s, theta), s)
            if gap <= self.parity_target:
                best_theta, best_gap = theta, gap
                break
            if gap < best_gap - 1e-12:
                best_theta, best_gap = theta, gap
        self.theta_ = float(best_theta)
        return self

    def adjust(self, scores: np.ndarray, s: np.ndarray,
               rng: np.random.Generator) -> np.ndarray:
        if self.theta_ is None:
            raise RuntimeError("post-processor not fitted")
        return self._apply(np.asarray(scores, float),
                           np.asarray(s).astype(int), self.theta_)
