"""Post-processing approaches (paper Section 3.3)."""

from .hardt import Hardt
from .kamkar import KamKar
from .omnifair import OmniFair
from .pleiss import Pleiss

__all__ = ["KamKar", "OmniFair", "Hardt", "Pleiss"]
