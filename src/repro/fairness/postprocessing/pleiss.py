"""Pleiss: on fairness and calibration.

Pleiss et al. (NeurIPS 2017).  Given a *calibrated* base classifier,
exact equalized odds is unattainable without breaking calibration; the
relaxation equalises a single cost — here the false-negative rate, i.e.
**equal opportunity**, the variant the paper evaluates (Pleiss-EOp).
The mechanism: for the advantaged group (lower FNR), a random α
fraction of predictions is *withheld* and replaced by the group's base
rate, which raises its cost to match the disadvantaged group while
keeping the scores calibrated (paper Appendix B.3.3).
"""

from __future__ import annotations

import numpy as np

from ..base import Notion, PostProcessor


class Pleiss(PostProcessor):
    """Calibration-preserving equal-opportunity relaxation."""

    notion = Notion.EQUAL_OPPORTUNITY
    uses_sensitive_feature = True

    def __init__(self):
        self.withhold_group_: int | None = None
        self.alpha_: float | None = None
        self.base_rates_: dict[int, float] | None = None

    @staticmethod
    def _fnr(y: np.ndarray, y_hat: np.ndarray, mask: np.ndarray) -> float:
        positives = mask & (y == 1)
        if not positives.any():
            return 0.0
        return float(np.mean(y_hat[positives] == 0))

    def fit(self, y: np.ndarray, scores: np.ndarray,
            s: np.ndarray) -> "Pleiss":
        y = np.asarray(y).astype(int)
        s = np.asarray(s).astype(int)
        scores = np.asarray(scores, float)
        y_hat = (scores >= 0.5).astype(int)

        self.base_rates_ = {g: float(np.mean(y[s == g]))
                            if (s == g).any() else 0.5 for g in (0, 1)}
        fnr = {g: self._fnr(y, y_hat, s == g) for g in (0, 1)}
        # The group with lower FNR is advantaged; withhold its
        # predictions with probability α so its cost rises to match.
        advantaged = 0 if fnr[0] < fnr[1] else 1
        disadvantaged = 1 - advantaged
        base = self.base_rates_[advantaged]
        # Withholding predicts 1 with prob = base rate, whose FNR
        # contribution is (1 − base).  Solve
        #   (1−α)·fnr_adv + α·(1−base) = fnr_dis   for α.
        trivial_fnr = 1.0 - base
        denom = trivial_fnr - fnr[advantaged]
        if abs(denom) < 1e-12:
            alpha = 0.0
        else:
            alpha = (fnr[disadvantaged] - fnr[advantaged]) / denom
        self.alpha_ = float(np.clip(alpha, 0.0, 1.0))
        self.withhold_group_ = advantaged
        return self

    def adjust(self, scores: np.ndarray, s: np.ndarray,
               rng: np.random.Generator) -> np.ndarray:
        if self.alpha_ is None:
            raise RuntimeError("post-processor not fitted")
        s = np.asarray(s).astype(int)
        scores = np.asarray(scores, float)
        y_hat = (scores >= 0.5).astype(int)
        in_group = s == self.withhold_group_
        withheld = in_group & (rng.random(len(s)) < self.alpha_)
        base = self.base_rates_[self.withhold_group_]
        replacement = (rng.random(len(s)) < base).astype(int)
        y_hat[withheld] = replacement[withheld]
        return y_hat
