"""OmniFair-style declarative group fairness (extension approach).

OmniFair (Zhang et al., SIGMOD 2021) — cited by the paper as [100], a
data-management system for *declarative* model-agnostic group fairness:
the user states a metric and a tolerance, and the system finds
group-specific decision thresholds that maximise accuracy subject to
the constraint.  We implement its core mechanism as a post-processor,
so any scored model becomes declaratively fair without retraining.

Given scores on held-in data, :class:`OmniFair` grid-searches a pair of
per-group thresholds ``(t₀, t₁)`` and keeps the accuracy-maximal pair
whose fairness gap is within ``epsilon``:

* ``metric="dp"``   — |P(Ŷ=1|S=0) − P(Ŷ=1|S=1)| ≤ ε (demographic
  parity / statistical parity difference);
* ``metric="tpr"``  — |TPR₀ − TPR₁| ≤ ε (equal opportunity);
* ``metric="fpr"``  — |FPR₀ − FPR₁| ≤ ε (predictive equality).

Thresholding is exactly the class of adjustments Hardt et al. prove
sufficient for post-hoc group fairness, and the declarative
(metric, ε) interface is what distinguishes OmniFair from the fixed-
notion post-processors.
"""

from __future__ import annotations

import numpy as np

from ..base import Notion, PostProcessor, group_masks

__all__ = ["OmniFair"]

_METRIC_NOTION = {
    "dp": Notion.DEMOGRAPHIC_PARITY,
    "tpr": Notion.EQUAL_OPPORTUNITY,
    "fpr": Notion.PREDICTIVE_EQUALITY,
}


class OmniFair(PostProcessor):
    """Declarative per-group thresholding.

    Parameters
    ----------
    metric:
        Constraint family: ``"dp"``, ``"tpr"``, or ``"fpr"``.
    epsilon:
        Maximum allowed absolute gap of the chosen metric.
    n_thresholds:
        Grid resolution per group (the search is
        ``O(n_thresholds²)``; 33² pairs evaluate in microseconds on
        vectorised counts).
    """

    uses_sensitive_feature = True

    def __init__(self, metric: str = "dp", epsilon: float = 0.03,
                 n_thresholds: int = 33):
        if metric not in _METRIC_NOTION:
            raise ValueError(
                f"unknown metric {metric!r}; choose from "
                f"{sorted(_METRIC_NOTION)}")
        if not 0.0 <= epsilon <= 1.0:
            raise ValueError("epsilon must be in [0, 1]")
        if n_thresholds < 2:
            raise ValueError("n_thresholds must be at least 2")
        self.metric = metric
        self.epsilon = epsilon
        self.n_thresholds = n_thresholds
        self.notion = _METRIC_NOTION[metric]
        self.thresholds_: tuple[float, float] | None = None

    @property
    def name(self) -> str:
        return f"OmniFair-{self.metric}"

    # ------------------------------------------------------------------
    def _gap(self, y: np.ndarray, pred: np.ndarray, mask: np.ndarray
             ) -> float:
        """The group's rate under the declared metric."""
        if self.metric == "dp":
            base = mask
        elif self.metric == "tpr":
            base = mask & (y == 1)
        else:  # fpr
            base = mask & (y == 0)
        if not np.any(base):
            return float("nan")
        return float(np.mean(pred[base]))

    def fit(self, y: np.ndarray, scores: np.ndarray,
            s: np.ndarray) -> "OmniFair":
        y = np.asarray(y).astype(int)
        scores = np.asarray(scores, dtype=float)
        s = np.asarray(s).astype(int)
        if not (y.shape == scores.shape == s.shape):
            raise ValueError("y, scores, s must be aligned")
        unpriv, priv = group_masks(s)
        if not (np.any(unpriv) and np.any(priv)):
            raise ValueError("both sensitive groups must be present")

        grid = np.linspace(0.0, 1.0, self.n_thresholds)
        best: tuple[float, float] | None = None
        best_acc = -1.0
        fallback: tuple[float, float] = (0.5, 0.5)
        fallback_gap = np.inf
        for t0 in grid:
            pred0 = (scores >= t0).astype(int)
            for t1 in grid:
                pred = np.where(unpriv, pred0, (scores >= t1).astype(int))
                gap = abs(self._gap(y, pred, unpriv)
                          - self._gap(y, pred, priv))
                if np.isnan(gap):
                    continue
                acc = float(np.mean(pred == y))
                if gap <= self.epsilon and acc > best_acc:
                    best_acc, best = acc, (float(t0), float(t1))
                if gap < fallback_gap:
                    fallback_gap, fallback = gap, (float(t0), float(t1))
        # Infeasible ε: fall back to the fairest pair (OmniFair reports
        # infeasibility; we pick the closest feasible point instead of
        # failing, and record it).
        self.thresholds_ = best if best is not None else fallback
        self.feasible_ = best is not None
        return self

    def adjust(self, scores: np.ndarray, s: np.ndarray,
               rng: np.random.Generator) -> np.ndarray:
        if self.thresholds_ is None:
            raise RuntimeError("OmniFair is not fitted")
        scores = np.asarray(scores, dtype=float)
        s = np.asarray(s).astype(int)
        t0, t1 = self.thresholds_
        return np.where(s == 0, scores >= t0, scores >= t1).astype(int)
