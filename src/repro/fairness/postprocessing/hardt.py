"""Hardt: equality of opportunity in supervised learning.

Hardt, Price & Srebro (NeurIPS 2016).  A derived predictor
``ỹ = g(ŷ, S)`` replaces the base prediction: for each sensitive group
``s`` and base prediction ``ŷ ∈ {0, 1}`` a mixing probability
``p_{s,ŷ} = P(ỹ=1 | ŷ, S=s)`` is chosen.  Group-conditional TPR and
FPR are *linear* in these four probabilities, so the loss-minimising
predictor satisfying equalized odds is the solution of a linear
program, solved here with :func:`scipy.optimize.linprog` (paper
Appendix B.3.2).
"""

from __future__ import annotations

import numpy as np
from scipy import optimize

from ..base import Notion, PostProcessor


class Hardt(PostProcessor):
    """Equalized-odds post-processing by the derived-predictor LP."""

    notion = Notion.EQUALIZED_ODDS
    uses_sensitive_feature = True

    def __init__(self):
        # p_[s][yhat] = P(ỹ=1 | ŷ=yhat, S=s)
        self.mix_: dict[tuple[int, int], float] | None = None

    def fit(self, y: np.ndarray, scores: np.ndarray,
            s: np.ndarray) -> "Hardt":
        y = np.asarray(y).astype(int)
        s = np.asarray(s).astype(int)
        y_hat = (np.asarray(scores, float) >= 0.5).astype(int)

        # Base-rate statistics per group: P(ŷ=1 | y, s).
        def rate(s_val: int, y_val: int) -> float:
            cell = (s == s_val) & (y == y_val)
            if not cell.any():
                return 0.5
            return float(np.mean(y_hat[cell]))

        # Variables x = [p_{0,0}, p_{0,1}, p_{1,0}, p_{1,1}].
        def tpr_coeffs(s_val: int) -> np.ndarray:
            """TPR_s(x) = x_{s,0} (1−r) + x_{s,1} r with r = P(ŷ=1|y=1,s)."""
            r = rate(s_val, 1)
            coeffs = np.zeros(4)
            coeffs[2 * s_val] = 1 - r
            coeffs[2 * s_val + 1] = r
            return coeffs

        def fpr_coeffs(s_val: int) -> np.ndarray:
            r = rate(s_val, 0)
            coeffs = np.zeros(4)
            coeffs[2 * s_val] = 1 - r
            coeffs[2 * s_val + 1] = r
            return coeffs

        # Expected loss is linear in x: for each (s, ŷ) cell, predicting
        # 1 with prob x costs FP mass among y=0 and saves FN among y=1.
        cost = np.zeros(4)
        n = len(y)
        for s_val in (0, 1):
            for hat in (0, 1):
                cell = (s == s_val) & (y_hat == hat)
                n_pos = float(np.sum(cell & (y == 1)))
                n_neg = float(np.sum(cell & (y == 0)))
                # P(ỹ=1) in this cell costs n_neg (FPs) and avoids n_pos FNs.
                cost[2 * s_val + hat] = (n_neg - n_pos) / n

        # Equality constraints: TPR_0 = TPR_1 and FPR_0 = FPR_1.
        a_eq = np.vstack([tpr_coeffs(0) - tpr_coeffs(1),
                          fpr_coeffs(0) - fpr_coeffs(1)])
        b_eq = np.zeros(2)
        result = optimize.linprog(cost, A_eq=a_eq, b_eq=b_eq,
                                  bounds=[(0, 1)] * 4, method="highs")
        if not result.success:
            # Degenerate group statistics: fall back to identity mixing.
            x = np.array([0.0, 1.0, 0.0, 1.0])
        else:
            x = result.x
        self.mix_ = {(s_val, hat): float(x[2 * s_val + hat])
                     for s_val in (0, 1) for hat in (0, 1)}
        return self

    def adjust(self, scores: np.ndarray, s: np.ndarray,
               rng: np.random.Generator) -> np.ndarray:
        if self.mix_ is None:
            raise RuntimeError("post-processor not fitted")
        s = np.asarray(s).astype(int)
        y_hat = (np.asarray(scores, float) >= 0.5).astype(int)
        p = np.array([self.mix_[(int(sv), int(hv))]
                      for sv, hv in zip(s, y_hat)])
        return (rng.random(len(p)) < p).astype(int)
