"""Celis: classification with fairness constraints (meta-algorithm).

Celis et al. (FAT* 2019).  A single framework covers many group-fairness
notions by writing each as linear constraints ``min_i q_i(f) ≥
τ · max_i q_i(f)`` on group-performance functions ``q_i`` and solving
the Lagrangian dual.  The key structural fact (their Theorem 3.1) is
that the optimal classifier for the dual is a **group-dependent
threshold on the regression function** ``η(x) = P(Y=1 | x)``; solving
the program therefore reduces to fitting ``η`` and then choosing the
two group thresholds by dual ascent / direct search.

The evaluated variant, Celis-PP, enforces **predictive parity** via the
false-discovery-rate functions ``q_i = P(Y=0 | ŷ=1, g_i)`` with
τ = 0.8 (paper Appendix B.2).
"""

from __future__ import annotations

import numpy as np

from ...datasets.dataset import Dataset
from ...models.logistic import LogisticRegression
from ..base import InProcessor, Notion


class Celis(InProcessor):
    """Lagrangian meta-algorithm with FDR-parity constraints (Celis-PP).

    Parameters
    ----------
    tau:
        Performance-ratio tolerance (paper setting 0.8; 1.0 = exact
        parity).
    n_grid:
        Threshold-grid resolution of the dual search.
    l2:
        Regularisation of the internal regression function.
    """

    notion = Notion.PREDICTIVE_PARITY
    uses_sensitive_feature = True

    def __init__(self, tau: float = 0.8, n_grid: int = 41, l2: float = 1.0):
        if not 0 < tau <= 1:
            raise ValueError("tau must be in (0, 1]")
        self.tau = tau
        self.n_grid = n_grid
        self.l2 = l2
        self.model_: LogisticRegression | None = None
        self.thresholds_: tuple[float, float] | None = None

    @staticmethod
    def _fdr(y: np.ndarray, y_hat: np.ndarray, mask: np.ndarray) -> float:
        """False discovery rate P(Y=0 | ŷ=1) within a group."""
        positives = mask & (y_hat == 1)
        if not positives.any():
            return 0.0
        return float(np.mean(y[positives] == 0))

    def _constraint_ok(self, y, y_hat, s) -> bool:
        q = [1.0 - self._fdr(y, y_hat, s == g) for g in (0, 1)]
        lo, hi = min(q), max(q)
        return hi == 0 or lo / hi >= self.tau

    def fit(self, train: Dataset, X: np.ndarray) -> "Celis":
        Xs = np.column_stack([np.asarray(X, float),
                              train.s.astype(float)])
        y = train.y
        s = train.s
        self.model_ = LogisticRegression(l2=self.l2).fit(Xs, y)
        scores = self.model_.predict_proba(Xs)

        # Dual solution = group thresholds; search the grid for the
        # feasible pair with minimum error (ties break toward the
        # unconstrained thresholds 0.5/0.5).
        grid = np.linspace(0.05, 0.95, self.n_grid)
        best: tuple[float, float] | None = None
        best_error = np.inf
        for t0 in grid:
            pred0 = scores >= t0
            for t1 in grid:
                y_hat = np.where(s == 0, pred0, scores >= t1).astype(int)
                if not self._constraint_ok(y, y_hat, s):
                    continue
                error = float(np.mean(y_hat != y))
                tie_break = abs(t0 - 0.5) + abs(t1 - 0.5)
                if error < best_error - 1e-12 or (
                        abs(error - best_error) <= 1e-12 and best is not None
                        and tie_break < abs(best[0] - 0.5)
                        + abs(best[1] - 0.5)):
                    best, best_error = (float(t0), float(t1)), error
        if best is None:
            best = (0.5, 0.5)  # infeasible grid: fall back to plain LR
        self.thresholds_ = best
        return self

    def predict_proba(self, X: np.ndarray, s: np.ndarray) -> np.ndarray:
        if self.model_ is None:
            raise RuntimeError("model not fitted")
        Xs = np.column_stack([np.asarray(X, float), np.asarray(s, float)])
        return self.model_.predict_proba(Xs)

    def predict(self, X: np.ndarray, s: np.ndarray) -> np.ndarray:
        if self.thresholds_ is None:
            raise RuntimeError("model not fitted")
        scores = self.predict_proba(X, s)
        s = np.asarray(s).astype(int)
        thresholds = np.where(s == 0, self.thresholds_[0],
                              self.thresholds_[1])
        return (scores >= thresholds).astype(int)
