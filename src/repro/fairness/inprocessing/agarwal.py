"""Agarwal: a reductions approach to fair classification.

Agarwal et al. (ICML 2018).  Fair classification under moment
constraints is reduced to a sequence of cost-sensitive problems: a
Lagrange multiplier vector λ is updated by **exponentiated gradient**
on the constraint violations, the learner best-responds with a
classifier trained on λ-induced per-example costs, and the final
predictor is the uniform randomisation over the iterates (paper
Appendix B.4).  Two variants are evaluated: :class:`AgarwalDP`
(demographic parity) and :class:`AgarwalEO` (equalized odds).
"""

from __future__ import annotations

import numpy as np

from ...datasets.dataset import Dataset
from ...models.logistic import LogisticRegression
from ..base import InProcessor, Notion


class _AgarwalBase(InProcessor):
    """Exponentiated-gradient reduction machinery.

    Parameters
    ----------
    epsilon:
        Allowed constraint slack.
    n_rounds:
        Exponentiated-gradient iterations (each trains one model).
    eta:
        Multiplier learning rate.
    bound:
        λ-ball radius B of the original (caps total multiplier mass).
    """

    uses_sensitive_feature = False

    def __init__(self, epsilon: float = 0.02, n_rounds: int = 10,
                 eta: float = 2.0, bound: float = 20.0, l2: float = 1.0):
        self.epsilon = epsilon
        self.n_rounds = n_rounds
        self.eta = eta
        self.bound = bound
        self.l2 = l2
        self.models_: list[LogisticRegression] | None = None

    # -- notion-specific moments ----------------------------------------
    def _moments(self, y_hat: np.ndarray, y: np.ndarray,
                 s: np.ndarray) -> np.ndarray:
        """Signed constraint violations g_j(h) (one per constraint)."""
        raise NotImplementedError

    def _costs(self, lambdas: np.ndarray, y: np.ndarray,
               s: np.ndarray) -> np.ndarray:
        """Per-example additive cost of predicting 1, induced by λ."""
        raise NotImplementedError

    # -------------------------------------------------------------------
    def _n_constraints(self) -> int:
        raise NotImplementedError

    def fit(self, train: Dataset, X: np.ndarray) -> "_AgarwalBase":
        X = np.asarray(X, float)
        y = train.y
        s = train.s
        n = len(y)
        k = self._n_constraints()
        # λ lives on the positive orthant; exponentiated-gradient keeps
        # log-weights.  Two entries per moment (±) encode |g| ≤ ε.
        log_lambda = np.zeros(2 * k)
        self.models_ = []

        for _ in range(self.n_rounds):
            lam = np.exp(log_lambda)
            total = lam.sum()
            if total > self.bound:
                lam *= self.bound / total
            signed = lam[:k] - lam[k:]

            # Best response: weighted classification where predicting 1
            # on example i costs its λ-induced amount.  Realised by
            # label-dependent sample weights on a logistic learner.
            costs = self._costs(signed, y, s)
            weights = np.ones(n)
            flipped = y.copy()
            # cost > 0 discourages ŷ=1 → emphasise the 0-label;
            # cost < 0 encourages ŷ=1 → emphasise the 1-label.
            pos_cost = costs > 0
            weights[pos_cost & (y == 0)] += costs[pos_cost & (y == 0)]
            neg_cost = costs < 0
            weights[neg_cost & (y == 1)] += -costs[neg_cost & (y == 1)]
            model = LogisticRegression(l2=self.l2)
            model.fit(X, flipped, sample_weight=weights)
            self.models_.append(model)

            # Multiplier update on the *ensemble so far*.
            y_hat = self._ensemble_predict(X, s)
            g = self._moments(y_hat, y, s)
            grad = np.concatenate([g - self.epsilon, -g - self.epsilon])
            log_lambda += self.eta * grad
            log_lambda = np.clip(log_lambda, -30, 30)
        return self

    def _ensemble_predict(self, X: np.ndarray, s: np.ndarray) -> np.ndarray:
        votes = np.zeros(X.shape[0])
        for model in self.models_:
            votes += model.predict(X)
        return (votes / len(self.models_) >= 0.5).astype(int)

    def predict_proba(self, X: np.ndarray, s: np.ndarray) -> np.ndarray:
        if not self.models_:
            raise RuntimeError("model not fitted")
        X = np.asarray(X, float)
        votes = np.zeros(X.shape[0])
        for model in self.models_:
            votes += model.predict(X)
        return votes / len(self.models_)

    def predict(self, X: np.ndarray, s: np.ndarray) -> np.ndarray:
        return (self.predict_proba(X, s) >= 0.5).astype(int)


class AgarwalDP(_AgarwalBase):
    """Reductions with the demographic-parity moment
    ``g = P(ŷ=1|S=1) − P(ŷ=1|S=0)``."""

    notion = Notion.DEMOGRAPHIC_PARITY

    def _n_constraints(self) -> int:
        return 1

    def _moments(self, y_hat, y, s):
        return np.array([float(np.mean(y_hat[s == 1])
                               - np.mean(y_hat[s == 0]))])

    def _costs(self, signed, y, s):
        lam = signed[0]
        n1 = max(np.mean(s == 1), 1e-12)
        n0 = max(np.mean(s == 0), 1e-12)
        return np.where(s == 1, lam / n1, -lam / n0)


class AgarwalEO(_AgarwalBase):
    """Reductions with the two equalized-odds moments (TPR and FPR
    disparities)."""

    notion = Notion.EQUALIZED_ODDS

    def _n_constraints(self) -> int:
        return 2

    def _moments(self, y_hat, y, s):
        gaps = []
        for label in (1, 0):
            cells = [(s == g) & (y == label) for g in (0, 1)]
            if cells[0].any() and cells[1].any():
                gaps.append(float(np.mean(y_hat[cells[1]])
                                  - np.mean(y_hat[cells[0]])))
            else:
                gaps.append(0.0)
        return np.array(gaps)

    def _costs(self, signed, y, s):
        costs = np.zeros(len(y))
        for j, label in enumerate((1, 0)):
            lam = signed[j]
            for g, sign in ((1, +1), (0, -1)):
                cell = (s == g) & (y == label)
                share = max(np.mean(cell), 1e-12)
                costs[cell] += sign * lam / share
        return costs
