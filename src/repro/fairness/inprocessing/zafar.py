"""Zafar: fairness constraints via decision-boundary covariance.

Zafar et al. (AISTATS 2017 / WWW 2017).  The signed distance from the
decision boundary, ``d_θ(x)``, is used as a convex proxy for the
prediction, and fairness violations are modelled by the empirical
covariance between ``S`` and that distance:

    cov = (1/n) Σ_t (s_t − s̄) · d_θ(x_t)

Three variants are evaluated (paper Figure 5):

* :class:`ZafarDPFair` — maximise accuracy subject to ``|cov| ≤ c``
  (demographic parity as the constraint).
* :class:`ZafarDPAcc` — minimise ``|cov|`` subject to the log-loss not
  exceeding ``(1 + γ)`` times the unconstrained optimum (accuracy as
  the constraint).
* :class:`ZafarEOFair` — like DPFair but the covariance is taken over
  a *misclassification proxy* ``g_θ(x) = max(0, −ỹ d_θ(x))`` (ỹ ∈ ±1),
  which targets equalized odds / disparate mistreatment.

The original solves these with cvxpy/DCCP; here the identical
objectives are solved with the quadratic-penalty method of
:mod:`repro.optim.convex`.  The sensitive attribute is used only inside
the constraints — never as a model feature — so all variants trivially
satisfy the ID metric, as the paper observes.
"""

from __future__ import annotations

import numpy as np

from ...datasets.dataset import Dataset
from ...models.base import add_intercept, sigmoid
from ...optim.convex import minimize_penalty
from ..base import InProcessor, Notion


def _log_loss_and_grad(theta: np.ndarray, Xb: np.ndarray, y: np.ndarray,
                       l2: float) -> tuple[float, np.ndarray]:
    z = Xb @ theta
    p = sigmoid(z)
    eps = 1e-12
    value = float(-np.mean(y * np.log(p + eps)
                           + (1 - y) * np.log(1 - p + eps)))
    value += 0.5 * l2 * float(theta[:-1] @ theta[:-1]) / len(y)
    grad = Xb.T @ (p - y) / len(y)
    grad[:-1] += l2 * theta[:-1] / len(y)
    return value, grad


class _ZafarBase(InProcessor):
    """Shared boundary-covariance machinery."""

    uses_sensitive_feature = False

    def __init__(self, covariance_bound: float = 1e-3, l2: float = 1e-4,
                 max_outer: int = 6):
        self.covariance_bound = covariance_bound
        self.l2 = l2
        self.max_outer = max_outer
        self.theta_: np.ndarray | None = None

    # -- covariance proxies --------------------------------------------
    @staticmethod
    def _cov_and_grad(theta: np.ndarray, Xb: np.ndarray,
                      s_centered: np.ndarray) -> tuple[float, np.ndarray]:
        """Covariance between S and the signed boundary distance."""
        value = float(s_centered @ (Xb @ theta) / len(s_centered))
        grad = Xb.T @ s_centered / len(s_centered)
        return value, grad

    def predict(self, X: np.ndarray, s: np.ndarray) -> np.ndarray:
        if self.theta_ is None:
            raise RuntimeError("model not fitted")
        return (add_intercept(np.asarray(X, float)) @ self.theta_
                >= 0).astype(int)

    def predict_proba(self, X: np.ndarray, s: np.ndarray) -> np.ndarray:
        if self.theta_ is None:
            raise RuntimeError("model not fitted")
        return sigmoid(add_intercept(np.asarray(X, float)) @ self.theta_)


class ZafarDPFair(_ZafarBase):
    """Maximise accuracy under a demographic-parity covariance bound."""

    notion = Notion.DEMOGRAPHIC_PARITY

    def fit(self, train: Dataset, X: np.ndarray) -> "ZafarDPFair":
        Xb = add_intercept(np.asarray(X, float))
        y = train.y.astype(float)
        s_centered = train.s.astype(float) - train.s.mean()
        c = self.covariance_bound

        loss = lambda t: _log_loss_and_grad(t, Xb, y, self.l2)

        def upper(t):
            v, g = self._cov_and_grad(t, Xb, s_centered)
            return v - c, g

        def lower(t):
            v, g = self._cov_and_grad(t, Xb, s_centered)
            return -v - c, -g

        result = minimize_penalty(loss, [upper, lower],
                                  np.zeros(Xb.shape[1]),
                                  n_outer=self.max_outer)
        self.theta_ = result.theta
        return self


class ZafarDPAcc(_ZafarBase):
    """Minimise DP covariance under a bounded accuracy compromise.

    Parameters
    ----------
    gamma:
        Allowed relative loss increase over the unconstrained optimum
        (the paper's "constraint on accuracy").
    """

    notion = Notion.DEMOGRAPHIC_PARITY

    def __init__(self, gamma: float = 0.05, **kwargs):
        super().__init__(**kwargs)
        if gamma < 0:
            raise ValueError("gamma must be non-negative")
        self.gamma = gamma

    def fit(self, train: Dataset, X: np.ndarray) -> "ZafarDPAcc":
        Xb = add_intercept(np.asarray(X, float))
        y = train.y.astype(float)
        s_centered = train.s.astype(float) - train.s.mean()

        # Stage 1: unconstrained optimum fixes the loss budget.
        base = minimize_penalty(
            lambda t: _log_loss_and_grad(t, Xb, y, self.l2), [],
            np.zeros(Xb.shape[1]), n_outer=1)
        budget = base.objective * (1.0 + self.gamma)

        # Stage 2: minimise cov² subject to loss ≤ budget.
        def cov_sq(t):
            v, g = self._cov_and_grad(t, Xb, s_centered)
            return v * v, 2 * v * g

        def loss_constraint(t):
            v, g = _log_loss_and_grad(t, Xb, y, self.l2)
            return v - budget, g

        result = minimize_penalty(cov_sq, [loss_constraint], base.theta,
                                  n_outer=self.max_outer)
        self.theta_ = result.theta
        return self


class ZafarEOFair(_ZafarBase):
    """Maximise accuracy under an equalized-odds covariance bound.

    The covariance proxy uses only misclassified tuples via the hinge
    ``g_θ(x) = max(0, −ỹ d_θ(x))`` of the original's disparate-
    mistreatment formulation.
    """

    notion = Notion.EQUALIZED_ODDS

    def fit(self, train: Dataset, X: np.ndarray) -> "ZafarEOFair":
        Xb = add_intercept(np.asarray(X, float))
        y = train.y.astype(float)
        y_signed = 2 * y - 1
        s_centered = train.s.astype(float) - train.s.mean()
        c = self.covariance_bound
        n = len(y)

        loss = lambda t: _log_loss_and_grad(t, Xb, y, self.l2)

        def mis_cov(t):
            d = Xb @ t
            g_theta = np.maximum(0.0, -y_signed * d)
            value = float(s_centered @ g_theta / n)
            active = (-y_signed * d) > 0
            grad = Xb.T @ (s_centered * active * (-y_signed)) / n
            return value, grad

        def upper(t):
            v, g = mis_cov(t)
            return v - c, g

        def lower(t):
            v, g = mis_cov(t)
            return -v - c, -g

        result = minimize_penalty(loss, [upper, lower],
                                  np.zeros(Xb.shape[1]),
                                  n_outer=self.max_outer)
        self.theta_ = result.theta
        return self
