"""Kearns: preventing fairness gerrymandering (GerryFair).

Kearns et al. (ICML 2018).  The learner and an auditor play a zero-sum
game by fictitious play: each round the auditor finds the subgroup with
the largest (weighted) false-positive-rate disparity versus the whole
population, and the learner best-responds with a cost-sensitive
classifier whose per-row costs include the accumulated Lagrange
penalties of the violated subgroups.  The final classifier is the
uniform randomisation over all rounds' models (paper Appendix B.2;
the evaluated variant enforces **predictive equality**, i.e. FPR
parity, with γ = 0.005).

Subgroups here are the conjunctions definable over the sensitive
attribute — with one binary ``S`` these are ``{S=0}`` and ``{S=1}`` —
matching the paper's configuration that defines subgroups over the
sensitive attribute(s).
"""

from __future__ import annotations

import numpy as np

from ...datasets.dataset import Dataset
from ...models.base import add_intercept, sigmoid
from ...models.logistic import LogisticRegression
from ..base import InProcessor, Notion


class Kearns(InProcessor):
    """GerryFair-style fictitious play for FPR-parity (Kearns-PE).

    Parameters
    ----------
    gamma:
        Allowed γ-weighted subgroup disparity (paper: 0.005).
    n_rounds:
        Fictitious-play rounds (each adds one model to the ensemble).
    penalty_step:
        Lagrange multiplier increment per violated subgroup round.
    """

    notion = Notion.PREDICTIVE_EQUALITY
    uses_sensitive_feature = True

    def __init__(self, gamma: float = 0.005, n_rounds: int = 40,
                 penalty_step: float = 0.3):
        if gamma < 0:
            raise ValueError("gamma must be non-negative")
        self.gamma = gamma
        self.n_rounds = n_rounds
        self.penalty_step = penalty_step
        self.models_: list[LogisticRegression] | None = None
        self._with_sensitive = True

    @staticmethod
    def _fpr(y: np.ndarray, scores: np.ndarray,
             mask: np.ndarray) -> float:
        negatives = mask & (y == 0)
        if not negatives.any():
            return 0.0
        return float(np.mean(scores[negatives]))

    def fit(self, train: Dataset, X: np.ndarray) -> "Kearns":
        Xs = np.column_stack([np.asarray(X, float),
                              train.s.astype(float)])
        y = train.y
        s = train.s
        n = len(y)
        subgroups = [s == 0, s == 1]
        multipliers = np.zeros(len(subgroups))

        self.models_ = []
        ensemble_scores = np.zeros(n)
        for round_idx in range(self.n_rounds):
            # Learner best-response: cost-sensitive weights where the
            # auditor's penalties raise the cost of false positives in
            # the flagged subgroups.
            weights = np.ones(n)
            for g_idx, mask in enumerate(subgroups):
                if multipliers[g_idx] == 0:
                    continue
                affected = mask & (y == 0)
                weights[affected] += multipliers[g_idx]
            model = LogisticRegression(l2=1.0)
            model.fit(Xs, y, sample_weight=weights)
            self.models_.append(model)

            # Auditor: measure ensemble FPR disparities so far.
            ensemble_scores = ((ensemble_scores * round_idx
                                + model.predict(Xs)) / (round_idx + 1))
            overall_fpr = self._fpr(y, ensemble_scores, np.ones(n, bool))
            worst_gap = 0.0
            worst_idx = -1
            worst_sign = 0.0
            for g_idx, mask in enumerate(subgroups):
                share = float(np.mean(mask))
                signed = self._fpr(y, ensemble_scores, mask) - overall_fpr
                gap = share * abs(signed)
                if gap > worst_gap:
                    worst_gap, worst_idx = gap, g_idx
                    worst_sign = np.sign(signed)
            if worst_gap <= self.gamma:
                break
            # Fictitious-play multiplier step: raise the FP penalty of a
            # subgroup whose FPR exceeds the population's, relax it when
            # the penalty overshot (multipliers stay non-negative).
            multipliers[worst_idx] = max(
                0.0, multipliers[worst_idx]
                + worst_sign * self.penalty_step)
        return self

    def predict_proba(self, X: np.ndarray, s: np.ndarray) -> np.ndarray:
        if not self.models_:
            raise RuntimeError("model not fitted")
        Xs = np.column_stack([np.asarray(X, float), np.asarray(s, float)])
        votes = np.zeros(Xs.shape[0])
        for model in self.models_:
            votes += model.predict(Xs)
        return votes / len(self.models_)

    def predict(self, X: np.ndarray, s: np.ndarray) -> np.ndarray:
        return (self.predict_proba(X, s) >= 0.5).astype(int)
