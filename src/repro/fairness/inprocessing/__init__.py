"""In-processing approaches (paper Section 3.2 + Agarwal from B.4)."""

from .agarwal import AgarwalDP, AgarwalEO
from .celis import Celis
from .kearns import Kearns
from .thomas import ThomasDP, ThomasEO
from .zafar import ZafarDPAcc, ZafarDPFair, ZafarEOFair
from .zhale import ZhaLe

__all__ = ["ZafarDPFair", "ZafarDPAcc", "ZafarEOFair", "ZhaLe", "Kearns",
           "Celis", "ThomasDP", "ThomasEO", "AgarwalDP", "AgarwalEO"]
