"""Kamishima et al.'s prejudice remover (extension approach).

The paper's related-work discussion cites Kamishima et al. [47]
("fairness-aware classifier with prejudice remover regularizer") as an
approach subsumed by the evaluated ones.  We implement it anyway as an
extension, because it is the canonical *regularisation* in-processor —
a qualitatively different mechanism from Zafar's constraints and
Zha-Le's adversary.

The model is logistic regression whose loss adds ``eta`` times the
*prejudice index*: the empirical mutual information between the
predicted label and the sensitive attribute,

    PI = Σ_i Σ_{ŷ∈{0,1}} P(ŷ|x_i) · ln( P̂(ŷ|s_i) / P̂(ŷ) ),

where the group/overall positive rates are the means of the model's
probabilities.  ``eta = 0`` recovers plain logistic regression; larger
``eta`` trades accuracy for independence of ``Ŷ`` from ``S``.  The
gradient of PI is derived analytically (including the dependence of
the group means on every sample) and optimised with full-batch
gradient descent.
"""

from __future__ import annotations

import numpy as np

from ...datasets.dataset import Dataset
from ...models.base import add_intercept, sigmoid
from ..base import InProcessor, Notion

__all__ = ["Kamishima"]

_EPS = 1e-9


def _prejudice_index(p: np.ndarray, s: np.ndarray
                     ) -> tuple[float, np.ndarray]:
    """Return ``(PI, dPI/dp)`` for probabilities ``p`` and groups ``s``.

    The derivative accounts for both the direct ``p_i`` terms and the
    indirect dependence through the group and population means.
    """
    n = p.shape[0]
    m = float(np.mean(p))
    m = min(max(m, _EPS), 1 - _EPS)
    grad = np.zeros(n)
    pi = 0.0

    # Direct terms and group-mean chain terms, per group.
    for group in (0, 1):
        mask = s == group
        n_g = int(mask.sum())
        if n_g == 0:
            continue
        m_g = float(np.mean(p[mask]))
        m_g = min(max(m_g, _EPS), 1 - _EPS)
        p_g = p[mask]
        pi += float(np.sum(p_g * np.log(m_g / m)
                           + (1 - p_g) * np.log((1 - m_g) / (1 - m))))
        # ∂PI/∂p_i (direct): ln(m_g/m) − ln((1−m_g)/(1−m)).
        grad[mask] += np.log(m_g / m) - np.log((1 - m_g) / (1 - m))
        # ∂PI/∂m_g · ∂m_g/∂p_i = [Σ_j∈g p_j/m_g − (1−p_j)/(1−m_g)] / n_g.
        d_mg = float(np.sum(p_g / m_g - (1 - p_g) / (1 - m_g))) / n_g
        grad[mask] += d_mg

    # ∂PI/∂m · ∂m/∂p_i = −[Σ_j p_j/m − (1−p_j)/(1−m)] / n for every i.
    d_m = -float(np.sum(p / m - (1 - p) / (1 - m))) / n
    grad += d_m
    return pi, grad


class Kamishima(InProcessor):
    """Prejudice-remover logistic regression.

    Parameters
    ----------
    eta:
        Weight of the prejudice-index regulariser (0 = plain LR;
        the original paper explores 0–100, with useful values ~1–30).
    l2:
        Standard L2 weight penalty.
    learning_rate, max_iter:
        Full-batch gradient-descent controls.
    """

    notion = Notion.DEMOGRAPHIC_PARITY
    uses_sensitive_feature = True

    def __init__(self, eta: float = 5.0, l2: float = 0.01,
                 learning_rate: float = 0.5, max_iter: int = 400):
        if eta < 0:
            raise ValueError("eta must be non-negative")
        self.eta = eta
        self.l2 = l2
        self.learning_rate = learning_rate
        self.max_iter = max_iter
        self.coef_: np.ndarray | None = None

    @property
    def name(self) -> str:
        return "Kamishima-pr"

    # ------------------------------------------------------------------
    def fit(self, train: Dataset, X: np.ndarray) -> "Kamishima":
        s = train.s
        y = train.y.astype(float)
        A = add_intercept(np.column_stack([X, s.astype(float)]))
        n, d = A.shape
        w = np.zeros(d)
        rate = self.learning_rate
        prev_loss = np.inf
        for _ in range(self.max_iter):
            p = sigmoid(A @ w)
            log_loss = -float(np.mean(
                y * np.log(np.clip(p, _EPS, 1))
                + (1 - y) * np.log(np.clip(1 - p, _EPS, 1))))
            pi, dpi_dp = _prejudice_index(p, s)
            loss = log_loss + self.eta * pi / n + self.l2 * float(w @ w) / 2

            grad_ll = A.T @ (p - y) / n
            grad_pi = A.T @ (dpi_dp * p * (1 - p)) / n
            grad = grad_ll + self.eta * grad_pi + self.l2 * w
            w = w - rate * grad
            if loss > prev_loss + 1e-4:
                rate *= 0.5          # diverging: back off the step size
            if abs(prev_loss - loss) < 1e-8:
                break
            prev_loss = loss
        self.coef_ = w
        return self

    # ------------------------------------------------------------------
    def _scores(self, X: np.ndarray, s: np.ndarray) -> np.ndarray:
        if self.coef_ is None:
            raise RuntimeError("Kamishima is not fitted")
        A = add_intercept(np.column_stack([X, np.asarray(s, float)]))
        return sigmoid(A @ self.coef_)

    def predict(self, X: np.ndarray, s: np.ndarray) -> np.ndarray:
        return (self._scores(X, s) >= 0.5).astype(int)

    def predict_proba(self, X: np.ndarray, s: np.ndarray) -> np.ndarray:
        return self._scores(X, s)
