"""Thomas: Seldonian algorithms (preventing undesirable behaviour).

Thomas et al. (Science 2019).  A Seldonian algorithm splits the
training data into a *candidate-selection* part ``D1`` and a *safety*
part ``D2``.  Candidate parameters are optimised on ``D1`` with a
barrier for the *predicted* high-confidence upper bound of the fairness
violation; the candidate is returned only if the actual upper bound
computed on ``D2`` — via Hoeffding's inequality at confidence
``1 − δ`` — clears the threshold.  If no candidate passes, the
algorithm returns **No Solution Found**, realised here as the trivial
constant classifier (which satisfies any group-rate parity exactly),
matching the original's fallback semantics.

Two variants are evaluated (paper Figure 5): :class:`ThomasDP`
(demographic parity) and :class:`ThomasEO` (equalized odds); δ = 0.05.
"""

from __future__ import annotations

import numpy as np
from scipy import optimize

from ...datasets.dataset import Dataset
from ...models.base import add_intercept, sigmoid
from ..base import InProcessor, Notion


def hoeffding_offset(n: int, delta: float) -> float:
    """One-sided Hoeffding deviation for a mean of ``n`` [0,1] samples."""
    if n <= 0:
        return float("inf")
    return float(np.sqrt(np.log(1.0 / delta) / (2 * n)))


def t_offset(p0: float, n0: int, p1: float, n1: int, delta: float) -> float:
    """One-sided Student-t deviation for a difference of two Bernoulli
    means — the tighter of the two concentration inequalities the
    original Seldonian framework supports (Hoeffding or t-test)."""
    from scipy import stats

    if n0 <= 1 or n1 <= 1:
        return float("inf")
    se = np.sqrt(max(p0 * (1 - p0), 1e-4) / n0
                 + max(p1 * (1 - p1), 1e-4) / n1)
    return float(stats.t.ppf(1 - delta, min(n0, n1) - 1) * se)


class _ThomasBase(InProcessor):
    """Shared Seldonian candidate-selection / safety-test machinery."""

    uses_sensitive_feature = False

    def __init__(self, threshold: float = 0.10, delta: float = 0.05,
                 candidate_fraction: float = 0.6, barrier: float = 10.0,
                 seed: int = 0):
        if not 0 < candidate_fraction < 1:
            raise ValueError("candidate_fraction must be in (0, 1)")
        self.threshold = threshold
        self.delta = delta
        self.candidate_fraction = candidate_fraction
        self.barrier = barrier
        self.seed = seed
        self.theta_: np.ndarray | None = None
        self.no_solution_: bool = False
        self.constant_: int = 0

    # -- per-notion violation measure ----------------------------------
    def _violation(self, y_hat: np.ndarray, y: np.ndarray,
                   s: np.ndarray) -> tuple[float, float]:
        """Return ``(violation, t_offset)`` on hard predictions."""
        raise NotImplementedError

    def _soft_violation(self, p: np.ndarray, y: np.ndarray,
                        s: np.ndarray) -> float:
        """Differentiable violation on probabilities (for the barrier)."""
        raise NotImplementedError

    # -------------------------------------------------------------------
    def fit(self, train: Dataset, X: np.ndarray) -> "_ThomasBase":
        rng = np.random.default_rng(self.seed)
        n = train.n_rows
        perm = rng.permutation(n)
        n1 = int(n * self.candidate_fraction)
        d1, d2 = perm[:n1], perm[n1:]

        Xb = add_intercept(np.asarray(X, float))
        y = train.y.astype(float)
        s = train.s

        def objective(theta: np.ndarray) -> float:
            logits = Xb[d1] @ theta
            p = sigmoid(logits)
            eps = 1e-12
            loss = -np.mean(y[d1] * np.log(p + eps)
                            + (1 - y[d1]) * np.log(1 - p + eps))
            # Barrier on the *predicted* safety-test outcome: the
            # candidate bound adds the Hoeffding offset D2 will apply.
            # The violation proxy uses a sharpened sigmoid so it tracks
            # the thresholded predictions the safety test will measure.
            # The candidate uses a doubled (inflated) offset, as in the
            # original, so candidates that barely pass are not selected
            # only to fail the safety test.
            p_sharp = sigmoid(8.0 * logits)
            predicted = (self._soft_violation(p_sharp, y[d1], s[d1])
                         + 2 * hoeffding_offset(len(d2), self.delta))
            overshoot = max(0.0, predicted - self.threshold)
            return float(loss + self.barrier * overshoot)

        # The barrier term is piecewise smooth; L-BFGS-B with numerical
        # gradients matches the original's CMA-ES/BFGS candidate search
        # at a fraction of the cost.  If the candidate fails the safety
        # test the barrier is escalated and candidate selection retried
        # (the original's interface loop).
        self.no_solution_ = True
        initial_barrier = self.barrier
        # Warm-start candidate selection from the unconstrained MLE —
        # the barrier then carves the fair region out of a good basin.
        from ...models.logistic import LogisticRegression

        warm = LogisticRegression().fit(X, train.y)
        theta = np.concatenate([warm.coef_, [warm.intercept_]])
        for _ in range(4):
            result = optimize.minimize(objective, theta, method="L-BFGS-B",
                                       options={"maxiter": 80})
            theta = result.x
            # Safety test on D2 with the t-based high-confidence bound.
            y_hat = (Xb[d2] @ theta >= 0).astype(int)
            violation, offset = self._violation(
                y_hat, y[d2].astype(int), s[d2])
            bound = violation + offset
            if bound <= self.threshold:
                self.theta_ = theta
                self.no_solution_ = False
                break
            self.barrier *= 10.0  # escalate and re-select a candidate
        self.barrier = initial_barrier
        if self.no_solution_:
            # No Solution Found → constant (majority) classifier, which
            # has zero group disparity by construction.
            self.theta_ = None
            self.constant_ = int(round(float(np.mean(y))))
        return self

    def predict(self, X: np.ndarray, s: np.ndarray) -> np.ndarray:
        if self.no_solution_:
            return np.full(np.asarray(X).shape[0], self.constant_, dtype=int)
        if self.theta_ is None:
            raise RuntimeError("model not fitted")
        return (add_intercept(np.asarray(X, float)) @ self.theta_
                >= 0).astype(int)

    def predict_proba(self, X: np.ndarray, s: np.ndarray) -> np.ndarray:
        if self.no_solution_:
            return np.full(np.asarray(X).shape[0], float(self.constant_))
        if self.theta_ is None:
            raise RuntimeError("model not fitted")
        return sigmoid(add_intercept(np.asarray(X, float)) @ self.theta_)


class ThomasDP(_ThomasBase):
    """Seldonian classifier bounding the demographic-parity violation.

    The statistic is the ratio form ``1 − min(p0, p1)/max(p0, p1)``
    (one minus the paper's DI*), with default threshold 0.2 — i.e. the
    returned classifier certifies DI* ≥ 0.8 with high confidence.  The
    ratio statistic (rather than the raw difference) is what makes
    Thomas-dp trade large amounts of accuracy for near-perfect DI on
    datasets whose positive rate is low, the behaviour the paper
    reports on Adult.
    """

    notion = Notion.DEMOGRAPHIC_PARITY

    def __init__(self, threshold: float = 0.2, **kwargs):
        super().__init__(threshold=threshold, **kwargs)

    @staticmethod
    def _ratio_violation(rate0: float, rate1: float) -> float:
        hi = max(rate0, rate1)
        if hi <= 0:
            return 0.0
        return 1.0 - min(rate0, rate1) / hi

    def _violation(self, y_hat, y, s):
        masks = (s == 0, s == 1)
        if not masks[0].any() or not masks[1].any():
            return 0.0, 0.0
        rates = [float(np.mean(y_hat[m])) for m in masks]
        # For the ratio statistic a Hoeffding deviation on the smaller
        # group's rate is used directly as the (conservative-in-
        # practice) confidence offset.
        offset = hoeffding_offset(int(min(m.sum() for m in masks)),
                                  self.delta)
        return self._ratio_violation(rates[0], rates[1]), offset

    def _soft_violation(self, p, y, s):
        masks = (s == 0, s == 1)
        if not masks[0].any() or not masks[1].any():
            return 0.0
        return self._ratio_violation(float(np.mean(p[masks[0]])),
                                     float(np.mean(p[masks[1]])))


class ThomasEO(_ThomasBase):
    """Seldonian classifier bounding the equalized-odds gap (max of the
    TPR and TNR disparities).  The default threshold (0.15) reflects
    what the Student-t interval can certify on the small ``(S, Y)``
    cells of the benchmark datasets."""

    notion = Notion.EQUALIZED_ODDS

    def __init__(self, threshold: float = 0.15, **kwargs):
        super().__init__(threshold=threshold, **kwargs)

    @staticmethod
    def _group_rate(values: np.ndarray, mask: np.ndarray) -> float:
        return float(np.mean(values[mask])) if mask.any() else 0.0

    def _violation(self, y_hat, y, s):
        gaps = []
        offsets = []
        for label in (1, 0):
            cells = [(s == g) & (y == label) for g in (0, 1)]
            if not cells[0].any() or not cells[1].any():
                continue
            rates = [float(np.mean(y_hat[c] == label)) for c in cells]
            gaps.append(abs(rates[1] - rates[0]))
            offsets.append(t_offset(rates[0], int(cells[0].sum()),
                                    rates[1], int(cells[1].sum()),
                                    self.delta))
        if not gaps:
            return 0.0, 0.0
        worst = int(np.argmax(gaps))
        return gaps[worst], offsets[worst]

    def _soft_violation(self, p, y, s):
        gaps = []
        for label in (1, 0):
            cells = [(s == g) & (y == label) for g in (0, 1)]
            if not cells[0].any() or not cells[1].any():
                continue
            target = p if label == 1 else 1 - p
            rates = [float(np.mean(target[c])) for c in cells]
            gaps.append(abs(rates[1] - rates[0]))
        return max(gaps) if gaps else 0.0
