"""Zha-Le: mitigating unwanted bias with adversarial learning.

Zhang, Lemoine & Mitchell (AIES 2018).  A logistic classifier
``f(X, S) → ŷ`` and a logistic adversary ``a(ŷ_logit[, Y]) → ŝ`` are
trained together by simultaneous gradient descent.  The classifier's
update direction removes the component aligned with the adversary's
gradient and additionally pushes *against* it, so at convergence the
prediction carries no information about ``S`` beyond what the target
notion allows — equalized odds here, where the adversary also sees
``Y`` (paper Appendix B.2).
"""

from __future__ import annotations

import numpy as np

from ...datasets.dataset import Dataset
from ...models.base import add_intercept, sigmoid
from ..base import InProcessor, Notion


class ZhaLe(InProcessor):
    """Adversarial debiasing for equalized odds.

    Parameters
    ----------
    adversary_weight:
        α — strength of the adversarial term in the classifier update.
    epochs, learning_rate, batch_size:
        SGD schedule (shared by classifier and adversary).
    seed:
        Initialisation/shuffling seed.
    """

    notion = Notion.EQUALIZED_ODDS
    uses_sensitive_feature = True  # f(X, S) per the original

    def __init__(self, adversary_weight: float = 1.0, epochs: int = 60,
                 learning_rate: float = 0.05, batch_size: int = 64,
                 seed: int = 0):
        self.adversary_weight = adversary_weight
        self.epochs = epochs
        self.learning_rate = learning_rate
        self.batch_size = batch_size
        self.seed = seed
        self.w_: np.ndarray | None = None       # classifier weights
        self.w_adv_: np.ndarray | None = None   # adversary weights

    def _classifier_inputs(self, X: np.ndarray,
                           s: np.ndarray) -> np.ndarray:
        return add_intercept(np.column_stack([np.asarray(X, float),
                                              np.asarray(s, float)]))

    @staticmethod
    def _adversary_inputs(logits: np.ndarray, y: np.ndarray) -> np.ndarray:
        # ŷ logit, ŷ·Y interaction, and Y — the EO adversary's view.
        return np.column_stack([logits, logits * y, y,
                                np.ones(len(logits))])

    def fit(self, train: Dataset, X: np.ndarray) -> "ZhaLe":
        rng = np.random.default_rng(self.seed)
        Xb = self._classifier_inputs(X, train.s)
        y = train.y.astype(float)
        s = train.s.astype(float)
        n, d = Xb.shape
        w = rng.normal(0, 0.01, size=d)
        w_adv = np.zeros(4)
        lr = self.learning_rate

        for epoch in range(self.epochs):
            order = rng.permutation(n)
            alpha = self.adversary_weight
            for start in range(0, n, self.batch_size):
                idx = order[start:start + self.batch_size]
                xb, yb, sb = Xb[idx], y[idx], s[idx]
                logits = xb @ w
                p = sigmoid(logits)

                # Adversary step: predict S from (logit, Y).
                adv_in = self._adversary_inputs(logits, yb)
                p_adv = sigmoid(adv_in @ w_adv)
                g_adv = adv_in.T @ (p_adv - sb) / len(idx)
                w_adv -= lr * g_adv

                # Classifier step: descend task loss, subtract the
                # projection onto the adversary's gradient, then push
                # against it (the original's three-term update).
                g_task = xb.T @ (p - yb) / len(idx)
                # Adversary loss gradient wrt classifier weights, via
                # the logit: ∂L_adv/∂logit · ∂logit/∂w.
                dadv_dlogit = (p_adv - sb) * (w_adv[0] + w_adv[1] * yb)
                g_adv_w = xb.T @ dadv_dlogit / len(idx)
                norm = np.linalg.norm(g_adv_w)
                if norm > 1e-12:
                    unit = g_adv_w / norm
                    projection = (g_task @ unit) * unit
                else:
                    projection = 0.0
                w -= lr * (g_task - projection - alpha * g_adv_w)
        self.w_ = w
        self.w_adv_ = w_adv
        return self

    def decision_function(self, X: np.ndarray, s: np.ndarray) -> np.ndarray:
        if self.w_ is None:
            raise RuntimeError("model not fitted")
        return self._classifier_inputs(X, s) @ self.w_

    def predict(self, X: np.ndarray, s: np.ndarray) -> np.ndarray:
        return (self.decision_function(X, s) >= 0).astype(int)

    def predict_proba(self, X: np.ndarray, s: np.ndarray) -> np.ndarray:
        return sigmoid(self.decision_function(X, s))
