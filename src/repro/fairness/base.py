"""Stage interfaces for fair classification approaches.

The paper groups every approach by the pipeline stage where its
fairness-enforcing mechanism applies (Section 3):

* :class:`Preprocessor` — repairs the *training data* before a
  downstream model is fitted; optionally also transforms test data
  (Feld and Calmon do, the others do not).
* :class:`InProcessor` — a complete fair classifier that replaces the
  model; consumes the annotated dataset directly.
* :class:`PostProcessor` — adjusts the score output of an
  already-trained classifier using only ``(score, S)`` (and ``Y`` at
  fit time).

The experiment pipeline (:mod:`repro.pipeline`) composes these into the
uniform flow ``repair → encode → model → adjust`` so every variant is
measured identically.
"""

from __future__ import annotations

import abc
import enum

import numpy as np

from ..datasets.dataset import Dataset


class Stage(enum.Enum):
    """Pipeline stage at which a fairness mechanism applies."""

    PRE = "pre-processing"
    IN = "in-processing"
    POST = "post-processing"


class Notion(enum.Enum):
    """Fairness notions targeted by the evaluated approaches (Figure 5)."""

    DEMOGRAPHIC_PARITY = "demographic parity"
    EQUALIZED_ODDS = "equalized odds"
    EQUAL_OPPORTUNITY = "equal opportunity"
    PREDICTIVE_EQUALITY = "predictive equality"
    PREDICTIVE_PARITY = "predictive parity"
    PATH_SPECIFIC_FAIRNESS = "path-specific fairness"
    DIRECT_CAUSAL_EFFECT = "direct causal effect"
    JUSTIFIABLE_FAIRNESS = "justifiable fairness"


class FairApproach(abc.ABC):
    """Common metadata shared by all stages."""

    #: Pipeline stage of the mechanism.
    stage: Stage
    #: The notion the variant optimises for (drawn as ↑ in the figures).
    notion: Notion
    #: Whether the downstream/internal model receives ``S`` as a feature.
    #: Approaches that discard it trivially satisfy the ID metric
    #: (Section 4.2, "Post-processing approaches tend to violate ID").
    uses_sensitive_feature: bool = True

    @property
    def name(self) -> str:
        return type(self).__name__


class Preprocessor(FairApproach):
    """Data-repair approaches (paper Section 3.1)."""

    stage = Stage.PRE

    @abc.abstractmethod
    def repair(self, train: Dataset) -> Dataset:
        """Return a repaired copy of the training data."""

    def transform(self, test: Dataset) -> Dataset:
        """Transform evaluation data.

        Default: identity.  Only the approaches that, per the paper,
        modify both training and test data (Feld, Calmon) override it.
        """
        return test


class InProcessor(FairApproach):
    """Constraint-in-the-objective approaches (paper Section 3.2).

    An in-processor is itself the classifier: it consumes an annotated
    dataset and produces predictions for (encoded) feature matrices,
    with the sensitive column passed separately so the ID metric can
    intervene on it.
    """

    stage = Stage.IN

    @abc.abstractmethod
    def fit(self, train: Dataset, X: np.ndarray) -> "InProcessor":
        """Train on the dataset; ``X`` is its encoded feature matrix."""

    @abc.abstractmethod
    def predict(self, X: np.ndarray, s: np.ndarray) -> np.ndarray:
        """Hard predictions for encoded features + sensitive column."""

    def predict_proba(self, X: np.ndarray, s: np.ndarray) -> np.ndarray:
        """Positive-class scores; defaults to the hard predictions."""
        return self.predict(X, s).astype(float)


class PostProcessor(FairApproach):
    """Prediction-adjustment approaches (paper Section 3.3)."""

    stage = Stage.POST

    @abc.abstractmethod
    def fit(self, y: np.ndarray, scores: np.ndarray,
            s: np.ndarray) -> "PostProcessor":
        """Learn the adjustment from held-in labels, scores, and S."""

    @abc.abstractmethod
    def adjust(self, scores: np.ndarray, s: np.ndarray,
               rng: np.random.Generator) -> np.ndarray:
        """Map base-classifier scores to adjusted hard predictions.

        Randomised adjustments (Kam-Kar, Pleiss) draw from ``rng`` so
        experiments stay reproducible.
        """


def group_masks(s: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Boolean masks ``(unprivileged, privileged)`` for a 0/1 column."""
    s = np.asarray(s).astype(int)
    return s == 0, s == 1
