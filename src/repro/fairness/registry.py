"""Registry of all evaluated fair-classification variants.

Maps the paper's variant names (Figure 5 plus the appendix's three
additional approaches) to factories, so experiments and benchmarks can
enumerate approaches uniformly.  Factories accept a ``seed`` keyword
where the underlying approach is randomised.
"""

from __future__ import annotations

from collections.abc import Callable

from .base import FairApproach, Stage
from .inprocessing.agarwal import AgarwalDP, AgarwalEO
from .inprocessing.celis import Celis
from .inprocessing.kamishima import Kamishima
from .inprocessing.kearns import Kearns
from .inprocessing.thomas import ThomasDP, ThomasEO
from .inprocessing.zafar import ZafarDPAcc, ZafarDPFair, ZafarEOFair
from .inprocessing.zhale import ZhaLe
from .postprocessing.hardt import Hardt
from .postprocessing.kamkar import KamKar
from .postprocessing.omnifair import OmniFair
from .postprocessing.pleiss import Pleiss
from .preprocessing.calders import CaldersVerwer
from .preprocessing.calmon import Calmon
from .preprocessing.feld import Feld
from .preprocessing.kamcal import KamCal
from .preprocessing.madras import Madras
from .preprocessing.salimi import SalimiMatFac, SalimiMaxSAT
from .preprocessing.zhawu import ZhaWuDCE, ZhaWuPSF

Factory = Callable[..., FairApproach]

#: The 18 variants of the paper's main evaluation (Figure 5), keyed by
#: the paper's names.
MAIN_APPROACHES: dict[str, Factory] = {
    # pre-processing
    "KamCal-dp": lambda seed=0: KamCal(seed=seed),
    "Feld-dp": lambda seed=0: Feld(lam=1.0),
    "Calmon-dp": lambda seed=0: Calmon(seed=seed),
    "ZhaWu-psf": lambda seed=0: ZhaWuPSF(epsilon=0.05, seed=seed),
    "ZhaWu-dce": lambda seed=0: ZhaWuDCE(tau=0.05, seed=seed),
    "Salimi-jf-maxsat": lambda seed=0: SalimiMaxSAT(seed=seed),
    "Salimi-jf-matfac": lambda seed=0: SalimiMatFac(seed=seed),
    # in-processing
    "Zafar-dp-fair": lambda seed=0: ZafarDPFair(),
    "Zafar-dp-acc": lambda seed=0: ZafarDPAcc(),
    "Zafar-eo-fair": lambda seed=0: ZafarEOFair(),
    "ZhaLe-eo": lambda seed=0: ZhaLe(seed=seed),
    "Kearns-pe": lambda seed=0: Kearns(gamma=0.005),
    "Celis-pp": lambda seed=0: Celis(tau=0.8),
    "Thomas-dp": lambda seed=0: ThomasDP(delta=0.05, seed=seed),
    "Thomas-eo": lambda seed=0: ThomasEO(delta=0.05, seed=seed),
    # post-processing
    "KamKar-dp": lambda seed=0: KamKar(),
    "Hardt-eo": lambda seed=0: Hardt(),
    "Pleiss-eop": lambda seed=0: Pleiss(),
}

#: The three additional variants of the paper's Appendix B.4.
ADDITIONAL_APPROACHES: dict[str, Factory] = {
    "Madras-dp": lambda seed=0: Madras(seed=seed),
    "Agarwal-dp": lambda seed=0: AgarwalDP(),
    "Agarwal-eo": lambda seed=0: AgarwalEO(),
}

#: Extension variants beyond the paper's evaluation: approaches the
#: paper cites as related work ([14] massaging, [47] prejudice remover)
#: that exercise mechanisms the evaluated set lacks.
EXTENSION_APPROACHES: dict[str, Factory] = {
    "CaldersVerwer-dp": lambda seed=0: CaldersVerwer(level=1.0),
    "Kamishima-pr": lambda seed=0: Kamishima(eta=5.0),
    "OmniFair-dp": lambda seed=0: OmniFair(metric="dp", epsilon=0.03),
}

ALL_APPROACHES: dict[str, Factory] = {**MAIN_APPROACHES,
                                      **ADDITIONAL_APPROACHES,
                                      **EXTENSION_APPROACHES}


def make_approach(name: str, seed: int = 0) -> FairApproach:
    """Instantiate a variant by its paper name."""
    if name not in ALL_APPROACHES:
        raise KeyError(
            f"unknown approach {name!r}; choose from {sorted(ALL_APPROACHES)}")
    return ALL_APPROACHES[name](seed=seed)


def approaches_by_stage(stage: Stage,
                        include_additional: bool = False) -> list[str]:
    """Names of all registered variants operating at a given stage."""
    pool = ALL_APPROACHES if include_additional else MAIN_APPROACHES
    return [name for name, factory in pool.items()
            if factory().stage is stage]
