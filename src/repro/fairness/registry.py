"""Deprecated approach-dict shim over :mod:`repro.registry`.

The dictionaries ``MAIN_APPROACHES`` / ``ADDITIONAL_APPROACHES`` /
``EXTENSION_APPROACHES`` / ``ALL_APPROACHES`` were the original
registry of fair-classification variants (dicts of ``lambda seed=0:``
factories).  The unified component registry replaced them — every
variant now lives in :data:`repro.registry.APPROACHES` with declared
defaults and an explicit stochastic flag — but the dicts remain
importable here, with a :class:`DeprecationWarning`, so existing code
keeps working.  :func:`make_approach` and :func:`approaches_by_stage`
are stable API and delegate to the registry without a warning.
"""

from __future__ import annotations

import warnings

from .base import FairApproach, Stage

__all__ = ["ADDITIONAL_APPROACHES", "ALL_APPROACHES",
           "EXTENSION_APPROACHES", "MAIN_APPROACHES",
           "approaches_by_stage", "make_approach"]

#: Deprecated dict name -> registry ``group`` filter (None = all).
_DEPRECATED_DICTS = {
    "MAIN_APPROACHES": "main",
    "ADDITIONAL_APPROACHES": "additional",
    "EXTENSION_APPROACHES": "extension",
    "ALL_APPROACHES": None,
}


class _RegistryFactory:
    """Seed-accepting factory mimicking the old ``lambda seed=0:``
    entries (the registry decides whether the seed is actually used)."""

    __slots__ = ("key",)

    def __init__(self, key: str):
        self.key = key

    def __call__(self, seed: int = 0) -> FairApproach:
        from ..registry import APPROACHES
        return APPROACHES.build(self.key, seed=seed)

    def __repr__(self) -> str:
        return f"_RegistryFactory({self.key!r})"


def _approach_dict(group: str | None) -> dict[str, _RegistryFactory]:
    from ..registry import APPROACHES
    keys = (APPROACHES.keys() if group is None
            else APPROACHES.keys(group=group))
    return {key: _RegistryFactory(key) for key in keys}


#: Built once per dict on first access, so repeated accesses return
#: the *same* object — legacy code that mutated MAIN_APPROACHES keeps
#: seeing its additions.
_DICT_CACHE: dict[str, dict] = {}


def __getattr__(name: str):
    if name in _DEPRECATED_DICTS:
        warnings.warn(
            f"repro.fairness.registry.{name} is deprecated; use "
            "repro.registry.APPROACHES (string keys + parameters) "
            "instead", DeprecationWarning, stacklevel=2)
        if name not in _DICT_CACHE:
            _DICT_CACHE[name] = _approach_dict(_DEPRECATED_DICTS[name])
        return _DICT_CACHE[name]
    raise AttributeError(
        f"module {__name__!r} has no attribute {name!r}")


def make_approach(name: str, seed: int = 0, **params) -> FairApproach:
    """Instantiate a variant by its paper name (registry-backed).

    The seed reaches the factory only for stochastic variants; extra
    keyword parameters override the registry defaults.
    """
    from ..registry import APPROACHES
    return APPROACHES.build(name, seed=seed, **params)


def approaches_by_stage(stage: Stage,
                        include_additional: bool = False) -> list[str]:
    """Names of all registered variants operating at a given stage."""
    from ..registry import APPROACHES
    keys = (APPROACHES.keys() if include_additional
            else APPROACHES.keys(group="main"))
    return [key for key in keys
            if APPROACHES.get(key).metadata["stage"] is stage]
