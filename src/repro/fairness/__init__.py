"""Fair classification approaches: the paper's 13 approaches and 21
evaluated variants, grouped by fairness-enforcing stage.

Variants are registered in :data:`repro.registry.APPROACHES`; the
legacy dicts (``MAIN_APPROACHES`` …) remain importable here with a
deprecation warning."""

from .base import (FairApproach, InProcessor, Notion, PostProcessor,
                   Preprocessor, Stage, group_masks)
from .registry import approaches_by_stage, make_approach

_DEPRECATED_DICTS = ("MAIN_APPROACHES", "ADDITIONAL_APPROACHES",
                     "EXTENSION_APPROACHES", "ALL_APPROACHES")

__all__ = [
    "Stage", "Notion", "FairApproach", "Preprocessor", "InProcessor",
    "PostProcessor", "group_masks",
    "MAIN_APPROACHES", "ADDITIONAL_APPROACHES", "EXTENSION_APPROACHES",
    "ALL_APPROACHES",
    "make_approach", "approaches_by_stage",
]


def __getattr__(name: str):
    if name in _DEPRECATED_DICTS:
        from . import registry
        return getattr(registry, name)  # warns in registry.__getattr__
    raise AttributeError(
        f"module {__name__!r} has no attribute {name!r}")
