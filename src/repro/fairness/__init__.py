"""Fair classification approaches: the paper's 13 approaches and 21
evaluated variants, grouped by fairness-enforcing stage."""

from .base import (FairApproach, InProcessor, Notion, PostProcessor,
                   Preprocessor, Stage, group_masks)
from .registry import (ADDITIONAL_APPROACHES, ALL_APPROACHES,
                       EXTENSION_APPROACHES, MAIN_APPROACHES,
                       approaches_by_stage, make_approach)

__all__ = [
    "Stage", "Notion", "FairApproach", "Preprocessor", "InProcessor",
    "PostProcessor", "group_masks",
    "MAIN_APPROACHES", "ADDITIONAL_APPROACHES", "EXTENSION_APPROACHES",
    "ALL_APPROACHES",
    "make_approach", "approaches_by_stage",
]
