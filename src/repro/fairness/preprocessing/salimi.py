"""Salimi: causal database repair for justifiable fairness.

Salimi et al. (SIGMOD 2019, "Capuchin").  Justifiable fairness requires
the label to be conditionally independent of the *inadmissible*
attributes ``I`` given the *admissible* ones ``A`` — equivalently, the
training database must satisfy the multi-valued dependency

    D = Π_{A,Y}(D) ⋈ Π_{A,I}(D)

(uniform-distribution form).  The repair inserts/deletes tuples until,
within every admissible stratum ``a``, the joint counts of ``(I, Y)``
factorise into the product of their marginals.

Two solver back-ends mirror the paper's variants:

* :class:`SalimiMaxSAT` — the per-stratum integral rounding of the
  independent completion is posed as a small weighted MaxSAT problem
  (one variable per cell: round up vs down; soft clauses weigh the
  repair cost of each choice) and solved exactly, exactly in the spirit
  of the original's reduction of minimal repair to MaxSAT.
* :class:`SalimiMatFac` — within each stratum, the ``|I| × |Y|`` count
  matrix is replaced by its best **rank-1** non-negative factorisation;
  a rank-1 contingency table *is* an independent one, so the NMF
  reconstruction is the matrix-factorisation repair of the original.

Both then materialise the target counts by deleting surplus tuples and
duplicating existing ones for deficits (the insertion side of the
original's insert/delete repair, restricted to duplicating observed
tuples so no synthetic attribute combinations appear).
"""

from __future__ import annotations

import numpy as np

from ...datasets.dataset import Dataset
from ...datasets.encoding import discretize_dataset
from ...optim.matfac import nmf
from ...optim.maxsat import MaxSatInstance, solve_maxsat
from ..base import Notion, Preprocessor


def _encode_rows(dataset: Dataset, columns: list[str]) -> np.ndarray:
    if not columns:
        return np.zeros(dataset.n_rows, dtype=int)
    matrix = np.column_stack(
        [dataset.table[c].astype(float) for c in columns])
    _, inverse = np.unique(matrix, axis=0, return_inverse=True)
    return inverse


def _round_counts_maxsat(target: np.ndarray, total: int,
                         seed: int) -> np.ndarray:
    """Round a fractional count matrix to integers summing to ``total``.

    Each cell gets a boolean "round up" variable.  Soft unit clauses
    weigh the rounding error of each direction; additional soft clauses
    penalise global drift from ``total`` by pushing the number of
    round-ups toward the exact fractional residue.
    """
    flat = target.ravel()
    floors = np.floor(flat)
    residues = flat - floors
    n = flat.size
    need_up = int(round(residues.sum()))
    instance = MaxSatInstance(n_vars=n)
    for i in range(n):
        # Rounding up costs (1 − residue); down costs residue.
        instance.add_clause([+(i + 1)], weight=float(residues[i]))
        instance.add_clause([-(i + 1)], weight=float(1.0 - residues[i]))
    solution = solve_maxsat(instance, seed=seed)
    ups = np.array([solution.value(i + 1) for i in range(n)])
    # Enforce the cardinality side exactly with a greedy correction on
    # the MaxSAT assignment (the instance's soft clauses already pull
    # toward it, so corrections are tiny).
    diff = int(ups.sum()) - need_up
    if diff > 0:
        order = np.argsort(residues)  # drop least-deserving ups
        for i in order:
            if diff == 0:
                break
            if ups[i]:
                ups[i] = False
                diff -= 1
    elif diff < 0:
        order = np.argsort(-residues)
        for i in order:
            if diff == 0:
                break
            if not ups[i]:
                ups[i] = True
                diff += 1
    return (floors + ups).astype(int).reshape(target.shape)


def _round_counts_matfac(counts: np.ndarray, seed: int) -> np.ndarray:
    """Rank-1 NMF reconstruction of a contingency table, rescaled and
    stochastically rounded to integers with the same grand total."""
    total = counts.sum()
    if total == 0:
        return counts.astype(int)
    result = nmf(counts.astype(float), rank=1, n_iter=500, seed=seed)
    recon = result.reconstruct()
    recon *= total / max(recon.sum(), 1e-12)
    return _round_counts_maxsat(recon, int(total), seed)


class _SalimiBase(Preprocessor):
    """Shared stratified insert/delete repair machinery."""

    notion = Notion.JUSTIFIABLE_FAIRNESS
    uses_sensitive_feature = True

    def __init__(self, seed: int = 0, max_stratum_cells: int = 64,
                 n_bins: int = 3):
        self.seed = seed
        self.max_stratum_cells = max_stratum_cells
        self.n_bins = n_bins

    def repair(self, train: Dataset) -> Dataset:
        admissible = [f for f in train.feature_names
                      if f in train.admissible]
        inadmissible = [f for f in train.feature_names
                        if f not in train.admissible]
        inadmissible.append(train.sensitive)

        # Stratify on a coarse discretised view: the MVD is an
        # integrity constraint over discrete domains, so continuous
        # attributes are bucketed (the original also discretises).
        coarse = discretize_dataset(train, n_bins=self.n_bins)
        a_ids = _encode_rows(coarse, admissible)
        i_ids = _encode_rows(coarse, inadmissible)
        y = train.y
        rng = np.random.default_rng(self.seed)

        keep_indices: list[np.ndarray] = []
        for stratum, a_val in enumerate(np.unique(a_ids)):
            in_stratum = a_ids == a_val
            local_i = i_ids[in_stratum]
            i_values, local_i = np.unique(local_i, return_inverse=True)
            rows = np.flatnonzero(in_stratum)
            n_i = len(i_values)
            counts = np.zeros((n_i, 2))
            for r, iv, yv in zip(rows, local_i, y[in_stratum]):
                counts[iv, yv] += 1
            if counts.sum() <= 1 or n_i == 1:
                keep_indices.append(rows)
                continue
            if n_i * 2 > self.max_stratum_cells:
                # Oversized stratum: fall back to the independent
                # completion without combinatorial rounding.
                target = np.outer(counts.sum(1), counts.sum(0)) / counts.sum()
                target = np.round(target).astype(int)
            else:
                marginal = (np.outer(counts.sum(1), counts.sum(0))
                            / counts.sum())
                target = self._target_counts_from(
                    counts, marginal, seed=self.seed + stratum)
            keep_indices.append(self._materialise(
                rows, local_i, y[in_stratum], counts, target, rng))

        all_rows = np.concatenate(keep_indices) if keep_indices else \
            np.arange(train.n_rows)
        return train.take(np.sort(all_rows))

    def _target_counts_from(self, counts: np.ndarray, marginal: np.ndarray,
                            seed: int) -> np.ndarray:
        raise NotImplementedError

    @staticmethod
    def _materialise(rows: np.ndarray, local_i: np.ndarray, y: np.ndarray,
                     counts: np.ndarray, target: np.ndarray,
                     rng: np.random.Generator) -> np.ndarray:
        """Delete/duplicate rows per cell to reach the target counts."""
        kept: list[np.ndarray] = []
        for iv in range(counts.shape[0]):
            for yv in (0, 1):
                members = rows[(local_i == iv) & (y == yv)]
                want = int(target[iv, yv])
                have = members.size
                if have == 0 or want == have:
                    if have:
                        kept.append(members)
                    continue
                if want < have:
                    kept.append(rng.choice(members, size=want,
                                           replace=False))
                else:
                    kept.append(members)
                    kept.append(rng.choice(members, size=want - have,
                                           replace=True))
        return (np.concatenate(kept) if kept
                else np.empty(0, dtype=int))


class SalimiMaxSAT(_SalimiBase):
    """MVD repair with MaxSAT-based integral rounding (Salimi-MaxSAT)."""

    def _target_counts_from(self, counts, marginal, seed):
        return _round_counts_maxsat(marginal, int(counts.sum()), seed)


class SalimiMatFac(_SalimiBase):
    """MVD repair with rank-1 NMF reconstruction (Salimi-MatFac)."""

    def _target_counts_from(self, counts, marginal, seed):
        return _round_counts_matfac(counts, seed)
