"""Calders & Verwer's "massaging" label repair (extension approach).

Calders, Kamiran & Pechenizkiy (ICDMW 2009) — cited by the paper as
[14], an approach "incorporated in the ones we evaluate".  We include
it as an extension because it is the minimal-intervention label
repair: instead of resampling rows (Kam-Cal) or moving attribute
values (Feld), *massaging* flips the labels of the most borderline
tuples until the training data satisfies demographic parity.

Mechanism: a ranker (logistic regression on the features) scores every
tuple; the highest-scoring unprivileged negatives are promoted to
positive and the lowest-scoring privileged positives are demoted to
negative, in equal numbers ``M`` chosen so the group positive rates
coincide.  Choosing boundary tuples minimises the expected accuracy
cost of the flips.
"""

from __future__ import annotations

import numpy as np

from ...datasets.dataset import Dataset
from ...models.logistic import LogisticRegression
from ..base import Notion, Preprocessor

__all__ = ["CaldersVerwer"]


class CaldersVerwer(Preprocessor):
    """Massaging: flip boundary labels until group positive rates match.

    Parameters
    ----------
    level:
        Fraction of the parity gap to close (1.0 = full demographic
        parity in the training labels; 0.0 = no repair).
    """

    notion = Notion.DEMOGRAPHIC_PARITY
    uses_sensitive_feature = True

    def __init__(self, level: float = 1.0):
        if not 0.0 <= level <= 1.0:
            raise ValueError(f"level must be in [0, 1], got {level}")
        self.level = level

    @property
    def name(self) -> str:
        return "CaldersVerwer-dp"

    # ------------------------------------------------------------------
    @staticmethod
    def flips_needed(s: np.ndarray, y: np.ndarray) -> int:
        """The number ``M`` of promote/demote pairs for exact parity.

        With group sizes ``n_0, n_1`` and positive counts ``p_0, p_1``,
        flipping ``M`` unprivileged negatives up and ``M`` privileged
        positives down equalises the rates when
        ``(p_0 + M)/n_0 = (p_1 − M)/n_1``.
        """
        s = np.asarray(s).astype(int)
        y = np.asarray(y).astype(int)
        n0, n1 = int(np.sum(s == 0)), int(np.sum(s == 1))
        if n0 == 0 or n1 == 0:
            raise ValueError("both sensitive groups must be present")
        p0 = int(np.sum((s == 0) & (y == 1)))
        p1 = int(np.sum((s == 1) & (y == 1)))
        gap = p1 / n1 - p0 / n0
        if gap <= 0:
            return 0  # the unprivileged group already does at least as well
        m = gap * n0 * n1 / (n0 + n1)
        return int(round(m))

    def repair(self, train: Dataset) -> Dataset:
        s, y = train.s, train.y
        m = int(round(self.flips_needed(s, y) * self.level))
        if m == 0:
            return train

        ranker = LogisticRegression().fit(train.X, y)
        scores = ranker.predict_proba(train.X)

        y_new = y.copy()
        # Promote the unprivileged negatives the ranker likes most.
        candidates_up = np.flatnonzero((s == 0) & (y == 0))
        order_up = candidates_up[np.argsort(-scores[candidates_up],
                                            kind="stable")]
        promote = order_up[:m]
        # Demote the privileged positives the ranker likes least.
        candidates_down = np.flatnonzero((s == 1) & (y == 1))
        order_down = candidates_down[np.argsort(scores[candidates_down],
                                                kind="stable")]
        demote = order_down[:m]

        y_new[promote] = 1
        y_new[demote] = 0
        return train.with_labels(y_new)
