"""Pre-processing approaches (paper Section 3.1 + Madras from B.4)."""

from .calmon import Calmon
from .feld import Feld
from .kamcal import KamCal
from .madras import Madras
from .salimi import SalimiMatFac, SalimiMaxSAT
from .zhawu import ZhaWuDCE, ZhaWuPSF

__all__ = ["KamCal", "Feld", "Calmon", "ZhaWuPSF", "ZhaWuDCE",
           "SalimiMaxSAT", "SalimiMatFac", "Madras"]
