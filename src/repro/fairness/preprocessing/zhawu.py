"""Zha-Wu: causal label repair (path-specific fairness / direct effect).

Zhang, Wu & Wu (KDD/IJCAI 2017).  Both variants use the dataset's
causal graph to locate the causal influence of ``S`` on ``Y`` and
minimally modify the *labels* of the training data until that influence
is below a threshold (paper Appendix B.1.4):

* :class:`ZhaWuPSF` removes the influence transmitted through **all**
  causal paths.  Because ``S`` is a root, this amounts to equalising
  ``P(Y=1 | S, C)`` across the groups within every stratum of the
  non-descendant covariates ``C`` — the quadratic-programming solution
  of the original reduces to exactly this per-stratum projection under
  an L2 repair cost.
* :class:`ZhaWuDCE` bounds only the **direct** effect: it computes the
  blocking parent set ``Q`` of the label (the parents that cut all
  indirect ``S → … → Y`` paths) and equalises the group rates within
  every ``Q`` stratum up to the tolerance τ.
"""

from __future__ import annotations

import numpy as np

from ...datasets.dataset import Dataset
from ..base import Notion, Preprocessor


def _strata_ids(dataset: Dataset, columns: list[str]) -> np.ndarray:
    if not columns:
        return np.zeros(dataset.n_rows, dtype=int)
    matrix = np.column_stack(
        [dataset.table[c].astype(float) for c in columns])
    _, inverse = np.unique(matrix, axis=0, return_inverse=True)
    return inverse


def _equalize_stratum(y: np.ndarray, s: np.ndarray, mask: np.ndarray,
                      tolerance: float, rng: np.random.Generator) -> None:
    """Flip the minimum number of labels inside a stratum so the group
    positive-rates differ by at most ``tolerance`` (modifies ``y``)."""
    idx0 = np.flatnonzero(mask & (s == 0))
    idx1 = np.flatnonzero(mask & (s == 1))
    if idx0.size == 0 or idx1.size == 0:
        return
    r0 = y[idx0].mean()
    r1 = y[idx1].mean()
    gap = r1 - r0
    if abs(gap) <= tolerance:
        return
    # Minimal L2 repair: move both groups toward the (size-weighted)
    # stratum mean, leaving a residual gap of `tolerance` — the
    # advantaged group's positives flip down, the disadvantaged
    # group's negatives flip up.
    target = y[np.concatenate([idx0, idx1])].mean()
    half_tol = tolerance / 2
    for idx, rate in ((idx0, r0), (idx1, r1)):
        if rate > target + half_tol:
            n_flip = int(np.ceil((rate - target - half_tol) * idx.size))
            positives = idx[y[idx] == 1]
            if n_flip > 0 and positives.size:
                chosen = rng.choice(positives,
                                    size=min(n_flip, positives.size),
                                    replace=False)
                y[chosen] = 0
        elif rate < target - half_tol:
            n_flip = int(np.ceil((target - half_tol - rate) * idx.size))
            negatives = idx[y[idx] == 0]
            if n_flip > 0 and negatives.size:
                chosen = rng.choice(negatives,
                                    size=min(n_flip, negatives.size),
                                    replace=False)
                y[chosen] = 1


def _resolve_graph(train: Dataset, learn: bool):
    """The dataset's causal graph, learned from the data if requested
    or absent (the original Zha-Wu learns its causal model)."""
    if train.causal_graph is not None and not learn:
        return train.causal_graph
    from ...causal.discovery import learn_dataset_graph

    return learn_dataset_graph(train)


class ZhaWuPSF(Preprocessor):
    """Remove the path-specific (total) causal effect of S on Y.

    Parameters
    ----------
    epsilon:
        Residual per-stratum effect tolerated (paper setting: 0.05).
    seed:
        Which labels get flipped inside each stratum.
    learn_graph:
        Learn the causal graph from the training data instead of using
        the dataset's ground-truth graph (what the original does; the
        default uses the known graph when available).
    """

    notion = Notion.PATH_SPECIFIC_FAIRNESS
    uses_sensitive_feature = True

    def __init__(self, epsilon: float = 0.05, seed: int = 0,
                 learn_graph: bool = False):
        if epsilon < 0:
            raise ValueError("epsilon must be non-negative")
        self.epsilon = epsilon
        self.seed = seed
        self.learn_graph = learn_graph

    def repair(self, train: Dataset) -> Dataset:
        graph = _resolve_graph(train, self.learn_graph)
        if graph is None:
            raise ValueError("ZhaWuPSF needs the dataset's causal graph")
        descendants = graph.descendants(train.sensitive)
        covariates = [f for f in train.feature_names
                      if f in graph and f not in descendants]
        strata = _strata_ids(train, covariates)
        y = train.y.copy()
        s = train.s
        rng = np.random.default_rng(self.seed)
        for value in np.unique(strata):
            _equalize_stratum(y, s, strata == value, self.epsilon, rng)
        return train.with_labels(y)


class ZhaWuDCE(Preprocessor):
    """Bound the direct causal effect of S on Y below τ.

    Parameters
    ----------
    tau:
        Allowed per-stratum direct effect Δ_q (paper setting: 0.05).
    seed:
        Which labels get flipped inside each stratum.
    """

    notion = Notion.DIRECT_CAUSAL_EFFECT
    uses_sensitive_feature = True

    def __init__(self, tau: float = 0.05, seed: int = 0,
                 learn_graph: bool = False):
        if tau < 0:
            raise ValueError("tau must be non-negative")
        self.tau = tau
        self.seed = seed
        self.learn_graph = learn_graph

    def repair(self, train: Dataset) -> Dataset:
        graph = _resolve_graph(train, self.learn_graph)
        if graph is None:
            raise ValueError("ZhaWuDCE needs the dataset's causal graph")
        blocking = [q for q in graph.blocking_parents(
            train.sensitive, train.label) if q in train.feature_names]
        strata = _strata_ids(train, blocking)
        y = train.y.copy()
        s = train.s
        rng = np.random.default_rng(self.seed)
        for value in np.unique(strata):
            _equalize_stratum(y, s, strata == value, self.tau, rng)
        return train.with_labels(y)
