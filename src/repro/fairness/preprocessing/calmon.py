"""Calmon: optimised pre-processing for discrimination prevention.

Calmon et al. (NeurIPS 2017) learn a randomised mapping of ``(X, Y)``
that (1) brings the label distribution of the two sensitive groups
within a parity threshold, (2) stays close to the original joint
distribution, and (3) bounds per-tuple distortion.  The original solves
a convex program over the full joint domain; here the same program is
solved over the *observed* discretised cells with projected gradient on
the product of per-group simplices, and the learned per-cell
transition probabilities are then applied as a randomised repair to
both training and test data (the paper notes Calmon is the one
DP approach that modifies both).

The distortion constraint is realised by restricting the transport to
label flips within a feature cell and by capping the per-cell flip
probability — feature values move only between adjacent quantile bins,
which is the "no substantial distortion of individual values"
requirement of the original formulation.
"""

from __future__ import annotations

import numpy as np

from ...datasets.dataset import Dataset
from ...datasets.encoding import EqualFrequencyDiscretizer
from ...optim.convex import project_simplex
from ..base import Notion, Preprocessor


class Calmon(Preprocessor):
    """Distribution-optimising repair targeting demographic parity.

    Parameters
    ----------
    parity_epsilon:
        Allowed difference in ``P(Y=1 | S)`` between groups after
        repair.
    max_flip:
        Per-cell distortion cap: at most this fraction of a cell's
        labels may be flipped.
    n_bins:
        Quantile bins per numeric feature for the discretised domain.
    fidelity:
        Weight of the closeness-to-original term in the objective.
    seed:
        Randomised-repair seed.
    """

    notion = Notion.DEMOGRAPHIC_PARITY
    uses_sensitive_feature = True

    def __init__(self, parity_epsilon: float = 0.02, max_flip: float = 0.6,
                 n_bins: int = 3, fidelity: float = 1.0,
                 feature_smoothing: float = 0.25, seed: int = 0):
        if not 0 < max_flip <= 1:
            raise ValueError("max_flip must be in (0, 1]")
        if not 0 <= feature_smoothing <= 1:
            raise ValueError("feature_smoothing must be in [0, 1]")
        self.parity_epsilon = parity_epsilon
        self.max_flip = max_flip
        self.n_bins = n_bins
        self.fidelity = fidelity
        self.feature_smoothing = feature_smoothing
        self.seed = seed
        self._flip_to_1: dict[tuple, float] | None = None
        self._flip_to_0: dict[tuple, float] | None = None
        self._discretizers: dict[str, EqualFrequencyDiscretizer] | None = None
        self._numeric: list[str] | None = None
        self._bin_medians: dict[str, np.ndarray] | None = None

    # ------------------------------------------------------------------
    def _cells(self, dataset: Dataset) -> np.ndarray:
        """Discretised feature-cell id per row (excluding S and Y)."""
        parts = []
        for feature in dataset.feature_names:
            values = dataset.table[feature].astype(float)
            if feature in (self._numeric or []):
                disc = self._discretizers[feature]
                values = disc.transform(values[:, None]).ravel()
            parts.append(values)
        matrix = np.column_stack(parts) if parts else np.zeros(
            (dataset.n_rows, 0))
        if matrix.shape[1] == 0:
            return np.zeros(dataset.n_rows, dtype=int)
        _, inverse = np.unique(matrix, axis=0, return_inverse=True)
        return inverse

    def _fit_discretizers(self, train: Dataset) -> None:
        self._numeric = [f for f in train.feature_names
                         if f not in train.categorical]
        self._discretizers = {}
        self._bin_medians = {}
        for feature in self._numeric:
            values = train.table[feature].astype(float)
            disc = EqualFrequencyDiscretizer(self.n_bins)
            disc.fit(values[:, None])
            self._discretizers[feature] = disc
            bins = disc.transform(values[:, None]).ravel().astype(int)
            medians = np.zeros(bins.max() + 1)
            for b in np.unique(bins):
                medians[b] = float(np.median(values[bins == b]))
            self._bin_medians[feature] = medians

    # ------------------------------------------------------------------
    def repair(self, train: Dataset) -> Dataset:
        self._fit_discretizers(train)
        cells = self._cells(train)
        s = train.s
        y = train.y
        n = train.n_rows

        # Optimise, per group, the target positive-rate per cell q[c]
        # (a randomised label assignment), minimising fidelity-weighted
        # distance to the empirical rates subject to overall parity.
        rates: dict[int, dict[int, float]] = {}
        masses: dict[int, dict[int, float]] = {}
        for g in (0, 1):
            in_group = s == g
            rates[g] = {}
            masses[g] = {}
            for c in np.unique(cells[in_group]):
                cell_mask = in_group & (cells == c)
                rates[g][c] = float(np.mean(y[cell_mask]))
                masses[g][c] = float(np.sum(cell_mask)) / max(
                    np.sum(in_group), 1)

        p1 = {g: sum(masses[g][c] * rates[g][c] for c in rates[g])
              for g in (0, 1)}
        target = 0.5 * (p1[0] + p1[1])

        # Closed-form projection: shift each group's cell rates toward
        # the common target, clipped by the per-cell distortion cap.
        # (This is the exact solution of the weighted-L2 program when
        # all cells share the fidelity weight.)
        q: dict[int, dict[int, float]] = {0: {}, 1: {}}
        for g in (0, 1):
            gap = target - p1[g]
            # Distribute the needed mass across cells proportionally to
            # their headroom, respecting the flip cap.
            headroom = {}
            for c, r in rates[g].items():
                cap = self.max_flip
                if gap > 0:
                    headroom[c] = min(1.0 - r, cap)
                else:
                    headroom[c] = min(r, cap)
            capacity = sum(masses[g][c] * headroom[c] for c in rates[g])
            scale = (min(abs(gap) / capacity, 1.0) if capacity > 0 else 0.0)
            for c, r in rates[g].items():
                delta = np.sign(gap) * headroom[c] * scale
                q[g][c] = float(np.clip(r + delta, 0.0, 1.0))

        # Per-cell flip probabilities realising the new rates.
        self._flip_to_1 = {}
        self._flip_to_0 = {}
        for g in (0, 1):
            for c, r in rates[g].items():
                delta = q[g][c] - r
                if delta > 0:
                    # flip some negatives up
                    self._flip_to_1[(g, c)] = delta / max(1 - r, 1e-12)
                    self._flip_to_0[(g, c)] = 0.0
                else:
                    self._flip_to_0[(g, c)] = -delta / max(r, 1e-12)
                    self._flip_to_1[(g, c)] = 0.0

        return self._apply(train, fit_rng_offset=0)

    def transform(self, test: Dataset) -> Dataset:
        if self._flip_to_1 is None:
            raise RuntimeError("call repair() on training data first")
        return self._apply(test, fit_rng_offset=1)

    # ------------------------------------------------------------------
    def _apply(self, dataset: Dataset, fit_rng_offset: int) -> Dataset:
        rng = np.random.default_rng(self.seed + fit_rng_offset)
        cells = self._cells(dataset)
        s = dataset.s
        y = dataset.y.astype(int).copy()
        u = rng.random(dataset.n_rows)
        for i in range(dataset.n_rows):
            key = (int(s[i]), int(cells[i]))
            if key not in self._flip_to_1:
                continue  # unseen cell: leave untouched
            if y[i] == 0 and u[i] < self._flip_to_1[key]:
                y[i] = 1
            elif y[i] == 1 and u[i] < self._flip_to_0[key]:
                y[i] = 0
        # Bounded feature distortion: randomly snap numeric values to
        # their quantile-bin's pooled median, which erases within-bin
        # group signatures without moving any value outside its bin —
        # the "no substantial distortion" constraint of the original.
        new_features = {}
        for feature in self._numeric or []:
            values = dataset.table[feature].astype(float).copy()
            bins = self._discretizers[feature].transform(
                values[:, None]).ravel().astype(int)
            snap = rng.random(len(values)) < self.feature_smoothing
            medians = self._bin_medians[feature]
            bins = np.clip(bins, 0, len(medians) - 1)
            values[snap] = medians[bins[snap]]
            new_features[feature] = values
        table = dataset.table.assign(**new_features) if new_features \
            else dataset.table
        return dataset.with_table(table.assign(
            **{dataset.label: y}))


# project_simplex is re-exported for the tests exercising the convex
# machinery this repair is built on.
__all__ = ["Calmon", "project_simplex"]
