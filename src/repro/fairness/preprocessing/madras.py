"""Madras: learning adversarially fair and transferable representations.

Madras et al. (ICML 2018, "LAFTR").  A linear encoder maps features to
a low-dimensional representation ``z``; a classifier head predicts
``Y`` from ``z`` while an adversary head tries to predict ``S`` from
``z``.  The encoder is trained to help the classifier and *hurt* the
adversary, so downstream models trained naively on ``z`` inherit
(approximate) demographic parity (paper Appendix B.4).

As a pre-processing approach, ``repair`` replaces the feature columns
of the training data by the learned representation and ``transform``
does the same for test data.
"""

from __future__ import annotations

import numpy as np

from ...datasets.dataset import Dataset
from ...datasets.encoding import StandardScaler
from ...models.base import sigmoid
from ..base import Notion, Preprocessor


class Madras(Preprocessor):
    """Adversarial fair-representation learning (LAFTR-DP).

    Parameters
    ----------
    n_components:
        Dimension of the learned representation.
    adversary_weight:
        Trade-off γ between task loss and (negated) adversary loss.
    epochs, learning_rate, batch_size:
        SGD schedule for the three heads.
    seed:
        Initialisation/shuffling seed.
    """

    notion = Notion.DEMOGRAPHIC_PARITY
    uses_sensitive_feature = False

    def __init__(self, n_components: int = 8, adversary_weight: float = 1.0,
                 epochs: int = 40, learning_rate: float = 5e-2,
                 batch_size: int = 64, seed: int = 0):
        if n_components < 1:
            raise ValueError("n_components must be at least 1")
        self.n_components = n_components
        self.adversary_weight = adversary_weight
        self.epochs = epochs
        self.learning_rate = learning_rate
        self.batch_size = batch_size
        self.seed = seed
        self._scaler: StandardScaler | None = None
        self._encoder: np.ndarray | None = None
        self._feature_names: tuple[str, ...] | None = None

    # ------------------------------------------------------------------
    def _train_encoder(self, X: np.ndarray, y: np.ndarray,
                       s: np.ndarray) -> None:
        rng = np.random.default_rng(self.seed)
        n, d = X.shape
        k = self.n_components
        enc = rng.normal(0, 1 / np.sqrt(d), size=(d, k))
        w_task = np.zeros(k + 1)   # classifier head (with bias)
        w_adv = np.zeros(k + 1)    # adversary head (with bias)
        lr = self.learning_rate

        def head_grad(z: np.ndarray, target: np.ndarray,
                      w: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
            """Gradient of logistic loss wrt head weights and wrt z."""
            zb = np.column_stack([z, np.ones(len(z))])
            p = sigmoid(zb @ w)
            err = (p - target) / len(z)
            return zb.T @ err, np.outer(err, w[:-1])

        for _ in range(self.epochs):
            order = rng.permutation(n)
            for start in range(0, n, self.batch_size):
                idx = order[start:start + self.batch_size]
                xb, yb, sb = X[idx], y[idx], s[idx]
                z = xb @ enc
                g_task_w, g_task_z = head_grad(z, yb, w_task)
                g_adv_w, g_adv_z = head_grad(z, sb, w_adv)
                # Heads: classifier descends its loss, adversary its own.
                w_task -= lr * g_task_w
                w_adv -= lr * g_adv_w
                # Encoder: descend task loss, *ascend* adversary loss.
                g_enc = xb.T @ (g_task_z
                                - self.adversary_weight * g_adv_z)
                enc -= lr * g_enc
        self._encoder = enc

    def _representation_names(self) -> tuple[str, ...]:
        return tuple(f"z{i}" for i in range(self.n_components))

    def _encode(self, dataset: Dataset) -> Dataset:
        X = self._scaler.transform(
            dataset.table.to_matrix(self._feature_names))
        Z = X @ self._encoder
        names = self._representation_names()
        columns = {name: Z[:, i] for i, name in enumerate(names)}
        columns[dataset.sensitive] = dataset.s
        columns[dataset.label] = dataset.y
        from ...datasets.table import Table

        return Dataset(
            table=Table(columns),
            feature_names=names,
            sensitive=dataset.sensitive,
            label=dataset.label,
            name=dataset.name,
            causal_graph=None,  # representation space has no named graph
            scm=dataset.scm,
            categorical=(),
            admissible=(),
        )

    # ------------------------------------------------------------------
    def repair(self, train: Dataset) -> Dataset:
        self._feature_names = train.feature_names
        self._scaler = StandardScaler()
        X = self._scaler.fit_transform(train.X)
        self._train_encoder(X, train.y.astype(float),
                            train.s.astype(float))
        return self._encode(train)

    def transform(self, test: Dataset) -> Dataset:
        if self._encoder is None:
            raise RuntimeError("call repair() on training data first")
        return self._encode(test)
