"""Feld: per-attribute distribution repair (disparate-impact removal).

Feldman et al. (KDD 2015).  Every numeric attribute is repaired so that
its marginal distribution becomes indistinguishable across the
sensitive groups: each value is mapped to its within-group quantile and
replaced by the *median distribution*'s value at that quantile.  With
full repair (λ = 1) no classifier can infer ``S`` from any single
attribute, which enforces demographic parity indirectly (paper
Appendix B.1.2).

Per the paper's protocol, both training and test data are repaired
(the quantile maps are fitted on train and reused on test), the
sensitive attribute is *discarded* from the model features, and the
repair level is λ = 1.
"""

from __future__ import annotations

import numpy as np

from ...datasets.dataset import Dataset
from ..base import Notion, Preprocessor


class _QuantileRepairer:
    """Fitted per-attribute quantile-median repair map for one column."""

    def __init__(self, values: np.ndarray, s: np.ndarray, lam: float):
        self.lam = lam
        # Sorted per-group reference values define both the quantile
        # lookup and the inverse maps.
        self.group_sorted = {g: np.sort(values[s == g]) for g in (0, 1)}
        grid = np.linspace(0, 1, 256)
        medians = np.median(
            [np.quantile(self.group_sorted[g], grid) for g in (0, 1)], axis=0)
        self._grid = grid
        self._median_values = medians

    def transform(self, values: np.ndarray, s: np.ndarray) -> np.ndarray:
        out = values.astype(float).copy()
        for g in (0, 1):
            mask = s == g
            if not np.any(mask):
                continue
            ref = self.group_sorted[g]
            # Empirical within-group quantile of each value (mid-rank).
            ranks = np.searchsorted(ref, values[mask], side="right")
            q = np.clip(ranks / max(len(ref), 1), 0.0, 1.0)
            repaired = np.interp(q, self._grid, self._median_values)
            out[mask] = (1 - self.lam) * values[mask] + self.lam * repaired
        return out


class Feld(Preprocessor):
    """Disparate-impact removal by quantile-median attribute repair.

    Parameters
    ----------
    lam:
        Repair level λ ∈ [0, 1]; the paper evaluates λ = 1 (full).
    repair_categorical:
        Whether integer-coded categorical attributes are also pushed
        through the quantile map (default False: only ordered numeric
        attributes have meaningful quantiles).
    """

    notion = Notion.DEMOGRAPHIC_PARITY
    # Feld discards S while training, trivially satisfying ID (§4.2).
    uses_sensitive_feature = False

    def __init__(self, lam: float = 1.0, repair_categorical: bool = False):
        if not 0.0 <= lam <= 1.0:
            raise ValueError("lam must be in [0, 1]")
        self.lam = lam
        self.repair_categorical = repair_categorical
        self._repairers: dict[str, _QuantileRepairer] | None = None

    def _repairable(self, dataset: Dataset) -> list[str]:
        return [f for f in dataset.feature_names
                if self.repair_categorical or f not in dataset.categorical]

    def repair(self, train: Dataset) -> Dataset:
        s = train.s
        self._repairers = {}
        new_columns = {}
        for feature in self._repairable(train):
            repairer = _QuantileRepairer(
                train.table[feature].astype(float), s, self.lam)
            self._repairers[feature] = repairer
            new_columns[feature] = repairer.transform(
                train.table[feature].astype(float), s)
        return train.with_table(train.table.assign(**new_columns))

    def transform(self, test: Dataset) -> Dataset:
        if self._repairers is None:
            raise RuntimeError("call repair() on training data first")
        s = test.s
        new_columns = {
            feature: repairer.transform(test.table[feature].astype(float), s)
            for feature, repairer in self._repairers.items()
        }
        return test.with_table(test.table.assign(**new_columns))
