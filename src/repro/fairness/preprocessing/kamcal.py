"""Kam-Cal: reweighing + resampling for demographic parity.

Kamiran & Calders (KAIS 2012).  Each tuple gets the weight

    w(t) = P_exp(S=s_t ∧ Y=y_t) / P_obs(S=s_t ∧ Y=y_t)

where ``P_exp`` is the product of marginals (what the joint would be if
``S ⟂ Y``) and ``P_obs`` the empirical joint.  The repaired training
set is drawn by weighted sampling, so that the label becomes
statistically independent of the sensitive attribute (paper
Appendix B.1.1).
"""

from __future__ import annotations

import numpy as np

from ...datasets.dataset import Dataset
from ..base import Notion, Preprocessor


class KamCal(Preprocessor):
    """Weighted-resampling repair enforcing ``S ⟂ Y`` in training data.

    Parameters
    ----------
    seed:
        Resampling seed.
    resample:
        If True (default, matching the paper's evaluated variant) the
        repaired dataset is a weighted resample of the original rows.
        If False, only :meth:`tuple_weights` is meaningful and
        ``repair`` returns the input unchanged — callers can feed the
        weights to a model that supports ``sample_weight`` instead.
    """

    notion = Notion.DEMOGRAPHIC_PARITY
    uses_sensitive_feature = True

    def __init__(self, seed: int = 0, resample: bool = True):
        self.seed = seed
        self.resample = resample

    @staticmethod
    def tuple_weights(s: np.ndarray, y: np.ndarray) -> np.ndarray:
        """Per-tuple reweighing factors ``P_exp / P_obs``."""
        s = np.asarray(s).astype(int)
        y = np.asarray(y).astype(int)
        n = len(s)
        if n == 0:
            raise ValueError("empty dataset")
        weights = np.empty(n, dtype=float)
        for s_val in (0, 1):
            p_s = np.mean(s == s_val)
            for y_val in (0, 1):
                p_y = np.mean(y == y_val)
                cell = (s == s_val) & (y == y_val)
                p_obs = np.mean(cell)
                if p_obs == 0:
                    continue  # no tuples to weight in this cell
                weights[cell] = (p_s * p_y) / p_obs
        return weights

    def repair(self, train: Dataset) -> Dataset:
        weights = self.tuple_weights(train.s, train.y)
        if not self.resample:
            return train
        rng = np.random.default_rng(self.seed)
        probabilities = weights / weights.sum()
        idx = rng.choice(train.n_rows, size=train.n_rows, replace=True,
                         p=probabilities)
        return train.take(idx)
