"""Versioned on-disk artifact bundles.

A bundle is a directory::

    bundle/
      manifest.json          # schema version, fingerprint, env stamp,
                             # job params, serving metadata, artifact index
      artifacts/<name>.json  # spec string + encoded fitted state
      artifacts/<name>.npz   # numpy arrays of that state (if any)

Every artifact file is checksummed in the manifest, the manifest
carries the bundle schema version (checked *before* anything else on
load, so a bundle written by a future format fails with one clear
sentence, not a traceback from half-parsed state), and writes are
atomic: the directory is assembled under a temporary name and
``os.replace``d into place, so a crashed ``repro pack`` never leaves a
half-written bundle where a loader can find it.
"""

from __future__ import annotations

import hashlib
import json
import os
import shutil
import tempfile
import time
from pathlib import Path

import numpy as np

from .. import obs
from .codec import decode, encode

__all__ = ["Bundle", "BundleError", "BUNDLE_SCHEMA_VERSION",
           "format_manifest", "load_bundle", "write_bundle"]

#: Version of the bundle directory format.  Bump on incompatible
#: manifest or encoding changes; loaders refuse other versions.
BUNDLE_SCHEMA_VERSION = 1

_MANIFEST = "manifest.json"


class BundleError(ValueError):
    """A bundle cannot be written, read, or verified."""


def _sha256(path: Path) -> str:
    digest = hashlib.sha256()
    with open(path, "rb") as fh:
        for chunk in iter(lambda: fh.read(1 << 20), b""):
            digest.update(chunk)
    return digest.hexdigest()


def write_bundle(path, *, fingerprint: str, job_params: dict,
                 artifacts: list[tuple[str, str, object]],
                 serving: dict | None = None,
                 overwrite: bool = False) -> Path:
    """Serialize ``artifacts`` (name, spec, fitted object) to ``path``.

    The spec string records how to rebuild the component unfitted; the
    object's state is captured through the get_state/set_state protocol
    and written JSON + npz.  Returns the bundle path.
    """
    path = Path(path)
    if path.exists():
        if not overwrite:
            raise BundleError(
                f"bundle target {path} already exists; pass --force / "
                "overwrite=True to replace it")
        if not (path / _MANIFEST).exists():
            raise BundleError(
                f"refusing to overwrite {path}: it exists but is not a "
                "bundle (no manifest.json)")
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = Path(tempfile.mkdtemp(prefix=f".{path.name}.tmp-",
                                dir=path.parent))
    try:
        art_dir = tmp / "artifacts"
        art_dir.mkdir()
        records = []
        for name, spec, value in artifacts:
            arrays: dict[str, np.ndarray] = {}
            tree = encode(value, arrays)
            state_file = art_dir / f"{name}.json"
            state_file.write_text(json.dumps(
                {"name": name, "spec": spec, "state": tree},
                indent=2, sort_keys=True))
            files = {"state": f"artifacts/{name}.json"}
            checksums = {"state": _sha256(state_file)}
            if arrays:
                array_file = art_dir / f"{name}.npz"
                with open(array_file, "wb") as fh:
                    np.savez(fh, **arrays)
                files["arrays"] = f"artifacts/{name}.npz"
                checksums["arrays"] = _sha256(array_file)
            records.append({"name": name, "spec": spec,
                            "files": files, "sha256": checksums})
        manifest = {
            "schema_version": BUNDLE_SCHEMA_VERSION,
            "created": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
            "fingerprint": fingerprint,
            "job": job_params,
            "serving": dict(serving or {}),
            "environment": obs.environment_info(),
            "artifacts": records,
        }
        (tmp / _MANIFEST).write_text(json.dumps(manifest, indent=2,
                                                sort_keys=True))
        if path.exists():
            shutil.rmtree(path)
        os.replace(tmp, path)
    except BaseException:
        shutil.rmtree(tmp, ignore_errors=True)
        raise
    return path


class Bundle:
    """A loaded bundle: parsed manifest + lazy artifact decoding."""

    def __init__(self, path: Path, manifest: dict):
        self.path = path
        self.manifest = manifest
        self._records = {r["name"]: r for r in manifest["artifacts"]}

    @property
    def fingerprint(self) -> str:
        return self.manifest.get("fingerprint", "")

    @property
    def serving(self) -> dict:
        return self.manifest.get("serving", {})

    def artifact_names(self) -> list[str]:
        return list(self._records)

    def artifact_spec(self, name: str) -> str:
        return self._record(name)["spec"]

    def _record(self, name: str) -> dict:
        try:
            return self._records[name]
        except KeyError:
            raise BundleError(
                f"bundle {self.path} has no artifact {name!r}; "
                f"available: {sorted(self._records)}") from None

    def _verified_path(self, record: dict, kind: str) -> Path:
        rel = record["files"][kind]
        file = self.path / rel
        if not file.is_file():
            raise BundleError(
                f"artifact {record['name']!r} is corrupt: missing file "
                f"{rel} in {self.path}")
        if _sha256(file) != record["sha256"][kind]:
            raise BundleError(
                f"artifact {record['name']!r} is corrupt: checksum "
                f"mismatch on {rel} (bundle {self.path})")
        return file

    def load_artifact(self, name: str):
        """Decode and return the fitted object stored under ``name``."""
        record = self._record(name)
        state_file = self._verified_path(record, "state")
        try:
            document = json.loads(state_file.read_text())
        except json.JSONDecodeError as exc:
            raise BundleError(
                f"artifact {name!r} is corrupt: unparseable state file "
                f"({exc})") from None
        arrays: dict[str, np.ndarray] = {}
        if "arrays" in record["files"]:
            array_file = self._verified_path(record, "arrays")
            with np.load(array_file, allow_pickle=False) as npz:
                arrays = {key: npz[key] for key in npz.files}
        return decode(document["state"], arrays)


def load_bundle(path) -> Bundle:
    """Open a bundle directory, validating the manifest first."""
    path = Path(path)
    manifest_file = path / _MANIFEST
    if not manifest_file.is_file():
        raise BundleError(
            f"{path} is not a bundle: no {_MANIFEST} found")
    try:
        manifest = json.loads(manifest_file.read_text())
    except json.JSONDecodeError as exc:
        raise BundleError(
            f"{path} has an unparseable manifest: {exc}") from None
    version = manifest.get("schema_version")
    if version != BUNDLE_SCHEMA_VERSION:
        raise BundleError(
            f"unsupported bundle schema version {version!r} in {path}; "
            f"this build reads version {BUNDLE_SCHEMA_VERSION}")
    if not isinstance(manifest.get("artifacts"), list):
        raise BundleError(f"{path} has a malformed manifest: no "
                          "artifact index")
    return Bundle(path, manifest)


def format_manifest(bundle: Bundle) -> str:
    """Human-readable manifest rendering for ``repro inspect``."""
    m = bundle.manifest
    lines = [f"bundle: {bundle.path}",
             f"schema version: {m['schema_version']}",
             f"created: {m.get('created', '?')}",
             f"fingerprint: {m.get('fingerprint', '?')}"]
    job = m.get("job") or {}
    if job:
        lines.append("job:")
        for key in sorted(job):
            lines.append(f"  {key} = {job[key]!r}")
    serving = m.get("serving") or {}
    if serving:
        lines.append("serving:")
        for key in sorted(serving):
            lines.append(f"  {key} = {serving[key]!r}")
    env = m.get("environment") or {}
    if env:
        lines.append("environment:")
        for key in sorted(env):
            lines.append(f"  {key} = {env[key]!r}")
    lines.append(f"artifacts ({len(m['artifacts'])}):")
    for record in m["artifacts"]:
        files = ", ".join(sorted(record["files"].values()))
        lines.append(f"  {record['name']}: {record['spec']}  [{files}]")
    return "\n".join(lines)
