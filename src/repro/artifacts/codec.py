"""JSON-safe encoding of fitted component state.

Bundles store each artifact as a JSON document plus one ``.npz``
sidecar for its numpy arrays.  :func:`encode` turns the nested state
returned by :func:`repro.registry.extract_state` into a pure-JSON tree,
collecting arrays into a side table; :func:`decode` inverts it
bit-exactly.

The encoding is deliberately narrow — no pickle, no arbitrary-class
instantiation.  Only classes defined inside the ``repro`` package are
serialized as objects (module-qualified name + recursively encoded
state), and :func:`decode` refuses to instantiate anything outside
that allowlist, so a tampered manifest cannot name e.g.
``os:system``.  Anything unencodable (lambdas, open files, foreign
objects) raises :class:`StateCodecError` naming the offending value
and its path from the state root.

Tagged forms used in the JSON tree (tags never collide with plain
data because plain dicts with ``__``-prefixed string keys take the
explicit-pairs form):

``{"__ndarray__": key}``
    Array stored under ``key`` in the sidecar table.
``{"__scalar__": dtype, "value": v}``
    Numpy scalar (``np.float64(3.0)``, ``np.int64(2)``, …).
``{"__tuple__": [...]}``
    Python tuple (lists stay plain JSON arrays).
``{"__dict__": [[k, v], ...]}``
    Dict whose keys are not all plain strings (e.g. the float-tuple
    keys of CPT tables); insertion order is preserved.
``{"__object__": "module:qualname", "state": {...}}``
    A repro-package object following the get_state/set_state protocol.
"""

from __future__ import annotations

import importlib
from collections.abc import Mapping

import numpy as np

from ..registry import extract_state, restore_instance

__all__ = ["StateCodecError", "decode", "encode"]

_TAGS = ("__ndarray__", "__scalar__", "__tuple__", "__dict__", "__object__")


class StateCodecError(ValueError):
    """A value in a component's state cannot be (de)serialized."""


def _fail(path: tuple, message: str) -> StateCodecError:
    where = "$" + "".join(f".{p}" if isinstance(p, str) else f"[{p}]"
                          for p in path)
    return StateCodecError(f"{message} (at {where})")


def _plain_keys(mapping: Mapping) -> bool:
    return all(isinstance(k, str) and not k.startswith("__")
               for k in mapping)


def encode(value, arrays: dict[str, np.ndarray], path: tuple = ()):
    """Encode ``value`` to a JSON-safe tree, appending arrays to
    ``arrays`` (the per-artifact ``.npz`` side table)."""
    if value is None or isinstance(value, str):
        return value
    # numpy scalars first: np.float64 IS a float subclass, np.bool_ is
    # not a bool, np.int64 is not an int — one tagged form covers all.
    if isinstance(value, np.generic):
        return {"__scalar__": value.dtype.str, "value": value.item()}
    if isinstance(value, bool):  # bool before int: bool is an int subclass
        return value
    if isinstance(value, (int, float)):
        return value
    if isinstance(value, np.ndarray):
        if value.dtype == object:
            raise _fail(path, "object-dtype arrays are not serializable")
        key = f"a{len(arrays)}"
        arrays[key] = value
        return {"__ndarray__": key}
    if isinstance(value, tuple):
        return {"__tuple__": [encode(v, arrays, path + (i,))
                              for i, v in enumerate(value)]}
    if isinstance(value, list):
        return [encode(v, arrays, path + (i,)) for i, v in enumerate(value)]
    if isinstance(value, Mapping):
        if _plain_keys(value):
            return {k: encode(v, arrays, path + (k,))
                    for k, v in value.items()}
        return {"__dict__": [[encode(k, arrays, path + ("<key>",)),
                              encode(v, arrays, path + (str(k),))]
                             for k, v in value.items()]}
    cls = type(value)
    module = getattr(cls, "__module__", "")
    if module == "repro" or module.startswith("repro."):
        try:
            state = extract_state(value)
        except TypeError as exc:
            raise _fail(path, str(exc)) from None
        return {"__object__": f"{module}:{cls.__qualname__}",
                "state": encode(state, arrays, path + (cls.__name__,))}
    raise _fail(path, f"cannot serialize {cls.__module__}.{cls.__qualname__} "
                      f"value {value!r}")


def _resolve_class(ref: str, path: tuple) -> type:
    module, _, qualname = ref.partition(":")
    if not (module == "repro" or module.startswith("repro.")) or not qualname:
        raise _fail(path, f"refusing to instantiate {ref!r}: only classes "
                          "inside the repro package are allowed")
    try:
        obj = importlib.import_module(module)
        for part in qualname.split("."):
            obj = getattr(obj, part)
    except (ImportError, AttributeError):
        raise _fail(path, f"unknown class {ref!r} in artifact state") from None
    if not isinstance(obj, type):
        raise _fail(path, f"{ref!r} is not a class")
    return obj


def decode(value, arrays: Mapping[str, np.ndarray], path: tuple = ()):
    """Invert :func:`encode`; ``arrays`` is the loaded side table."""
    if value is None or isinstance(value, (str, bool, int, float)):
        return value
    if isinstance(value, list):
        return [decode(v, arrays, path + (i,)) for i, v in enumerate(value)]
    if isinstance(value, Mapping):
        if "__ndarray__" in value:
            key = value["__ndarray__"]
            try:
                return arrays[key]
            except KeyError:
                raise _fail(path, f"missing array {key!r} in sidecar") \
                    from None
        if "__scalar__" in value:
            return np.dtype(value["__scalar__"]).type(value["value"])
        if "__tuple__" in value:
            return tuple(decode(v, arrays, path + (i,))
                         for i, v in enumerate(value["__tuple__"]))
        if "__dict__" in value:
            return {decode(k, arrays, path + ("<key>",)):
                    decode(v, arrays, path + (str(k),))
                    for k, v in value["__dict__"]}
        if "__object__" in value:
            cls = _resolve_class(value["__object__"], path)
            state = decode(value["state"], arrays,
                           path + (cls.__name__,))
            return restore_instance(cls, state)
        return {k: decode(v, arrays, path + (k,)) for k, v in value.items()}
    raise _fail(path, f"unexpected value {value!r} in encoded state")
