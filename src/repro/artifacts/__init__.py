"""Artifact bundles: (spec + fitted state) serialization for
registry-built components.

A bundle is a versioned, checksummed directory holding everything a
finished experiment cell fitted — the pipeline (approach + model +
encoder), the explicit-noise SCM, the frozen discretisation edges, and
the prepared situation-testing reference — so audits can be served
online without refitting anything.  See :mod:`repro.artifacts.bundle`
for the format, :mod:`repro.artifacts.pack` for building bundles from
jobs and sweep caches, and :mod:`repro.serve` for the consumption
side.
"""

from .bundle import (BUNDLE_SCHEMA_VERSION, Bundle, BundleError,
                     format_manifest, load_bundle, write_bundle)
from .codec import StateCodecError, decode, encode
from .pack import (ServingComponents, build_serving_components,
                   components_from_bundle, pack_bundle, pack_from_cache)

__all__ = [
    "BUNDLE_SCHEMA_VERSION", "Bundle", "BundleError", "ServingComponents",
    "StateCodecError", "build_serving_components", "components_from_bundle",
    "decode", "encode", "format_manifest", "load_bundle", "pack_bundle",
    "pack_from_cache", "write_bundle",
]
