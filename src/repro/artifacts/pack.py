"""Packing experiment cells into serving bundles.

:func:`build_serving_components` refits everything the online audit
path needs from a :class:`~repro.engine.spec.Job` — deterministically,
mirroring :func:`~repro.engine.executor.execute_job`'s data path and
:func:`~repro.pipeline.counterfactual_eval.evaluate_counterfactual`'s
fit path — and :func:`pack_bundle` serializes the result as an
artifact bundle.  :func:`components_from_bundle` is the inverse, and
:func:`pack_from_cache` builds a bundle for a finished sweep cell
(using the cell's stored artifact payload when the sweep ran with
``--pack-artifacts``, refitting from the stored params otherwise).

One deliberate divergence from the offline audit: the offline
counterfactual evaluation discretises train and test *independently*
(each split fits its own quantile edges).  A serving system has no
"test split" — requests arrive one at a time — so the bundle freezes
the *train*-fitted edges as the single coordinate system and applies
them to the reference population and to every request.  Served audits
are byte-identical to the in-process :class:`~repro.serve.AuditService`
on the same components, which is the parity the bundle guarantees.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path

from .. import obs
from ..causal.counterfactual import CounterfactualSCM
from ..datasets.encoding import EqualFrequencyDiscretizer
from ..engine.spec import Job
from ..metrics.individual import (SituationReference,
                                  prepare_situation_reference)
from ..pipeline.experiment import FairPipeline
from .bundle import (Bundle, BundleError, load_bundle, write_bundle)

__all__ = ["ServingComponents", "build_serving_components",
           "components_from_bundle", "pack_bundle", "pack_from_cache"]

#: Situation-testing defaults frozen into bundles (the offline audit's
#: own defaults — see :func:`repro.metrics.individual.situation_testing`).
ST_K = 8
ST_THRESHOLD = 0.2
#: Counterfactual per-row flip tolerance (matches
#: :func:`repro.metrics.individual.counterfactual_fairness`).
CF_THRESHOLD = 0.05


@dataclass
class ServingComponents:
    """Everything the online audit path needs, fitted and frozen.

    Attributes
    ----------
    pipeline:
        The fitted :class:`FairPipeline` (fit on the discretised train
        split, exactly as in the offline counterfactual audit).
    scm:
        Explicit-noise SCM fitted on the same discretised train split.
    discretizer:
        Train-fitted quantile edges applied to every request's numeric
        features (``None`` when the dataset has no numeric features).
    numeric:
        Names of the feature columns the discretizer applies to, in
        edge order.
    reference:
        Frozen situation-testing reference population (the discretised
        test split, labelled with the pipeline's own predictions).
    meta:
        Plain-JSON serving metadata (column roles, node order, audit
        knobs, source-job fingerprint); stored in the bundle manifest.
    """

    pipeline: FairPipeline
    scm: CounterfactualSCM
    discretizer: EqualFrequencyDiscretizer | None
    numeric: tuple[str, ...]
    reference: SituationReference
    meta: dict = field(default_factory=dict)


def build_serving_components(job: Job) -> ServingComponents:
    """Refit the serving components for one grid cell, from its job.

    Deterministic in ``job`` alone (same contract as ``execute_job``):
    the dataset build, split, error injection, imputation, pipeline fit
    and SCM fit all derive their randomness from the job's seed.
    """
    from ..datasets import train_test_split
    from ..engine.executor import _impute_train
    from ..metrics import pairwise
    from ..registry import APPROACHES, DATASETS, ERRORS, MODELS

    with pairwise.default_block_size(job.block_size), \
            pairwise.default_threads(job.threads):
        with obs.span("pack.dataset", dataset=job.dataset, rows=job.rows):
            dataset = DATASETS.build(job.dataset, **{
                "n": job.rows, "seed": job.seed, **job.dataset_params})
            if job.n_features is not None:
                dataset = dataset.select_features(
                    dataset.feature_names[:job.n_features])
            split = train_test_split(dataset,
                                     test_fraction=job.test_fraction,
                                     seed=job.seed)
        train = split.train
        if train.causal_graph is None:
            raise ValueError(
                f"dataset {train.name!r} has no causal graph; the "
                "serving audit path needs one")
        if job.error is not None:
            injector = ERRORS.build(job.error, **job.error_params)
            train = injector(train, seed=job.seed)
        if job.imputer is not None:
            train = _impute_train(train, job.imputer, job.imputer_params)

        n_bins = int(job.audit_params.get("n_bins", 4))
        n_particles = int(job.audit_params.get("n_particles", 150))
        numeric = tuple(f for f in train.feature_names
                        if f not in train.categorical)
        discretizer = None
        train_disc = train
        if numeric:
            # Same fit as discretize_dataset(train, n_bins), with the
            # fitted edges kept for request-time use.
            discretizer = EqualFrequencyDiscretizer(n_bins).fit(
                train.table.to_matrix(list(numeric)))
            train_disc = _apply_discretizer(train, discretizer, numeric)

        with obs.span("pack.fit", approach=job.approach_label):
            approach = (APPROACHES.build(job.approach, seed=job.seed,
                                         **job.approach_params)
                        if job.approach is not None else None)
            pipeline = FairPipeline(
                approach, model=MODELS.build(job.model, **job.model_params),
                seed=job.seed)
            pipeline.fit(train_disc)

        nodes = train.causal_graph.nodes
        with obs.span("pack.scm", nodes=len(nodes)):
            scm = CounterfactualSCM.fit(
                {n: train_disc.table[n].astype(float) for n in nodes},
                train.causal_graph)

        # The reference population: the held-out split in the frozen
        # (train-fitted) coordinates, labelled with the deployed
        # pipeline's own decisions.
        test_ref = split.test
        if discretizer is not None:
            test_ref = _apply_discretizer(test_ref, discretizer, numeric)
        with obs.span("pack.reference", rows=test_ref.n_rows):
            y_hat = pipeline.predict(test_ref)
            reference = prepare_situation_reference(
                test_ref.X, test_ref.s, y_hat,
                k=ST_K, threshold=ST_THRESHOLD)

    meta = {
        "dataset": train.name,
        "sensitive": train.sensitive,
        "label": train.label,
        "feature_names": list(train.feature_names),
        "categorical": list(train.categorical),
        "nodes": list(nodes),
        "numeric": list(numeric),
        "seed": job.seed,
        "n_bins": n_bins,
        "n_particles": n_particles,
        "cf_threshold": CF_THRESHOLD,
        "st_k": ST_K,
        "st_threshold": ST_THRESHOLD,
        "fingerprint": job.fingerprint,
        "job_label": job.label(),
    }
    return ServingComponents(pipeline=pipeline, scm=scm,
                             discretizer=discretizer, numeric=numeric,
                             reference=reference, meta=meta)


def _apply_discretizer(dataset, discretizer, numeric):
    binned = discretizer.transform(dataset.table.to_matrix(list(numeric)))
    table = dataset.table.assign(
        **{name: binned[:, j] for j, name in enumerate(numeric)})
    return dataset.with_table(table)


def pack_bundle(job: Job, out, components: ServingComponents | None = None,
                overwrite: bool = False) -> Path:
    """Build (or reuse) serving components for ``job`` and write the
    bundle to ``out``.  Returns the bundle path."""
    if components is None:
        components = build_serving_components(job)
    n_bins = components.meta.get("n_bins", 4)
    artifacts = [
        ("pipeline", job.approach_label, components.pipeline),
        ("scm", "counterfactual-scm", components.scm),
        ("encoding", f"equal-frequency(n_bins={n_bins})",
         {"discretizer": components.discretizer,
          "numeric": list(components.numeric)}),
        ("reference",
         f"situation-testing(k={components.meta.get('st_k', ST_K)}, "
         f"threshold={components.meta.get('st_threshold', ST_THRESHOLD)})",
         components.reference),
    ]
    return write_bundle(out, fingerprint=job.fingerprint,
                        job_params=job.params(), artifacts=artifacts,
                        serving=components.meta, overwrite=overwrite)


def components_from_bundle(bundle: Bundle | str | Path
                           ) -> ServingComponents:
    """Reconstruct the serving components from a bundle (path or
    loaded)."""
    if not isinstance(bundle, Bundle):
        bundle = load_bundle(bundle)
    meta = dict(bundle.serving)
    for name in ("pipeline", "scm", "encoding", "reference"):
        if name not in bundle.artifact_names():
            raise BundleError(
                f"bundle {bundle.path} is not a serving bundle: missing "
                f"artifact {name!r}")
    encoding = bundle.load_artifact("encoding")
    return ServingComponents(
        pipeline=bundle.load_artifact("pipeline"),
        scm=bundle.load_artifact("scm"),
        discretizer=encoding["discretizer"],
        numeric=tuple(encoding["numeric"]),
        reference=bundle.load_artifact("reference"),
        meta=meta,
    )


def pack_from_cache(cache, out, *, where: dict | None = None,
                    fingerprint: str | None = None,
                    overwrite: bool = False) -> Path:
    """Pack a bundle for one finished cell of a sweep cache.

    ``cache`` is a :class:`~repro.engine.cache.ResultCache` or any
    store URI :func:`~repro.engine.backend.parse_store` accepts
    (``file:DIR``, ``sqlite:PATH``, or a bare directory).  The cell is
    selected by ``fingerprint`` or by a
    ``--where``-style axis filter; exactly one cell must match.  When
    the sweep stored an artifact payload for the cell (``repro sweep
    --pack-artifacts``), it is reused verbatim — no refitting;
    otherwise the components are refit deterministically from the
    cell's stored params.
    """
    import shutil

    from ..engine.cache import ResultCache
    from ..engine.report import filter_outcomes

    if not isinstance(cache, ResultCache):
        cache = ResultCache(cache)
    if not cache.exists():
        raise FileNotFoundError(f"no sweep cache at {cache.location}")
    outcomes = cache.outcomes()
    if fingerprint is not None:
        outcomes = [o for o in outcomes
                    if o.job.fingerprint.startswith(fingerprint)]
    if where:
        outcomes = filter_outcomes(outcomes, where)
    if not outcomes:
        raise ValueError("no cached cell matches the selection; run the "
                         "sweep first or relax --where")
    if len(outcomes) > 1:
        labels = ", ".join(o.job.label() for o in outcomes[:5])
        raise ValueError(
            f"selection matches {len(outcomes)} cells ({labels}"
            f"{', …' if len(outcomes) > 5 else ''}); narrow --where "
            "down to exactly one")
    job = outcomes[0].job
    stored = cache.get_artifact(job)
    if stored is not None:
        load_bundle(stored)  # validate before copying
        out = Path(out)
        if out.exists():
            if not overwrite:
                raise BundleError(
                    f"bundle target {out} already exists; pass --force "
                    "to replace it")
            shutil.rmtree(out)
        shutil.copytree(stored, out)
        obs.add("pack.reused")
        return out
    obs.add("pack.refit")
    return pack_bundle(job, out, overwrite=overwrite)
