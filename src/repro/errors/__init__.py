"""Data-error injection and imputation (robustness experiments)."""

from .extended import (EXTENDED_RECIPES, CorruptionPipeline, CorruptionStep,
                       corrupt_extended, corrupt_missing, duplicate_rows,
                       flip_labels, inject_outliers,
                       missing_completely_at_random, selection_bias)
from .imputers import (impute_constant, impute_iterative, impute_knn,
                       impute_mean, impute_median, impute_mode)
from .injectors import (RECIPES, add_noise, affected_rows, corrupt,
                        corrupt_t1, corrupt_t2, corrupt_t3, impute_missing,
                        scale_column, swap_columns)

__all__ = [
    "impute_mean", "impute_median", "impute_mode", "impute_constant",
    "impute_knn", "impute_iterative",
    "affected_rows", "swap_columns", "scale_column", "add_noise",
    "impute_missing", "corrupt_t1", "corrupt_t2", "corrupt_t3", "corrupt",
    "RECIPES",
    "flip_labels", "selection_bias", "inject_outliers", "duplicate_rows",
    "missing_completely_at_random",
    "CorruptionStep", "CorruptionPipeline",
    "EXTENDED_RECIPES", "corrupt_extended", "corrupt_missing",
]
