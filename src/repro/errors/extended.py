"""Extended error injectors beyond the paper's T1/T2/T3 recipes.

Section 4.4 notes that its three corruption recipes "highlight
situations where classifiers may perform unexpectedly, not ... all
possible scenarios".  This module fills in the rest of the standard
data-quality taxonomy (label noise, selection bias, outliers,
duplicates, feature missingness) so robustness studies can sweep a
wider corruption space, plus a :class:`CorruptionPipeline` for
composing several corruptions deterministically.

All injectors follow the T-recipe conventions: they take a dataset and
a boolean row mask (usually from
:func:`repro.errors.injectors.affected_rows`, which implements the
paper's disproportionate 50%/10% group rates) and return a *new*
dataset.
"""

from __future__ import annotations

from collections.abc import Callable, Sequence
from dataclasses import dataclass

import numpy as np

from ..datasets.dataset import Dataset
from .injectors import affected_rows

__all__ = [
    "flip_labels",
    "selection_bias",
    "inject_outliers",
    "duplicate_rows",
    "missing_completely_at_random",
    "CorruptionStep",
    "CorruptionPipeline",
    "EXTENDED_RECIPES",
    "corrupt_extended",
]


def _check_mask(dataset: Dataset, mask: np.ndarray) -> np.ndarray:
    mask = np.asarray(mask, dtype=bool)
    if mask.shape != (dataset.n_rows,):
        raise ValueError(
            f"mask shape {mask.shape} != ({dataset.n_rows},)")
    return mask


def flip_labels(dataset: Dataset, mask: np.ndarray) -> Dataset:
    """Invert the ground-truth label on the masked rows.

    Models the paper's "misclassification" data-quality issue: the
    recorded outcome is simply wrong for some subpopulation (e.g.
    unreported recidivism).
    """
    mask = _check_mask(dataset, mask)
    y = dataset.y.copy()
    y[mask] = 1 - y[mask]
    return dataset.with_labels(y)


def selection_bias(dataset: Dataset, mask: np.ndarray) -> Dataset:
    """Drop the masked rows, distorting the population distribution.

    With the disproportionate group rates this under-represents the
    unprivileged group — the classic sampling bias of over-policed or
    under-surveyed populations.

    Raises
    ------
    ValueError
        If the mask would remove every row of a sensitive group.
    """
    mask = _check_mask(dataset, mask)
    keep = ~mask
    s = dataset.s
    for group in (0, 1):
        if not np.any(keep & (s == group)):
            raise ValueError(
                f"selection bias would remove all rows of group S={group}"
            )
    return dataset.filter(keep)


def inject_outliers(dataset: Dataset, column: str, mask: np.ndarray,
                    magnitude: float = 10.0) -> Dataset:
    """Replace masked entries of a column with extreme values.

    The outliers are placed ``magnitude`` standard deviations above the
    column maximum — the kind of sentinel/unit error (e.g. cents
    instead of dollars) that survives naive range checks.
    """
    mask = _check_mask(dataset, mask)
    if magnitude <= 0:
        raise ValueError("magnitude must be positive")
    values = dataset.table[column].astype(float).copy()
    sigma = float(values.std()) or 1.0
    values[mask] = float(values.max()) + magnitude * sigma
    return dataset.with_table(dataset.table.assign(**{column: values}))


def duplicate_rows(dataset: Dataset, mask: np.ndarray,
                   copies: int = 1) -> Dataset:
    """Append ``copies`` duplicates of every masked row.

    Duplication is the benign-looking error with teeth: it silently
    reweights the training distribution toward the duplicated
    subpopulation.
    """
    mask = _check_mask(dataset, mask)
    if copies < 1:
        raise ValueError("copies must be at least 1")
    idx = np.flatnonzero(mask)
    extra = np.tile(idx, copies)
    order = np.concatenate([np.arange(dataset.n_rows), extra])
    return dataset.take(order)


def missing_completely_at_random(dataset: Dataset, columns: Sequence[str],
                                 rate: float, rng: np.random.Generator,
                                 imputer: Callable[[np.ndarray], np.ndarray]
                                 | None = None) -> Dataset:
    """Blank a uniform fraction of entries per column and re-impute.

    Unlike the T3 recipe (group-correlated missingness of S and Y),
    this is plain MCAR over arbitrary feature columns — the baseline
    against which disproportionate missingness should be compared.
    """
    if not 0.0 <= rate <= 1.0:
        raise ValueError("rate must be in [0, 1]")
    from .imputers import impute_mean
    imputer = imputer or impute_mean
    table = dataset.table
    for column in columns:
        values = table[column].astype(float).copy()
        holes = rng.random(dataset.n_rows) < rate
        if holes.all():
            holes[rng.integers(dataset.n_rows)] = False
        values[holes] = np.nan
        table = table.assign(**{column: imputer(values)})
    return dataset.with_table(table)


# ----------------------------------------------------------------------
# Composition
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class CorruptionStep:
    """One named corruption in a pipeline.

    ``apply`` receives ``(dataset, mask, rng)`` and returns the
    corrupted dataset; the pipeline supplies the mask and rng.
    """

    name: str
    apply: Callable[[Dataset, np.ndarray, np.random.Generator], Dataset]


class CorruptionPipeline:
    """Deterministically compose several corruptions.

    Each step draws its own affected-row mask at the configured group
    rates, so corruption compounds the way real pipelines degrade —
    independently per issue, but consistently skewed against the
    unprivileged group.

    >>> pipe = CorruptionPipeline([
    ...     CorruptionStep("flip", lambda d, m, r: flip_labels(d, m)),
    ...     CorruptionStep("dupes", lambda d, m, r: duplicate_rows(d, m)),
    ... ])                                             # doctest: +SKIP
    """

    def __init__(self, steps: Sequence[CorruptionStep],
                 unprivileged_rate: float = 0.5,
                 privileged_rate: float = 0.1):
        if not steps:
            raise ValueError("pipeline needs at least one step")
        names = [s.name for s in steps]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate step names: {names}")
        self.steps = list(steps)
        self.unprivileged_rate = unprivileged_rate
        self.privileged_rate = privileged_rate

    def apply(self, dataset: Dataset, seed: int = 0) -> Dataset:
        """Run every step in order on fresh masks from ``seed``."""
        rng = np.random.default_rng(seed)
        out = dataset
        for step in self.steps:
            mask = affected_rows(out, self.unprivileged_rate,
                                 self.privileged_rate, rng)
            out = step.apply(out, mask, rng)
        return out


# ----------------------------------------------------------------------
# Named extended recipes (T4–T6), mirroring the T1–T3 interface
# ----------------------------------------------------------------------
def corrupt_t4(dataset: Dataset, rng: np.random.Generator,
               unprivileged_rate: float = 0.5,
               privileged_rate: float = 0.1) -> Dataset:
    """T4: disproportionate label flipping."""
    mask = affected_rows(dataset, unprivileged_rate, privileged_rate, rng)
    return flip_labels(dataset, mask)


def corrupt_t5(dataset: Dataset, rng: np.random.Generator,
               unprivileged_rate: float = 0.5,
               privileged_rate: float = 0.1) -> Dataset:
    """T5: selection bias (disproportionate row removal)."""
    mask = affected_rows(dataset, unprivileged_rate, privileged_rate, rng)
    return selection_bias(dataset, mask)


def corrupt_t6(dataset: Dataset, rng: np.random.Generator,
               unprivileged_rate: float = 0.5,
               privileged_rate: float = 0.1) -> Dataset:
    """T6: outliers in the first feature plus duplicated rows."""
    mask = affected_rows(dataset, unprivileged_rate, privileged_rate, rng)
    out = inject_outliers(dataset, dataset.feature_names[0], mask)
    dup_mask = affected_rows(out, unprivileged_rate / 2,
                             privileged_rate / 2, rng)
    return duplicate_rows(out, dup_mask)


def corrupt_missing(dataset: Dataset, rng: np.random.Generator,
                    unprivileged_rate: float = 0.5,
                    privileged_rate: float = 0.1,
                    column_rate: float = 0.5) -> Dataset:
    """Disproportionate feature missingness, left as NaN.

    Unlike T3 (which blanks S and Y and re-imputes them on the spot),
    the holes here *stay* NaN: each affected row loses a random
    ``column_rate`` fraction of its feature values.  The repair choice
    is deliberately someone else's job — pair this recipe with the
    sweep engine's ``imputer`` axis to compare imputers on identical
    corruption.
    """
    mask = affected_rows(dataset, unprivileged_rate, privileged_rate, rng)
    if not 0.0 <= column_rate <= 1.0:
        raise ValueError("column_rate must be in [0, 1]")
    features = dataset.feature_names
    holes = mask[:, None] & (rng.random((dataset.n_rows,
                                         len(features))) < column_rate)
    table = dataset.table
    for column, feature in enumerate(features):
        column_holes = holes[:, column]
        if column_holes.all():  # keep every column imputable
            column_holes[rng.integers(dataset.n_rows)] = False
        values = table[feature].astype(float).copy()
        values[column_holes] = np.nan
        table = table.assign(**{feature: values})
    return dataset.with_table(table)


EXTENDED_RECIPES = {"t4": corrupt_t4, "t5": corrupt_t5, "t6": corrupt_t6,
                    "missing": corrupt_missing}


def corrupt_extended(dataset: Dataset, recipe: str, seed: int = 0,
                     **kwargs) -> Dataset:
    """Apply a named extended recipe (``t4``/``t5``/``t6``)."""
    if recipe not in EXTENDED_RECIPES:
        raise KeyError(f"unknown recipe {recipe!r}; choose from "
                       f"{sorted(EXTENDED_RECIPES)}")
    return EXTENDED_RECIPES[recipe](dataset, np.random.default_rng(seed),
                                    **kwargs)
