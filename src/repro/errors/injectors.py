"""Data-error injection for the robustness experiments (Section 4.4).

The paper corrupts COMPAS training data with three recipes, each
applied *disproportionately* — 50% of the unprivileged group's rows and
10% of the privileged group's — reflecting how data-quality issues
correlate with sensitive attributes in practice:

* **T1** — values of two attributes are swapped
  (``prior_convictions`` ↔ ``age``).
* **T2** — one attribute is scaled and another receives additive noise.
* **T3** — the sensitive attribute and the label go missing and are
  re-imputed with standard imputers.

The injectors here are generic over column names so the same machinery
drives tests, benchmarks, and ad-hoc studies; :func:`corrupt` applies a
named recipe to a dataset the way the paper does.
"""

from __future__ import annotations

import numpy as np

from ..datasets.dataset import Dataset
from .imputers import impute_mean, impute_mode

MISSING = np.nan


def affected_rows(dataset: Dataset, unprivileged_rate: float,
                  privileged_rate: float,
                  rng: np.random.Generator) -> np.ndarray:
    """Boolean mask of rows selected for corruption, drawn at the two
    group-specific rates (paper: 50% unprivileged / 10% privileged)."""
    for name, rate in (("unprivileged_rate", unprivileged_rate),
                       ("privileged_rate", privileged_rate)):
        if not 0.0 <= rate <= 1.0:
            raise ValueError(f"{name} must be in [0, 1]")
    s = dataset.s
    u = rng.random(dataset.n_rows)
    return np.where(s == 0, u < unprivileged_rate, u < privileged_rate)


def swap_columns(dataset: Dataset, first: str, second: str,
                 mask: np.ndarray) -> Dataset:
    """T1 primitive: swap two columns' values on the masked rows."""
    a = dataset.table[first].astype(float).copy()
    b = dataset.table[second].astype(float).copy()
    a[mask], b[mask] = b[mask], a[mask].copy()
    return dataset.with_table(dataset.table.assign(**{first: a, second: b}))


def scale_column(dataset: Dataset, column: str, factor: float,
                 mask: np.ndarray) -> Dataset:
    """T2 primitive: multiply a column by ``factor`` on masked rows."""
    values = dataset.table[column].astype(float).copy()
    values[mask] = values[mask] * factor
    return dataset.with_table(dataset.table.assign(**{column: values}))


def add_noise(dataset: Dataset, column: str, scale: float,
              mask: np.ndarray, rng: np.random.Generator) -> Dataset:
    """T2 primitive: add Gaussian noise (std = ``scale`` × column std)."""
    values = dataset.table[column].astype(float).copy()
    sigma = float(values.std()) * scale
    values[mask] = values[mask] + rng.normal(0, sigma, int(mask.sum()))
    return dataset.with_table(dataset.table.assign(**{column: values}))


def impute_missing(dataset: Dataset, column: str, mask: np.ndarray,
                   categorical: bool) -> Dataset:
    """T3 primitive: blank the masked entries, then re-impute them with
    the standard mean (numeric) / mode (categorical) imputer."""
    values = dataset.table[column].astype(float).copy()
    values[mask] = MISSING
    imputed = impute_mode(values) if categorical else impute_mean(values)
    return dataset.with_table(dataset.table.assign(**{column: imputed}))


# ----------------------------------------------------------------------
# Paper recipes
# ----------------------------------------------------------------------
def _pick(dataset: Dataset, preferred: tuple[str, ...],
          count: int) -> list[str]:
    """First ``count`` of the preferred columns present, padded with
    other features so recipes stay total on any dataset."""
    chosen = [c for c in preferred if c in dataset.feature_names]
    for feature in dataset.feature_names:
        if len(chosen) >= count:
            break
        if feature not in chosen:
            chosen.append(feature)
    if len(chosen) < count:
        raise ValueError(f"dataset has fewer than {count} features")
    return chosen[:count]


def corrupt_t1(dataset: Dataset, rng: np.random.Generator,
               unprivileged_rate: float = 0.5,
               privileged_rate: float = 0.1) -> Dataset:
    """T1: swapped values between ``prior_convictions`` and ``age``."""
    first, second = _pick(dataset, ("prior_convictions", "age"), 2)
    mask = affected_rows(dataset, unprivileged_rate, privileged_rate, rng)
    return swap_columns(dataset, first, second, mask)


def corrupt_t2(dataset: Dataset, rng: np.random.Generator,
               unprivileged_rate: float = 0.5,
               privileged_rate: float = 0.1,
               scale_factor: float = 10.0,
               noise_scale: float = 1.0) -> Dataset:
    """T2: scaled ``prior_convictions`` and noisy ``age``."""
    scaled, noisy = _pick(dataset, ("prior_convictions", "age"), 2)
    mask = affected_rows(dataset, unprivileged_rate, privileged_rate, rng)
    out = scale_column(dataset, scaled, scale_factor, mask)
    return add_noise(out, noisy, noise_scale, mask, rng)


def corrupt_t3(dataset: Dataset, rng: np.random.Generator,
               unprivileged_rate: float = 0.5,
               privileged_rate: float = 0.1) -> Dataset:
    """T3: missing sensitive attribute and label, re-imputed.

    Mode imputation of binary columns keeps them 0/1 so the dataset
    schema invariants continue to hold, exactly as scikit-learn's
    ``SimpleImputer(strategy="most_frequent")`` would.
    """
    mask = affected_rows(dataset, unprivileged_rate, privileged_rate, rng)
    out = impute_missing(dataset, dataset.sensitive, mask, categorical=True)
    return impute_missing(out, dataset.label, mask, categorical=True)


RECIPES = {"t1": corrupt_t1, "t2": corrupt_t2, "t3": corrupt_t3}


def corrupt(dataset: Dataset, recipe: str, seed: int = 0,
            **kwargs) -> Dataset:
    """Apply a named corruption recipe (``t1``/``t2``/``t3``)."""
    if recipe not in RECIPES:
        raise KeyError(f"unknown recipe {recipe!r}; choose from "
                       f"{sorted(RECIPES)}")
    return RECIPES[recipe](dataset, np.random.default_rng(seed), **kwargs)
