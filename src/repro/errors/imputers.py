"""Missing-value imputation (the paper's "standard Scikit-learn
imputers" used by corruption recipe T3)."""

from __future__ import annotations

import numpy as np

from .. import obs


def impute_mean(values: np.ndarray) -> np.ndarray:
    """Replace NaNs with the mean of the observed entries."""
    values = np.asarray(values, dtype=float).copy()
    missing = np.isnan(values)
    if missing.all():
        raise ValueError("cannot impute a fully missing column")
    obs.add("impute.cells", int(missing.sum()))
    values[missing] = values[~missing].mean()
    return values


def impute_mode(values: np.ndarray) -> np.ndarray:
    """Replace NaNs with the most frequent observed value."""
    values = np.asarray(values, dtype=float).copy()
    missing = np.isnan(values)
    if missing.all():
        raise ValueError("cannot impute a fully missing column")
    obs.add("impute.cells", int(missing.sum()))
    observed = values[~missing]
    uniques, counts = np.unique(observed, return_counts=True)
    values[missing] = uniques[np.argmax(counts)]
    return values


def impute_median(values: np.ndarray) -> np.ndarray:
    """Replace NaNs with the median of the observed entries."""
    values = np.asarray(values, dtype=float).copy()
    missing = np.isnan(values)
    if missing.all():
        raise ValueError("cannot impute a fully missing column")
    obs.add("impute.cells", int(missing.sum()))
    values[missing] = np.median(values[~missing])
    return values


def impute_constant(values: np.ndarray, fill_value: float) -> np.ndarray:
    """Replace NaNs with a fixed sentinel value."""
    values = np.asarray(values, dtype=float).copy()
    missing = np.isnan(values)
    obs.add("impute.cells", int(missing.sum()))
    values[missing] = fill_value
    return values


def impute_knn(X: np.ndarray, k: int = 5,
               block_size: int | None = None) -> np.ndarray:
    """k-nearest-neighbour imputation over a feature matrix.

    For each missing cell, the imputed value is the mean of that column
    over the ``k`` rows nearest in the observed coordinates (distances
    use only features present in *both* rows, rescaled per column).
    Donor distances come from the shared masked block-matmul kernel
    (:func:`repro.metrics.pairwise.masked_sq_blocks`): rows needing
    repair are processed ``block_size`` at a time against the whole
    matrix, instead of one Python-level row at a time.  Row pairs with
    fully disjoint observation patterns are *incomparable* — they get
    an explicit infinite distance
    (:func:`repro.metrics.pairwise.masked_mean_distances`) and are
    never donors; a cell with no comparable observed donor at all
    falls back to the column mean.

    Parameters
    ----------
    X:
        2-D matrix with NaNs marking missing entries.
    k:
        Neighbourhood size.
    block_size:
        Rows-needing-repair per kernel block (``None`` = the kernel
        default).

    Raises
    ------
    ValueError
        If some column is entirely missing or ``k`` is invalid.
    """
    from ..metrics import pairwise

    X = np.asarray(X, dtype=float).copy()
    if X.ndim != 2:
        raise ValueError(f"X must be 2-D, got shape {X.shape}")
    if k < 1:
        raise ValueError("k must be at least 1")
    missing = np.isnan(X)
    if not missing.any():
        return X
    if missing.all(axis=0).any():
        raise ValueError("cannot impute a fully missing column")
    obs.add("impute.cells", int(missing.sum()))

    # Column scaling for comparable distances; constant columns keep a
    # unit scale rather than dividing by a zero spread.
    col_mean = np.nanmean(X, axis=0)
    col_std = np.nanstd(X, axis=0)
    col_std[col_std == 0] = 1.0
    Z = (X - col_mean) / col_std

    out = X.copy()
    observed = ~missing
    needs = np.flatnonzero(missing.any(axis=1))
    for start, stop, d2, counts in pairwise.masked_sq_blocks(
            Z, observed, needs, block_size=block_size):
        rows = needs[start:stop]
        dist = pairwise.masked_mean_distances(d2, counts)
        dist[np.arange(rows.size), rows] = np.inf  # never one's own row
        order = np.argsort(dist, axis=1, kind="stable")
        finite = np.take_along_axis(np.isfinite(dist), order, axis=1)
        for local, i in enumerate(rows):
            for j in np.flatnonzero(missing[i]):
                eligible = finite[local] & observed[order[local], j]
                donors = order[local, eligible][:k]
                out[i, j] = (float(np.mean(X[donors, j])) if donors.size
                             else col_mean[j])
    return out


def impute_iterative(X: np.ndarray, n_iter: int = 5,
                     ridge: float = 1.0) -> np.ndarray:
    """Round-robin regression imputation (MICE-style).

    Missing entries start at their column means; then each column with
    holes is repeatedly re-predicted by ridge regression on all other
    columns, for ``n_iter`` sweeps.  Captures cross-column structure
    that mean imputation destroys.
    """
    X = np.asarray(X, dtype=float).copy()
    if X.ndim != 2:
        raise ValueError(f"X must be 2-D, got shape {X.shape}")
    if n_iter < 1:
        raise ValueError("n_iter must be at least 1")
    missing = np.isnan(X)
    if not missing.any():
        return X
    if missing.all(axis=0).any():
        raise ValueError("cannot impute a fully missing column")
    obs.add("impute.cells", int(missing.sum()))
    col_mean = np.nanmean(X, axis=0)
    filled = np.where(missing, col_mean, X)
    holes = np.flatnonzero(missing.any(axis=0))
    d = X.shape[1]
    for _ in range(n_iter):
        for j in holes:
            observed = ~missing[:, j]
            others = [c for c in range(d) if c != j]
            A = np.column_stack([filled[:, others],
                                 np.ones(X.shape[0])])
            reg = ridge * np.eye(A.shape[1])
            reg[-1, -1] = 0.0                      # don't shrink the bias
            coef = np.linalg.solve(
                A[observed].T @ A[observed] + reg,
                A[observed].T @ filled[observed, j])
            filled[missing[:, j], j] = (A @ coef)[missing[:, j]]
    return filled
