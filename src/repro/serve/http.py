"""Minimal stdlib HTTP/JSON front end for :class:`AuditService`.

No web framework: a :class:`http.server.ThreadingHTTPServer` serving
four routes, so ``repro serve`` carries zero new dependencies.

Routes
------
``GET /healthz``
    ``{"status": "ok", "fingerprint": ...}`` — liveness probe.
``GET /manifest``
    The bundle's serving metadata (column roles, audit knobs).
``POST /audit-one-row``
    Body ``{"row": {column: value, ...}}`` → one verdict object.
``POST /audit-batch``
    Body ``{"rows": [{...}, ...]}`` → ``{"results": [...]}``.

Malformed JSON, unknown routes, and :class:`AuditRequestError` map to
400/404 with a JSON ``{"error": ...}`` body; unexpected failures map
to 500.  All error paths count on the ``serve.errors`` counter,
requests on ``serve.requests`` (via the service).
"""

from __future__ import annotations

import json
import logging
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from .. import obs
from .service import AuditRequestError, AuditService

__all__ = ["AuditHTTPServer", "serve_forever"]

log = logging.getLogger("repro.serve")


class AuditHTTPServer(ThreadingHTTPServer):
    """An HTTP server bound to one :class:`AuditService`."""

    daemon_threads = True

    def __init__(self, address: tuple[str, int], service: AuditService,
                 max_requests: int | None = None):
        super().__init__(address, _Handler)
        self.service = service
        self.max_requests = max_requests
        self.requests_handled = 0
        self._lock = threading.Lock()

    def count_request(self) -> None:
        """Track handled requests; trigger shutdown past the cap.

        ``shutdown()`` must come from a thread other than the one
        running ``serve_forever`` — the handler threads qualify.
        """
        with self._lock:
            self.requests_handled += 1
            if (self.max_requests is not None
                    and self.requests_handled >= self.max_requests):
                threading.Thread(target=self.shutdown,
                                 daemon=True).start()


class _Handler(BaseHTTPRequestHandler):
    protocol_version = "HTTP/1.1"
    server: AuditHTTPServer

    # -- plumbing ------------------------------------------------------
    def log_message(self, format, *args):  # noqa: A002 - stdlib name
        log.debug("%s %s", self.address_string(), format % args)

    def _send_json(self, status: int, payload: dict) -> None:
        body = json.dumps(payload).encode()
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)
        self.server.count_request()

    def _fail(self, status: int, message: str) -> None:
        obs.add("serve.errors")
        self._send_json(status, {"error": message})

    def _read_body(self) -> dict:
        length = int(self.headers.get("Content-Length") or 0)
        raw = self.rfile.read(length) if length else b""
        try:
            payload = json.loads(raw or b"null")
        except json.JSONDecodeError as exc:
            raise AuditRequestError(f"request body is not JSON: {exc}") \
                from None
        if not isinstance(payload, dict):
            raise AuditRequestError(
                "request body must be a JSON object")
        return payload

    # -- routes --------------------------------------------------------
    def do_GET(self):  # noqa: N802 - stdlib dispatch name
        if self.path == "/healthz":
            meta = self.server.service.components.meta
            self._send_json(200, {
                "status": "ok",
                "fingerprint": meta.get("fingerprint", ""),
                "dataset": meta.get("dataset", ""),
            })
        elif self.path == "/manifest":
            self._send_json(200, dict(self.server.service.components.meta))
        else:
            self._fail(404, f"unknown path {self.path!r}; routes: "
                            "/healthz /manifest /audit-one-row "
                            "/audit-batch")

    def do_POST(self):  # noqa: N802 - stdlib dispatch name
        service = self.server.service
        try:
            if self.path == "/audit-one-row":
                payload = self._read_body()
                if "row" not in payload:
                    raise AuditRequestError(
                        'audit-one-row body must be {"row": {...}}')
                with obs.span("serve.request", route="audit-one-row"):
                    result = service.audit_row(payload["row"])
                self._send_json(200, result)
            elif self.path == "/audit-batch":
                payload = self._read_body()
                if "rows" not in payload:
                    raise AuditRequestError(
                        'audit-batch body must be {"rows": [{...}, ...]}')
                with obs.span("serve.request", route="audit-batch"):
                    results = service.audit_batch(payload["rows"])
                self._send_json(200, {"results": results})
            else:
                self._fail(404, f"unknown path {self.path!r}")
        except AuditRequestError as exc:
            # Already counted on serve.errors when raised inside the
            # service; body/shape errors raised here are not, so count
            # uniformly through _fail only for the latter.
            if self.path in ("/audit-one-row", "/audit-batch") \
                    and _counted_by_service(exc):
                self._send_json(400, {"error": str(exc)})
            else:
                self._fail(400, str(exc))
        except Exception as exc:  # pragma: no cover - defensive
            log.exception("unhandled error serving %s", self.path)
            self._fail(500, f"internal error: {type(exc).__name__}: {exc}")


def _counted_by_service(exc: AuditRequestError) -> bool:
    """Whether the service already counted this error on serve.errors."""
    return getattr(exc, "_counted", False)


def serve_forever(service: AuditService, host: str = "127.0.0.1",
                  port: int = 0, max_requests: int | None = None,
                  ready: threading.Event | None = None) -> AuditHTTPServer:
    """Run the HTTP server until shutdown (or ``max_requests``).

    Blocks; returns the server object after the loop ends.  When
    launched on a helper thread with ``port=0``, pass ``ready``: the
    bound server is stashed on the event as ``ready.server`` before
    the event is set, so the launching thread can read the chosen
    address (and call ``shutdown()``) while the loop runs.
    """
    server = AuditHTTPServer((host, port), service,
                             max_requests=max_requests)
    if ready is not None:
        ready.server = server
        ready.set()
    try:
        server.serve_forever(poll_interval=0.05)
    finally:
        server.server_close()
    return server
