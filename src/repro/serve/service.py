"""In-process audit service over packed serving components.

:class:`AuditService` loads a bundle (or freshly built
:class:`~repro.artifacts.ServingComponents`) once and answers
per-request fairness audits: each audited row gets a situation-testing
verdict (k-NN decision gap against the frozen reference population)
and a rung-3 counterfactual verdict (abduction–action–prediction flip
probability under ``do(S)``), plus the deployed pipeline's own
decision.

Determinism contract: ``audit_row(r)`` equals the entry for ``r`` in
``audit_batch([...])`` byte for byte, regardless of batch composition.
Two properties make that hold:

* every per-row abduction draws from an RNG seeded by a hash of the
  service seed and the row's own (discretised) evidence — no shared
  stream whose position depends on earlier rows;
* the pipeline is invoked exactly once per audited row, on that row's
  ``2 × n_particles + 1`` stacked worlds (both counterfactual worlds
  plus the factual row) — post-processors draw their adjustment
  randomness per ``predict`` call, so the call shape must be a
  per-row constant for single- and batch-path predictions to match.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path

import numpy as np

from .. import obs
from ..artifacts import ServingComponents, components_from_bundle

__all__ = ["AuditRequestError", "AuditService"]


class AuditRequestError(ValueError):
    """A malformed audit request (the HTTP layer's 400 class)."""


class AuditService:
    """Load once, audit many: the embedding API behind ``repro serve``."""

    def __init__(self, components: ServingComponents):
        self.components = components
        meta = components.meta
        self.sensitive = meta["sensitive"]
        self.label = meta["label"]
        self.feature_names = tuple(meta["feature_names"])
        self.nodes = tuple(meta["nodes"])
        self.seed = int(meta.get("seed", 0))
        self.n_particles = int(meta.get("n_particles", 150))
        self.cf_threshold = float(meta.get("cf_threshold", 0.05))
        self.required = tuple(dict.fromkeys(
            (*self.nodes, *self.feature_names, self.sensitive, self.label)))

    @classmethod
    def from_bundle(cls, path: str | Path) -> "AuditService":
        """Open a bundle directory and build the service from it."""
        return cls(components_from_bundle(path))

    # ------------------------------------------------------------------
    # Request decoding
    # ------------------------------------------------------------------
    def _decode_rows(self, rows) -> dict[str, np.ndarray]:
        """Validate request rows into discretised column arrays."""
        if not isinstance(rows, (list, tuple)) or not rows:
            raise AuditRequestError(
                "request must carry a non-empty list of rows")
        columns: dict[str, list[float]] = {name: [] for name in self.required}
        for position, row in enumerate(rows):
            if not isinstance(row, dict):
                raise AuditRequestError(
                    f"row {position} is not an object of column values")
            missing = [name for name in self.required if name not in row]
            if missing:
                raise AuditRequestError(
                    f"row {position} is missing required columns "
                    f"{missing}; every audit row must carry "
                    f"{list(self.required)}")
            for name in self.required:
                try:
                    columns[name].append(float(row[name]))
                except (TypeError, ValueError):
                    raise AuditRequestError(
                        f"row {position} column {name!r} is not numeric: "
                        f"{row[name]!r}") from None
        out = {name: np.asarray(values, dtype=float)
               for name, values in columns.items()}
        for name in (self.sensitive, self.label):
            bad = (out[name] != 0.0) & (out[name] != 1.0)
            if bad.any():
                raise AuditRequestError(
                    f"column {name!r} must be binary 0/1; got "
                    f"{sorted(np.unique(out[name][bad]).tolist())}")
        discretizer = self.components.discretizer
        numeric = self.components.numeric
        if discretizer is not None and numeric:
            matrix = np.column_stack([out[name] for name in numeric])
            binned = discretizer.transform(matrix)
            for j, name in enumerate(numeric):
                out[name] = binned[:, j]
        return out

    # ------------------------------------------------------------------
    # Audits
    # ------------------------------------------------------------------
    def _row_rng(self, evidence: tuple[float, ...]) -> np.random.Generator:
        """Deterministic, batch-independent RNG for one audited row."""
        payload = json.dumps([self.seed, list(evidence)],
                             separators=(",", ":"))
        digest = hashlib.sha256(payload.encode()).digest()
        entropy = int.from_bytes(digest[:16], "little")
        return np.random.default_rng(np.random.SeedSequence(entropy))

    def _audit_counterfactual_row(self, values: dict[str, float]) -> dict:
        """Abduction–action–prediction for one row (both worlds + the
        factual decision in a single pipeline call)."""
        scm, pipeline = self.components.scm, self.components.pipeline
        particles = self.n_particles
        # Broadcast views, not materialised arrays: evidence columns are
        # per-row constants and every consumer only reads them.
        evidence = {node: np.broadcast_to(float(values[node]), (particles,))
                    for node in self.nodes}
        rng = self._row_rng(tuple(values[node] for node in self.nodes))
        noise = scm.abduct_rows(evidence, rng)
        worlds = [scm.evaluate(noise, {self.sensitive: flip}, base=evidence)
                  for flip in (1.0, 0.0)]
        stacked: dict[str, np.ndarray] = {}
        for name in (*self.feature_names, self.sensitive, self.label):
            parts = []
            for world in worlds:
                arr = world.get(name)
                if arr is None:
                    arr = np.broadcast_to(float(values[name]), (particles,))
                parts.append(arr)
            parts.append(np.asarray([values[name]]))
            stacked[name] = np.concatenate(parts)
        positive = np.asarray(pipeline.predict_columns(stacked),
                              dtype=float) > 0.5
        rate_s1 = float(positive[:particles].mean())
        rate_s0 = float(positive[particles:2 * particles].mean())
        gap = abs(rate_s1 - rate_s0)
        return {
            "prediction": int(positive[-1]),
            "gap": gap,
            "rate_s1": rate_s1,
            "rate_s0": rate_s0,
            "unfair": bool(gap > self.cf_threshold),
        }

    def audit_batch(self, rows) -> list[dict]:
        """Audit a list of raw-column rows; one verdict dict per row.

        Raises :class:`AuditRequestError` on malformed input (missing
        columns, non-numeric values, values outside the SCM domains).
        """
        obs.add("serve.requests")
        try:
            with obs.span("serve.decode", rows=len(rows)
                          if isinstance(rows, (list, tuple)) else 0):
                columns = self._decode_rows(rows)
            n = columns[self.sensitive].shape[0]
            obs.add("serve.rows", n)
            reference = self.components.reference
            with obs.span("serve.situation", rows=n):
                X = np.column_stack(
                    [columns[name] for name in self.feature_names])
                situation = reference.audit_rows(X)
            with obs.span("serve.counterfactual", rows=n,
                          particles=self.n_particles):
                counterfactual = []
                for i in range(n):
                    values = {name: float(columns[name][i])
                              for name in self.required}
                    try:
                        counterfactual.append(
                            self._audit_counterfactual_row(values))
                    except ValueError as exc:
                        # SCM rejections (value outside a CPT domain,
                        # zero-probability evidence) are request
                        # errors, not server faults.
                        raise AuditRequestError(
                            f"row {i} is not auditable: {exc}") from None
        except AuditRequestError as exc:
            obs.add("serve.errors")
            # Mark so the HTTP layer doesn't count the same failure
            # twice on serve.errors.
            exc._counted = True
            raise
        responses = []
        for i in range(n):
            cf = counterfactual[i]
            responses.append({
                "prediction": cf.pop("prediction"),
                "counterfactual": {
                    **cf,
                    "threshold": self.cf_threshold,
                    "n_particles": self.n_particles,
                },
                "situation": {
                    "gap": float(situation["gap"][i]),
                    "rate_privileged":
                        float(situation["rate_privileged"][i]),
                    "rate_unprivileged":
                        float(situation["rate_unprivileged"][i]),
                    "flagged": bool(situation["flagged"][i]),
                    "threshold": reference.threshold,
                    "k": reference.k,
                },
            })
        return responses

    def audit_row(self, row: dict) -> dict:
        """Audit one row; identical to its entry in a batch audit."""
        return self.audit_batch([row])[0]
