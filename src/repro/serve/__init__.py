"""Online audit serving: load a bundle once, audit rows per request.

Two entry points over the same :class:`AuditService`:

* **in-process** — ``AuditService.from_bundle(path).audit_row({...})``
  for embedding the audit path in another Python service;
* **HTTP/JSON** — ``repro serve BUNDLE`` (see
  :mod:`repro.serve.http`), a stdlib ``http.server`` front end with
  ``/audit-one-row`` and ``/audit-batch`` routes.

Both are instrumented with :mod:`repro.obs` (``serve.requests`` /
``serve.rows`` / ``serve.errors`` counters, per-phase request spans)
and both honour the determinism contract: a row's verdict does not
depend on which batch it arrived in.
"""

from .http import AuditHTTPServer, serve_forever
from .service import AuditRequestError, AuditService

__all__ = ["AuditHTTPServer", "AuditRequestError", "AuditService",
           "serve_forever"]
