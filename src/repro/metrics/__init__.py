"""Evaluation metrics: correctness (Figure 2), fairness (Figure 4), and
the full notion catalog of Figure 3 (observational, interventional, and
counterfactual).  :mod:`repro.metrics.pairwise` is the shared
block-matmul distance/top-k kernel behind every k-NN-shaped consumer.
"""

from . import pairwise
from .causal_notions import (CounterfactualErrorRates, CtfEffects,
                             causal_risk_difference,
                             counterfactual_error_rates, ctf_effects,
                             equality_of_effort_gap,
                             fair_on_average_causal_effect,
                             justifiable_fairness_gap,
                             non_discrimination_score, proxy_fairness_gap)
from .confusion import ConfusionCounts
from .correctness import (CorrectnessReport, accuracy, f1_score, precision,
                          recall)
from .fairness import (causal_effects_of_predictions, disparate_impact,
                       id_sample_size, individual_discrimination,
                       total_effect, true_negative_rate_balance,
                       true_positive_rate_balance)
from .individual import (CounterfactualFairnessResult,
                         SituationTestingResult, counterfactual_fairness,
                         fairness_through_awareness, metric_multifairness,
                         normalized_euclidean,
                         path_specific_counterfactual_fairness,
                         situation_testing)
from .normalize import (NormalizedScore, di_star, normalize_di, normalize_id,
                        normalize_signed, one_minus_abs)

__all__ = [
    "ConfusionCounts",
    "accuracy", "precision", "recall", "f1_score", "CorrectnessReport",
    "disparate_impact", "true_positive_rate_balance",
    "true_negative_rate_balance", "individual_discrimination",
    "id_sample_size", "total_effect", "causal_effects_of_predictions",
    "di_star", "one_minus_abs", "NormalizedScore", "normalize_di",
    "normalize_signed", "normalize_id",
    "CtfEffects", "ctf_effects",
    "CounterfactualErrorRates", "counterfactual_error_rates",
    "proxy_fairness_gap", "fair_on_average_causal_effect",
    "causal_risk_difference", "justifiable_fairness_gap",
    "non_discrimination_score", "equality_of_effort_gap",
    "CounterfactualFairnessResult", "counterfactual_fairness",
    "path_specific_counterfactual_fairness",
    "SituationTestingResult", "situation_testing",
    "fairness_through_awareness", "metric_multifairness",
    "normalized_euclidean", "pairwise",
]
