"""Normalisation of fairness metrics onto a shared "1 = fair" scale.

The paper reports ``DI* = min(DI, 1/DI)`` and ``1 − |metric|`` for the
signed metrics, so that every fairness score lies in [0, 1] with 1
meaning perfectly fair (Section 4.1).  The sign of the remaining
discrimination is kept alongside, because the figures mark "reverse"
discrimination (favouring the unprivileged group) in red.
"""

from __future__ import annotations

import math
from dataclasses import dataclass


def di_star(di: float) -> float:
    """``min(DI, 1/DI)`` — maps both directions of disparate impact
    onto [0, 1] with 1 = parity.  ``nan`` stays ``nan``."""
    if math.isnan(di):
        return float("nan")
    if di == 0 or math.isinf(di):
        return 0.0
    return min(di, 1.0 / di)


def one_minus_abs(value: float) -> float:
    """``1 − |value|`` for the signed difference metrics."""
    if math.isnan(value):
        return float("nan")
    return 1.0 - abs(value)


@dataclass(frozen=True)
class NormalizedScore:
    """A [0, 1] fairness score plus the direction of residual bias.

    ``reverse`` is True when the residual discrimination favours the
    *unprivileged* group (the red-striped bars of the paper's figures).
    """

    score: float
    reverse: bool

    def __float__(self) -> float:
        return self.score


def normalize_di(di: float) -> NormalizedScore:
    """Normalise raw disparate impact; DI > 1 favours the unprivileged."""
    return NormalizedScore(score=di_star(di),
                           reverse=(not math.isnan(di)) and di > 1.0)


def normalize_signed(value: float) -> NormalizedScore:
    """Normalise a signed balance/effect metric (TPRB, TNRB, TE, ...).

    Positive raw values mean the privileged group is favoured; negative
    values are "reverse" discrimination.
    """
    return NormalizedScore(score=one_minus_abs(value),
                           reverse=(not math.isnan(value)) and value < 0)


def normalize_id(value: float) -> NormalizedScore:
    """Normalise individual discrimination (unsigned, lower = fairer)."""
    return NormalizedScore(score=one_minus_abs(value), reverse=False)
