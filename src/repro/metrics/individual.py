"""Individual-level fairness metrics beyond the ID metric.

Completes the individual rows of the paper's Figure 3 that the headline
evaluation excludes because they need a similarity metric or a causal
model:

* **counterfactual fairness** [Kusner et al.] — a predictor is fair for
  an individual if its prediction would not change had the individual's
  sensitive attribute been different, *holding the exogenous background
  fixed* (a rung-3 quantity computed by abduction).
* **path-specific counterfactual fairness** [Wu et al.] — the same, but
  only the discriminatory paths are flipped.
* **individual direct discrimination / situation testing** [Zhang et
  al.] — compare an individual's decision against the decisions of its
  k nearest neighbours in each sensitive group.
* **fairness through awareness** [Dwork et al.] — a Lipschitz condition
  tying prediction distance to individual similarity.
* **metric multifairness** [Kim et al.] — the awareness condition
  relaxed to hold on average over a collection of comparison sets.
"""

from __future__ import annotations

from collections.abc import Callable, Mapping, Sequence
from dataclasses import dataclass

import numpy as np

from ..causal.counterfactual import CounterfactualSCM
from ..causal.pse import path_specific_effect

__all__ = [
    "CounterfactualFairnessResult",
    "counterfactual_fairness",
    "path_specific_counterfactual_fairness",
    "SituationTestingResult",
    "situation_testing",
    "fairness_through_awareness",
    "metric_multifairness",
    "normalized_euclidean",
]

Predictor = Callable[[dict[str, np.ndarray]], np.ndarray]
Similarity = Callable[[np.ndarray, np.ndarray], np.ndarray]


# ----------------------------------------------------------------------
# Counterfactual fairness
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class CounterfactualFairnessResult:
    """Per-population summary of counterfactual prediction flips.

    Attributes
    ----------
    mean_gap:
        Mean over audited rows of ``|P(Ŷ_{S←1}=1 | row) −
        P(Ŷ_{S←0}=1 | row)|``.
    max_gap:
        Largest per-row gap.
    unfair_fraction:
        Fraction of rows whose gap exceeds ``threshold``.
    threshold:
        The tolerance used for ``unfair_fraction``.
    n_rows:
        Number of rows audited.
    """

    mean_gap: float
    max_gap: float
    unfair_fraction: float
    threshold: float
    n_rows: int


def _iter_rows(columns: Mapping[str, np.ndarray], nodes: Sequence[str],
               limit: int | None) -> list[dict[str, float]]:
    n = np.asarray(columns[nodes[0]]).shape[0]
    take = n if limit is None else min(limit, n)
    return [
        {node: float(np.asarray(columns[node])[i]) for node in nodes}
        for i in range(take)
    ]


def counterfactual_fairness(scm: CounterfactualSCM,
                            columns: Mapping[str, np.ndarray],
                            sensitive: str, outcome: str,
                            predict: Predictor,
                            rng: np.random.Generator,
                            n_particles: int = 200,
                            max_rows: int | None = 100,
                            threshold: float = 0.05,
                            ) -> CounterfactualFairnessResult:
    """Audit a classifier for counterfactual fairness.

    For each audited row the full abduction–action–prediction recipe
    runs twice (``do(S=1)`` and ``do(S=0)``) on shared posterior noise;
    the row's gap is the absolute difference of the two positive
    prediction rates.

    Parameters
    ----------
    scm:
        Explicit-noise SCM over the data attributes (including the
        ground-truth outcome node, which is part of the evidence).
    columns:
        Observed data; must cover every SCM node.
    sensitive, outcome:
        The sensitive attribute and the ground-truth outcome node.
    predict:
        Classifier mapping a column dict to predictions; evaluated on
        the counterfactual attribute values.
    n_particles:
        Posterior noise samples per row and world.
    max_rows:
        Audit at most this many rows (None = all).  Abduction is per
        row, so cost is linear in this.
    threshold:
        A row counts as counterfactually unfair when its gap exceeds
        this.
    """
    nodes = scm.graph.topological_order()
    missing = [n for n in nodes if n not in columns]
    if missing:
        raise ValueError(f"columns missing for SCM nodes: {missing}")
    gaps = []
    for row in _iter_rows(columns, nodes, max_rows):
        noise = scm.abduct(row, n_particles, rng)
        rates = []
        for value in (1.0, 0.0):
            world = scm.evaluate(noise, {sensitive: value})
            rates.append(float(np.mean(
                np.asarray(predict(world), dtype=float) > 0.5)))
        gaps.append(abs(rates[0] - rates[1]))
    gaps_arr = np.asarray(gaps)
    return CounterfactualFairnessResult(
        mean_gap=float(gaps_arr.mean()),
        max_gap=float(gaps_arr.max()),
        unfair_fraction=float(np.mean(gaps_arr > threshold)),
        threshold=threshold,
        n_rows=len(gaps),
    )


def path_specific_counterfactual_fairness(
        scm: CounterfactualSCM, sensitive: str, outcome: str,
        discriminatory_edges: frozenset[tuple[str, str]] | set,
        predict: Predictor, n: int, rng: np.random.Generator,
        s1: float = 1.0, s0: float = 0.0) -> float:
    """Wu et al.'s path-specific counterfactual (PC) fairness.

    Measures the effect of flipping the sensitive attribute *only along
    the user-designated discriminatory paths* on the classifier's
    predictions; 0 means the classifier is PC-fair w.r.t. those paths.

    This is the population-level PC effect — the per-individual variant
    is :func:`counterfactual_fairness` restricted to the same edges.
    """
    result = path_specific_effect(
        scm, sensitive, outcome, discriminatory_edges, n, rng,
        s1=s1, s0=s0, predict=predict)
    return result.effect


# ----------------------------------------------------------------------
# Situation testing (individual direct discrimination)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class SituationTestingResult:
    """Summary of a k-NN situation-testing audit.

    Attributes
    ----------
    flagged_fraction:
        Fraction of audited individuals whose neighbourhood decision
        gap exceeds the test threshold.
    mean_gap:
        Mean neighbourhood decision gap over audited individuals
        (privileged-neighbour rate minus unprivileged-neighbour rate).
    threshold:
        The gap above which an individual counts as discriminated.
    n_audited:
        Number of individuals audited.
    """

    flagged_fraction: float
    mean_gap: float
    threshold: float
    n_audited: int


def normalized_euclidean(X: np.ndarray) -> np.ndarray:
    """Pairwise distances after per-feature min-max scaling.

    The standard distance for situation testing: features are rescaled
    to ``[0, 1]`` so no single attribute dominates.
    """
    X = np.asarray(X, dtype=float)
    span = X.max(axis=0) - X.min(axis=0)
    span[span == 0] = 1.0
    Z = (X - X.min(axis=0)) / span
    sq = np.sum(Z ** 2, axis=1)
    d2 = sq[:, None] + sq[None, :] - 2 * Z @ Z.T
    np.fill_diagonal(d2, 0.0)
    return np.sqrt(np.maximum(d2, 0.0))


def situation_testing(X: np.ndarray, s: np.ndarray, y_hat: np.ndarray,
                      k: int = 8, threshold: float = 0.2,
                      audit_group: int = 0,
                      distances: np.ndarray | None = None,
                      ) -> SituationTestingResult:
    """Zhang et al.'s situation-testing discrimination discovery.

    For each member of the audited group, takes its ``k`` nearest
    neighbours within the privileged group and within the unprivileged
    group and compares their positive-decision rates.  A large gap
    means similar individuals are treated differently depending on the
    sensitive attribute — individual *direct* discrimination.

    Parameters
    ----------
    X:
        Feature matrix (without the sensitive attribute).
    s:
        Binary sensitive attribute (1 = privileged).
    y_hat:
        Binary decisions being audited.
    k:
        Neighbourhood size per group.
    threshold:
        Gap above which an individual is flagged.
    audit_group:
        Which group's members to audit (default: the unprivileged).
    distances:
        Optional precomputed pairwise distance matrix; defaults to
        :func:`normalized_euclidean`.
    """
    X = np.asarray(X, dtype=float)
    s = np.asarray(s, dtype=int)
    y_hat = (np.asarray(y_hat, dtype=float) > 0.5).astype(float)
    if X.shape[0] != s.shape[0] or s.shape != y_hat.shape:
        raise ValueError("X, s, y_hat must be aligned")
    if k < 1:
        raise ValueError("k must be at least 1")
    d = normalized_euclidean(X) if distances is None else distances
    idx_priv = np.flatnonzero(s == 1)
    idx_unpriv = np.flatnonzero(s == 0)
    if idx_priv.size < k or idx_unpriv.size < k:
        raise ValueError(f"each group needs at least k={k} members")

    audited = np.flatnonzero(s == audit_group)
    gaps = []
    for i in audited:
        gap_parts = []
        for pool in (idx_priv, idx_unpriv):
            others = pool[pool != i]
            nearest = others[np.argsort(d[i, others], kind="stable")[:k]]
            gap_parts.append(float(np.mean(y_hat[nearest])))
        gaps.append(gap_parts[0] - gap_parts[1])
    gaps_arr = np.asarray(gaps)
    return SituationTestingResult(
        flagged_fraction=float(np.mean(np.abs(gaps_arr) > threshold)),
        mean_gap=float(gaps_arr.mean()),
        threshold=threshold,
        n_audited=int(audited.size),
    )


# ----------------------------------------------------------------------
# Awareness-style metrics
# ----------------------------------------------------------------------
def _sample_pairs(n: int, n_pairs: int, rng: np.random.Generator
                  ) -> tuple[np.ndarray, np.ndarray]:
    a = rng.integers(0, n, n_pairs)
    b = rng.integers(0, n, n_pairs)
    keep = a != b
    return a[keep], b[keep]


def fairness_through_awareness(X: np.ndarray, scores: np.ndarray,
                               rng: np.random.Generator,
                               lipschitz: float = 1.0,
                               n_pairs: int = 5000,
                               distances: np.ndarray | None = None,
                               ) -> float:
    """Dwork et al.'s Lipschitz fairness violation rate.

    Samples random pairs and returns the fraction violating
    ``|f(x) − f(y)| ≤ L · d(x, y)`` where ``f`` is the score and ``d``
    the normalised-Euclidean individual similarity.  0 means the
    awareness condition holds on the sampled pairs.
    """
    X = np.asarray(X, dtype=float)
    scores = np.asarray(scores, dtype=float)
    if X.shape[0] != scores.shape[0]:
        raise ValueError("X and scores must be aligned")
    if lipschitz <= 0:
        raise ValueError("lipschitz must be positive")
    d = normalized_euclidean(X) if distances is None else distances
    a, b = _sample_pairs(X.shape[0], n_pairs, rng)
    if a.size == 0:
        raise ValueError("no valid pairs sampled; increase n_pairs")
    violations = np.abs(scores[a] - scores[b]) > lipschitz * d[a, b] + 1e-12
    return float(np.mean(violations))


def metric_multifairness(X: np.ndarray, scores: np.ndarray,
                         rng: np.random.Generator,
                         n_sets: int = 50, set_size: int = 40,
                         radius: float = 0.25,
                         distances: np.ndarray | None = None) -> float:
    """Kim et al.'s metric multifairness violation.

    For a collection of random comparison sets of *similar* pairs
    (pairs closer than ``radius`` under the normalised metric), the
    average score difference within each set must be small.  Returns
    the largest absolute within-set average difference; 0 means
    multifair on the sampled collection.
    """
    X = np.asarray(X, dtype=float)
    scores = np.asarray(scores, dtype=float)
    d = normalized_euclidean(X) if distances is None else distances
    n = X.shape[0]
    worst = 0.0
    found_any = False
    for _ in range(n_sets):
        a, b = _sample_pairs(n, set_size * 4, rng)
        close = d[a, b] <= radius
        a, b = a[close][:set_size], b[close][:set_size]
        if a.size == 0:
            continue
        found_any = True
        worst = max(worst, abs(float(np.mean(scores[a] - scores[b]))))
    if not found_any:
        raise ValueError(
            f"no similar pairs found within radius {radius}; increase it"
        )
    return worst
