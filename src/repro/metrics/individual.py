"""Individual-level fairness metrics beyond the ID metric.

Completes the individual rows of the paper's Figure 3 that the headline
evaluation excludes because they need a similarity metric or a causal
model:

* **counterfactual fairness** [Kusner et al.] — a predictor is fair for
  an individual if its prediction would not change had the individual's
  sensitive attribute been different, *holding the exogenous background
  fixed* (a rung-3 quantity computed by abduction).
* **path-specific counterfactual fairness** [Wu et al.] — the same, but
  only the discriminatory paths are flipped.
* **individual direct discrimination / situation testing** [Zhang et
  al.] — compare an individual's decision against the decisions of its
  k nearest neighbours in each sensitive group.
* **fairness through awareness** [Dwork et al.] — a Lipschitz condition
  tying prediction distance to individual similarity.
* **metric multifairness** [Kim et al.] — the awareness condition
  relaxed to hold on average over a collection of comparison sets.
"""

from __future__ import annotations

import contextvars
from collections import deque
from collections.abc import Callable, Mapping
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass

import numpy as np

from .. import obs
from ..causal.counterfactual import CounterfactualSCM
from ..causal.pse import path_specific_effect
from . import pairwise
from .pairwise import minmax_scale as _minmax_scale

__all__ = [
    "CounterfactualFairnessResult",
    "counterfactual_fairness",
    "path_specific_counterfactual_fairness",
    "SituationReference",
    "SituationTestingResult",
    "prepare_situation_reference",
    "situation_testing",
    "fairness_through_awareness",
    "metric_multifairness",
    "normalized_euclidean",
]

Predictor = Callable[[dict[str, np.ndarray]], np.ndarray]
Similarity = Callable[[np.ndarray, np.ndarray], np.ndarray]


# ----------------------------------------------------------------------
# Counterfactual fairness
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class CounterfactualFairnessResult:
    """Per-population summary of counterfactual prediction flips.

    Attributes
    ----------
    mean_gap:
        Mean over audited rows of ``|P(Ŷ_{S←1}=1 | row) −
        P(Ŷ_{S←0}=1 | row)|``.
    max_gap:
        Largest per-row gap.
    unfair_fraction:
        Fraction of rows whose gap exceeds ``threshold``.
    threshold:
        The tolerance used for ``unfair_fraction``.
    n_rows:
        Number of rows audited.
    """

    mean_gap: float
    max_gap: float
    unfair_fraction: float
    threshold: float
    n_rows: int


#: Soft cap on rows × particles per batched-abduction chunk; bounds the
#: audit's peak memory at roughly this many floats per SCM node.
_MAX_BATCH = 1 << 18


class _UniformTape:
    """Pre-drawn uniform variates replayed in draw order.

    Stands in for the ``rng`` of :meth:`CounterfactualSCM.abduct_rows`
    when chunks run on worker threads: abduction consumes exactly one
    ``rng.random(n)`` per SCM node, in topological order, so the main
    thread pre-draws that tape serially (in chunk order) and each
    worker replays its own chunk's slice.  The stream each node sees
    is then *identical to the sequential path* at any thread count —
    threading changes the wall-clock schedule, never the draws.
    """

    __slots__ = ("_draws",)

    def __init__(self, draws: list[np.ndarray]) -> None:
        self._draws = deque(draws)

    def random(self, n: int) -> np.ndarray:
        draw = self._draws.popleft()
        if draw.shape[0] != n:  # pragma: no cover - internal invariant
            raise RuntimeError(
                f"abduction tape desynchronised: drew {draw.shape[0]} "
                f"variates where {n} were consumed")
        return draw


def counterfactual_fairness(scm: CounterfactualSCM,
                            columns: Mapping[str, np.ndarray],
                            sensitive: str, outcome: str,
                            predict: Predictor,
                            rng: np.random.Generator,
                            n_particles: int = 200,
                            max_rows: int | None = 100,
                            threshold: float = 0.05,
                            chunk_rows: int | None = None,
                            threads: int | None = None,
                            ) -> CounterfactualFairnessResult:
    """Audit a classifier for counterfactual fairness.

    For each audited row the full abduction–action–prediction recipe
    runs twice (``do(S=1)`` and ``do(S=0)``) on shared posterior noise;
    the row's gap is the absolute difference of the two positive
    prediction rates.

    The audit is fully batched: all ``rows × n_particles`` evidence
    copies are abducted in one :meth:`CounterfactualSCM.abduct_rows`
    call per chunk, and the classifier sees exactly two ``predict``
    calls per chunk (one per counterfactual world).  Since abduction is
    exact, the factual replay equals the evidence, so each world only
    recomputes the sensitive attribute's descendants.

    Parameters
    ----------
    scm:
        Explicit-noise SCM over the data attributes (including the
        ground-truth outcome node, which is part of the evidence).
    columns:
        Observed data; must cover every SCM node.
    sensitive, outcome:
        The sensitive attribute and the ground-truth outcome node.
    predict:
        Classifier mapping a column dict to predictions; evaluated on
        the counterfactual attribute values.
    n_particles:
        Posterior noise samples per row and world.
    max_rows:
        Audit at most this many rows (None = all).
    threshold:
        A row counts as counterfactually unfair when its gap exceeds
        this.
    chunk_rows:
        Rows audited per batch; defaults to keeping rows × particles
        near ``_MAX_BATCH`` so memory stays bounded on large audits.
        Note the chunk boundary fixes where the per-node RNG batches
        split, so different ``chunk_rows`` give different (equally
        valid) seeded draws — hold it fixed when comparing runs at the
        same seed.
    threads:
        Worker threads over chunks (``None`` = the pairwise-kernel
        default, i.e. the engine's per-job ``threads`` knob or
        ``REPRO_THREADS``).  Noise is pre-drawn serially in chunk
        order (see :class:`_UniformTape`), so results are
        byte-identical at every thread count — including to the
        sequential path.  ``predict`` is called concurrently and must
        be thread-safe (pure-numpy predictors are).

    Raises
    ------
    ValueError
        If columns are missing, ``n_particles < 1``, or the audit would
        cover zero rows (empty columns or ``max_rows=0``).
    """
    nodes = scm.graph.topological_order()
    missing = [n for n in nodes if n not in columns]
    if missing:
        raise ValueError(f"columns missing for SCM nodes: {missing}")
    if n_particles < 1:
        raise ValueError(f"n_particles must be at least 1, got {n_particles}")
    cols = {node: np.asarray(columns[node], dtype=float) for node in nodes}
    n = cols[nodes[0]].shape[0]
    take = n if max_rows is None else min(max_rows, n)
    if take <= 0:
        raise ValueError(
            "counterfactual_fairness has no rows to audit "
            f"(columns hold {n} rows, max_rows={max_rows}); "
            "pass non-empty columns and a positive max_rows"
        )
    if chunk_rows is None:
        chunk_rows = max(1, _MAX_BATCH // n_particles)
    elif chunk_rows < 1:
        raise ValueError(f"chunk_rows must be at least 1, got {chunk_rows}")
    obs.add("audit.rows", int(take))
    gaps = np.empty(take)

    def run_chunk(start: int, source) -> None:
        stop = min(start + chunk_rows, take)
        evidence = {node: np.repeat(cols[node][start:stop], n_particles)
                    for node in nodes}
        noise = scm.abduct_rows(evidence, source)
        rates = []
        for value in (1.0, 0.0):
            world = scm.evaluate(noise, {sensitive: value}, base=evidence)
            positive = np.asarray(predict(world), dtype=float) > 0.5
            rates.append(positive.reshape(stop - start, n_particles)
                         .mean(axis=1))
        gaps[start:stop] = np.abs(rates[0] - rates[1])

    starts = list(range(0, take, chunk_rows))
    n_threads = pairwise.resolve_threads(threads)
    if n_threads <= 1 or len(starts) <= 1:
        for start in starts:
            obs.add("abduction.chunks")
            obs.add("abduction.rows", min(start + chunk_rows, take) - start)
            run_chunk(start, rng)
    else:
        # Chunks write disjoint `gaps` slices and abduction replays a
        # serially pre-drawn tape, so the threaded audit is
        # byte-identical to the sequential one.  The submission window
        # stays one past the worker count, bounding pre-drawn noise to
        # O(workers · chunk) on top of the sequential peak; counters
        # are bumped in the submitting thread (obs is not thread-safe).
        workers = min(n_threads, len(starts))
        obs.add("pairwise.threads_used", workers)

        def run_chunk_pinned(start: int, tape) -> None:
            # The chunk workers already saturate the audit; nested
            # kernel consumers (predict → k-NN topk / masked blocks)
            # must not stack their own tile pools on top — under
            # REPRO_THREADS=N each of the N workers would re-read the
            # env and spawn N more.
            with pairwise.default_threads(1):
                run_chunk(start, tape)

        with ThreadPoolExecutor(max_workers=workers,
                                thread_name_prefix="repro-abduct") as pool:
            pending: deque = deque()
            for start in starts:
                stop = min(start + chunk_rows, take)
                obs.add("abduction.chunks")
                obs.add("abduction.rows", stop - start)
                n_ev = (stop - start) * n_particles
                tape = _UniformTape([rng.random(n_ev) for _ in nodes])
                # Fresh context copy per chunk (mirroring
                # pairwise._run_tiles): workers inherit the enclosing
                # default_block_size/default_threads overrides instead
                # of starting from an empty context.
                ctx = contextvars.copy_context()
                pending.append(pool.submit(ctx.run, run_chunk_pinned,
                                           start, tape))
                if len(pending) > workers:
                    pending.popleft().result()
            while pending:
                pending.popleft().result()
    return CounterfactualFairnessResult(
        mean_gap=float(gaps.mean()),
        max_gap=float(gaps.max()),
        unfair_fraction=float(np.mean(gaps > threshold)),
        threshold=threshold,
        n_rows=int(take),
    )


def path_specific_counterfactual_fairness(
        scm: CounterfactualSCM, sensitive: str, outcome: str,
        discriminatory_edges: frozenset[tuple[str, str]] | set,
        predict: Predictor, n: int, rng: np.random.Generator,
        s1: float = 1.0, s0: float = 0.0) -> float:
    """Wu et al.'s path-specific counterfactual (PC) fairness.

    Measures the effect of flipping the sensitive attribute *only along
    the user-designated discriminatory paths* on the classifier's
    predictions; 0 means the classifier is PC-fair w.r.t. those paths.

    This is the population-level PC effect — the per-individual variant
    is :func:`counterfactual_fairness` restricted to the same edges.
    """
    result = path_specific_effect(
        scm, sensitive, outcome, discriminatory_edges, n, rng,
        s1=s1, s0=s0, predict=predict)
    return result.effect


# ----------------------------------------------------------------------
# Situation testing (individual direct discrimination)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class SituationTestingResult:
    """Summary of a k-NN situation-testing audit.

    Attributes
    ----------
    flagged_fraction:
        Fraction of audited individuals whose neighbourhood decision
        gap exceeds the test threshold.
    mean_gap:
        Mean neighbourhood decision gap over audited individuals
        (privileged-neighbour rate minus unprivileged-neighbour rate).
    threshold:
        The gap above which an individual counts as discriminated.
    n_audited:
        Number of individuals the aggregates cover: audited-group
        members with usable neighbours in both pools (an individual
        alone in its own group has no within-group rate and is
        excluded from all three numbers).
    """

    flagged_fraction: float
    mean_gap: float
    threshold: float
    n_audited: int


def normalized_euclidean(X: np.ndarray,
                         block_size: int | None = None, *,
                         threads: int | None = None,
                         dtype=None,
                         memory_budget_mb: float | None = None
                         ) -> np.ndarray:
    """Pairwise distances after per-feature min-max scaling.

    The standard distance for situation testing: features are rescaled
    to ``[0, 1]`` so no single attribute dominates (zero-variance
    features contribute nothing rather than dividing by zero).  The
    matrix is filled through the shared block-matmul kernel
    (:mod:`repro.metrics.pairwise`), so peak *temporary* memory stays
    ``O(block_size · n)`` on top of the returned ``n × n`` result.
    The pair-sampling metrics below never materialise this matrix at
    all unless one is passed in.

    ``threads`` parallelises the row tiles (identical float64 blocks,
    only the schedule changes); ``dtype=np.float32`` halves the stored
    footprint — blocks are still *computed* in exact float64 and
    narrowed on assignment, so pass float32 only where downstream
    selection tolerates storage rounding (exact float64 stays the
    default, and is what the parity suites compare against);
    ``memory_budget_mb`` spills the output to a disk-backed memmap
    past the budget (``REPRO_DENSE_BUDGET_MB`` sets the default).
    """
    X = np.asarray(X, dtype=float)
    if X.shape[0] == 0:
        raise ValueError(
            "normalized_euclidean: empty input (0 rows, shape "
            f"{X.shape}); there are no individuals to compare")
    return pairwise.distances(_minmax_scale(X), block_size=block_size,
                              threads=threads, dtype=dtype,
                              memory_budget_mb=memory_budget_mb)


def situation_testing(X: np.ndarray, s: np.ndarray, y_hat: np.ndarray,
                      k: int = 8, threshold: float = 0.2,
                      audit_group: int = 0,
                      distances: np.ndarray | None = None,
                      block_size: int | None = None,
                      threads: int | None = None,
                      ) -> SituationTestingResult:
    """Zhang et al.'s situation-testing discrimination discovery.

    For each member of the audited group, takes its ``k`` nearest
    neighbours within the privileged group and within the unprivileged
    group and compares their positive-decision rates.  A large gap
    means similar individuals are treated differently depending on the
    sensitive attribute — individual *direct* discrimination.

    Neighbour search runs on the shared blockwise top-k kernel
    (:func:`repro.metrics.pairwise.topk`), so the audit never
    materialises a dense ``n × n`` matrix and memory stays
    ``O(block_size · n)``.

    Groups smaller than ``k`` are audited against the neighbours they
    do have (``k`` is clamped per pool); an audited individual whose
    *own* group holds no one else gets no within-group rate and is
    excluded from the aggregates.  Only an entirely empty group — or
    an audit in which no individual has usable neighbours on both
    sides — is an error.

    Parameters
    ----------
    X:
        Feature matrix (without the sensitive attribute).
    s:
        Binary sensitive attribute (1 = privileged).
    y_hat:
        Binary decisions being audited.
    k:
        Neighbourhood size per group.
    threshold:
        Gap above which an individual is flagged.
    audit_group:
        Which group's members to audit (default: the unprivileged).
    distances:
        Optional precomputed pairwise distance matrix; defaults to
        min-max-scaled Euclidean distances computed blockwise on the
        fly (never materialising them).
    block_size:
        Audited rows per kernel block (``None`` = kernel default).
    threads:
        Worker threads over kernel blocks (``None`` = kernel default;
        results are byte-identical at every thread count).
    """
    X = np.asarray(X, dtype=float)
    s = np.asarray(s, dtype=int)
    y_hat = (np.asarray(y_hat, dtype=float) > 0.5).astype(float)
    if X.shape[0] != s.shape[0] or s.shape != y_hat.shape:
        raise ValueError("X, s, y_hat must be aligned")
    if k < 1:
        raise ValueError("k must be at least 1")
    idx_priv = np.flatnonzero(s == 1)
    idx_unpriv = np.flatnonzero(s == 0)
    if idx_priv.size == 0 or idx_unpriv.size == 0:
        raise ValueError(
            "situation testing needs both sensitive groups non-empty; "
            f"got {idx_priv.size} privileged and {idx_unpriv.size} "
            "unprivileged members")
    audited = np.flatnonzero(s == audit_group)
    if audited.size == 0:
        raise ValueError(f"audit_group={audit_group} selects no rows")
    pools = (idx_priv, idx_unpriv)
    # Position of each point inside each pool (-1 = not a member), for
    # masking a point out of its own neighbourhood.
    positions = []
    for pool in pools:
        pos = np.full(s.shape[0], -1)
        pos[pool] = np.arange(pool.size)
        positions.append(pos)

    if distances is None:
        Z = _minmax_scale(X)
        queries = Z[audited]
    else:
        distances = np.asarray(distances, dtype=float)
    rates = []
    for pool, pos in zip(pools, positions):
        if distances is None:
            nearest, d2 = pairwise.topk(queries, Z[pool], k,
                                        block_size=block_size,
                                        threads=threads,
                                        exclude=pos[audited])
        else:
            nearest, d2 = pairwise.topk_dense(distances, k,
                                              rows=audited, columns=pool,
                                              block_size=block_size,
                                              threads=threads,
                                              exclude=pos[audited])
        usable = np.isfinite(d2)  # drops the masked self-entry
        counts = usable.sum(axis=1)
        votes = (y_hat[pool[nearest]] * usable).sum(axis=1)
        rates.append(np.where(counts > 0,
                              votes / np.maximum(counts, 1), np.nan))
    gaps = rates[0] - rates[1]
    finite = np.isfinite(gaps)
    if not finite.any():
        raise ValueError(
            "no audited individual has usable neighbours in both "
            "groups; audit a larger sample")
    gaps = gaps[finite]
    obs.add("audit.rows", int(gaps.size))
    return SituationTestingResult(
        flagged_fraction=float(np.mean(np.abs(gaps) > threshold)),
        mean_gap=float(gaps.mean()),
        threshold=threshold,
        n_audited=int(gaps.size),
    )


# ----------------------------------------------------------------------
# Prepared situation testing (the fit-once/query-many serving form)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class SituationReference:
    """A frozen reference population for per-request situation testing.

    Everything :func:`situation_testing` recomputes per call — the
    min-max scaling constants, the per-group neighbour pools as
    :class:`~repro.metrics.pairwise.PreparedReference` (Gram vectors
    precomputed), and the pools' decisions — is fitted once by
    :func:`prepare_situation_reference`.  :meth:`audit_rows` then costs
    two blockwise top-k queries per call and is row-independent, so a
    one-row request and a batch containing that row give identical
    answers.
    """

    lo: np.ndarray
    span: np.ndarray
    priv: pairwise.PreparedReference
    unpriv: pairwise.PreparedReference
    y_priv: np.ndarray
    y_unpriv: np.ndarray
    k: int
    threshold: float

    def scale(self, X: np.ndarray) -> np.ndarray:
        """Map query features into the frozen [0, 1] coordinates."""
        X = np.asarray(X, dtype=float)
        return (X - self.lo) / self.span

    def audit_rows(self, X: np.ndarray,
                   block_size: int | None = None,
                   threads: int | None = None) -> dict[str, np.ndarray]:
        """Situation-test query rows against the frozen reference.

        Unlike the offline audit, query rows are *new* individuals —
        they are not members of either pool, so no self-exclusion is
        needed.  Returns per-row arrays: ``rate_privileged``,
        ``rate_unprivileged``, ``gap`` (privileged minus unprivileged),
        and boolean ``flagged`` (``|gap| > threshold``).
        """
        Z = self.scale(X)
        rates = []
        for pool, y_pool in ((self.priv, self.y_priv),
                             (self.unpriv, self.y_unpriv)):
            nearest, d2 = pairwise.topk(Z, pool, self.k,
                                        block_size=block_size,
                                        threads=threads)
            usable = np.isfinite(d2)
            counts = usable.sum(axis=1)
            votes = (y_pool[nearest] * usable).sum(axis=1)
            rates.append(np.where(counts > 0,
                                  votes / np.maximum(counts, 1), np.nan))
        gaps = rates[0] - rates[1]
        return {
            "rate_privileged": rates[0],
            "rate_unprivileged": rates[1],
            "gap": gaps,
            "flagged": np.abs(gaps) > self.threshold,
        }


def prepare_situation_reference(X: np.ndarray, s: np.ndarray,
                                y_hat: np.ndarray, k: int = 8,
                                threshold: float = 0.2,
                                ) -> SituationReference:
    """Fit a :class:`SituationReference` from a labelled population.

    ``X``/``s``/``y_hat`` play the same roles as in
    :func:`situation_testing`; the min-max scaling constants are frozen
    from ``X`` so later queries land in the same coordinate system.
    """
    X = np.asarray(X, dtype=float)
    s = np.asarray(s, dtype=int)
    y_hat = (np.asarray(y_hat, dtype=float) > 0.5).astype(float)
    if X.shape[0] != s.shape[0] or s.shape != y_hat.shape:
        raise ValueError("X, s, y_hat must be aligned")
    if k < 1:
        raise ValueError("k must be at least 1")
    idx_priv = np.flatnonzero(s == 1)
    idx_unpriv = np.flatnonzero(s == 0)
    if idx_priv.size == 0 or idx_unpriv.size == 0:
        raise ValueError(
            "situation reference needs both sensitive groups non-empty; "
            f"got {idx_priv.size} privileged and {idx_unpriv.size} "
            "unprivileged members")
    lo = X.min(axis=0)
    span = X.max(axis=0) - lo
    span = np.where(span == 0, 1.0, span)
    Z = (X - lo) / span
    return SituationReference(
        lo=lo, span=span,
        priv=pairwise.prepare_reference(Z[idx_priv]),
        unpriv=pairwise.prepare_reference(Z[idx_unpriv]),
        y_priv=y_hat[idx_priv], y_unpriv=y_hat[idx_unpriv],
        k=int(k), threshold=float(threshold),
    )


# ----------------------------------------------------------------------
# Awareness-style metrics
# ----------------------------------------------------------------------
def _sample_pairs(n: int, n_pairs: int, rng: np.random.Generator
                  ) -> tuple[np.ndarray, np.ndarray]:
    a = rng.integers(0, n, n_pairs)
    b = rng.integers(0, n, n_pairs)
    keep = a != b
    return a[keep], b[keep]


def fairness_through_awareness(X: np.ndarray, scores: np.ndarray,
                               rng: np.random.Generator,
                               lipschitz: float = 1.0,
                               n_pairs: int = 5000,
                               distances: np.ndarray | None = None,
                               ) -> float:
    """Dwork et al.'s Lipschitz fairness violation rate.

    Samples random pairs and returns the fraction violating
    ``|f(x) − f(y)| ≤ L · d(x, y)`` where ``f`` is the score and ``d``
    the normalised-Euclidean individual similarity.  0 means the
    awareness condition holds on the sampled pairs.
    """
    X = np.asarray(X, dtype=float)
    scores = np.asarray(scores, dtype=float)
    if X.shape[0] != scores.shape[0]:
        raise ValueError("X and scores must be aligned")
    if lipschitz <= 0:
        raise ValueError("lipschitz must be positive")
    a, b = _sample_pairs(X.shape[0], n_pairs, rng)
    if a.size == 0:
        raise ValueError("no valid pairs sampled; increase n_pairs")
    # Only the sampled pairs' distances are needed — O(n_pairs) memory,
    # never the dense n × n matrix.
    if distances is None:
        d_ab = pairwise.pair_distances(_minmax_scale(X), a, b)
    else:
        d_ab = np.asarray(distances)[a, b]
    violations = np.abs(scores[a] - scores[b]) > lipschitz * d_ab + 1e-12
    return float(np.mean(violations))


def metric_multifairness(X: np.ndarray, scores: np.ndarray,
                         rng: np.random.Generator,
                         n_sets: int = 50, set_size: int = 40,
                         radius: float = 0.25,
                         distances: np.ndarray | None = None) -> float:
    """Kim et al.'s metric multifairness violation.

    For a collection of random comparison sets of *similar* pairs
    (pairs closer than ``radius`` under the normalised metric), the
    average score difference within each set must be small.  Returns
    the largest absolute within-set average difference; 0 means
    multifair on the sampled collection.
    """
    X = np.asarray(X, dtype=float)
    scores = np.asarray(scores, dtype=float)
    Z = _minmax_scale(X) if distances is None else None
    n = X.shape[0]
    worst = 0.0
    found_any = False
    for _ in range(n_sets):
        a, b = _sample_pairs(n, set_size * 4, rng)
        d_ab = (pairwise.pair_distances(Z, a, b) if distances is None
                else np.asarray(distances)[a, b])
        close = d_ab <= radius
        a, b = a[close][:set_size], b[close][:set_size]
        if a.size == 0:
            continue
        found_any = True
        worst = max(worst, abs(float(np.mean(scores[a] - scores[b]))))
    if not found_any:
        raise ValueError(
            f"no similar pairs found within radius {radius}; increase it"
        )
    return worst
