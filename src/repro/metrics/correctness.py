"""Correctness metrics (paper Figure 2): accuracy, precision, recall, F1."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .confusion import ConfusionCounts


def accuracy(y: np.ndarray, y_hat: np.ndarray) -> float:
    """Fraction of predictions matching the ground truth."""
    c = ConfusionCounts.from_predictions(y, y_hat)
    return (c.tp + c.tn) / c.total if c.total else float("nan")


def precision(y: np.ndarray, y_hat: np.ndarray) -> float:
    """TP / (TP + FP); NaN when nothing is predicted positive."""
    c = ConfusionCounts.from_predictions(y, y_hat)
    den = c.tp + c.fp
    return c.tp / den if den else float("nan")


def recall(y: np.ndarray, y_hat: np.ndarray) -> float:
    """TP / (TP + FN); NaN when there are no positive ground truths."""
    c = ConfusionCounts.from_predictions(y, y_hat)
    den = c.tp + c.fn
    return c.tp / den if den else float("nan")


def f1_score(y: np.ndarray, y_hat: np.ndarray) -> float:
    """Harmonic mean of precision and recall (0 when both degenerate)."""
    p = precision(y, y_hat)
    r = recall(y, y_hat)
    if np.isnan(p) or np.isnan(r) or (p + r) == 0:
        return float("nan") if np.isnan(p) and np.isnan(r) else 0.0
    return 2 * p * r / (p + r)


@dataclass(frozen=True)
class CorrectnessReport:
    """All four correctness metrics of the paper's Figure 2."""

    accuracy: float
    precision: float
    recall: float
    f1: float

    @classmethod
    def from_predictions(cls, y: np.ndarray,
                         y_hat: np.ndarray) -> "CorrectnessReport":
        return cls(
            accuracy=accuracy(y, y_hat),
            precision=precision(y, y_hat),
            recall=recall(y, y_hat),
            f1=f1_score(y, y_hat),
        )

    def as_dict(self) -> dict[str, float]:
        return {"accuracy": self.accuracy, "precision": self.precision,
                "recall": self.recall, "f1": self.f1}
