"""Shared block-matmul pairwise-distance / top-k kernel.

Every individual-fairness metric in this repo ultimately needs one of
three primitives over a point set:

* a **dense** pairwise-distance matrix (``normalized_euclidean``),
* the **k nearest rows** of a reference set for each query row
  (situation testing, the k-NN classifier, k-NN donor imputation), or
* distances for an **explicit list of index pairs** (awareness and
  multifairness pair sampling).

They all reduce to the Gram expansion ``‖a − b‖² = ‖a‖² + ‖b‖² −
2·a@bᵀ`` evaluated in row blocks, so this module is the single home
for that kernel: squared norms are precomputed once, query rows are
tiled in blocks of ``block_size``, and neighbour selection uses
:func:`np.argpartition` per block — the dense ``n × n`` matrix is
never materialised unless the dense matrix *is* the requested output.

Top-k selection runs a two-stage **screen / re-rank** scheme: the
screening pass evaluates the Gram blocks in float32 (on memory-bound
hardware this roughly halves the time of the dominant matmul +
selection sweep) and keeps a candidate margin beyond ``k``; the exact
float64 distances of the surviving candidates are then recomputed
directly from the coordinate differences and re-ranked with a stable
``(distance, index)`` order.  On tie-free data the result is exactly
the float64 top-k (the true k-th neighbour would have to be buried
behind a full candidate margin of float32-indistinguishable
distances to be missed); on heavily tied data the stable re-rank
picks the lowest reference indices among the ties the screen
surfaced, mirroring the loop references' stable ``argsort``.

``block_size`` is a performance knob: each query row always sees
every reference row whatever the tiling, so selection is
tiling-independent wherever distances are distinct (the property
suite in ``tests/metrics/test_pairwise_kernel.py`` locks this in).
BLAS may still reassociate the float32 screen arithmetic differently
under different tilings, which could in principle break *exact ties*
differently — so the engine conservatively hashes ``block_size`` into
job fingerprints rather than assuming bitwise equivalence.  Callers
that take an optional ``block_size`` should pass it through
:func:`resolve_block_size`; the engine threads a per-job value via
:func:`default_block_size`.

``threads`` is a second, purely-executional knob: row tiles are
independent, and BLAS releases the GIL inside the Gram matmuls, so a
bounded :class:`~concurrent.futures.ThreadPoolExecutor` over tiles
genuinely overlaps them.  Each tile computes the *same float64 blocks
in the same order* whatever the thread count — only the wall-clock
schedule changes — so results are byte-identical across thread
counts and ``threads`` deliberately does **not** enter job
fingerprints (the parity suite in
``tests/metrics/test_thread_parity.py`` locks this in).  Resolution
order: explicit argument > :func:`default_threads` context (the
engine sets it per job) > the ``REPRO_THREADS`` environment variable
> 1.

Dense outputs additionally take ``dtype`` (float32 halves the
resident footprint; the blocks themselves are always computed in
exact float64 and only *stored* narrower) and ``memory_budget_mb``
(outputs whose resident size would exceed the budget are spilled to
an anonymous disk-backed ``np.memmap`` so ``n`` in the hundreds of
thousands stays feasible; default via ``REPRO_DENSE_BUDGET_MB``,
unset = never spill).  Both kernel defaults live in
:class:`contextvars.ContextVar`\\ s, so concurrent in-process callers
(worker threads, two ``AuditService`` requests with different cells)
see their own overrides instead of racing on a module global.
"""

from __future__ import annotations

import contextvars
import os
import tempfile
from collections import deque
from collections.abc import Iterator
from concurrent.futures import ThreadPoolExecutor
from contextlib import contextmanager
from dataclasses import dataclass

import numpy as np

from .. import obs

__all__ = [
    "DEFAULT_BLOCK_SIZE",
    "default_block_size",
    "resolve_block_size",
    "default_threads",
    "resolve_threads",
    "resolve_memory_budget",
    "minmax_scale",
    "sq_norms",
    "iter_sq_blocks",
    "sq_distances",
    "distances",
    "pair_distances",
    "PreparedReference",
    "prepare_reference",
    "topk",
    "topk_dense",
    "masked_sq_blocks",
    "masked_mean_distances",
]

#: Query rows per Gram block.  Big enough that the BLAS calls and the
#: per-block ``argpartition`` sweeps amortise their setup, small enough
#: that one ``block_size × n`` block stays cache-friendly on the large
#: audits (1024 × 20k float32 ≈ 80 MB of streamed, not resident, data).
DEFAULT_BLOCK_SIZE = 1024

#: Extra float32-screen candidates kept beyond ``k`` before the exact
#: float64 re-rank.  Missing a true neighbour requires at least this
#: many reference points within float32 resolution of the k-th
#: distance — pathological even for discretised data.
_SCREEN_MARGIN = 8

#: Kernel defaults as context variables, not module globals: worker
#: threads inherit the enclosing override through their submission
#: context, and concurrent in-process callers cannot leak overrides
#: into each other.
_default_block_var: contextvars.ContextVar[int] = contextvars.ContextVar(
    "repro_pairwise_block", default=DEFAULT_BLOCK_SIZE)
_default_threads_var: contextvars.ContextVar[int | None] = \
    contextvars.ContextVar("repro_pairwise_threads", default=None)

#: Dense outputs are float64 (exact) or float32 (half the footprint;
#: storage-only narrowing of exactly-computed blocks).
_DENSE_DTYPES = (np.dtype(np.float64), np.dtype(np.float32))


def resolve_block_size(block_size: int | None) -> int:
    """Validate an optional block size, falling back to the context
    default (which :func:`default_block_size` can override)."""
    if block_size is None:
        return _default_block_var.get()
    block_size = int(block_size)
    if block_size < 1:
        raise ValueError(f"block_size must be at least 1, "
                         f"got {block_size}")
    return block_size


@contextmanager
def default_block_size(block_size: int | None):
    """Temporarily override the kernel's default block size.

    The engine wraps each job's execution in this, so one
    ``block_size`` knob reaches every kernel consumer the cell touches
    (k-NN model, k-NN imputer, metric audits) without threading the
    parameter through every intermediate signature.  ``None`` is a
    no-op.  The override lives in a :class:`contextvars.ContextVar`,
    so concurrent callers in one process each see their own value.
    """
    if block_size is None:
        yield
        return
    token = _default_block_var.set(resolve_block_size(block_size))
    try:
        yield
    finally:
        _default_block_var.reset(token)


def resolve_threads(threads: int | None = None) -> int:
    """Validate an optional tile thread count, falling back to the
    :func:`default_threads` context, then ``REPRO_THREADS``, then 1."""
    if threads is None:
        threads = _default_threads_var.get()
    if threads is None:
        env = os.environ.get("REPRO_THREADS")
        if not env:
            return 1
        try:
            threads = int(env)
        except ValueError:
            raise ValueError(
                f"REPRO_THREADS must be an integer, got {env!r}"
            ) from None
    threads = int(threads)
    if threads < 1:
        raise ValueError(f"threads must be at least 1, got {threads}")
    return threads


@contextmanager
def default_threads(threads: int | None):
    """Temporarily override the kernel's default tile thread count.

    The engine wraps each job's execution in this (mirroring
    :func:`default_block_size`), so ``repro sweep --threads`` reaches
    every kernel consumer the cell touches.  ``None`` is a no-op
    (the ``REPRO_THREADS`` environment variable then applies).
    """
    if threads is None:
        yield
        return
    token = _default_threads_var.set(resolve_threads(threads))
    try:
        yield
    finally:
        _default_threads_var.reset(token)


def resolve_memory_budget(memory_budget_mb: float | None = None
                          ) -> float | None:
    """Validate an optional dense-output memory budget (MB), falling
    back to ``REPRO_DENSE_BUDGET_MB`` (unset/empty = no budget: dense
    outputs are never spilled to disk)."""
    if memory_budget_mb is None:
        env = os.environ.get("REPRO_DENSE_BUDGET_MB")
        if not env:
            return None
        try:
            memory_budget_mb = float(env)
        except ValueError:
            raise ValueError(
                f"REPRO_DENSE_BUDGET_MB must be a number, got {env!r}"
            ) from None
    budget = float(memory_budget_mb)
    if budget <= 0:
        raise ValueError(
            f"memory budget must be positive, got {budget}")
    return budget


def _alloc_dense(shape: tuple[int, int], dtype,
                 memory_budget_mb: float | None) -> tuple[np.ndarray, bool]:
    """Allocate a dense output, spilling to a disk-backed memmap when
    its resident size would exceed the memory budget.

    The backing file is created under ``REPRO_SPILL_DIR`` (default:
    the system temp dir) and unlinked immediately, so the mapping is
    anonymous-by-name: the space is reclaimed as soon as the array is
    garbage-collected, even on hard process death.  Returns
    ``(array, spilled)``.
    """
    dtype = np.dtype(np.float64 if dtype is None else dtype)
    if dtype not in _DENSE_DTYPES:
        raise ValueError(
            f"dense outputs support float64 or float32, got {dtype}")
    budget = resolve_memory_budget(memory_budget_mb)
    nbytes = int(shape[0]) * int(shape[1]) * dtype.itemsize
    if budget is None or nbytes <= budget * (1 << 20) or nbytes == 0:
        return np.empty(shape, dtype=dtype), False
    fd, path = tempfile.mkstemp(
        prefix="repro-dense-", suffix=".spill",
        dir=os.environ.get("REPRO_SPILL_DIR") or None)
    os.close(fd)
    out = np.memmap(path, dtype=dtype, mode="w+", shape=shape)
    try:
        os.unlink(path)
    except OSError:  # pragma: no cover - non-POSIX semantics
        pass  # reclaimed when the last handle closes instead
    return out, True


# ----------------------------------------------------------------------
# Threaded tile execution
# ----------------------------------------------------------------------
def _run_tiles(compute, starts: list[int], threads: int):
    """Yield ``compute(start)`` results in ``starts`` order.

    Serial when ``threads <= 1`` or there is a single tile.  Otherwise
    tiles run on a bounded pool with a submission window one deeper
    than the worker count, so memory stays ``O(threads · tile)`` while
    workers never starve; results still come back in tile order, which
    keeps consumers (and their obs counters) deterministic.  Each tile
    is submitted under a fresh :func:`contextvars.copy_context`, so
    kernel defaults set via :func:`default_block_size` /
    :func:`default_threads` reach the workers (one copy per tile — a
    single Context object cannot be entered concurrently).

    A consumer that abandons iteration early (``break``, ``islice``)
    should ``close()`` the generator — ``with closing(...)`` — to shut
    the pool down promptly; not-yet-started tiles are cancelled on
    close, and only the tiles already running finish.
    """
    if threads <= 1 or len(starts) <= 1:
        for start in starts:
            yield compute(start)
        return
    workers = min(threads, len(starts))
    # Counted once per threaded kernel call, in the submitting thread
    # (obs counters are not thread-safe): total workers dispatched.
    obs.add("pairwise.threads_used", workers)
    with ThreadPoolExecutor(max_workers=workers,
                            thread_name_prefix="repro-pairwise") as pool:
        pending: deque = deque()
        try:
            for start in starts:
                ctx = contextvars.copy_context()
                pending.append(pool.submit(ctx.run, compute, start))
                if len(pending) > workers:
                    yield pending.popleft().result()
            while pending:
                yield pending.popleft().result()
        finally:
            # On early exit (GeneratorExit, consumer error) don't let
            # queued tiles run to completion behind our back.
            for future in pending:
                future.cancel()


# ----------------------------------------------------------------------
# Scaling and norms
# ----------------------------------------------------------------------
def minmax_scale(X: np.ndarray) -> np.ndarray:
    """Rescale every feature to ``[0, 1]``.

    The scale vector is precomputed per feature; zero-variance
    (constant) features get a unit span so they contribute zero to
    every distance instead of dividing by zero — a single-row input is
    the all-constant corner of the same rule.

    Raises
    ------
    ValueError
        On an empty (zero-row) input — there is no feature range to
        scale by (numpy would otherwise fail with an opaque
        zero-size-reduction error).
    """
    X = np.asarray(X, dtype=float)
    if X.shape[0] == 0:
        raise ValueError(
            "minmax_scale: cannot scale an empty input "
            f"(shape {X.shape}); pass at least one row")
    lo = X.min(axis=0)
    span = X.max(axis=0) - lo
    span[span == 0] = 1.0
    return (X - lo) / span


def sq_norms(Z: np.ndarray) -> np.ndarray:
    """Per-row squared Euclidean norms (the reusable Gram-trick
    scale vector)."""
    Z = np.asarray(Z, dtype=float)
    return np.einsum("ij,ij->i", Z, Z)


# ----------------------------------------------------------------------
# Dense distances, filled blockwise
# ----------------------------------------------------------------------
def iter_sq_blocks(A: np.ndarray, B: np.ndarray | None = None, *,
                   block_size: int | None = None,
                   threads: int | None = None,
                   a_sq: np.ndarray | None = None,
                   b_sq: np.ndarray | None = None,
                   ) -> Iterator[tuple[int, int, np.ndarray]]:
    """Yield ``(start, stop, d2)`` row blocks of squared distances.

    ``B=None`` means self-distances (``B = A``).  Each block is
    ``‖a‖² + ‖b‖² − 2·a@bᵀ`` over ``block_size`` query rows, clipped
    at zero (the expansion can go slightly negative in floating
    point).  Norm vectors are accepted so repeated sweeps over the
    same points reuse them.  With ``threads > 1`` blocks are computed
    ahead on a bounded pool but still yielded in order, with
    block-for-block identical float64 contents.
    """
    A = np.asarray(A, dtype=float)
    B = A if B is None else np.asarray(B, dtype=float)
    block = resolve_block_size(block_size)
    if a_sq is None:
        a_sq = sq_norms(A)
    if b_sq is None:
        b_sq = a_sq if B is A else sq_norms(B)
    BT = B.T

    def compute(start: int) -> tuple[int, int, np.ndarray]:
        stop = min(start + block, A.shape[0])
        d2 = A[start:stop] @ BT
        d2 *= -2.0
        d2 += a_sq[start:stop, None]
        d2 += b_sq[None, :]
        np.maximum(d2, 0.0, out=d2)
        return start, stop, d2

    starts = list(range(0, A.shape[0], block))
    for result in _run_tiles(compute, starts, resolve_threads(threads)):
        obs.add("pairwise.blocks")
        yield result


def sq_distances(A: np.ndarray, B: np.ndarray | None = None, *,
                 block_size: int | None = None,
                 threads: int | None = None,
                 dtype=None,
                 memory_budget_mb: float | None = None) -> np.ndarray:
    """Dense squared-distance matrix, filled in row blocks.

    Peak *temporary* memory is one ``block_size × n`` block on top of
    the returned matrix.  In self mode (``B=None``) the diagonal is
    forced to exactly zero.  ``dtype=np.float32`` stores the output at
    half the footprint (blocks are still computed in exact float64 and
    narrowed on assignment); past ``memory_budget_mb`` the output
    spills to a disk-backed memmap (see :func:`resolve_memory_budget`).
    """
    A = np.asarray(A, dtype=float)
    self_mode = B is None
    B = A if self_mode else np.asarray(B, dtype=float)
    out, spilled = _alloc_dense((A.shape[0], B.shape[0]), dtype,
                                memory_budget_mb)
    for start, stop, d2 in iter_sq_blocks(A, None if self_mode else B,
                                          block_size=block_size,
                                          threads=threads):
        out[start:stop] = d2
        if spilled:
            obs.add("pairwise.tiles_spilled")
    if self_mode:
        np.fill_diagonal(out, 0.0)
    return out


def distances(A: np.ndarray, B: np.ndarray | None = None, *,
              block_size: int | None = None,
              threads: int | None = None,
              dtype=None,
              memory_budget_mb: float | None = None) -> np.ndarray:
    """Dense Euclidean-distance matrix, filled in row blocks."""
    out = sq_distances(A, B, block_size=block_size, threads=threads,
                       dtype=dtype, memory_budget_mb=memory_budget_mb)
    return np.sqrt(out, out=out)


def pair_distances(Z: np.ndarray, a: np.ndarray,
                   b: np.ndarray) -> np.ndarray:
    """Euclidean distances for explicit index pairs only —
    ``O(len(a))`` memory, never a matrix."""
    Z = np.asarray(Z, dtype=float)
    diff = Z[a] - Z[b]
    return np.sqrt(np.einsum("ij,ij->i", diff, diff))


# ----------------------------------------------------------------------
# Blockwise top-k
# ----------------------------------------------------------------------
def _stable_smallest(cand: np.ndarray, d2: np.ndarray, kk: int
                     ) -> tuple[np.ndarray, np.ndarray]:
    """Per row, the ``kk`` candidates with smallest exact distance,
    stable on ties by reference index (mirroring the loop references'
    stable ``argsort``)."""
    rows = np.arange(cand.shape[0])[:, None]
    order = np.lexsort((cand, d2), axis=1)[:, :kk]
    return cand[rows, order], d2[rows, order]


@dataclass(frozen=True)
class PreparedReference:
    """Reference-side :func:`topk` operands, computed once.

    Callers that query the same reference set repeatedly (the k-NN
    classifier predicts many times against one training set) build
    this at fit time via :func:`prepare_reference` and pass it in
    place of ``B``, skipping the per-call cast/transpose/norm sweep.

    ``mu`` is the reference column mean: the float32 screen runs on
    *centred* coordinates, because squared distances are
    translation-invariant but the Gram expansion is not — on data
    with a large common offset (raw timestamps, IDs) the uncentred
    ``‖b‖² − 2·a@bᵀ`` cancels catastrophically in float32 and would
    misrank neighbours beyond the re-rank margin.
    """

    B: np.ndarray        # original float64 points, for the exact re-rank
    mu: np.ndarray       # column means used to centre the screen
    BT_32: np.ndarray    # centred float32 reference, transposed
    b_sq_32: np.ndarray  # centred float32 squared norms


def prepare_reference(B: np.ndarray) -> PreparedReference:
    """Precompute the screen operands for a :func:`topk` reference
    set."""
    B = np.asarray(B, dtype=float)
    if B.ndim != 2:
        raise ValueError(f"B must be 2-D, got shape {B.shape}")
    mu = (B.mean(axis=0) if B.shape[0]
          else np.zeros(B.shape[1]))
    BT_32 = np.ascontiguousarray((B - mu).T, dtype=np.float32)
    b_sq_32 = np.einsum("ij,ij->i", BT_32.T, BT_32.T,
                        dtype=np.float32)
    return PreparedReference(B=B, mu=mu, BT_32=BT_32, b_sq_32=b_sq_32)


def topk(A: np.ndarray, B: np.ndarray | PreparedReference, k: int, *,
         block_size: int | None = None,
         threads: int | None = None,
         exclude: np.ndarray | None = None,
         ) -> tuple[np.ndarray, np.ndarray]:
    """k nearest rows of ``B`` for every row of ``A``, blockwise.

    Returns ``(idx, d2)`` of shape ``(len(A), kk)`` with
    ``kk = min(k, len(B))``: for each query row, the indices of its
    ``kk`` nearest reference rows in ascending ``(distance, index)``
    order, and their exact float64 squared distances.  The dense
    ``len(A) × len(B)`` matrix is only ever held one float32 screen
    block at a time.

    Parameters
    ----------
    A, B:
        Query and reference points (``B`` may be ``A`` itself, or a
        :class:`PreparedReference` built once via
        :func:`prepare_reference`).
    k:
        Neighbours per query row (clipped to ``len(B)``).
    block_size:
        Query rows per screen block (``None`` = the kernel default).
    threads:
        Worker threads over query blocks (``None`` = the kernel
        default).  Blocks write disjoint output slices and each block
        is computed identically whatever the schedule, so results are
        byte-identical across thread counts.
    exclude:
        Optional per-query index into ``B`` to mask out (``-1`` =
        nothing), for self-exclusion when the query point is a member
        of the reference set.  A masked entry can still be *returned*
        when ``kk`` spans the whole reference set — it carries
        ``d2 = inf``, so callers filter with ``np.isfinite``.
    """
    A = np.asarray(A, dtype=float)
    ref = (B if isinstance(B, PreparedReference)
           else prepare_reference(B))
    B = ref.B
    if A.ndim != 2 or A.shape[1] != B.shape[1]:
        raise ValueError(
            f"A and B must be 2-D with matching feature counts, got "
            f"{A.shape} and {B.shape}")
    if k < 1:
        raise ValueError(f"k must be at least 1, got {k}")
    block = resolve_block_size(block_size)
    m = B.shape[0]
    kk = min(k, m)
    n_q = A.shape[0]
    if m == 0 or n_q == 0:
        return (np.empty((n_q, kk), dtype=np.intp),
                np.empty((n_q, kk)))
    if exclude is not None:
        exclude = np.asarray(exclude)
        if exclude.shape != (n_q,):
            raise ValueError(
                f"exclude must have one entry per query row, got shape "
                f"{exclude.shape} for {n_q} rows")

    # float32 screen operands on centred coordinates (see
    # PreparedReference); ‖a‖² is a per-row constant under
    # argpartition, so the screen key is just ‖b‖² − 2·a@bᵀ.
    A2_32 = np.ascontiguousarray((A - ref.mu) * -2.0, dtype=np.float32)
    n_cand = min(m, kk + max(_SCREEN_MARGIN, kk))

    idx = np.empty((n_q, kk), dtype=np.intp)
    d2 = np.empty((n_q, kk))

    def compute(start: int) -> None:
        stop = min(start + block, n_q)
        rows = slice(start, stop)
        G = A2_32[rows] @ ref.BT_32
        G += ref.b_sq_32
        excl = None
        if exclude is not None:
            excl = exclude[rows]
            member = excl >= 0
            G[np.flatnonzero(member), excl[member]] = np.inf
        if n_cand < m:
            cand = np.argpartition(G, n_cand - 1, axis=1)[:, :n_cand]
        else:
            cand = np.broadcast_to(np.arange(m), (stop - start, m))
        # Exact float64 re-rank of the surviving candidates, from the
        # coordinate differences directly (no Gram cancellation).
        diff = A[rows][:, None, :] - B[cand]
        exact = np.einsum("rcd,rcd->rc", diff, diff)
        if excl is not None:
            exact[cand == excl[:, None]] = np.inf
        idx[rows], d2[rows] = _stable_smallest(cand, exact, kk)

    starts = list(range(0, n_q, block))
    for _ in _run_tiles(compute, starts, resolve_threads(threads)):
        obs.add("pairwise.blocks")
    obs.add("pairwise.candidates", n_q * n_cand)
    return idx, d2


def topk_dense(D: np.ndarray, k: int, *,
               rows: np.ndarray | None = None,
               columns: np.ndarray | None = None,
               block_size: int | None = None,
               threads: int | None = None,
               exclude: np.ndarray | None = None,
               ) -> tuple[np.ndarray, np.ndarray]:
    """:func:`topk` over a precomputed distance matrix.

    For callers that accept an externally supplied metric (situation
    testing with ``distances=``): selects, for each of the query
    ``rows`` of ``D`` (default: all), the ``kk`` smallest entries
    among ``columns`` (default: all), with the same blockwise sweep,
    stable ``(value, index)`` order, ``exclude`` masking, and
    ``(idx, value)`` return contract as :func:`topk` — ``idx``
    indexes into ``columns``.  Only one ``block_size``-row slice of
    the selected submatrix is ever copied at a time.
    """
    D = np.asarray(D, dtype=float)
    if D.ndim != 2:
        raise ValueError(f"D must be 2-D, got shape {D.shape}")
    if k < 1:
        raise ValueError(f"k must be at least 1, got {k}")
    block = resolve_block_size(block_size)
    rows = (np.arange(D.shape[0]) if rows is None
            else np.asarray(rows))
    n_q = rows.size
    m = D.shape[1] if columns is None else len(columns)
    kk = min(k, m)
    if m == 0 or n_q == 0:
        return (np.empty((n_q, kk), dtype=np.intp),
                np.empty((n_q, kk)))
    if exclude is not None:
        exclude = np.asarray(exclude)
        if exclude.shape != (n_q,):
            raise ValueError(
                f"exclude must have one entry per query row, got shape "
                f"{exclude.shape} for {n_q} rows")
    idx = np.empty((n_q, kk), dtype=np.intp)
    vals = np.empty((n_q, kk))
    all_cols = np.arange(m)

    def compute(start: int) -> None:
        stop = min(start + block, n_q)
        # One fancy-indexed copy of exactly the block × columns
        # submatrix — never a full-width intermediate.
        sub = (D[rows[start:stop]] if columns is None
               else D[np.ix_(rows[start:stop], columns)])
        if exclude is not None:
            excl = exclude[start:stop]
            member = excl >= 0
            sub[np.flatnonzero(member), excl[member]] = np.inf
        if kk < m:
            cand = np.argpartition(sub, kk - 1, axis=1)[:, :kk]
            picked = np.take_along_axis(sub, cand, axis=1)
        else:
            cand = np.broadcast_to(all_cols, (stop - start, m))
            picked = sub
        idx[start:stop], vals[start:stop] = _stable_smallest(
            cand, np.ascontiguousarray(picked, dtype=float), kk)

    starts = list(range(0, n_q, block))
    for _ in _run_tiles(compute, starts, resolve_threads(threads)):
        obs.add("pairwise.blocks")
    return idx, vals


# ----------------------------------------------------------------------
# Masked distances (k-NN imputation)
# ----------------------------------------------------------------------
def masked_sq_blocks(Z: np.ndarray, observed: np.ndarray,
                     rows: np.ndarray, *,
                     block_size: int | None = None,
                     threads: int | None = None,
                     ) -> Iterator[tuple[int, int, np.ndarray, np.ndarray]]:
    """Blockwise masked squared distances and overlap counts.

    For partially observed data, the distance between rows *i* and *j*
    only uses features observed in **both**; with ``M`` the observed
    mask and ``Z̃ = Z·M`` (missing coordinates zeroed), the masked
    Gram expansion is three matmuls::

        Σ_d M_id M_jd (Z_id − Z_jd)² = (Z̃²)_i·M_j − 2·Z̃_i·Z̃_j
                                        + M_i·(Z̃²)_j

    Yields ``(start, stop, d2, counts)`` over blocks of ``rows``
    (query-row indices into ``Z``): the masked squared-difference sums
    (clipped at zero) against **every** row of ``Z``, and the shared
    observed-feature counts — both exact in float64.  Consumers must
    treat zero overlap as *incomparable*, not divide by it —
    :func:`masked_mean_distances` is the canonical guard.
    """
    Z = np.asarray(Z, dtype=float)
    rows = np.asarray(rows)
    block = resolve_block_size(block_size)
    M = np.asarray(observed, dtype=float)
    if M.shape != Z.shape:
        raise ValueError(
            f"observed mask shape {M.shape} must match Z {Z.shape}")
    ZM = np.where(observed, Z, 0.0)
    ZM_sq = ZM * ZM
    MT, ZMT, ZM_sqT = M.T, ZM.T, ZM_sq.T

    def compute(start: int) -> tuple[int, int, np.ndarray, np.ndarray]:
        stop = min(start + block, rows.size)
        take = rows[start:stop]
        d2 = ZM[take] @ ZMT
        d2 *= -2.0
        d2 += ZM_sq[take] @ MT
        d2 += M[take] @ ZM_sqT
        np.maximum(d2, 0.0, out=d2)
        counts = M[take] @ MT
        return start, stop, d2, counts

    starts = list(range(0, rows.size, block))
    for result in _run_tiles(compute, starts, resolve_threads(threads)):
        obs.add("pairwise.blocks")
        yield result


def masked_mean_distances(d2: np.ndarray, counts: np.ndarray
                          ) -> np.ndarray:
    """Per-pair RMS distance over the shared-observed features.

    The canonical consumer-side guard for :func:`masked_sq_blocks`
    output: pairs with **zero** shared observed features are
    incomparable and get an explicit ``inf`` (so stable argsorts push
    them last and ``np.isfinite`` filters them), with no division by
    zero and no ``RuntimeWarning`` — fully disjoint observation
    patterns are a legitimate input, not a numerics accident.
    Comparable pairs get exactly ``sqrt(d2 / counts)``.
    """
    d2 = np.asarray(d2, dtype=float)
    counts = np.asarray(counts, dtype=float)
    dist = np.full(d2.shape, np.inf)
    np.divide(d2, counts, out=dist, where=counts > 0)
    return np.sqrt(dist, out=dist)
