"""Confusion-matrix profiling of binary predictions (paper Section 2.1)."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


def _check_binary_pair(y: np.ndarray, y_hat: np.ndarray
                       ) -> tuple[np.ndarray, np.ndarray]:
    y = np.asarray(y).astype(int)
    y_hat = np.asarray(y_hat).astype(int)
    if y.shape != y_hat.shape or y.ndim != 1:
        raise ValueError(f"label arrays must be aligned 1-D, got {y.shape} "
                         f"vs {y_hat.shape}")
    for name, arr in (("y", y), ("y_hat", y_hat)):
        bad = np.setdiff1d(np.unique(arr), (0, 1))
        if bad.size:
            raise ValueError(f"{name} must be binary 0/1, found {bad}")
    return y, y_hat


@dataclass(frozen=True)
class ConfusionCounts:
    """TP/TN/FP/FN counts with the derived rates of the paper."""

    tp: int
    tn: int
    fp: int
    fn: int

    @classmethod
    def from_predictions(cls, y: np.ndarray,
                         y_hat: np.ndarray) -> "ConfusionCounts":
        y, y_hat = _check_binary_pair(y, y_hat)
        return cls(
            tp=int(np.sum((y == 1) & (y_hat == 1))),
            tn=int(np.sum((y == 0) & (y_hat == 0))),
            fp=int(np.sum((y == 0) & (y_hat == 1))),
            fn=int(np.sum((y == 1) & (y_hat == 0))),
        )

    @property
    def total(self) -> int:
        return self.tp + self.tn + self.fp + self.fn

    @staticmethod
    def _rate(num: int, den: int) -> float:
        return num / den if den else float("nan")

    @property
    def tpr(self) -> float:
        """True positive rate (recall of the positive class)."""
        return self._rate(self.tp, self.tp + self.fn)

    @property
    def tnr(self) -> float:
        """True negative rate."""
        return self._rate(self.tn, self.tn + self.fp)

    @property
    def fpr(self) -> float:
        """False positive rate."""
        return self._rate(self.fp, self.fp + self.tn)

    @property
    def fnr(self) -> float:
        """False negative rate."""
        return self._rate(self.fn, self.fn + self.tp)

    @property
    def positive_rate(self) -> float:
        """Fraction of positive predictions P(ŷ = 1)."""
        return self._rate(self.tp + self.fp, self.total)
