"""Loop reference implementations of the individual-fairness metrics.

The pre-vectorization algorithms of :mod:`repro.metrics.individual`:
per-row abduction with Python float dicts for the counterfactual
audit, and dense ``n × n`` distance matrices with full-pool
``argsort`` for the k-NN metrics.  Kept for the parity test-suite and
for ``benchmarks/bench_perf_counterfactual.py``; no production code
path imports this module.  See :mod:`repro.causal.reference` for the
CPT/SCM-level loops these build on.
"""

from __future__ import annotations

from collections.abc import Mapping

import numpy as np

from ..causal.counterfactual import CounterfactualSCM
from ..causal.reference import scm_abduct_loop, scm_evaluate_loop
from .individual import (CounterfactualFairnessResult, Predictor,
                         SituationTestingResult)

__all__ = [
    "counterfactual_fairness_loop",
    "situation_testing_loop",
    "normalized_euclidean_dense",
    "fairness_through_awareness_dense",
    "metric_multifairness_dense",
    "knn_predict_proba_loop",
    "impute_knn_loop",
]


def counterfactual_fairness_loop(scm: CounterfactualSCM,
                                 columns: Mapping[str, np.ndarray],
                                 sensitive: str, outcome: str,
                                 predict: Predictor,
                                 rng: np.random.Generator,
                                 n_particles: int = 200,
                                 max_rows: int | None = 100,
                                 threshold: float = 0.05,
                                 ) -> CounterfactualFairnessResult:
    """Per-row audit: one abduction and two world evaluations per
    individual, through per-row dict lookups."""
    nodes = scm.graph.topological_order()
    missing = [n for n in nodes if n not in columns]
    if missing:
        raise ValueError(f"columns missing for SCM nodes: {missing}")
    n = np.asarray(columns[nodes[0]]).shape[0]
    take = n if max_rows is None else min(max_rows, n)
    rows = [
        {node: float(np.asarray(columns[node])[i]) for node in nodes}
        for i in range(take)
    ]
    gaps = []
    for row in rows:
        noise = scm_abduct_loop(scm, row, n_particles, rng)
        rates = []
        for value in (1.0, 0.0):
            world = scm_evaluate_loop(scm, noise, {sensitive: value})
            rates.append(float(np.mean(
                np.asarray(predict(world), dtype=float) > 0.5)))
        gaps.append(abs(rates[0] - rates[1]))
    gaps_arr = np.asarray(gaps)
    return CounterfactualFairnessResult(
        mean_gap=float(gaps_arr.mean()),
        max_gap=float(gaps_arr.max()),
        unfair_fraction=float(np.mean(gaps_arr > threshold)),
        threshold=threshold,
        n_rows=len(gaps),
    )


def normalized_euclidean_dense(X: np.ndarray) -> np.ndarray:
    """One-shot dense pairwise distances after min-max scaling."""
    X = np.asarray(X, dtype=float)
    span = X.max(axis=0) - X.min(axis=0)
    span[span == 0] = 1.0
    Z = (X - X.min(axis=0)) / span
    sq = np.sum(Z ** 2, axis=1)
    d2 = sq[:, None] + sq[None, :] - 2 * Z @ Z.T
    np.fill_diagonal(d2, 0.0)
    return np.sqrt(np.maximum(d2, 0.0))


def situation_testing_loop(X: np.ndarray, s: np.ndarray, y_hat: np.ndarray,
                           k: int = 8, threshold: float = 0.2,
                           audit_group: int = 0,
                           distances: np.ndarray | None = None,
                           ) -> SituationTestingResult:
    """Per-individual neighbour search over a dense distance matrix
    with full-pool stable ``argsort``.

    Defines the edge-case semantics the blockwise path must
    reproduce: pools smaller than ``k`` contribute the neighbours
    they have, an audited individual alone in its own pool yields no
    within-group rate (and drops out of the aggregates), and only an
    entirely empty group — or an audit with no usable rows at all —
    is an error.
    """
    X = np.asarray(X, dtype=float)
    s = np.asarray(s, dtype=int)
    y_hat = (np.asarray(y_hat, dtype=float) > 0.5).astype(float)
    if X.shape[0] != s.shape[0] or s.shape != y_hat.shape:
        raise ValueError("X, s, y_hat must be aligned")
    if k < 1:
        raise ValueError("k must be at least 1")
    d = normalized_euclidean_dense(X) if distances is None else distances
    idx_priv = np.flatnonzero(s == 1)
    idx_unpriv = np.flatnonzero(s == 0)
    if idx_priv.size == 0 or idx_unpriv.size == 0:
        raise ValueError(
            "situation testing needs both sensitive groups non-empty; "
            f"got {idx_priv.size} privileged and {idx_unpriv.size} "
            "unprivileged members")

    audited = np.flatnonzero(s == audit_group)
    if audited.size == 0:
        raise ValueError(f"audit_group={audit_group} selects no rows")
    gaps = []
    for i in audited:
        gap_parts = []
        for pool in (idx_priv, idx_unpriv):
            others = pool[pool != i]
            nearest = others[np.argsort(d[i, others], kind="stable")[:k]]
            gap_parts.append(float(np.mean(y_hat[nearest]))
                             if nearest.size else np.nan)
        gaps.append(gap_parts[0] - gap_parts[1])
    gaps_arr = np.asarray(gaps)
    finite = np.isfinite(gaps_arr)
    if not finite.any():
        raise ValueError(
            "no audited individual has usable neighbours in both "
            "groups; audit a larger sample")
    gaps_arr = gaps_arr[finite]
    return SituationTestingResult(
        flagged_fraction=float(np.mean(np.abs(gaps_arr) > threshold)),
        mean_gap=float(gaps_arr.mean()),
        threshold=threshold,
        n_audited=int(gaps_arr.size),
    )


def _sample_pairs(n: int, n_pairs: int, rng: np.random.Generator
                  ) -> tuple[np.ndarray, np.ndarray]:
    a = rng.integers(0, n, n_pairs)
    b = rng.integers(0, n, n_pairs)
    keep = a != b
    return a[keep], b[keep]


def fairness_through_awareness_dense(X: np.ndarray, scores: np.ndarray,
                                     rng: np.random.Generator,
                                     lipschitz: float = 1.0,
                                     n_pairs: int = 5000) -> float:
    """Lipschitz violation rate over a dense distance matrix."""
    X = np.asarray(X, dtype=float)
    scores = np.asarray(scores, dtype=float)
    d = normalized_euclidean_dense(X)
    a, b = _sample_pairs(X.shape[0], n_pairs, rng)
    if a.size == 0:
        raise ValueError("no valid pairs sampled; increase n_pairs")
    violations = np.abs(scores[a] - scores[b]) > lipschitz * d[a, b] + 1e-12
    return float(np.mean(violations))


def knn_predict_proba_loop(X_train: np.ndarray, y: np.ndarray,
                           weights: np.ndarray, X_query: np.ndarray,
                           k: int) -> np.ndarray:
    """Pre-kernel k-NN voting: one dense distance row per query point,
    neighbours by stable full ``argsort``."""
    X_train = np.asarray(X_train, dtype=float)
    X_query = np.asarray(X_query, dtype=float)
    kk = min(k, X_train.shape[0])
    out = np.empty(X_query.shape[0])
    for i, q in enumerate(X_query):
        d2 = np.sum((X_train - q) ** 2, axis=1)
        nearest = np.argsort(d2, kind="stable")[:kk]
        votes = weights[nearest]
        out[i] = (votes * (y[nearest] == 1)).sum() / votes.sum()
    return out


def impute_knn_loop(X: np.ndarray, k: int = 5) -> np.ndarray:
    """Pre-kernel k-NN imputation: one masked distance row per
    needy row, computed with full-matrix broadcasting."""
    X = np.asarray(X, dtype=float).copy()
    if X.ndim != 2:
        raise ValueError(f"X must be 2-D, got shape {X.shape}")
    if k < 1:
        raise ValueError("k must be at least 1")
    missing = np.isnan(X)
    if not missing.any():
        return X
    if missing.all(axis=0).any():
        raise ValueError("cannot impute a fully missing column")
    col_mean = np.nanmean(X, axis=0)
    col_std = np.nanstd(X, axis=0)
    col_std[col_std == 0] = 1.0
    Z = (X - col_mean) / col_std
    out = X.copy()
    needs = np.flatnonzero(missing.any(axis=1))
    for i in needs:
        shared = ~missing[i] & ~missing            # (n, d) overlap mask
        diff = np.where(shared, Z - Z[i], 0.0)
        counts = shared.sum(axis=1)
        counts[i] = 0                              # never one's own row
        with np.errstate(invalid="ignore", divide="ignore"):
            dist = np.sqrt((diff ** 2).sum(axis=1) / np.maximum(counts, 1))
        dist[counts == 0] = np.inf
        order = np.argsort(dist, kind="stable")
        finite = np.isfinite(dist[order])
        for j in np.flatnonzero(missing[i]):
            eligible = finite & ~missing[order, j]
            donors = order[eligible][:k]
            out[i, j] = (float(np.mean(X[donors, j])) if donors.size
                         else col_mean[j])
    return out


def metric_multifairness_dense(X: np.ndarray, scores: np.ndarray,
                               rng: np.random.Generator,
                               n_sets: int = 50, set_size: int = 40,
                               radius: float = 0.25) -> float:
    """Metric multifairness over a dense distance matrix."""
    X = np.asarray(X, dtype=float)
    scores = np.asarray(scores, dtype=float)
    d = normalized_euclidean_dense(X)
    n = X.shape[0]
    worst = 0.0
    found_any = False
    for _ in range(n_sets):
        a, b = _sample_pairs(n, set_size * 4, rng)
        close = d[a, b] <= radius
        a, b = a[close][:set_size], b[close][:set_size]
        if a.size == 0:
            continue
        found_any = True
        worst = max(worst, abs(float(np.mean(scores[a] - scores[b]))))
    if not found_any:
        raise ValueError(
            f"no similar pairs found within radius {radius}; increase it"
        )
    return worst
