"""Group-level causal fairness metrics beyond TE/NDE/NIE.

This module completes the *causal* rows of the paper's Figure 3 that
the headline evaluation omits: counterfactual direct/indirect/spurious
effects [Zhang & Bareinboim], counterfactual error rates, proxy
fairness [Kilbertus et al.], fair-on-average causal effect (FACE)
[Khademi et al.], causal risk difference / unresolved discrimination
[Qureshi et al.; Kilbertus et al.], Salimi's ratio of observable
discrimination for justifiable fairness, Zha-Wu's non-discrimination
criterion, and equality of effort [Huan et al.].

Two kinds of inputs appear:

* metrics on an explicit-noise :class:`~repro.causal.counterfactual.
  CounterfactualSCM` (the rung-3 quantities — they need cross-world
  counterfactual consistency);
* metrics on plain observational columns plus, where required, the
  causal graph (rung-1/2 quantities estimated by stratification or
  adjustment).

All return signed gaps where 0 means perfectly fair, matching the
convention of ``TPRB``/``TE`` in :mod:`repro.metrics.fairness`.
"""

from __future__ import annotations

from collections.abc import Callable, Iterable, Mapping
from dataclasses import dataclass

import numpy as np

from ..causal.counterfactual import CounterfactualSCM
from ..causal.graph import CausalGraph
from ..causal.identification import backdoor_estimate, identify_effect

__all__ = [
    "CtfEffects",
    "ctf_effects",
    "CounterfactualErrorRates",
    "counterfactual_error_rates",
    "proxy_fairness_gap",
    "fair_on_average_causal_effect",
    "causal_risk_difference",
    "justifiable_fairness_gap",
    "non_discrimination_score",
    "equality_of_effort_gap",
]

Predictor = Callable[[dict[str, np.ndarray]], np.ndarray]


def _positive(values: np.ndarray) -> np.ndarray:
    return (np.asarray(values, dtype=float) > 0.5).astype(float)


def _outcome(values: dict[str, np.ndarray], outcome: str,
             predict: Predictor | None) -> np.ndarray:
    raw = predict(values) if predict is not None else values[outcome]
    return _positive(raw)


def _masked_mean(values: np.ndarray, mask: np.ndarray) -> float:
    if not np.any(mask):
        raise ValueError("conditioning event has no samples; increase n")
    return float(np.mean(values[mask]))


# ----------------------------------------------------------------------
# Counterfactual effects (Zhang & Bareinboim's explanation formula)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class CtfEffects:
    """Counterfactual decomposition of observed disparity.

    The explanation formula decomposes the observed (total-variation)
    disparity ``tv = E[Y | S=s1] − E[Y | S=s0]`` into a counterfactual
    direct effect (``de``), indirect effect (``ie``), and spurious
    effect (``se``):

    * ``de = E[Y_{s1, Z_{s0}} − Y_{s0} | S = s0]`` — the direct effect
      of the ``s0 → s1`` transition on the unprivileged group;
    * ``ie = E[Y_{s1, Z_{s0}} − Y_{s1} | S = s0]`` — the indirect
      effect of the *reverse* ``s1 → s0`` mediator transition (negative
      when the mediated path raises outcomes under ``s1``);
    * ``se = E[Y_{s1} | S = s1] − E[Y_{s1} | S = s0]`` — the spurious
      (confounded) association not carried by any causal path.

    These satisfy the explanation formula ``tv = de − ie + se``
    *exactly* (``residual`` records the numeric gap, which with shared
    noise is zero up to float error).
    """

    de: float
    ie: float
    se: float
    tv: float

    @property
    def residual(self) -> float:
        """``tv − (de − ie + se)`` — zero up to sampling error."""
        return self.tv - (self.de - self.ie + self.se)


def ctf_effects(scm: CounterfactualSCM, source: str, outcome: str,
                n: int, rng: np.random.Generator,
                s1: float = 1.0, s0: float = 0.0,
                predict: Predictor | None = None) -> CtfEffects:
    """Estimate the counterfactual DE/IE/SE decomposition.

    Shares exogenous noise across all worlds, which is what makes the
    cross-world terms (e.g. ``Y_{s1, Z_{s0}}``) well defined.

    Parameters
    ----------
    scm:
        Explicit-noise SCM of the data-generating process.
    source, outcome:
        Sensitive attribute and outcome node.
    n:
        Monte-Carlo sample size (the estimate conditions on the factual
        group, so use a few thousand at least).
    predict:
        Optional classifier replacing the outcome node.
    """
    mediators = sorted(scm.graph.mediators(source, outcome))
    noise = scm.sample_noise(n, rng)
    factual = scm.evaluate(noise)
    # All worlds share the factual noise, so passing the factual world
    # as ``base`` recomputes only the source's descendants per world.
    world0 = scm.evaluate(noise, {source: s0}, base=factual)
    world1 = scm.evaluate(noise, {source: s1}, base=factual)

    y_fact = _outcome(factual, outcome, predict)
    y0 = _outcome(world0, outcome, predict)
    y1 = _outcome(world1, outcome, predict)

    in_s0 = factual[source] == s0
    in_s1 = factual[source] == s1

    z0 = {m: world0[m] for m in mediators}
    y_s1_z0 = _outcome(
        scm.evaluate(noise, {source: s1}, overrides=z0, base=factual),
        outcome, predict)

    de = _masked_mean(y_s1_z0 - y0, in_s0)
    ie = _masked_mean(y_s1_z0 - y1, in_s0)
    se = _masked_mean(y1, in_s1) - _masked_mean(y1, in_s0)
    tv = _masked_mean(y_fact, in_s1) - _masked_mean(y_fact, in_s0)
    return CtfEffects(de=de, ie=ie, se=se, tv=tv)


# ----------------------------------------------------------------------
# Counterfactual error rates
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class CounterfactualErrorRates:
    """Counterfactual FPR/FNR gaps for the unprivileged group.

    ``fpr_gap = P(Ŷ_{s1}=1 | Y=0, S=s0) − P(Ŷ=1 | Y=0, S=s0)``: how the
    group's false-positive exposure *would change* had its members been
    privileged; analogously for ``fnr_gap``.  Zero means the error
    profile is counterfactually invariant to the sensitive attribute.
    """

    fpr_gap: float
    fnr_gap: float


def counterfactual_error_rates(scm: CounterfactualSCM, source: str,
                               outcome: str, predict: Predictor,
                               n: int, rng: np.random.Generator,
                               s1: float = 1.0, s0: float = 0.0,
                               ) -> CounterfactualErrorRates:
    """Estimate counterfactual error-rate gaps of a classifier.

    The ground truth ``outcome`` is taken from the factual world; the
    classifier is evaluated on factual and counterfactual (``do(source
    = s1)``) feature values generated from shared noise.
    """
    noise = scm.sample_noise(n, rng)
    factual = scm.evaluate(noise)
    counter = scm.evaluate(noise, {source: s1}, base=factual)
    y = _positive(factual[outcome])
    yhat_fact = _positive(predict(factual))
    yhat_cf = _positive(predict(counter))
    group = factual[source] == s0

    neg = group & (y == 0)
    pos = group & (y == 1)
    fpr_gap = _masked_mean(yhat_cf, neg) - _masked_mean(yhat_fact, neg)
    fnr_gap = ((1 - _masked_mean(yhat_cf, pos))
               - (1 - _masked_mean(yhat_fact, pos)))
    return CounterfactualErrorRates(fpr_gap=fpr_gap, fnr_gap=fnr_gap)


# ----------------------------------------------------------------------
# Proxy fairness
# ----------------------------------------------------------------------
def proxy_fairness_gap(scm: CounterfactualSCM, proxy: str, outcome: str,
                       n: int, rng: np.random.Generator,
                       values: Iterable[float] = (0.0, 1.0),
                       predict: Predictor | None = None) -> float:
    """Kilbertus et al.'s proxy fairness violation.

    A predictor is proxy-fair w.r.t. a proxy ``P`` of the sensitive
    attribute when ``P(Ŷ = 1 | do(P = p))`` is the same for every proxy
    value.  Returns the max-minus-min spread of those interventional
    rates; 0 means proxy-fair.

    All proxy values are evaluated on one shared noise draw (common
    random numbers): only the proxy's descendants are recomputed per
    value, and the spread estimate loses sampling variance it would
    otherwise pay for independent draws.
    """
    noise = scm.sample_noise(n, rng)
    natural = scm.evaluate(noise)
    rates = []
    for value in values:
        sample = scm.evaluate(noise, {proxy: value}, base=natural)
        rates.append(float(np.mean(_outcome(sample, outcome, predict))))
    return float(max(rates) - min(rates))


# ----------------------------------------------------------------------
# FACE — fair on average causal effect
# ----------------------------------------------------------------------
def fair_on_average_causal_effect(columns: Mapping[str, np.ndarray],
                                  graph: CausalGraph, sensitive: str,
                                  outcome: str,
                                  y_hat: np.ndarray | None = None) -> float:
    """Khademi et al.'s FACE: the average causal effect of ``S`` on the
    (predicted) outcome, estimated by covariate adjustment.

    Uses :func:`repro.causal.identification.identify_effect` to find a
    valid adjustment set; returns ``E[Y(1)] − E[Y(0)]``.

    Raises
    ------
    ValueError
        If the effect is not backdoor/root-identified on the graph.
    """
    cols = dict(columns)
    if y_hat is not None:
        cols[outcome] = np.asarray(y_hat, dtype=float)
    ident = identify_effect(graph, sensitive, outcome)
    if ident.strategy not in ("root", "backdoor"):
        raise ValueError(
            f"FACE needs a backdoor-identified effect; got {ident.strategy!r}"
        )
    p1 = backdoor_estimate(cols, sensitive, outcome, ident.adjustment, 1.0)
    p0 = backdoor_estimate(cols, sensitive, outcome, ident.adjustment, 0.0)
    return p1 - p0


# ----------------------------------------------------------------------
# Stratified conditional-parity family
# ----------------------------------------------------------------------
def _strata_keys(columns: Mapping[str, np.ndarray],
                 names: Iterable[str], n: int) -> np.ndarray:
    names = sorted(names)
    if not names:
        return np.zeros(n, dtype=int)
    matrix = np.column_stack(
        [np.asarray(columns[c], dtype=float) for c in names])
    _, inverse = np.unique(matrix, axis=0, return_inverse=True)
    return inverse


def _stratified_gaps(y_hat: np.ndarray, s: np.ndarray,
                     keys: np.ndarray) -> tuple[float, float]:
    """Return ``(weighted_mean_gap, max_abs_gap)`` of per-stratum
    ``P(Ŷ=1|S=1,stratum) − P(Ŷ=1|S=0,stratum)`` over strata containing
    both groups."""
    weighted = 0.0
    weight_total = 0.0
    max_abs = 0.0
    for key in np.unique(keys):
        mask = keys == key
        m1, m0 = mask & (s == 1), mask & (s == 0)
        if not (np.any(m1) and np.any(m0)):
            continue
        gap = float(np.mean(y_hat[m1]) - np.mean(y_hat[m0]))
        w = float(np.mean(mask))
        weighted += w * gap
        weight_total += w
        max_abs = max(max_abs, abs(gap))
    if weight_total == 0.0:
        raise ValueError("no stratum contains both sensitive groups")
    return weighted / weight_total, max_abs


def causal_risk_difference(columns: Mapping[str, np.ndarray], sensitive: str,
                           y_hat: np.ndarray,
                           resolving: Iterable[str]) -> float:
    """Unresolved discrimination via the causal risk difference.

    Stratifies on the *resolving* attributes (those that mediate the
    sensitive attribute's influence in an accepted way) and returns the
    stratum-weighted difference in positive prediction rates.  Zero
    means any remaining association is fully explained by the resolving
    attributes.
    """
    y_hat = _positive(y_hat)
    s = np.asarray(columns[sensitive], dtype=float)
    keys = _strata_keys(columns, resolving, y_hat.shape[0])
    weighted, _ = _stratified_gaps(y_hat, s, keys)
    return weighted


def justifiable_fairness_gap(columns: Mapping[str, np.ndarray],
                             sensitive: str, y_hat: np.ndarray,
                             admissible: Iterable[str]) -> float:
    """Salimi et al.'s observable-discrimination score.

    Justifiable fairness requires ``Ŷ ⫫ S | A`` for the admissible
    attributes ``A``.  Returns the *largest* absolute conditional
    disparity across admissible strata; 0 means justifiably fair.
    """
    y_hat = _positive(y_hat)
    s = np.asarray(columns[sensitive], dtype=float)
    keys = _strata_keys(columns, admissible, y_hat.shape[0])
    _, max_abs = _stratified_gaps(y_hat, s, keys)
    return max_abs


def non_discrimination_score(columns: Mapping[str, np.ndarray],
                             graph: CausalGraph, sensitive: str,
                             outcome: str,
                             y_hat: np.ndarray | None = None) -> float:
    """Zha-Wu's non-discrimination criterion.

    Computes ``Δq = P(Y=1 | S=1, Q=q) − P(Y=1 | S=0, Q=q)`` for every
    value ``q`` of the blocking-parent set ``Q`` (the parents of the
    outcome that intercept all indirect ``S → Y`` paths) and returns
    ``max_q |Δq|``.  The criterion holds when this is below the user's
    threshold ``τ``.
    """
    q_set = graph.blocking_parents(sensitive, outcome)
    y = _positive(y_hat if y_hat is not None else columns[outcome])
    s = np.asarray(columns[sensitive], dtype=float)
    keys = _strata_keys(columns, q_set, y.shape[0])
    _, max_abs = _stratified_gaps(y, s, keys)
    return max_abs


# ----------------------------------------------------------------------
# Equality of effort
# ----------------------------------------------------------------------
def equality_of_effort_gap(columns: Mapping[str, np.ndarray],
                           sensitive: str, effort: str, outcome: str,
                           target: float = 0.5) -> float:
    """Huan et al.'s equality of effort, at the group level.

    For each sensitive group, finds the minimal value of the *effort*
    attribute (e.g. education level) at which the group's empirical
    success rate ``P(Y=1 | effort ≥ e, S=s)`` reaches ``target``.  The
    metric is the privileged-minus-unprivileged difference of those
    minimal efforts, rescaled by the effort attribute's observed range
    so it lies in ``[-1, 1]``.  Positive values mean the unprivileged
    group must exert *more* effort for the same chance of success.

    Raises
    ------
    ValueError
        If either group never reaches the target success rate.
    """
    if not 0.0 < target <= 1.0:
        raise ValueError(f"target must be in (0, 1], got {target}")
    e = np.asarray(columns[effort], dtype=float)
    s = np.asarray(columns[sensitive], dtype=float)
    y = _positive(columns[outcome])
    span = float(e.max() - e.min())
    if span == 0.0:
        raise ValueError(f"effort attribute {effort!r} is constant")

    def minimal_effort(group: float) -> float:
        mask = s == group
        levels = np.unique(e[mask])
        for level in levels:
            sub = mask & (e >= level)
            if np.mean(y[sub]) >= target:
                return float(level)
        raise ValueError(
            f"group S={group} never reaches success rate {target}"
        )

    return (minimal_effort(0.0) - minimal_effort(1.0)) / span
