"""The paper's Figure 3 catalog: 34 fairness notions, categorised.

Section 2 of the paper contributes a categorisation of 34 fairness
notions along four axes — association (causal / non-causal),
granularity (group / individual), position in Pearl's causal hierarchy
(observation / intervention / counterfactual), and additional
requirements (prediction probabilities, a causality model, resolving
attributes, a similarity metric).  This module reproduces that catalog
as data (:class:`Notion`, :func:`catalog`) and implements every notion
that is computable from observational data — predictions, labels,
scores, and group membership — as a documented function.

The five headline metrics of Figure 4 (DI, TPRB, TNRB, ID, TE) live in
:mod:`repro.metrics.fairness`; this module widens coverage to the rest
of the observational rows of Figure 3 so that users can audit a
classifier against any group notion the literature proposes.

Sign conventions follow the paper: for difference-style metrics,
positive values mean the *privileged* group (``S = 1``) is favoured,
negative values mean reverse discrimination.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from enum import Enum

import numpy as np

from .confusion import ConfusionCounts


class Association(Enum):
    """Whether a notion reasons causally or via statistical association."""

    NON_CAUSAL = "non-causal"
    CAUSAL = "causal"


class Granularity(Enum):
    """Whether a notion protects groups or individuals."""

    GROUP = "group"
    INDIVIDUAL = "individual"


class CausalHierarchy(Enum):
    """Pearl's ladder of causation: the domain knowledge a notion needs."""

    OBSERVATION = "observation"
    INTERVENTION = "intervention"
    COUNTERFACTUAL = "counterfactual"


class GroupStrategy(Enum):
    """How a group notion measures discrimination (paper Figure 3)."""

    DEMOGRAPHY_AWARE = "demography-aware"
    ERROR_AWARE = "error-aware"
    NOT_APPLICABLE = "n/a"


@dataclass(frozen=True)
class Notion:
    """One row of the paper's Figure 3.

    ``metric`` names the quantifying metric; ``implemented_as`` names
    the function in this package that computes it.  Every row of
    Figure 3 is implemented: the observational rows in this module, the
    interventional and counterfactual rows in
    :mod:`repro.metrics.causal_notions` and
    :mod:`repro.metrics.individual` (the paper's own evaluation excludes
    the counterfactual rows; we provide them as an extension).
    """

    name: str
    metric: str
    association: Association
    granularity: Granularity
    hierarchy: CausalHierarchy
    strategy: GroupStrategy = GroupStrategy.NOT_APPLICABLE
    requirements: tuple[str, ...] = ()
    implemented_as: str = ""
    evaluated_in_paper: bool = False


def _notion(name, metric, association, granularity, hierarchy,
            strategy=GroupStrategy.NOT_APPLICABLE, requirements=(),
            implemented_as="", evaluated=False) -> Notion:
    return Notion(name=name, metric=metric, association=association,
                  granularity=granularity, hierarchy=hierarchy,
                  strategy=strategy, requirements=tuple(requirements),
                  implemented_as=implemented_as,
                  evaluated_in_paper=evaluated)


_NC, _C = Association.NON_CAUSAL, Association.CAUSAL
_G, _I = Granularity.GROUP, Granularity.INDIVIDUAL
_OBS = CausalHierarchy.OBSERVATION
_INT = CausalHierarchy.INTERVENTION
_CF = CausalHierarchy.COUNTERFACTUAL
_DEM = GroupStrategy.DEMOGRAPHY_AWARE
_ERR = GroupStrategy.ERROR_AWARE

#: The 34 rows of the paper's Figure 3, in the paper's order.
FIGURE3_NOTIONS: tuple[Notion, ...] = (
    _notion("conditional statistical parity", "conditional statistical parity",
            _NC, _G, _OBS, _DEM, ("resolving attribute",),
            "conditional_statistical_parity"),
    _notion("demographic parity", "disparate impact / CV score",
            _NC, _G, _OBS, _DEM, (), "disparate_impact", evaluated=True),
    _notion("intersectional fairness", "differential fairness",
            _NC, _G, _OBS, _DEM, (), "differential_fairness"),
    _notion("conditional accuracy equality",
            "false discovery/omission rate parity",
            _NC, _G, _OBS, _ERR, (), "conditional_accuracy_equality"),
    _notion("predictive parity", "false discovery rate parity",
            _NC, _G, _OBS, _ERR, (), "false_discovery_rate_parity"),
    _notion("overall accuracy equality", "balanced classification rate",
            _NC, _G, _OBS, _ERR, (), "balanced_classification_rate_difference"),
    _notion("treatment equality", "ratio of false negative and false positive",
            _NC, _G, _OBS, _ERR, (), "treatment_equality"),
    _notion("equalized odds", "true positive/negative rate balance",
            _NC, _G, _OBS, _ERR, (), "true_positive_rate_balance",
            evaluated=True),
    _notion("equal opportunity", "true negative rate balance",
            _NC, _G, _OBS, _ERR, (), "equal_opportunity_difference",
            evaluated=True),
    _notion("resilience to random bias", "resilience to random bias",
            _NC, _G, _OBS, _ERR, (), "resilience_to_random_bias"),
    _notion("preference-based fairness", "group benefit",
            _NC, _G, _OBS, _DEM, (), "group_benefit_ratio"),
    _notion("calibration", "calibration",
            _NC, _G, _OBS, _ERR, ("prediction probability",),
            "calibration_error"),
    _notion("calibration within groups", "well calibration",
            _NC, _G, _OBS, _ERR, ("prediction probability",),
            "calibration_gap"),
    _notion("positive class balance", "fairness to positive class",
            _NC, _G, _OBS, _ERR, ("prediction probability",),
            "positive_class_balance"),
    _notion("negative class balance", "fairness to negative class",
            _NC, _G, _OBS, _ERR, ("prediction probability",),
            "negative_class_balance"),
    _notion("individual discrimination", "individual discrimination",
            _NC, _I, _OBS, GroupStrategy.NOT_APPLICABLE, (),
            "individual_discrimination", evaluated=True),
    _notion("metric multifairness", "metric multifairness",
            _NC, _I, _OBS, GroupStrategy.NOT_APPLICABLE,
            ("similarity metric",), "metric_multifairness"),
    _notion("fairness through awareness", "fairness through awareness",
            _NC, _I, _OBS, GroupStrategy.NOT_APPLICABLE,
            ("similarity metric",), "fairness_through_awareness"),
    _notion("fairness through unawareness", "Kusner et al.",
            _NC, _I, _OBS, GroupStrategy.NOT_APPLICABLE, (),
            "fairness_through_unawareness"),
    _notion("proxy fairness", "proxy fairness", _C, _G, _INT,
            requirements=("causality model",),
            implemented_as="proxy_fairness_gap"),
    _notion("total causal effect", "total effect", _C, _G, _INT,
            requirements=("causality model",), implemented_as="total_effect",
            evaluated=True),
    _notion("direct causal effect", "natural direct effect", _C, _G, _INT,
            requirements=("causality model",),
            implemented_as="natural_direct_effect"),
    _notion("indirect causal effect", "natural indirect effect",
            _C, _G, _INT, requirements=("causality model",),
            implemented_as="natural_indirect_effect"),
    _notion("path-specific fairness", "path specific effect", _C, _G, _INT,
            requirements=("causality model",),
            implemented_as="path_specific_effect"),
    _notion("unresolved discrimination", "causal risk difference",
            _C, _G, _INT,
            requirements=("causality model", "resolving attribute"),
            implemented_as="causal_risk_difference"),
    _notion("interventional/justifiable fairness",
            "ratio of observable discrimination", _C, _G, _INT,
            requirements=("resolving attribute",),
            implemented_as="justifiable_fairness_gap"),
    _notion("fair on average causal effect", "fair on average causal effect",
            _C, _G, _INT, requirements=("causality model",),
            implemented_as="fair_on_average_causal_effect"),
    _notion("non-discrimination criterion", "non-discrimination criterion",
            _C, _G, _INT, requirements=("causality model",),
            implemented_as="non_discrimination_score"),
    _notion("equality of effort", "equality of effort", _C, _I, _INT,
            requirements=("causality model",),
            implemented_as="equality_of_effort_gap"),
    _notion("counterfactual effects", "counterfactual direct/indirect effect",
            _C, _G, _CF, requirements=("causality model",),
            implemented_as="ctf_effects"),
    _notion("counterfactual error rates", "counterfactual error rates",
            _C, _G, _CF, requirements=("causality model", "error-aware"),
            implemented_as="counterfactual_error_rates"),
    _notion("counterfactual fairness", "counterfactual effect", _C, _I, _CF,
            requirements=("causality model",),
            implemented_as="counterfactual_fairness"),
    _notion("path-specific counterfactuals", "counterfactual effect",
            _C, _I, _CF, requirements=("causality model",),
            implemented_as="path_specific_counterfactual_fairness"),
    _notion("individual direct discrimination",
            "individual direct discrimination", _C, _I, _CF,
            requirements=("causality model", "similarity metric"),
            implemented_as="situation_testing"),
)


def catalog(association: Association | None = None,
            granularity: Granularity | None = None,
            hierarchy: CausalHierarchy | None = None,
            implemented_only: bool = False) -> list[Notion]:
    """Filter the Figure 3 catalog along the paper's categorisation axes.

    >>> len(catalog())
    34
    >>> all(n.association is Association.CAUSAL
    ...     for n in catalog(association=Association.CAUSAL))
    True
    """
    notions = list(FIGURE3_NOTIONS)
    if association is not None:
        notions = [n for n in notions if n.association is association]
    if granularity is not None:
        notions = [n for n in notions if n.granularity is granularity]
    if hierarchy is not None:
        notions = [n for n in notions if n.hierarchy is hierarchy]
    if implemented_only:
        notions = [n for n in notions if n.implemented_as]
    return notions


def notion_by_name(name: str) -> Notion:
    """Look up a catalog row by its notion name (case-insensitive)."""
    for notion in FIGURE3_NOTIONS:
        if notion.name.lower() == name.lower():
            return notion
    raise KeyError(f"unknown fairness notion {name!r}")


# ----------------------------------------------------------------------
# Shared group helpers
# ----------------------------------------------------------------------
def _as_binary(name: str, arr: np.ndarray) -> np.ndarray:
    arr = np.asarray(arr).astype(int)
    bad = np.setdiff1d(np.unique(arr), (0, 1))
    if bad.size:
        raise ValueError(f"{name} must be binary 0/1, found {bad}")
    return arr


def _group_counts(y: np.ndarray, y_hat: np.ndarray, s: np.ndarray
                  ) -> tuple[ConfusionCounts, ConfusionCounts]:
    """Confusion counts for (unprivileged, privileged)."""
    y = _as_binary("y", y)
    y_hat = _as_binary("y_hat", y_hat)
    s = _as_binary("s", s)
    if not (y.shape == y_hat.shape == s.shape):
        raise ValueError("y, y_hat, s must align")
    if not (s == 0).any() or not (s == 1).any():
        raise ValueError("both sensitive groups must be present")
    c0 = ConfusionCounts.from_predictions(y[s == 0], y_hat[s == 0])
    c1 = ConfusionCounts.from_predictions(y[s == 1], y_hat[s == 1])
    return c0, c1


def _safe_diff(a: float, b: float) -> float:
    if math.isnan(a) or math.isnan(b):
        return float("nan")
    return a - b


# ----------------------------------------------------------------------
# Demography-aware group notions
# ----------------------------------------------------------------------
def cv_score(y_hat: np.ndarray, s: np.ndarray) -> float:
    """Calders–Verwer gap ``P(ŷ=1 | S=1) − P(ŷ=1 | S=0)``.

    The difference form of demographic parity (the ratio form is
    :func:`repro.metrics.fairness.disparate_impact`).  0 is parity.
    """
    y_hat = _as_binary("y_hat", y_hat)
    s = _as_binary("s", s)
    if y_hat.shape != s.shape:
        raise ValueError("y_hat and s must align")
    if not (s == 0).any() or not (s == 1).any():
        raise ValueError("both sensitive groups must be present")
    return float(np.mean(y_hat[s == 1]) - np.mean(y_hat[s == 0]))


def conditional_statistical_parity(y_hat: np.ndarray, s: np.ndarray,
                                   legitimate: np.ndarray) -> float:
    """Worst-stratum demographic disparity, controlling for a
    legitimate (resolving) attribute [Corbett-Davies et al.].

    Rows are stratified by the values of ``legitimate``; within each
    stratum the CV gap is computed, and the largest absolute gap over
    strata containing both groups is returned (signed by the stratum
    that attains it).  0 is parity in every stratum.
    """
    y_hat = _as_binary("y_hat", y_hat)
    s = _as_binary("s", s)
    legitimate = np.asarray(legitimate)
    if not (y_hat.shape == s.shape == legitimate.shape):
        raise ValueError("y_hat, s, legitimate must align")
    worst = 0.0
    seen_stratum = False
    for value in np.unique(legitimate):
        mask = legitimate == value
        s_stratum = s[mask]
        if not (s_stratum == 0).any() or not (s_stratum == 1).any():
            continue
        seen_stratum = True
        gap = cv_score(y_hat[mask], s_stratum)
        if abs(gap) > abs(worst):
            worst = gap
    if not seen_stratum:
        raise ValueError("no stratum contains both sensitive groups")
    return float(worst)


def differential_fairness(y_hat: np.ndarray, groups: np.ndarray,
                          smoothing: float = 1.0) -> float:
    """Intersectional differential fairness ε [Foulds et al.].

    ``groups`` labels each row with an (intersectional) subgroup id;
    the metric is the largest absolute log-ratio of smoothed positive-
    prediction rates over all ordered subgroup pairs.  ε = 0 means all
    subgroups receive positives at identical rates; a classifier is
    "ε-differentially fair" when the returned value is at most ε.
    Dirichlet smoothing keeps empty-rate subgroups finite.
    """
    y_hat = _as_binary("y_hat", y_hat)
    groups = np.asarray(groups)
    if y_hat.shape != groups.shape:
        raise ValueError("y_hat and groups must align")
    if smoothing <= 0:
        raise ValueError("smoothing must be positive")
    rates = []
    for value in np.unique(groups):
        mask = groups == value
        rate = (y_hat[mask].sum() + smoothing) / (mask.sum() + 2 * smoothing)
        rates.append(rate)
    if len(rates) < 2:
        return 0.0
    log_rates = np.log(rates)
    return float(log_rates.max() - log_rates.min())


def group_benefit_ratio(y: np.ndarray, y_hat: np.ndarray, s: np.ndarray
                        ) -> float:
    """Preference-based group benefit [Zafar et al., NeurIPS'17].

    The benefit a group receives is its rate of favourable outcomes
    among rows whose ground truth or prediction is positive
    ``P(ŷ=1 ∨ y=1)``-relative; we report the benefit difference
    (privileged − unprivileged) of positive predictions among rows
    with any stake in the positive class.  0 means both groups benefit
    equally.
    """
    y = _as_binary("y", y)
    y_hat = _as_binary("y_hat", y_hat)
    s = _as_binary("s", s)
    benefits = []
    for group in (0, 1):
        mask = (s == group) & ((y == 1) | (y_hat == 1))
        if not mask.any():
            benefits.append(float("nan"))
        else:
            benefits.append(float(np.mean(y_hat[mask])))
    return _safe_diff(benefits[1], benefits[0])


# ----------------------------------------------------------------------
# Error-aware group notions
# ----------------------------------------------------------------------
def equal_opportunity_difference(y: np.ndarray, y_hat: np.ndarray,
                                 s: np.ndarray) -> float:
    """TPR(S=1) − TPR(S=0): the equal-opportunity gap [Hardt et al.]."""
    c0, c1 = _group_counts(y, y_hat, s)
    return _safe_diff(c1.tpr, c0.tpr)


def predictive_equality_difference(y: np.ndarray, y_hat: np.ndarray,
                                   s: np.ndarray) -> float:
    """FPR(S=1) − FPR(S=0): the predictive-equality gap.

    Negative values mean the unprivileged group suffers more false
    positives (the COMPAS pattern of the paper's Example 1).
    """
    c0, c1 = _group_counts(y, y_hat, s)
    return _safe_diff(c1.fpr, c0.fpr)


def false_discovery_rate_parity(y: np.ndarray, y_hat: np.ndarray,
                                s: np.ndarray) -> float:
    """FDR(S=1) − FDR(S=0), where FDR = P(y=0 | ŷ=1) (predictive
    parity's quantifying metric; Celis's ``pp`` constraint target)."""
    c0, c1 = _group_counts(y, y_hat, s)
    fdr0 = c0.fp / (c0.fp + c0.tp) if (c0.fp + c0.tp) else float("nan")
    fdr1 = c1.fp / (c1.fp + c1.tp) if (c1.fp + c1.tp) else float("nan")
    return _safe_diff(fdr1, fdr0)


def false_omission_rate_parity(y: np.ndarray, y_hat: np.ndarray,
                               s: np.ndarray) -> float:
    """FOR(S=1) − FOR(S=0), where FOR = P(y=1 | ŷ=0)."""
    c0, c1 = _group_counts(y, y_hat, s)
    for0 = c0.fn / (c0.fn + c0.tn) if (c0.fn + c0.tn) else float("nan")
    for1 = c1.fn / (c1.fn + c1.tn) if (c1.fn + c1.tn) else float("nan")
    return _safe_diff(for1, for0)


def conditional_accuracy_equality(y: np.ndarray, y_hat: np.ndarray,
                                  s: np.ndarray) -> float:
    """Worst of the FDR and FOR parities [Berk et al.] — the notion
    holds only when both prediction-conditioned error rates match."""
    fdr = false_discovery_rate_parity(y, y_hat, s)
    fom = false_omission_rate_parity(y, y_hat, s)
    if math.isnan(fdr):
        return fom
    if math.isnan(fom):
        return fdr
    return fdr if abs(fdr) >= abs(fom) else fom


def balanced_classification_rate_difference(y: np.ndarray,
                                            y_hat: np.ndarray,
                                            s: np.ndarray) -> float:
    """BCR(S=1) − BCR(S=0) with BCR = (TPR + TNR) / 2 [Friedler et al.]
    — the quantifying metric of overall accuracy equality."""
    c0, c1 = _group_counts(y, y_hat, s)
    bcr0 = (c0.tpr + c0.tnr) / 2
    bcr1 = (c1.tpr + c1.tnr) / 2
    return _safe_diff(bcr1, bcr0)


def accuracy_equality_difference(y: np.ndarray, y_hat: np.ndarray,
                                 s: np.ndarray) -> float:
    """Plain accuracy difference between the groups (COMPAS's famous
    "67% vs 69%" from the paper's Example 1)."""
    c0, c1 = _group_counts(y, y_hat, s)
    acc0 = (c0.tp + c0.tn) / c0.total if c0.total else float("nan")
    acc1 = (c1.tp + c1.tn) / c1.total if c1.total else float("nan")
    return _safe_diff(acc1, acc0)


def treatment_equality(y: np.ndarray, y_hat: np.ndarray, s: np.ndarray
                       ) -> float:
    """Difference of FN/FP ratios between groups [Berk et al.].

    A group with a higher FN/FP ratio is denied favourable outcomes it
    deserved more often than it receives undeserved ones.  ``nan`` when
    either group has no false positives.
    """
    c0, c1 = _group_counts(y, y_hat, s)
    r0 = c0.fn / c0.fp if c0.fp else float("nan")
    r1 = c1.fn / c1.fp if c1.fp else float("nan")
    return _safe_diff(r1, r0)


def resilience_to_random_bias(y: np.ndarray, scores: np.ndarray,
                              s: np.ndarray, flip_fraction: float = 0.1,
                              n_trials: int = 20, seed: int = 0) -> float:
    """Resilience to random bias [Fish et al., SDM'16].

    Measures how much a score-thresholded classifier's demographic
    disparity moves when a random ``flip_fraction`` of unprivileged
    rows have their labels flipped to unfavourable before measuring —
    a proxy for how sensitive the decision surface is to label noise
    that targets one group.  Returns the mean absolute CV-gap shift
    over trials; 0 means perfectly resilient.
    """
    y = _as_binary("y", y)
    s = _as_binary("s", s)
    scores = np.asarray(scores, dtype=float)
    if not 0 <= flip_fraction <= 1:
        raise ValueError("flip_fraction must be in [0, 1]")
    y_hat = (scores >= 0.5).astype(int)
    base_gap = cv_score(y_hat, s)
    rng = np.random.default_rng(seed)
    unpriv_idx = np.flatnonzero(s == 0)
    shifts = []
    for _ in range(n_trials):
        flipped = y_hat.copy()
        n_flip = int(round(flip_fraction * unpriv_idx.size))
        if n_flip:
            chosen = rng.choice(unpriv_idx, size=n_flip, replace=False)
            flipped[chosen] = 0
        shifts.append(abs(cv_score(flipped, s) - base_gap))
    return float(np.mean(shifts))


# ----------------------------------------------------------------------
# Score-based (calibration-family) notions
# ----------------------------------------------------------------------
def _check_scores(y: np.ndarray, scores: np.ndarray
                  ) -> tuple[np.ndarray, np.ndarray]:
    y = _as_binary("y", y)
    scores = np.asarray(scores, dtype=float)
    if y.shape != scores.shape:
        raise ValueError("y and scores must align")
    if scores.size and (scores.min() < 0 or scores.max() > 1):
        raise ValueError("scores must lie in [0, 1]")
    return y, scores


def calibration_error(y: np.ndarray, scores: np.ndarray,
                      n_bins: int = 10) -> float:
    """Expected calibration error: bin-weighted |mean score − empirical
    positive rate| over equal-width score bins.  0 = calibrated."""
    y, scores = _check_scores(y, scores)
    if n_bins < 1:
        raise ValueError("n_bins must be at least 1")
    edges = np.linspace(0.0, 1.0, n_bins + 1)
    bins = np.clip(np.digitize(scores, edges[1:-1]), 0, n_bins - 1)
    error = 0.0
    for b in range(n_bins):
        mask = bins == b
        if not mask.any():
            continue
        weight = mask.mean()
        error += weight * abs(scores[mask].mean() - y[mask].mean())
    return float(error)


def calibration_gap(y: np.ndarray, scores: np.ndarray, s: np.ndarray,
                    n_bins: int = 10) -> float:
    """Calibration-within-groups gap [Kleinberg et al.]:
    ECE(S=1) − ECE(S=0).  0 means both groups are equally well
    calibrated (each group may still be miscalibrated in absolute
    terms — pair with :func:`calibration_error`)."""
    s = _as_binary("s", s)
    y = np.asarray(y)
    scores = np.asarray(scores, dtype=float)
    if not (y.shape == scores.shape == s.shape):
        raise ValueError("y, scores, s must align")
    ece0 = calibration_error(y[s == 0], scores[s == 0], n_bins=n_bins)
    ece1 = calibration_error(y[s == 1], scores[s == 1], n_bins=n_bins)
    return _safe_diff(ece1, ece0)


def positive_class_balance(y: np.ndarray, scores: np.ndarray,
                           s: np.ndarray) -> float:
    """Balance for the positive class [Kleinberg et al.]: difference of
    mean scores among truly-positive rows, privileged − unprivileged.
    0 means positive members of both groups get the same average
    score."""
    y, scores = _check_scores(y, scores)
    s = _as_binary("s", s)
    means = []
    for group in (0, 1):
        mask = (s == group) & (y == 1)
        means.append(float(scores[mask].mean()) if mask.any()
                     else float("nan"))
    return _safe_diff(means[1], means[0])


def negative_class_balance(y: np.ndarray, scores: np.ndarray,
                           s: np.ndarray) -> float:
    """Balance for the negative class [Kleinberg et al.]: difference of
    mean scores among truly-negative rows, privileged − unprivileged."""
    y, scores = _check_scores(y, scores)
    s = _as_binary("s", s)
    means = []
    for group in (0, 1):
        mask = (s == group) & (y == 0)
        means.append(float(scores[mask].mean()) if mask.any()
                     else float("nan"))
    return _safe_diff(means[1], means[0])


# ----------------------------------------------------------------------
# Individual-level notions
# ----------------------------------------------------------------------
def consistency_score(X: np.ndarray, y_hat: np.ndarray,
                      n_neighbors: int = 5) -> float:
    """kNN consistency [Zemel et al.]: 1 − mean |ŷᵢ − mean(ŷ of the k
    nearest neighbours of i)| — the operational form of "similar
    individuals are treated similarly" (fairness through awareness with
    Euclidean similarity).  1 is perfectly consistent.
    """
    X = np.asarray(X, dtype=float)
    y_hat = _as_binary("y_hat", y_hat)
    if X.ndim != 2 or X.shape[0] != y_hat.shape[0]:
        raise ValueError("X must be 2-D and align with y_hat")
    n = X.shape[0]
    if n_neighbors < 1:
        raise ValueError("n_neighbors must be at least 1")
    k = min(n_neighbors, n - 1)
    if k == 0:
        return 1.0
    # Pairwise squared distances in blocks to bound memory.
    inconsistency = 0.0
    block = max(1, min(n, 2048))
    sq_norms = np.einsum("ij,ij->i", X, X)
    for start in range(0, n, block):
        stop = min(start + block, n)
        d2 = (sq_norms[start:stop, None] + sq_norms[None, :]
              - 2.0 * X[start:stop] @ X.T)
        rows = np.arange(stop - start)
        d2[rows, np.arange(start, stop)] = np.inf  # exclude self
        neighbor_idx = np.argpartition(d2, k - 1, axis=1)[:, :k]
        neighbor_mean = y_hat[neighbor_idx].mean(axis=1)
        inconsistency += float(
            np.abs(y_hat[start:stop] - neighbor_mean).sum())
    return 1.0 - inconsistency / n


def fairness_through_unawareness(feature_names: list[str],
                                 sensitive: str,
                                 proxies: tuple[str, ...] = ()) -> bool:
    """Does a model satisfy fairness through unawareness [Kusner et
    al.] — i.e. is the sensitive attribute (and any declared proxies)
    absent from its feature set?  Purely syntactic, as the notion is.
    """
    banned = {sensitive, *proxies}
    return not banned.intersection(feature_names)


# ----------------------------------------------------------------------
# Full observational audit
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class GroupFairnessReport:
    """Every observational group metric of Figure 3 for one prediction
    set — a one-call fairness audit.

    Score-based entries are ``nan`` when ``scores`` were not supplied.
    """

    cv_gap: float
    equal_opportunity: float
    predictive_equality: float
    fdr_parity: float
    for_parity: float
    bcr_difference: float
    accuracy_difference: float
    treatment_equality: float
    group_benefit: float
    calibration_gap: float = float("nan")
    positive_balance: float = float("nan")
    negative_balance: float = float("nan")
    values: dict[str, float] = field(default_factory=dict)

    @classmethod
    def from_predictions(cls, y: np.ndarray, y_hat: np.ndarray,
                         s: np.ndarray,
                         scores: np.ndarray | None = None
                         ) -> "GroupFairnessReport":
        kwargs = {
            "cv_gap": cv_score(y_hat, s),
            "equal_opportunity": equal_opportunity_difference(y, y_hat, s),
            "predictive_equality": predictive_equality_difference(
                y, y_hat, s),
            "fdr_parity": false_discovery_rate_parity(y, y_hat, s),
            "for_parity": false_omission_rate_parity(y, y_hat, s),
            "bcr_difference": balanced_classification_rate_difference(
                y, y_hat, s),
            "accuracy_difference": accuracy_equality_difference(y, y_hat, s),
            "treatment_equality": treatment_equality(y, y_hat, s),
            "group_benefit": group_benefit_ratio(y, y_hat, s),
        }
        if scores is not None:
            kwargs["calibration_gap"] = calibration_gap(y, scores, s)
            kwargs["positive_balance"] = positive_class_balance(y, scores, s)
            kwargs["negative_balance"] = negative_class_balance(y, scores, s)
        return cls(**kwargs, values=dict(kwargs))

    def worst(self) -> tuple[str, float]:
        """The metric with the largest absolute violation."""
        finite = {k: v for k, v in self.values.items() if v == v}
        if not finite:
            return ("", float("nan"))
        name = max(finite, key=lambda k: abs(finite[k]))
        return name, finite[name]
