"""Fairness metrics (paper Figure 4): DI, TPRB, TNRB, ID, TE (+NDE/NIE).

Raw metrics keep the paper's native ranges and signs; the
:mod:`repro.metrics.normalize` helpers map them onto the shared
"1 = fair" scale used in all the figures.
"""

from __future__ import annotations

import math
from collections.abc import Callable

import numpy as np

from ..causal.effects import (Effects, interventional_effects,
                              observational_effects)
from .confusion import ConfusionCounts


def _split_groups(s: np.ndarray, *arrays: np.ndarray):
    s = np.asarray(s).astype(int)
    for arr in arrays:
        if np.asarray(arr).shape != s.shape:
            raise ValueError("arrays must align with the sensitive column")
    unprivileged = s == 0
    privileged = s == 1
    if not unprivileged.any() or not privileged.any():
        raise ValueError("both sensitive groups must be present")
    return unprivileged, privileged


def disparate_impact(y_hat: np.ndarray, s: np.ndarray) -> float:
    """``P(ŷ=1 | S=0) / P(ŷ=1 | S=1)`` — demographic parity ratio.

    Range ``[0, ∞)``; 1 is perfectly fair; returns ``inf`` when only
    the unprivileged group receives positives and ``nan`` when neither
    group does.
    """
    unpriv, priv = _split_groups(s, y_hat)
    y_hat = np.asarray(y_hat).astype(int)
    p0 = float(np.mean(y_hat[unpriv]))
    p1 = float(np.mean(y_hat[priv]))
    if p1 == 0:
        return float("nan") if p0 == 0 else float("inf")
    return p0 / p1


def true_positive_rate_balance(y: np.ndarray, y_hat: np.ndarray,
                               s: np.ndarray) -> float:
    """``TPR(S=1) − TPR(S=0)`` (one half of equalized odds).

    Positive values mean the unprivileged group is misclassified more.
    """
    unpriv, priv = _split_groups(s, y, y_hat)
    y = np.asarray(y).astype(int)
    y_hat = np.asarray(y_hat).astype(int)
    c1 = ConfusionCounts.from_predictions(y[priv], y_hat[priv])
    c0 = ConfusionCounts.from_predictions(y[unpriv], y_hat[unpriv])
    return c1.tpr - c0.tpr


def true_negative_rate_balance(y: np.ndarray, y_hat: np.ndarray,
                               s: np.ndarray) -> float:
    """``TNR(S=1) − TNR(S=0)`` (the other half of equalized odds)."""
    unpriv, priv = _split_groups(s, y, y_hat)
    y = np.asarray(y).astype(int)
    y_hat = np.asarray(y_hat).astype(int)
    c1 = ConfusionCounts.from_predictions(y[priv], y_hat[priv])
    c0 = ConfusionCounts.from_predictions(y[unpriv], y_hat[unpriv])
    return c1.tnr - c0.tnr


def id_sample_size(confidence: float = 0.99, error_bound: float = 0.01) -> int:
    """Hoeffding bound on rows needed so the empirical ID estimate is
    within ``error_bound`` of truth with the given confidence.

    The paper uses 99% confidence with a 1% error bound.
    """
    if not 0 < confidence < 1 or not 0 < error_bound < 1:
        raise ValueError("confidence and error_bound must lie in (0, 1)")
    delta = 1 - confidence
    return math.ceil(math.log(2.0 / delta) / (2 * error_bound ** 2))


def individual_discrimination(
        predict: Callable[[np.ndarray, np.ndarray], np.ndarray],
        X: np.ndarray, s: np.ndarray,
        confidence: float = 0.99, error_bound: float = 0.01,
        seed: int = 0) -> float:
    """Fraction of rows whose prediction flips when ``S`` is flipped.

    ``predict`` takes ``(X, s)`` and returns hard predictions; the
    metric re-evaluates it with the sensitive column inverted on
    otherwise identical rows (the paper's causal-discrimination test of
    Galhotra et al.).  When the dataset exceeds the Hoeffding sample
    bound for the requested confidence/error, a random subset of that
    size is used — the paper's 99%/1% setting needs ~26.5K rows.
    """
    X = np.asarray(X, dtype=float)
    s = np.asarray(s).astype(int)
    if X.shape[0] != s.shape[0]:
        raise ValueError("X and s must align")
    needed = id_sample_size(confidence, error_bound)
    if X.shape[0] > needed:
        rng = np.random.default_rng(seed)
        idx = rng.choice(X.shape[0], size=needed, replace=False)
        X, s = X[idx], s[idx]
    original = np.asarray(predict(X, s)).astype(int)
    flipped = np.asarray(predict(X, 1 - s)).astype(int)
    return float(np.mean(original != flipped))


def causal_effects_of_predictions(dataset, y_hat: np.ndarray,
                                  predict=None, n_samples: int = 20000,
                                  seed: int = 0) -> Effects:
    """TE/NDE/NIE of the sensitive attribute on a classifier's output.

    When the dataset carries its generating SCM *and* a ``predict``
    callable is supplied, effects are computed by true intervention:
    counterfactual populations are sampled from the SCM and labelled by
    the classifier (the paper's DoWhy protocol).  Otherwise the
    observational mediation formulas are applied to the evaluated rows
    and their predictions.

    Parameters
    ----------
    dataset:
        A :class:`~repro.datasets.dataset.Dataset` (its graph/SCM and
        schema name the source and outcome).
    y_hat:
        Predictions aligned with ``dataset`` rows (observational path).
    predict:
        Optional ``predict(columns: dict[str, ndarray]) -> ndarray``
        over raw SCM samples (interventional path).
    """
    if dataset.scm is not None and predict is not None:
        return interventional_effects(
            dataset.scm, dataset.sensitive, dataset.label,
            n=n_samples, rng=np.random.default_rng(seed), predict=predict)
    if dataset.causal_graph is None:
        raise ValueError("dataset has no causal graph; cannot compute "
                         "causal metrics")
    columns = {name: dataset.table[name]
               for name in (*dataset.feature_names, dataset.sensitive,
                            dataset.label)}
    return observational_effects(
        columns, dataset.causal_graph, dataset.sensitive, dataset.label,
        outcome_values=np.asarray(y_hat))


def total_effect(dataset, y_hat: np.ndarray, predict=None,
                 n_samples: int = 20000, seed: int = 0) -> float:
    """Convenience wrapper returning only TE (paper Figure 4, row 5)."""
    return causal_effects_of_predictions(
        dataset, y_hat, predict=predict, n_samples=n_samples, seed=seed).te
