"""Brute-force k-nearest-neighbours classification.

The paper pairs pre-/post-processing approaches with a 33-NN classifier
(Appendix F).  Neighbour search runs on the shared block-matmul top-k
kernel (:mod:`repro.metrics.pairwise`), so memory stays bounded on the
larger scalability sweeps and the model shares one tuned code path
with the individual-fairness metrics and the k-NN imputer.
"""

from __future__ import annotations

import numpy as np

from ..metrics import pairwise
from .base import Classifier, check_weights, check_Xy


class KNearestNeighbors(Classifier):
    """k-NN with Euclidean distance and (optionally weighted) voting.

    Parameters
    ----------
    k:
        Number of neighbours (paper default: 33).
    block_size:
        Query rows per kernel block (``None`` = the kernel default,
        which the sweep engine can override per job).
    """

    def __init__(self, k: int = 33, block_size: int | None = None):
        if k < 1:
            raise ValueError("k must be at least 1")
        if block_size is not None and block_size < 1:
            raise ValueError(
                f"block_size must be at least 1, got {block_size}")
        self.k = k
        self.block_size = block_size
        self.X_: np.ndarray | None = None
        self.y_: np.ndarray | None = None
        self.w_: np.ndarray | None = None
        self.ref_: pairwise.PreparedReference | None = None

    def fit(self, X: np.ndarray, y: np.ndarray,
            sample_weight: np.ndarray | None = None) -> "KNearestNeighbors":
        X, y = check_Xy(X, y)
        self.X_ = X
        self.y_ = y
        self.w_ = check_weights(sample_weight, len(y))
        # Train-side kernel operands never change between predict
        # calls; prepare them once.
        self.ref_ = pairwise.prepare_reference(X)
        return self

    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        if self.X_ is None:
            raise RuntimeError("model not fitted")
        X, _ = check_Xy(X)
        neighbours, _ = pairwise.topk(X, self.ref_, self.k,
                                      block_size=self.block_size)
        votes = self.w_[neighbours]
        positive = votes * (self.y_[neighbours] == 1)
        return positive.sum(axis=1) / votes.sum(axis=1)
