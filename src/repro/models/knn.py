"""Brute-force k-nearest-neighbours classification.

The paper pairs pre-/post-processing approaches with a 33-NN classifier
(Appendix F).  Distances are computed in chunks so memory stays bounded
on the larger scalability sweeps.
"""

from __future__ import annotations

import numpy as np

from .base import Classifier, check_weights, check_Xy


class KNearestNeighbors(Classifier):
    """k-NN with Euclidean distance and (optionally weighted) voting.

    Parameters
    ----------
    k:
        Number of neighbours (paper default: 33).
    chunk_size:
        Rows of the query matrix processed per distance block.
    """

    def __init__(self, k: int = 33, chunk_size: int = 512):
        if k < 1:
            raise ValueError("k must be at least 1")
        self.k = k
        self.chunk_size = chunk_size
        self.X_: np.ndarray | None = None
        self.y_: np.ndarray | None = None
        self.w_: np.ndarray | None = None
        self._train_sq: np.ndarray | None = None

    def fit(self, X: np.ndarray, y: np.ndarray,
            sample_weight: np.ndarray | None = None) -> "KNearestNeighbors":
        X, y = check_Xy(X, y)
        self.X_ = X
        self.y_ = y
        self.w_ = check_weights(sample_weight, len(y))
        # Train-side squared norms never change between predict calls.
        self._train_sq = np.einsum("ij,ij->i", X, X)
        return self

    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        if self.X_ is None:
            raise RuntimeError("model not fitted")
        X, _ = check_Xy(X)
        k = min(self.k, self.X_.shape[0])
        out = np.empty(X.shape[0])
        for start in range(0, X.shape[0], self.chunk_size):
            block = X[start:start + self.chunk_size]
            # Squared Euclidean distance via the expansion trick;
            # argpartition keeps neighbour selection O(n) per row
            # instead of a full sort.
            d2 = (np.einsum("ij,ij->i", block, block)[:, None]
                  - 2 * block @ self.X_.T + self._train_sq[None, :])
            neighbours = np.argpartition(d2, k - 1, axis=1)[:, :k]
            votes = self.w_[neighbours]
            positive = votes * (self.y_[neighbours] == 1)
            total = votes.sum(axis=1)
            out[start:start + block.shape[0]] = positive.sum(axis=1) / total
        return out
