"""Probability calibration: Platt scaling, isotonic regression, and
calibration diagnostics.

The Pleiss post-processor assumes the underlying classifier is
*calibrated*: its predicted probability for a class matches the
empirical frequency of that class.  The repository's from-scratch
models (especially the SVM and random forest) are not calibrated out of
the box, so this module supplies the two standard re-calibration maps —

* **Platt scaling** — fit a one-dimensional logistic regression on the
  model's scores (parametric, monotone, works well for margin-based
  models);
* **isotonic regression** — the pool-adjacent-violators (PAV)
  algorithm, a non-parametric monotone fit (needs more data, but makes
  no shape assumption);

— plus the diagnostics used to judge them: the Brier score, expected
calibration error (ECE), and reliability curves.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .base import Classifier, check_Xy, sigmoid

__all__ = [
    "PlattScaler",
    "IsotonicRegression",
    "CalibratedClassifier",
    "brier_score",
    "expected_calibration_error",
    "reliability_curve",
    "ReliabilityCurve",
]


def _check_scores_labels(scores: np.ndarray, y: np.ndarray
                         ) -> tuple[np.ndarray, np.ndarray]:
    scores = np.asarray(scores, dtype=float)
    y = np.asarray(y)
    if scores.ndim != 1 or scores.shape != y.shape:
        raise ValueError("scores and y must be aligned 1-D arrays")
    if not np.all(np.isin(np.unique(y), (0, 1))):
        raise ValueError("y must be binary 0/1")
    return scores, y.astype(float)


class PlattScaler:
    """Platt's sigmoid calibration map ``p = σ(a·score + b)``.

    Fitted by Newton's method on the log-loss with the label smoothing
    Platt recommends (targets ``(n₊+1)/(n₊+2)`` and ``1/(n₋+2)``), which
    regularises the map when one class is rare.
    """

    def __init__(self, max_iter: int = 100, tol: float = 1e-10):
        self.max_iter = max_iter
        self.tol = tol
        self.a_: float | None = None
        self.b_: float | None = None

    def fit(self, scores: np.ndarray, y: np.ndarray) -> "PlattScaler":
        scores, y = _check_scores_labels(scores, y)
        n_pos = float(y.sum())
        n_neg = float(y.size - n_pos)
        target = np.where(y == 1, (n_pos + 1) / (n_pos + 2),
                          1.0 / (n_neg + 2))
        a, b = 0.0, float(np.log((n_neg + 1) / (n_pos + 1)))
        for _ in range(self.max_iter):
            p = sigmoid(a * scores + b)
            grad_a = float(np.sum((p - target) * scores))
            grad_b = float(np.sum(p - target))
            w = np.maximum(p * (1 - p), 1e-12)
            h_aa = float(np.sum(w * scores * scores)) + 1e-12
            h_ab = float(np.sum(w * scores))
            h_bb = float(np.sum(w)) + 1e-12
            det = h_aa * h_bb - h_ab * h_ab
            if abs(det) < 1e-18:
                break
            da = (h_bb * grad_a - h_ab * grad_b) / det
            db = (h_aa * grad_b - h_ab * grad_a) / det
            a, b = a - da, b - db
            if max(abs(da), abs(db)) < self.tol:
                break
        self.a_, self.b_ = a, b
        return self

    def transform(self, scores: np.ndarray) -> np.ndarray:
        """Map raw scores to calibrated probabilities."""
        if self.a_ is None:
            raise RuntimeError("PlattScaler is not fitted")
        return sigmoid(self.a_ * np.asarray(scores, dtype=float) + self.b_)


class IsotonicRegression:
    """Monotone non-parametric calibration via pool-adjacent-violators.

    Fits the monotonically non-decreasing step function minimising the
    squared error to the labels; prediction interpolates linearly
    between the fitted knots and clips outside the training range.
    """

    def __init__(self):
        self.x_: np.ndarray | None = None
        self.y_: np.ndarray | None = None

    def fit(self, scores: np.ndarray, y: np.ndarray) -> "IsotonicRegression":
        scores, y = _check_scores_labels(scores, y)
        order = np.argsort(scores, kind="stable")
        x = scores[order]
        target = y[order]

        # PAV with block merging: each block keeps (weighted mean, weight).
        means: list[float] = []
        weights: list[float] = []
        starts: list[int] = []
        for i, value in enumerate(target):
            means.append(float(value))
            weights.append(1.0)
            starts.append(i)
            while len(means) > 1 and means[-2] > means[-1]:
                w = weights[-2] + weights[-1]
                m = (means[-2] * weights[-2] + means[-1] * weights[-1]) / w
                means.pop()
                weights.pop()
                starts.pop()
                means[-1] = m
                weights[-1] = w
        fitted = np.empty_like(target)
        bounds = starts + [len(target)]
        for m, lo, hi in zip(means, bounds[:-1], bounds[1:]):
            fitted[lo:hi] = m
        # Collapse duplicate x for interpolation stability.
        self.x_, idx = np.unique(x, return_index=True)
        self.y_ = fitted[idx]
        return self

    def transform(self, scores: np.ndarray) -> np.ndarray:
        """Map raw scores to calibrated probabilities."""
        if self.x_ is None:
            raise RuntimeError("IsotonicRegression is not fitted")
        return np.clip(
            np.interp(np.asarray(scores, dtype=float), self.x_, self.y_),
            0.0, 1.0)


class CalibratedClassifier(Classifier):
    """Wrap a base classifier with a held-out calibration map.

    Parameters
    ----------
    base:
        Any :class:`~repro.models.base.Classifier`; its
        ``predict_proba`` output is the score being recalibrated.
    method:
        ``"platt"`` or ``"isotonic"``.
    holdout_fraction:
        Fraction of the training data reserved for fitting the
        calibration map (the base model trains on the rest).
    seed:
        Randomness for the holdout split.
    """

    def __init__(self, base: Classifier, method: str = "platt",
                 holdout_fraction: float = 0.25, seed: int = 0):
        if method not in ("platt", "isotonic"):
            raise ValueError(f"unknown method {method!r}")
        if not 0.0 < holdout_fraction < 1.0:
            raise ValueError("holdout_fraction must be in (0, 1)")
        self.base = base
        self.method = method
        self.holdout_fraction = holdout_fraction
        self.seed = seed
        self.calibrator_ = None

    def fit(self, X: np.ndarray, y: np.ndarray,
            sample_weight: np.ndarray | None = None
            ) -> "CalibratedClassifier":
        X, y = check_Xy(X, y)
        rng = np.random.default_rng(self.seed)
        perm = rng.permutation(X.shape[0])
        n_cal = max(int(round(X.shape[0] * self.holdout_fraction)), 2)
        cal_idx, fit_idx = perm[:n_cal], perm[n_cal:]
        if fit_idx.size < 2 or len(np.unique(y[fit_idx])) < 2:
            raise ValueError("not enough data to split off a calibration set")
        weight = None if sample_weight is None else \
            np.asarray(sample_weight)[fit_idx]
        self.base.fit(X[fit_idx], y[fit_idx], sample_weight=weight)
        scores = self.base.predict_proba(X[cal_idx])
        maker = PlattScaler if self.method == "platt" else IsotonicRegression
        self.calibrator_ = maker().fit(scores, y[cal_idx])
        return self

    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        if self.calibrator_ is None:
            raise RuntimeError("CalibratedClassifier is not fitted")
        return self.calibrator_.transform(self.base.predict_proba(X))

    def reset(self) -> None:
        self.calibrator_ = None
        self.base.reset()


# ----------------------------------------------------------------------
# Diagnostics
# ----------------------------------------------------------------------
def brier_score(y: np.ndarray, probs: np.ndarray) -> float:
    """Mean squared error of probabilities against binary outcomes.

    Lower is better; 0.25 is the score of a constant 0.5 prediction.
    """
    probs, y = _check_scores_labels(probs, y)
    return float(np.mean((probs - y) ** 2))


@dataclass(frozen=True)
class ReliabilityCurve:
    """Binned calibration profile.

    Attributes
    ----------
    bin_centers:
        Midpoint of each probability bin with at least one sample.
    mean_predicted:
        Average predicted probability per bin.
    fraction_positive:
        Empirical positive rate per bin (equal to ``mean_predicted``
        everywhere for a perfectly calibrated model).
    counts:
        Samples per bin.
    """

    bin_centers: np.ndarray
    mean_predicted: np.ndarray
    fraction_positive: np.ndarray
    counts: np.ndarray


def reliability_curve(y: np.ndarray, probs: np.ndarray,
                      n_bins: int = 10) -> ReliabilityCurve:
    """Bin predictions into equal-width probability bins."""
    probs, y = _check_scores_labels(probs, y)
    if n_bins < 1:
        raise ValueError("n_bins must be at least 1")
    edges = np.linspace(0.0, 1.0, n_bins + 1)
    idx = np.clip(np.digitize(probs, edges[1:-1]), 0, n_bins - 1)
    centers, mean_pred, frac_pos, counts = [], [], [], []
    for b in range(n_bins):
        mask = idx == b
        if not np.any(mask):
            continue
        centers.append((edges[b] + edges[b + 1]) / 2)
        mean_pred.append(float(np.mean(probs[mask])))
        frac_pos.append(float(np.mean(y[mask])))
        counts.append(int(mask.sum()))
    return ReliabilityCurve(
        bin_centers=np.asarray(centers),
        mean_predicted=np.asarray(mean_pred),
        fraction_positive=np.asarray(frac_pos),
        counts=np.asarray(counts),
    )


def expected_calibration_error(y: np.ndarray, probs: np.ndarray,
                               n_bins: int = 10) -> float:
    """Count-weighted mean |confidence − accuracy| over probability bins."""
    curve = reliability_curve(y, probs, n_bins=n_bins)
    weights = curve.counts / curve.counts.sum()
    return float(np.sum(
        weights * np.abs(curve.mean_predicted - curve.fraction_positive)))
