"""L2-regularised logistic regression trained by Newton's method (IRLS).

This is the fairness-unaware baseline classifier of the paper
(Section 4.1) and the default downstream model for the pre- and
post-processing approaches.
"""

from __future__ import annotations

import numpy as np

from .base import Classifier, add_intercept, check_weights, check_Xy, sigmoid


class LogisticRegression(Classifier):
    """Binary logistic regression with an L2 penalty.

    Parameters
    ----------
    l2:
        Strength of the L2 penalty on the weights (the intercept is not
        penalised).
    max_iter:
        Maximum Newton iterations.
    tol:
        Convergence threshold on the max absolute parameter update.
    """

    def __init__(self, l2: float = 1.0, max_iter: int = 100,
                 tol: float = 1e-6):
        if l2 < 0:
            raise ValueError("l2 must be non-negative")
        self.l2 = l2
        self.max_iter = max_iter
        self.tol = tol
        self.coef_: np.ndarray | None = None
        self.intercept_: float | None = None
        self.n_iter_: int | None = None

    def fit(self, X: np.ndarray, y: np.ndarray,
            sample_weight: np.ndarray | None = None) -> "LogisticRegression":
        X, y = check_Xy(X, y)
        n, d = X.shape
        w = check_weights(sample_weight, n) * n  # keep the loss O(1)-scaled
        Xb = add_intercept(X)
        theta = np.zeros(d + 1)
        penalty = np.full(d + 1, self.l2)
        penalty[-1] = 0.0  # do not shrink the intercept

        self.n_iter_ = 0
        for _ in range(self.max_iter):
            self.n_iter_ += 1
            p = sigmoid(Xb @ theta)
            grad = Xb.T @ (w * (p - y)) / n + penalty * theta / n
            r = np.clip(w * p * (1 - p), 1e-10, None)
            hess = (Xb * r[:, None]).T @ Xb / n + np.diag(penalty) / n
            try:
                step = np.linalg.solve(hess, grad)
            except np.linalg.LinAlgError:
                step = np.linalg.lstsq(hess, grad, rcond=None)[0]
            theta -= step
            if np.max(np.abs(step)) < self.tol:
                break
        self.coef_ = theta[:-1]
        self.intercept_ = float(theta[-1])
        return self

    def decision_function(self, X: np.ndarray) -> np.ndarray:
        """Signed distance proxy: the pre-sigmoid logit per row."""
        if self.coef_ is None:
            raise RuntimeError("model not fitted")
        X, _ = check_Xy(X)
        return X @ self.coef_ + self.intercept_

    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        return sigmoid(self.decision_function(X))
