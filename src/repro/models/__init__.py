"""From-scratch ML model substrate (the scikit-learn substitute)."""

from .base import Classifier, add_intercept, check_weights, check_Xy, sigmoid
from .boosting import GradientBoosting
from .calibration import (CalibratedClassifier, IsotonicRegression,
                          PlattScaler, ReliabilityCurve, brier_score,
                          expected_calibration_error, reliability_curve)
from .forest import RandomForest
from .knn import KNearestNeighbors
from .logistic import LogisticRegression
from .mlp import MLPClassifier
from .naive_bayes import GaussianNB
from .selection import (GridSearch, GridSearchResult, ParameterGrid,
                        cross_val_score, kfold_indices)
from .svm import KernelSVM, LinearSVM, RBFSampler
from .tree import DecisionTree

MODEL_FAMILIES = {
    "lr": LogisticRegression,
    "svm": KernelSVM,
    "knn": KNearestNeighbors,
    "rf": RandomForest,
    "mlp": MLPClassifier,
    "nb": GaussianNB,
    "gb": GradientBoosting,
}


def make_model(name: str, **kwargs) -> Classifier:
    """Instantiate a model family by its short name (``lr``/``svm``/...).

    These are the five downstream models of the paper's Section 4.5
    sensitivity experiment (plus naive Bayes as an extra).
    """
    if name not in MODEL_FAMILIES:
        raise KeyError(f"unknown model {name!r}; choose from {sorted(MODEL_FAMILIES)}")
    return MODEL_FAMILIES[name](**kwargs)


__all__ = [
    "Classifier", "sigmoid", "add_intercept", "check_Xy", "check_weights",
    "LogisticRegression", "LinearSVM", "KernelSVM", "RBFSampler",
    "KNearestNeighbors", "DecisionTree", "RandomForest", "MLPClassifier",
    "GaussianNB", "GradientBoosting", "MODEL_FAMILIES", "make_model",
    "PlattScaler", "IsotonicRegression", "CalibratedClassifier",
    "brier_score", "expected_calibration_error", "reliability_curve",
    "ReliabilityCurve",
    "kfold_indices", "cross_val_score", "ParameterGrid", "GridSearch",
    "GridSearchResult",
]
