"""A one-hidden-layer multilayer perceptron trained with Adam.

Matches the paper's MLP configuration (Appendix F): one hidden layer of
20 neurons, L2 regularisation (alpha = 0.01), sigmoid output.  The
hidden activation is tanh; training minimises weighted cross-entropy.
"""

from __future__ import annotations

import numpy as np

from .base import Classifier, check_weights, check_Xy, sigmoid


class MLPClassifier(Classifier):
    """Binary MLP: ``X → tanh(hidden) → sigmoid``.

    Parameters
    ----------
    hidden:
        Hidden layer width (paper default 20).
    l2:
        Weight decay strength (paper default 0.01).
    epochs:
        Training epochs.
    batch_size:
        Mini-batch size for Adam.
    learning_rate:
        Adam step size.
    seed:
        Initialisation and shuffling seed.
    """

    def __init__(self, hidden: int = 20, l2: float = 0.01, epochs: int = 50,
                 batch_size: int = 64, learning_rate: float = 1e-2,
                 seed: int = 0):
        if hidden < 1:
            raise ValueError("hidden must be at least 1")
        self.hidden = hidden
        self.l2 = l2
        self.epochs = epochs
        self.batch_size = batch_size
        self.learning_rate = learning_rate
        self.seed = seed
        self.params_: dict[str, np.ndarray] | None = None

    # ------------------------------------------------------------------
    def _forward(self, X: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        p = self.params_
        h = np.tanh(X @ p["W1"] + p["b1"])
        out = sigmoid(h @ p["W2"] + p["b2"])
        return h, out

    def fit(self, X: np.ndarray, y: np.ndarray,
            sample_weight: np.ndarray | None = None) -> "MLPClassifier":
        X, y = check_Xy(X, y)
        n, d = X.shape
        w = check_weights(sample_weight, n) * n
        rng = np.random.default_rng(self.seed)
        scale1 = np.sqrt(2.0 / max(d, 1))
        scale2 = np.sqrt(2.0 / self.hidden)
        self.params_ = {
            "W1": rng.normal(0, scale1, size=(d, self.hidden)),
            "b1": np.zeros(self.hidden),
            "W2": rng.normal(0, scale2, size=(self.hidden, 1)),
            "b2": np.zeros(1),
        }
        m = {k: np.zeros_like(v) for k, v in self.params_.items()}
        v = {k: np.zeros_like(val) for k, val in self.params_.items()}
        beta1, beta2, eps = 0.9, 0.999, 1e-8
        t = 0
        y_col = y.astype(float)[:, None]
        w_col = w[:, None]

        for _ in range(self.epochs):
            order = rng.permutation(n)
            for start in range(0, n, self.batch_size):
                t += 1
                idx = order[start:start + self.batch_size]
                xb, yb, wb = X[idx], y_col[idx], w_col[idx]
                h = np.tanh(xb @ self.params_["W1"] + self.params_["b1"])
                out = sigmoid(h @ self.params_["W2"] + self.params_["b2"])
                # Gradient of weighted cross-entropy wrt pre-sigmoid.
                delta_out = wb * (out - yb) / len(idx)
                grads = {
                    "W2": h.T @ delta_out + self.l2 * self.params_["W2"] / n,
                    "b2": delta_out.sum(axis=0),
                }
                delta_h = (delta_out @ self.params_["W2"].T) * (1 - h ** 2)
                grads["W1"] = xb.T @ delta_h + self.l2 * self.params_["W1"] / n
                grads["b1"] = delta_h.sum(axis=0)
                for key, grad in grads.items():
                    m[key] = beta1 * m[key] + (1 - beta1) * grad
                    v[key] = beta2 * v[key] + (1 - beta2) * grad ** 2
                    m_hat = m[key] / (1 - beta1 ** t)
                    v_hat = v[key] / (1 - beta2 ** t)
                    self.params_[key] -= (self.learning_rate * m_hat
                                          / (np.sqrt(v_hat) + eps))
        return self

    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        if self.params_ is None:
            raise RuntimeError("model not fitted")
        X, _ = check_Xy(X)
        _, out = self._forward(X)
        return out.ravel()

    def decision_function(self, X: np.ndarray) -> np.ndarray:
        """Pre-sigmoid logit of the output unit."""
        if self.params_ is None:
            raise RuntimeError("model not fitted")
        X, _ = check_Xy(X)
        h = np.tanh(X @ self.params_["W1"] + self.params_["b1"])
        return (h @ self.params_["W2"] + self.params_["b2"]).ravel()
