"""Support vector machines: linear (Pegasos-style SGD on the hinge
loss) and RBF-kernel via random Fourier features.

The paper pairs pre-/post-processing approaches with scikit-learn's
``SVC(kernel="rbf")``.  An exact kernel SVM is quadratic in the number
of rows; we instead use the standard Rahimi–Recht random-Fourier-
feature approximation of the RBF kernel followed by a linear SVM, which
preserves the decision-surface family while scaling linearly — the
property the paper's efficiency experiments measure.
"""

from __future__ import annotations

import numpy as np

from .base import Classifier, check_weights, check_Xy, sigmoid


class LinearSVM(Classifier):
    """Linear SVM trained by Pegasos (SGD with 1/(λt) step size).

    Parameters
    ----------
    l2:
        Regularisation strength λ of the primal objective.
    epochs:
        Passes over the training data.
    seed:
        Sampling order seed.
    """

    def __init__(self, l2: float = 1e-3, epochs: int = 20, seed: int = 0):
        if l2 <= 0:
            raise ValueError("l2 must be positive")
        self.l2 = l2
        self.epochs = epochs
        self.seed = seed
        self.coef_: np.ndarray | None = None
        self.intercept_: float | None = None
        self._platt: tuple[float, float] | None = None

    def fit(self, X: np.ndarray, y: np.ndarray,
            sample_weight: np.ndarray | None = None) -> "LinearSVM":
        X, y = check_Xy(X, y)
        n, d = X.shape
        weights = check_weights(sample_weight, n) * n
        labels = 2 * y - 1  # hinge loss wants ±1
        rng = np.random.default_rng(self.seed)

        w = np.zeros(d)
        b = 0.0
        t = 0
        batch = max(1, min(64, n // 4))
        for _ in range(self.epochs):
            order = rng.permutation(n)
            for start in range(0, n, batch):
                t += 1
                idx = order[start:start + batch]
                eta = 1.0 / (self.l2 * t)
                margin = (X[idx] @ w + b) * labels[idx]
                active = margin < 1
                w *= 1 - eta * self.l2
                if np.any(active):
                    rows = idx[active]
                    coeff = weights[rows] * labels[rows]
                    w += eta / len(idx) * (coeff[:, None] * X[rows]).sum(axis=0)
                    b += eta / len(idx) * coeff.sum()
        self.coef_ = w
        self.intercept_ = float(b)
        # Platt scaling: fit P(y=1 | margin) = sigmoid(a·margin + c) by
        # a few Newton steps, so predict_proba is properly calibrated.
        margins = X @ w + b
        a, c = 1.0, 0.0
        for _ in range(25):
            p = sigmoid(a * margins + c)
            grad_a = float(np.mean((p - y) * margins))
            grad_c = float(np.mean(p - y))
            r = np.clip(p * (1 - p), 1e-6, None)
            h_aa = float(np.mean(r * margins * margins)) + 1e-9
            h_cc = float(np.mean(r)) + 1e-9
            h_ac = float(np.mean(r * margins))
            det = h_aa * h_cc - h_ac * h_ac
            if abs(det) < 1e-12:
                break
            step_a = (h_cc * grad_a - h_ac * grad_c) / det
            step_c = (h_aa * grad_c - h_ac * grad_a) / det
            a -= step_a
            c -= step_c
            if max(abs(step_a), abs(step_c)) < 1e-8:
                break
        self._platt = (a, c)
        return self

    def decision_function(self, X: np.ndarray) -> np.ndarray:
        if self.coef_ is None:
            raise RuntimeError("model not fitted")
        X, _ = check_Xy(X)
        return X @ self.coef_ + self.intercept_

    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        a, c = self._platt if self._platt else (1.0, 0.0)
        return sigmoid(a * self.decision_function(X) + c)

    def predict(self, X: np.ndarray) -> np.ndarray:
        return (self.decision_function(X) >= 0).astype(int)


class RBFSampler:
    """Random Fourier features approximating an RBF kernel (Rahimi–Recht)."""

    def __init__(self, gamma: float = 0.5, n_components: int = 100,
                 seed: int = 0):
        if gamma <= 0:
            raise ValueError("gamma must be positive")
        self.gamma = gamma
        self.n_components = n_components
        self.seed = seed
        self.weights_: np.ndarray | None = None
        self.offsets_: np.ndarray | None = None

    def fit(self, X: np.ndarray) -> "RBFSampler":
        X, _ = check_Xy(X)
        rng = np.random.default_rng(self.seed)
        d = X.shape[1]
        self.weights_ = rng.normal(
            0.0, np.sqrt(2 * self.gamma), size=(d, self.n_components))
        self.offsets_ = rng.uniform(0, 2 * np.pi, size=self.n_components)
        return self

    def transform(self, X: np.ndarray) -> np.ndarray:
        if self.weights_ is None:
            raise RuntimeError("sampler not fitted")
        X, _ = check_Xy(X)
        projection = X @ self.weights_ + self.offsets_
        return np.sqrt(2.0 / self.n_components) * np.cos(projection)


class KernelSVM(Classifier):
    """RBF-kernel SVM via random Fourier features + linear SVM.

    ``gamma="scale"`` matches scikit-learn's scaled gamma heuristic
    (1 / (d · var(X))), the setting the paper uses (Appendix F).
    """

    def __init__(self, gamma: float | str = "scale",
                 n_components: int = 200, l2: float = 1e-3,
                 epochs: int = 20, seed: int = 0):
        self.gamma = gamma
        self.n_components = n_components
        self.l2 = l2
        self.epochs = epochs
        self.seed = seed
        self.sampler_: RBFSampler | None = None
        self.linear_: LinearSVM | None = None

    def _resolve_gamma(self, X: np.ndarray) -> float:
        if self.gamma == "scale":
            var = X.var()
            return 1.0 / (X.shape[1] * var) if var > 0 else 1.0
        return float(self.gamma)

    def fit(self, X: np.ndarray, y: np.ndarray,
            sample_weight: np.ndarray | None = None) -> "KernelSVM":
        X, y = check_Xy(X, y)
        self.sampler_ = RBFSampler(self._resolve_gamma(X),
                                   self.n_components, self.seed).fit(X)
        features = self.sampler_.transform(X)
        self.linear_ = LinearSVM(self.l2, self.epochs, self.seed)
        self.linear_.fit(features, y, sample_weight)
        return self

    def decision_function(self, X: np.ndarray) -> np.ndarray:
        if self.sampler_ is None or self.linear_ is None:
            raise RuntimeError("model not fitted")
        return self.linear_.decision_function(self.sampler_.transform(X))

    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        if self.sampler_ is None or self.linear_ is None:
            raise RuntimeError("model not fitted")
        return self.linear_.predict_proba(self.sampler_.transform(X))

    def predict(self, X: np.ndarray) -> np.ndarray:
        return (self.decision_function(X) >= 0).astype(int)
