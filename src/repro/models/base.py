"""Common interface for the from-scratch classifiers.

Every model implements the scikit-learn-like trio ``fit`` /
``predict`` / ``predict_proba`` on dense numpy arrays, plus
``decision_function`` where a margin is meaningful.  ``predict_proba``
returns the probability of the *positive* class as a 1-D array (the
fairness post-processors rely on it for confidence-based adjustment).
"""

from __future__ import annotations

import abc

import numpy as np


def check_Xy(X: np.ndarray, y: np.ndarray | None = None
             ) -> tuple[np.ndarray, np.ndarray | None]:
    """Validate and coerce a feature matrix (and optional label vector)."""
    X = np.asarray(X, dtype=float)
    if X.ndim != 2:
        raise ValueError(f"X must be 2-D, got shape {X.shape}")
    if not np.all(np.isfinite(X)):
        raise ValueError("X contains NaN or infinite values")
    if y is None:
        return X, None
    y = np.asarray(y)
    if y.shape != (X.shape[0],):
        raise ValueError(f"y shape {y.shape} does not match X rows {X.shape[0]}")
    uniques = np.unique(y)
    if not np.all(np.isin(uniques, (0, 1))):
        raise ValueError(f"y must be binary 0/1, got values {uniques}")
    return X, y.astype(int)


def check_weights(sample_weight: np.ndarray | None, n: int) -> np.ndarray:
    """Return normalised per-row weights (uniform when none given)."""
    if sample_weight is None:
        return np.full(n, 1.0 / n)
    w = np.asarray(sample_weight, dtype=float)
    if w.shape != (n,):
        raise ValueError(f"sample_weight shape {w.shape}, expected ({n},)")
    if np.any(w < 0):
        raise ValueError("sample_weight must be non-negative")
    total = w.sum()
    if total <= 0:
        raise ValueError("sample_weight must not be all zero")
    return w / total


class Classifier(abc.ABC):
    """Abstract binary classifier over dense float feature matrices."""

    @abc.abstractmethod
    def fit(self, X: np.ndarray, y: np.ndarray,
            sample_weight: np.ndarray | None = None) -> "Classifier":
        """Train on features ``X`` and binary labels ``y``."""

    @abc.abstractmethod
    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        """Probability of the positive class per row."""

    def predict(self, X: np.ndarray) -> np.ndarray:
        """Hard 0/1 predictions (threshold 0.5 on ``predict_proba``)."""
        return (self.predict_proba(X) >= 0.5).astype(int)

    def score(self, X: np.ndarray, y: np.ndarray) -> float:
        """Plain accuracy on a labelled set."""
        X, y = check_Xy(X, y)
        return float(np.mean(self.predict(X) == y))

    def clone(self) -> "Classifier":
        """A fresh, unfitted copy with the same hyper-parameters."""
        import copy

        new = copy.deepcopy(self)
        new.reset()
        return new

    def reset(self) -> None:
        """Drop fitted state.  Subclasses with caches should override."""
        for name in list(vars(self)):
            if name.endswith("_") and not name.endswith("__"):
                setattr(self, name, None)

    # ------------------------------------------------------------------
    # Serialization (the artifact-bundle state protocol; see
    # repro.registry.extract_state).  Models keep hyper-parameters and
    # fitted ``*_`` attributes in plain instance attributes, so the
    # whole ``__dict__`` is the state.  Subclasses holding anything
    # unserializable must override the pair.
    # ------------------------------------------------------------------
    def get_state(self) -> dict:
        return dict(self.__dict__)

    def set_state(self, state: dict) -> None:
        self.__dict__.update(state)


def sigmoid(z: np.ndarray) -> np.ndarray:
    """Numerically stable logistic function."""
    out = np.empty_like(z, dtype=float)
    pos = z >= 0
    out[pos] = 1.0 / (1.0 + np.exp(-z[pos]))
    ez = np.exp(z[~pos])
    out[~pos] = ez / (1.0 + ez)
    return out


def add_intercept(X: np.ndarray) -> np.ndarray:
    """Append a column of ones for the bias term."""
    return np.column_stack([X, np.ones(X.shape[0])])
