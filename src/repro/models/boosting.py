"""Gradient-boosted trees with logistic loss.

Extends the model substrate beyond the paper's five downstream families
with the classifier most practitioners would reach for next.  The
implementation is classic gradient boosting [Friedman 2001]: shallow
regression trees fit to the negative gradient of the log-loss, with a
learning-rate shrinkage, optional row subsampling (stochastic gradient
boosting), and Newton-style leaf values.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .base import Classifier, check_weights, check_Xy, sigmoid

__all__ = ["GradientBoosting"]


@dataclass
class _RegNode:
    """A regression-tree node: leaf value or axis-aligned split."""

    value: float
    feature: int = -1
    threshold: float = 0.0
    left: "._RegNode | None" = None
    right: "._RegNode | None" = None

    @property
    def is_leaf(self) -> bool:
        return self.left is None


def _best_mse_split(X: np.ndarray, residual: np.ndarray, w: np.ndarray,
                    min_leaf_weight: float) -> tuple[int, float] | None:
    """Best weighted-MSE split over all features, or None.

    Vectorised prefix-sum search identical in spirit to the Gini search
    of :mod:`repro.models.tree`, but minimising weighted squared error
    of the residuals.
    """
    total_w = w.sum()
    total_rw = (residual * w).sum()
    best_gain, best = 0.0, None
    for feature in range(X.shape[1]):
        values = X[:, feature]
        order = np.argsort(values, kind="stable")
        v = values[order]
        rw = (residual * w)[order]
        ws = w[order]
        cuts = np.flatnonzero(v[1:] > v[:-1])
        if cuts.size == 0:
            continue
        w_left = np.cumsum(ws)[cuts]
        rw_left = np.cumsum(rw)[cuts]
        w_right = total_w - w_left
        rw_right = total_rw - rw_left
        ok = (w_left >= min_leaf_weight) & (w_right >= min_leaf_weight)
        if not np.any(ok):
            continue
        # Gain = sum of squared block means (constant parent term dropped).
        gain = rw_left ** 2 / np.maximum(w_left, 1e-12) \
            + rw_right ** 2 / np.maximum(w_right, 1e-12)
        gain[~ok] = -np.inf
        i = int(np.argmax(gain))
        if gain[i] > best_gain:
            best_gain = float(gain[i])
            cut = cuts[i]
            best = (feature, float((v[cut] + v[cut + 1]) / 2))
    return best


def _grow(X: np.ndarray, gradient: np.ndarray, hessian: np.ndarray,
          w: np.ndarray, depth: int, max_depth: int,
          min_leaf_weight: float, reg_lambda: float) -> _RegNode:
    """Recursively grow a regression tree on the gradient/hessian."""
    # Newton leaf value: −Σ g / (Σ h + λ), weighted.
    leaf = float(-(gradient * w).sum()
                 / ((hessian * w).sum() + reg_lambda))
    if depth >= max_depth or X.shape[0] < 2:
        return _RegNode(value=leaf)
    split = _best_mse_split(X, -gradient, w, min_leaf_weight)
    if split is None:
        return _RegNode(value=leaf)
    feature, threshold = split
    mask = X[:, feature] <= threshold
    if not np.any(mask) or np.all(mask):
        return _RegNode(value=leaf)
    left = _grow(X[mask], gradient[mask], hessian[mask], w[mask],
                 depth + 1, max_depth, min_leaf_weight, reg_lambda)
    right = _grow(X[~mask], gradient[~mask], hessian[~mask], w[~mask],
                  depth + 1, max_depth, min_leaf_weight, reg_lambda)
    return _RegNode(value=leaf, feature=feature, threshold=threshold,
                    left=left, right=right)


def _tree_predict(node: _RegNode, X: np.ndarray) -> np.ndarray:
    out = np.empty(X.shape[0])
    stack = [(node, np.arange(X.shape[0]))]
    while stack:
        cur, idx = stack.pop()
        if cur.is_leaf:
            out[idx] = cur.value
            continue
        mask = X[idx, cur.feature] <= cur.threshold
        stack.append((cur.left, idx[mask]))
        stack.append((cur.right, idx[~mask]))
    return out


class GradientBoosting(Classifier):
    """Gradient-boosted shallow trees for binary classification.

    Parameters
    ----------
    n_estimators:
        Number of boosting rounds.
    learning_rate:
        Shrinkage applied to each tree's contribution.
    max_depth:
        Depth of the base regression trees (2–4 is typical).
    subsample:
        Row fraction per round (1.0 = plain gradient boosting,
        < 1 = stochastic gradient boosting).
    min_leaf_weight:
        Minimum total normalised sample weight per leaf.
    reg_lambda:
        L2 regularisation on leaf values (Newton denominator).
    seed:
        Randomness for subsampling.
    """

    def __init__(self, n_estimators: int = 100, learning_rate: float = 0.1,
                 max_depth: int = 3, subsample: float = 1.0,
                 min_leaf_weight: float = 1e-3, reg_lambda: float = 1.0,
                 seed: int = 0):
        if n_estimators < 1:
            raise ValueError("n_estimators must be at least 1")
        if not 0.0 < learning_rate <= 1.0:
            raise ValueError("learning_rate must be in (0, 1]")
        if not 0.0 < subsample <= 1.0:
            raise ValueError("subsample must be in (0, 1]")
        self.n_estimators = n_estimators
        self.learning_rate = learning_rate
        self.max_depth = max_depth
        self.subsample = subsample
        self.min_leaf_weight = min_leaf_weight
        self.reg_lambda = reg_lambda
        self.seed = seed
        self.trees_: list[_RegNode] | None = None
        self.base_score_: float | None = None

    def fit(self, X: np.ndarray, y: np.ndarray,
            sample_weight: np.ndarray | None = None) -> "GradientBoosting":
        X, y = check_Xy(X, y)
        w = check_weights(sample_weight, X.shape[0])
        rng = np.random.default_rng(self.seed)
        pos_rate = float(np.clip((w * y).sum() / w.sum(), 1e-6, 1 - 1e-6))
        self.base_score_ = float(np.log(pos_rate / (1 - pos_rate)))
        margin = np.full(X.shape[0], self.base_score_)
        self.trees_ = []
        n_sub = max(int(round(X.shape[0] * self.subsample)), 2)
        for _ in range(self.n_estimators):
            p = sigmoid(margin)
            gradient = p - y            # d logloss / d margin
            hessian = p * (1 - p)
            if self.subsample < 1.0:
                idx = rng.choice(X.shape[0], size=n_sub, replace=False)
            else:
                idx = np.arange(X.shape[0])
            tree = _grow(X[idx], gradient[idx], hessian[idx], w[idx],
                         depth=0, max_depth=self.max_depth,
                         min_leaf_weight=self.min_leaf_weight,
                         reg_lambda=self.reg_lambda)
            margin = margin + self.learning_rate * _tree_predict(tree, X)
            self.trees_.append(tree)
        return self

    def decision_function(self, X: np.ndarray) -> np.ndarray:
        """Additive margin (log-odds) of the ensemble."""
        if self.trees_ is None:
            raise RuntimeError("GradientBoosting is not fitted")
        X, _ = check_Xy(X)
        margin = np.full(X.shape[0], self.base_score_)
        for tree in self.trees_:
            margin = margin + self.learning_rate * _tree_predict(tree, X)
        return margin

    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        return sigmoid(self.decision_function(X))

    def reset(self) -> None:
        self.trees_ = None
        self.base_score_ = None
