"""CART decision trees (Gini impurity, axis-aligned splits).

Used directly and as the base learner of
:class:`~repro.models.forest.RandomForest`.  Split search is vectorised
over candidate thresholds per feature via weighted prefix sums.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .base import Classifier, check_weights, check_Xy


@dataclass
class _Node:
    """A tree node: either a leaf (probability) or an internal split."""

    probability: float
    feature: int = -1
    threshold: float = 0.0
    left: "._Node | None" = None
    right: "._Node | None" = None

    @property
    def is_leaf(self) -> bool:
        return self.left is None


def _best_split(X: np.ndarray, y: np.ndarray, w: np.ndarray,
                features: np.ndarray, min_leaf_weight: float
                ) -> tuple[int, float, float] | None:
    """Return ``(feature, threshold, impurity_decrease)`` or None.

    For each candidate feature, rows are sorted by value and the
    weighted Gini of every prefix/suffix partition is evaluated in one
    vectorised pass.
    """
    total_w = w.sum()
    total_pos = (w * y).sum()
    p_parent = total_pos / total_w
    parent_gini = 2 * p_parent * (1 - p_parent)

    best: tuple[int, float, float] | None = None
    for feature in features:
        values = X[:, feature]
        order = np.argsort(values, kind="stable")
        v = values[order]
        wy = (w * y)[order]
        ws = w[order]
        # Candidate cut points: between distinct consecutive values.
        cuts = np.flatnonzero(v[1:] > v[:-1])
        if cuts.size == 0:
            continue
        w_left = np.cumsum(ws)[cuts]
        pos_left = np.cumsum(wy)[cuts]
        w_right = total_w - w_left
        pos_right = total_pos - pos_left
        ok = (w_left >= min_leaf_weight) & (w_right >= min_leaf_weight)
        if not np.any(ok):
            continue
        p_l = pos_left[ok] / w_left[ok]
        p_r = pos_right[ok] / w_right[ok]
        gini = (w_left[ok] * 2 * p_l * (1 - p_l)
                + w_right[ok] * 2 * p_r * (1 - p_r)) / total_w
        gain = parent_gini - gini
        arg = int(np.argmax(gain))
        if gain[arg] <= 1e-12:
            continue
        cut = cuts[ok][arg]
        threshold = 0.5 * (v[cut] + v[cut + 1])
        if best is None or gain[arg] > best[2]:
            best = (int(feature), float(threshold), float(gain[arg]))
    return best


class DecisionTree(Classifier):
    """A binary CART classifier.

    Parameters
    ----------
    max_depth:
        Maximum tree depth (paper forest setting: 100).
    min_samples_leaf:
        Minimum (weighted-equivalent) rows per leaf.
    max_features:
        Features considered per split: ``None`` (all), ``"sqrt"``, or an
        int — the forest uses ``"sqrt"``.
    seed:
        Feature subsampling seed.
    """

    def __init__(self, max_depth: int = 10, min_samples_leaf: int = 1,
                 max_features: int | str | None = None, seed: int = 0):
        if max_depth < 1:
            raise ValueError("max_depth must be at least 1")
        self.max_depth = max_depth
        self.min_samples_leaf = min_samples_leaf
        self.max_features = max_features
        self.seed = seed
        self.root_: _Node | None = None

    def _n_features_per_split(self, d: int) -> int:
        if self.max_features is None:
            return d
        if self.max_features == "sqrt":
            return max(1, int(np.sqrt(d)))
        return min(d, int(self.max_features))

    def fit(self, X: np.ndarray, y: np.ndarray,
            sample_weight: np.ndarray | None = None) -> "DecisionTree":
        X, y = check_Xy(X, y)
        w = check_weights(sample_weight, len(y))
        rng = np.random.default_rng(self.seed)
        min_leaf_weight = self.min_samples_leaf * w.mean()
        k = self._n_features_per_split(X.shape[1])

        def build(idx: np.ndarray, depth: int) -> _Node:
            wy = w[idx]
            prob = float((wy * y[idx]).sum() / wy.sum())
            node = _Node(probability=prob)
            if depth >= self.max_depth or prob in (0.0, 1.0):
                return node
            if idx.size < 2 * self.min_samples_leaf:
                return node
            features = (np.arange(X.shape[1]) if k == X.shape[1]
                        else rng.choice(X.shape[1], size=k, replace=False))
            split = _best_split(X[idx], y[idx], wy, features, min_leaf_weight)
            if split is None:
                return node
            node.feature, node.threshold, _ = split
            goes_left = X[idx, node.feature] <= node.threshold
            node.left = build(idx[goes_left], depth + 1)
            node.right = build(idx[~goes_left], depth + 1)
            return node

        self.root_ = build(np.arange(len(y)), depth=0)
        return self

    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        if self.root_ is None:
            raise RuntimeError("model not fitted")
        X, _ = check_Xy(X)
        out = np.empty(X.shape[0])

        def walk(node: _Node, idx: np.ndarray) -> None:
            if node.is_leaf or idx.size == 0:
                out[idx] = node.probability
                return
            goes_left = X[idx, node.feature] <= node.threshold
            walk(node.left, idx[goes_left])
            walk(node.right, idx[~goes_left])

        walk(self.root_, np.arange(X.shape[0]))
        return out

    def depth(self) -> int:
        """Actual depth of the fitted tree."""
        if self.root_ is None:
            raise RuntimeError("model not fitted")

        def measure(node: _Node) -> int:
            if node.is_leaf:
                return 0
            return 1 + max(measure(node.left), measure(node.right))

        return measure(self.root_)
