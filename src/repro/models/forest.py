"""Random forests: bagged CART trees with per-split feature sampling.

The paper's setting (Appendix F): a forest of 40 trees, each of maximum
depth 100.
"""

from __future__ import annotations

import numpy as np

from .base import Classifier, check_weights, check_Xy
from .tree import DecisionTree


class RandomForest(Classifier):
    """Bootstrap-aggregated decision trees.

    Parameters
    ----------
    n_trees:
        Ensemble size (paper default 40).
    max_depth:
        Depth cap per tree (paper default 100).
    min_samples_leaf:
        Minimum rows per leaf in each tree.
    seed:
        Seed for bootstraps and feature sampling.
    """

    def __init__(self, n_trees: int = 40, max_depth: int = 100,
                 min_samples_leaf: int = 2, seed: int = 0):
        if n_trees < 1:
            raise ValueError("n_trees must be at least 1")
        self.n_trees = n_trees
        self.max_depth = max_depth
        self.min_samples_leaf = min_samples_leaf
        self.seed = seed
        self.trees_: list[DecisionTree] | None = None

    def fit(self, X: np.ndarray, y: np.ndarray,
            sample_weight: np.ndarray | None = None) -> "RandomForest":
        X, y = check_Xy(X, y)
        w = check_weights(sample_weight, len(y))
        rng = np.random.default_rng(self.seed)
        n = len(y)
        self.trees_ = []
        for t in range(self.n_trees):
            idx = rng.choice(n, size=n, replace=True, p=w)
            tree = DecisionTree(
                max_depth=self.max_depth,
                min_samples_leaf=self.min_samples_leaf,
                max_features="sqrt",
                seed=self.seed * 1000 + t,
            )
            tree.fit(X[idx], y[idx])
            self.trees_.append(tree)
        return self

    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        if not self.trees_:
            raise RuntimeError("model not fitted")
        X, _ = check_Xy(X)
        votes = np.zeros(X.shape[0])
        for tree in self.trees_:
            votes += tree.predict_proba(X)
        return votes / len(self.trees_)
