"""Gaussian naive Bayes.

A cheap, well-calibrated-ish probabilistic baseline used by some tests
and available to the model-sensitivity experiment as a sixth model.
"""

from __future__ import annotations

import numpy as np

from .base import Classifier, check_weights, check_Xy


class GaussianNB(Classifier):
    """Gaussian naive Bayes with per-class feature means/variances."""

    def __init__(self, var_smoothing: float = 1e-9):
        self.var_smoothing = var_smoothing
        self.theta_: np.ndarray | None = None   # (2, d) means
        self.var_: np.ndarray | None = None     # (2, d) variances
        self.class_prior_: np.ndarray | None = None

    def fit(self, X: np.ndarray, y: np.ndarray,
            sample_weight: np.ndarray | None = None) -> "GaussianNB":
        X, y = check_Xy(X, y)
        w = check_weights(sample_weight, len(y))
        d = X.shape[1]
        self.theta_ = np.zeros((2, d))
        self.var_ = np.zeros((2, d))
        self.class_prior_ = np.zeros(2)
        eps = self.var_smoothing * max(X.var(), 1e-12)
        for c in (0, 1):
            mask = y == c
            wc = w[mask]
            if wc.sum() == 0:
                # Degenerate single-class data: flat prior, unit spread.
                self.theta_[c] = X.mean(axis=0)
                self.var_[c] = X.var(axis=0) + eps + 1e-9
                continue
            wc = wc / wc.sum()
            self.theta_[c] = wc @ X[mask]
            self.var_[c] = wc @ (X[mask] - self.theta_[c]) ** 2 + eps + 1e-9
            self.class_prior_[c] = w[mask].sum()
        total = self.class_prior_.sum()
        self.class_prior_ = (self.class_prior_ / total if total > 0
                             else np.array([0.5, 0.5]))
        return self

    def _joint_log_likelihood(self, X: np.ndarray) -> np.ndarray:
        jll = np.zeros((X.shape[0], 2))
        for c in (0, 1):
            prior = np.log(max(self.class_prior_[c], 1e-12))
            log_pdf = -0.5 * (np.log(2 * np.pi * self.var_[c])
                              + (X - self.theta_[c]) ** 2 / self.var_[c])
            jll[:, c] = prior + log_pdf.sum(axis=1)
        return jll

    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        if self.theta_ is None:
            raise RuntimeError("model not fitted")
        X, _ = check_Xy(X)
        jll = self._joint_log_likelihood(X)
        jll -= jll.max(axis=1, keepdims=True)
        likes = np.exp(jll)
        return likes[:, 1] / likes.sum(axis=1)
