"""Model selection: cross-validation scoring and grid search.

The paper tunes each downstream model's hyper-parameters "to maximise
correctness in the fairness-unaware setting" (Appendix F).  This module
supplies the machinery for doing that from scratch: k-fold
cross-validated scoring with arbitrary metrics, an exhaustive parameter
grid, and a :class:`GridSearch` that refits the best configuration.
"""

from __future__ import annotations

from collections.abc import Callable, Iterator, Mapping, Sequence
from dataclasses import dataclass
from itertools import product

import numpy as np

from .base import Classifier, check_Xy

__all__ = [
    "kfold_indices",
    "cross_val_score",
    "ParameterGrid",
    "GridSearch",
    "GridSearchResult",
]

Metric = Callable[[np.ndarray, np.ndarray], float]


def _accuracy(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    return float(np.mean(y_true == y_pred))


def kfold_indices(n: int, k: int, seed: int = 0,
                  stratify: np.ndarray | None = None
                  ) -> list[tuple[np.ndarray, np.ndarray]]:
    """Return ``k`` ``(train_idx, test_idx)`` pairs over ``n`` rows.

    With ``stratify`` given (a binary label vector), each fold keeps
    the class ratio of the full data — which matters for the paper's
    imbalanced Adult dataset.
    """
    if k < 2:
        raise ValueError("k must be at least 2")
    if n < k:
        raise ValueError(f"cannot make {k} folds from {n} rows")
    rng = np.random.default_rng(seed)
    if stratify is None:
        perm = rng.permutation(n)
        folds = np.array_split(perm, k)
    else:
        stratify = np.asarray(stratify)
        if stratify.shape != (n,):
            raise ValueError("stratify must have one entry per row")
        folds = [[] for _ in range(k)]
        for value in np.unique(stratify):
            members = rng.permutation(np.flatnonzero(stratify == value))
            for i, chunk in enumerate(np.array_split(members, k)):
                folds[i].extend(chunk.tolist())
        folds = [np.asarray(sorted(f)) for f in folds]
    out = []
    for i in range(k):
        test = np.asarray(folds[i])
        train = np.concatenate([folds[j] for j in range(k) if j != i])
        out.append((np.asarray(train), test))
    return out


def cross_val_score(model: Classifier, X: np.ndarray, y: np.ndarray,
                    k: int = 5, seed: int = 0,
                    metric: Metric | None = None,
                    stratified: bool = True) -> np.ndarray:
    """Per-fold test scores of a model under k-fold cross validation.

    The model is cloned for every fold, so the passed instance is left
    untouched.  ``metric`` takes ``(y_true, y_pred)`` hard labels and
    defaults to accuracy.
    """
    X, y = check_Xy(X, y)
    metric = metric or _accuracy
    scores = []
    strat = y if stratified else None
    for train_idx, test_idx in kfold_indices(X.shape[0], k, seed, strat):
        fold_model = model.clone()
        fold_model.fit(X[train_idx], y[train_idx])
        scores.append(metric(y[test_idx], fold_model.predict(X[test_idx])))
    return np.asarray(scores)


class ParameterGrid:
    """Exhaustive cartesian product over a parameter mapping.

    >>> list(ParameterGrid({"a": [1, 2], "b": ["x"]}))
    [{'a': 1, 'b': 'x'}, {'a': 2, 'b': 'x'}]
    """

    def __init__(self, grid: Mapping[str, Sequence]):
        if not grid:
            raise ValueError("parameter grid must not be empty")
        for key, values in grid.items():
            if not isinstance(values, Sequence) or isinstance(values, str):
                raise ValueError(
                    f"grid entry {key!r} must be a sequence of values")
            if len(values) == 0:
                raise ValueError(f"grid entry {key!r} is empty")
        self._keys = list(grid)
        self._values = [list(grid[k]) for k in self._keys]

    def __len__(self) -> int:
        n = 1
        for values in self._values:
            n *= len(values)
        return n

    def __iter__(self) -> Iterator[dict]:
        for combo in product(*self._values):
            yield dict(zip(self._keys, combo))


@dataclass(frozen=True)
class GridSearchResult:
    """Outcome of a grid search.

    Attributes
    ----------
    best_params:
        The winning parameter assignment.
    best_score:
        Its mean cross-validated score.
    best_model:
        A model with ``best_params`` refitted on the full data.
    all_scores:
        ``[(params, mean_score), ...]`` for every grid point, in
        iteration order.
    """

    best_params: dict
    best_score: float
    best_model: Classifier
    all_scores: list[tuple[dict, float]]


class GridSearch:
    """Exhaustive hyper-parameter search by cross-validated score.

    Parameters
    ----------
    factory:
        Callable building a fresh model from keyword parameters (e.g.
        the class itself: ``GridSearch(LogisticRegression, grid)``).
    grid:
        Mapping parameter → candidate values.
    k, seed, metric:
        Cross-validation controls (see :func:`cross_val_score`).
    """

    def __init__(self, factory: Callable[..., Classifier],
                 grid: Mapping[str, Sequence], k: int = 5, seed: int = 0,
                 metric: Metric | None = None):
        self.factory = factory
        self.grid = ParameterGrid(grid)
        self.k = k
        self.seed = seed
        self.metric = metric

    def fit(self, X: np.ndarray, y: np.ndarray) -> GridSearchResult:
        """Evaluate every grid point; refit the winner on all data."""
        X, y = check_Xy(X, y)
        all_scores: list[tuple[dict, float]] = []
        best_params, best_score = None, -np.inf
        for params in self.grid:
            model = self.factory(**params)
            score = float(np.mean(cross_val_score(
                model, X, y, k=self.k, seed=self.seed, metric=self.metric)))
            all_scores.append((params, score))
            if score > best_score:
                best_params, best_score = params, score
        best_model = self.factory(**best_params).fit(X, y)
        return GridSearchResult(
            best_params=best_params,
            best_score=best_score,
            best_model=best_model,
            all_scores=all_scores,
        )
