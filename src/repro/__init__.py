"""repro — a from-scratch reproduction of "Through the Data Management
Lens: Experimental Analysis and Evaluation of Fair Classification"
(Islam, Fariha, Meliou, Salimi; SIGMOD 2022).

Public API tour:

* :mod:`repro.registry` — the unified component registry: datasets,
  models, fair approaches, error injectors, imputers, and metrics,
  all addressable by string key + parameters.
* :mod:`repro.api` — declarative experiment specs and JSON/YAML
  scenario configs (:class:`~repro.api.ExperimentSpec`,
  :class:`~repro.api.SweepSpec`).
* :mod:`repro.datasets` — synthetic Adult/COMPAS/German generators
  (SCM-based), the tabular substrate, splits, and encoders.
* :mod:`repro.models` — from-scratch LR / SVM / kNN / RF / MLP / NB.
* :mod:`repro.causal` — causal graphs, SCMs, TE/NDE/NIE estimation.
* :mod:`repro.metrics` — correctness + fairness metrics of the paper.
* :mod:`repro.fairness` — the 21 evaluated fair-classification variants.
* :mod:`repro.errors` — the T1/T2/T3 corruption recipes.
* :mod:`repro.pipeline` — uniform experiment runner and reports.
* :mod:`repro.engine` — declarative scenario grids, parallel sweeps,
  and content-addressed result caching.
* :mod:`repro.obs` — telemetry: spans, counters, trace export
  (``repro sweep --trace``), and environment diagnostics
  (``repro doctor``).
* :mod:`repro.artifacts` — versioned serving bundles: fitted
  components serialized next to their cache cell (``repro pack`` /
  ``repro inspect``).
* :mod:`repro.serve` — online audit serving over a bundle
  (``repro serve``, or the in-process
  :class:`~repro.serve.AuditService`).
"""

from . import obs, registry
from .api import ExperimentSpec, SweepSpec, load_config, run_spec, sweep
from .datasets import load, load_adult, load_compas, load_german
from .engine import Job, ResultCache, ScenarioGrid, run_sweep
from .fairness import make_approach
from .pipeline import (EvaluationResult, FairPipeline, evaluate_pipeline,
                       format_results_table, run_experiment)

__version__ = "1.1.0"

#: Names served lazily so the deprecation warning fires on use, not on
#: ``import repro``.
_DEPRECATED_FAIRNESS = ("MAIN_APPROACHES", "ALL_APPROACHES",
                        "ADDITIONAL_APPROACHES", "EXTENSION_APPROACHES")

__all__ = [
    "obs", "registry",
    "ExperimentSpec", "SweepSpec", "load_config", "run_spec", "sweep",
    "load", "load_adult", "load_compas", "load_german",
    "MAIN_APPROACHES", "ALL_APPROACHES", "make_approach",
    "FairPipeline", "EvaluationResult", "evaluate_pipeline",
    "run_experiment", "format_results_table",
    "Job", "ScenarioGrid", "ResultCache", "run_sweep",
    "__version__",
]


def __getattr__(name: str):
    if name in _DEPRECATED_FAIRNESS:
        from . import fairness
        return getattr(fairness, name)  # warns in the fairness shim
    raise AttributeError(
        f"module {__name__!r} has no attribute {name!r}")
