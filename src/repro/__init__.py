"""repro — a from-scratch reproduction of "Through the Data Management
Lens: Experimental Analysis and Evaluation of Fair Classification"
(Islam, Fariha, Meliou, Salimi; SIGMOD 2022).

Public API tour:

* :mod:`repro.datasets` — synthetic Adult/COMPAS/German generators
  (SCM-based), the tabular substrate, splits, and encoders.
* :mod:`repro.models` — from-scratch LR / SVM / kNN / RF / MLP / NB.
* :mod:`repro.causal` — causal graphs, SCMs, TE/NDE/NIE estimation.
* :mod:`repro.metrics` — correctness + fairness metrics of the paper.
* :mod:`repro.fairness` — the 21 evaluated fair-classification variants.
* :mod:`repro.errors` — the T1/T2/T3 corruption recipes.
* :mod:`repro.pipeline` — uniform experiment runner and reports.
* :mod:`repro.engine` — declarative scenario grids, parallel sweeps,
  and content-addressed result caching.
"""

from .datasets import load, load_adult, load_compas, load_german
from .engine import Job, ResultCache, ScenarioGrid, run_sweep
from .fairness import ALL_APPROACHES, MAIN_APPROACHES, make_approach
from .pipeline import (EvaluationResult, FairPipeline, evaluate_pipeline,
                       format_results_table, run_experiment)

__version__ = "1.0.0"

__all__ = [
    "load", "load_adult", "load_compas", "load_german",
    "MAIN_APPROACHES", "ALL_APPROACHES", "make_approach",
    "FairPipeline", "EvaluationResult", "evaluate_pipeline",
    "run_experiment", "format_results_table",
    "Job", "ScenarioGrid", "ResultCache", "run_sweep",
    "__version__",
]
