"""Typed component registries and the parameterized-spec grammar.

A :class:`Registry` maps string keys to :class:`Component` records —
factory, declared defaults, whether the component is stochastic (takes
a ``seed``), and free-form metadata (stage, group, …).  Every component
family in the system (datasets, models, fair approaches, error
injectors, imputers, metrics) lives in one of these, so the sweep
engine, the CLI, benchmarks, and config files all address components
the same way: a string key plus keyword parameters.

The *spec grammar* is how parameters travel inside a single string or
a config entry:

* ``"Celis-pp"`` — the key alone, built with its declared defaults;
* ``"Celis-pp(tau=0.9)"`` — keyword overrides as Python literals;
* ``{"key": "Celis-pp", "params": {"tau": 0.9}}`` — the nested-dict
  form used in JSON/YAML configs;
* ``{"Celis-pp": {"tau": 0.9}}`` — single-item shorthand;
* ``("Celis-pp", {"tau": 0.9})`` — the parsed pair itself.

:func:`parse_spec` normalises all of these to ``(key, params)`` and
:func:`format_spec` renders the canonical string back, so specs
round-trip losslessly through config files and cache fingerprints.

Unknown keys raise ``KeyError`` naming the valid choices; parameters a
component does not accept raise ``ValueError`` naming the offender and
the accepted names — nothing is silently swallowed (the historic
``lambda seed=0:`` factories dropped the seed of deterministic
approaches without a word).
"""

from __future__ import annotations

import ast
import inspect
from collections.abc import Callable, Mapping
from dataclasses import dataclass, field

__all__ = ["Component", "Registry", "extract_state", "format_spec",
           "parse_spec", "restore_instance"]


# ----------------------------------------------------------------------
# Spec grammar
# ----------------------------------------------------------------------
def parse_spec(spec) -> tuple[str, dict]:
    """Normalise any accepted spec form to ``(key, params)``.

    See the module docstring for the accepted forms.  Parameter values
    in the string form must be Python literals (numbers, strings,
    booleans, ``None``, tuples/lists of those).
    """
    if isinstance(spec, tuple) and len(spec) == 2 \
            and isinstance(spec[0], str):
        key, params = spec
        return key, dict(params or {})
    if isinstance(spec, Mapping):
        if "key" in spec:
            extra = set(spec) - {"key", "params"}
            if extra:
                raise ValueError(
                    f"unexpected fields {sorted(extra)} in component spec "
                    f"{dict(spec)!r} (expected 'key' and optional 'params')")
            return str(spec["key"]), dict(spec.get("params") or {})
        if len(spec) == 1:
            (key, params), = spec.items()
            return str(key), dict(params or {})
        raise ValueError(
            f"ambiguous component spec {dict(spec)!r}: use "
            "{'key': ..., 'params': {...}} or a single-item mapping")
    if not isinstance(spec, str):
        raise TypeError(f"cannot parse component spec {spec!r}")

    text = spec.strip()
    if "(" not in text:
        if text.endswith(")"):
            raise ValueError(f"malformed component spec {spec!r}")
        return text, {}
    key, _, args = text.partition("(")
    key = key.strip()
    if not key or not args.endswith(")"):
        raise ValueError(f"malformed component spec {spec!r}")
    args = args[:-1].strip()
    if not args:
        return key, {}
    try:
        call = ast.parse(f"_({args})", mode="eval").body
    except SyntaxError as exc:
        raise ValueError(
            f"malformed parameters in component spec {spec!r}: {exc}"
        ) from None
    if not isinstance(call, ast.Call) or call.args:
        raise ValueError(
            f"component spec {spec!r} must use keyword parameters only, "
            "e.g. 'Celis-pp(tau=0.9)'")
    params = {}
    for keyword in call.keywords:
        if keyword.arg is None:
            raise ValueError(
                f"component spec {spec!r} may not use ** expansion")
        try:
            params[keyword.arg] = ast.literal_eval(keyword.value)
        except ValueError:
            raise ValueError(
                f"parameter {keyword.arg!r} in component spec {spec!r} "
                "must be a Python literal") from None
    return key, params


def format_spec(key: str, params: Mapping | None = None) -> str:
    """Render ``(key, params)`` as the canonical spec string.

    Parameters are sorted by name so equal parameterizations format
    identically; ``format_spec(*parse_spec(s))`` is a fixed point.
    """
    if not params:
        return key
    rendered = ", ".join(f"{name}={params[name]!r}"
                         for name in sorted(params))
    return f"{key}({rendered})"


def _accepted_params(factory: Callable) -> frozenset[str] | None:
    """Keyword parameters ``factory`` accepts; ``None`` if open
    (``**kwargs`` anywhere in the signature or no signature at all)."""
    try:
        signature = inspect.signature(factory)
    except (TypeError, ValueError):
        return None
    names = set()
    for parameter in signature.parameters.values():
        if parameter.kind is inspect.Parameter.VAR_KEYWORD:
            return None
        if parameter.kind in (inspect.Parameter.POSITIONAL_OR_KEYWORD,
                              inspect.Parameter.KEYWORD_ONLY):
            names.add(parameter.name)
    names.discard("self")
    return frozenset(names)


# ----------------------------------------------------------------------
# Fitted-state protocol
# ----------------------------------------------------------------------
#
# Registry-built components are serialized as (spec string + fitted
# state).  The spec rebuilds an *unfitted* component; the state carries
# everything :meth:`fit` computed.  A component opts into custom
# serialization by defining::
#
#     def get_state(self) -> dict: ...
#     def set_state(self, state: dict) -> None: ...
#
# ``get_state`` must return a mapping of plain values — numbers,
# strings, tuples, lists, dicts, numpy arrays, or other repro-package
# objects that themselves follow the protocol.  ``set_state`` must
# restore the instance from exactly that mapping without refitting.
# Components that keep all fitted state in plain instance attributes
# (the common case — classifiers, encoders, imputers) need neither
# method: the fallbacks below snapshot and restore ``__dict__``
# directly, and frozen dataclasses are restored attribute by attribute.


def extract_state(obj) -> dict:
    """Snapshot ``obj``'s fitted state as a plain mapping.

    Uses ``obj.get_state()`` when the class defines it, else the
    instance ``__dict__``.  Objects with neither (slots-only,
    extension types) raise ``TypeError`` — they must implement the
    protocol explicitly to be serializable.
    """
    getter = getattr(type(obj), "get_state", None)
    if getter is not None:
        return getter(obj)
    try:
        return dict(vars(obj))
    except TypeError:
        raise TypeError(
            f"{type(obj).__name__} has no __dict__ and does not define "
            "get_state(); implement the get_state/set_state protocol to "
            "make it serializable") from None


def restore_instance(cls: type, state: Mapping):
    """Rebuild an instance of ``cls`` from :func:`extract_state` output.

    The instance is created without calling ``__init__``; state is
    restored via ``cls.set_state`` when defined, else attribute by
    attribute (``object.__setattr__``, so frozen dataclasses restore
    too).
    """
    obj = cls.__new__(cls)
    setter = getattr(cls, "set_state", None)
    if setter is not None:
        setter(obj, dict(state))
    else:
        for name, value in state.items():
            object.__setattr__(obj, name, value)
    return obj


# ----------------------------------------------------------------------
# Components and registries
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Component:
    """One registered component: how to build it and what it declares.

    Attributes
    ----------
    family, key:
        The registry's family name and the component's string key.
    factory:
        Callable building the component from keyword parameters.
    defaults:
        Declared default parameters, merged under any overrides.
    stochastic:
        Whether the component is randomised — only then does
        :meth:`Registry.build` thread its ``seed`` into the factory.
    accepts:
        Parameter names the factory takes (``None`` = open signature).
    description:
        One-line human description for listings.
    metadata:
        Free-form annotations (e.g. ``stage``/``group`` of approaches).
    """

    family: str
    key: str
    factory: Callable
    defaults: dict = field(default_factory=dict)
    stochastic: bool = False
    accepts: frozenset[str] | None = None
    description: str = ""
    metadata: dict = field(default_factory=dict)

    def describe(self) -> str:
        """``key(defaults) [stochastic] — description`` listing line."""
        parts = [format_spec(self.key, self.defaults)]
        if self.stochastic:
            parts.append("[stochastic]")
        if self.description:
            parts.append(f"— {self.description}")
        return " ".join(parts)


class Registry:
    """An ordered string-keyed registry for one component family."""

    def __init__(self, family: str, description: str = ""):
        self.family = family
        self.description = description
        self._components: dict[str, Component] = {}

    # -- registration --------------------------------------------------
    def register(self, key: str, factory: Callable | None = None, *,
                 defaults: Mapping | None = None,
                 stochastic: bool | None = None,
                 accepts: frozenset[str] | set[str] | None = None,
                 signature_from: Callable | None = None,
                 description: str = "", **metadata):
        """Register ``factory`` under ``key``; usable as a decorator.

        ::

            @register("approach", "Celis-pp", defaults={"tau": 0.8})
            def build_celis(**params):
                return Celis(**params)

        ``stochastic`` defaults to whether the factory accepts a
        ``seed`` parameter; ``accepts``/``signature_from`` override the
        parameter-name introspection for wrapper factories.
        """
        if factory is None:
            def decorator(fn: Callable) -> Callable:
                self.register(key, fn, defaults=defaults,
                              stochastic=stochastic, accepts=accepts,
                              signature_from=signature_from,
                              description=description, **metadata)
                return fn
            return decorator

        if key in self._components:
            raise ValueError(
                f"duplicate {self.family} key {key!r} (already registered)")
        if accepts is None:
            accepts = _accepted_params(signature_from or factory)
        else:
            accepts = frozenset(accepts)
        if stochastic is None:
            stochastic = accepts is not None and "seed" in accepts
        component = Component(
            family=self.family, key=key, factory=factory,
            defaults=dict(defaults or {}), stochastic=bool(stochastic),
            accepts=accepts, description=description,
            metadata=dict(metadata))
        self._validate_params(component, component.defaults)
        self._components[key] = component
        return factory

    # -- lookup --------------------------------------------------------
    def get(self, key: str) -> Component:
        """The component registered under ``key`` (``KeyError`` if
        absent, naming the valid choices)."""
        try:
            return self._components[key]
        except KeyError:
            raise KeyError(
                f"unknown {self.family} {key!r}; choose from "
                f"{sorted(self._components)}") from None

    def keys(self, **metadata_filter) -> list[str]:
        """Registered keys in registration order, optionally filtered
        by metadata equality (e.g. ``keys(group="main")``)."""
        return [key for key, component in self._components.items()
                if all(component.metadata.get(name) == value
                       for name, value in metadata_filter.items())]

    def components(self, **metadata_filter) -> list[Component]:
        """Registered components, same filtering as :meth:`keys`."""
        return [self._components[key] for key in self.keys(**metadata_filter)]

    def __contains__(self, key) -> bool:
        return key in self._components

    def __iter__(self):
        return iter(self._components)

    def __len__(self) -> int:
        return len(self._components)

    def __repr__(self) -> str:
        return (f"Registry({self.family!r}, "
                f"{len(self._components)} components)")

    # -- building ------------------------------------------------------
    def _validate_params(self, component: Component,
                         params: Mapping) -> None:
        if component.accepts is None:
            return
        unknown = sorted(set(params) - component.accepts)
        if unknown:
            raise ValueError(
                f"{self.family} {component.key!r} does not accept "
                f"parameter(s) {unknown}; accepted: "
                f"{sorted(component.accepts)}")

    def resolve(self, spec) -> tuple[Component, dict]:
        """Parse + validate a spec into its component and full params
        (defaults merged under the spec's overrides)."""
        key, overrides = parse_spec(spec)
        component = self.get(key)
        params = {**component.defaults, **overrides}
        self._validate_params(component, params)
        return component, params

    def canonical(self, spec) -> str:
        """The canonical spec string: validated, overrides only, and
        overrides that merely restate a declared default dropped —
        ``"Celis-pp(tau=0.8)"`` and ``"Celis-pp"`` describe the same
        component, so they must canonicalise (and fingerprint)
        identically."""
        key, overrides = parse_spec(spec)
        component = self.get(key)
        self._validate_params(component,
                              {**component.defaults, **overrides})
        overrides = {name: value for name, value in overrides.items()
                     if not (name in component.defaults
                             and component.defaults[name] == value)}
        return format_spec(key, overrides)

    def resolved_params(self, key: str, overrides: Mapping) -> dict:
        """Defaults merged under overrides — the full effective
        parameterization of a component (used by cache fingerprints,
        so editing a declared default invalidates stale entries).
        Unknown keys pass the overrides through untouched."""
        if key not in self._components:
            return dict(overrides)
        return {**self._components[key].defaults, **overrides}

    def build(self, spec, *, seed: int | None = None, **overrides):
        """Build a component from any spec form.

        ``seed`` is threaded into the factory only for stochastic
        components; deterministic components never see it (asking for
        an explicit ``seed=`` *parameter* on one is a ``ValueError``,
        because the factory does not accept it).
        """
        component, params = self.resolve(spec)
        if overrides:
            params.update(overrides)
            self._validate_params(component, params)
        if component.stochastic and seed is not None:
            params.setdefault("seed", seed)
        if component.accepts is not None:
            return component.factory(**params)
        try:
            return component.factory(**params)
        except TypeError as exc:
            # Open-signature factories (accepts=None) are the one case
            # where a bad parameter name surfaces only here; closed
            # signatures were already validated, so their TypeErrors
            # are real constructor bugs and propagate untouched.
            raise ValueError(
                f"invalid parameters for {self.family} "
                f"{component.key!r}: {exc}") from None
