"""Unified component registry: every dataset, model, fair approach,
error injector, imputer, and metric, addressable by string key.

The six global registries are populated on import and shared by the
sweep engine, the CLI, the benchmarks, and :mod:`repro.api`::

    from repro import registry

    registry.APPROACHES.build("Celis-pp(tau=0.9)")   # spec string
    registry.MODELS.build("knn", k=7)                # key + kwargs
    registry.DATASETS.build("german", n=400, seed=1)
    registry.build("error", "t1")(dataset, seed=0)   # family dispatch

Registration is decorator-friendly for third-party components::

    from repro.registry import register

    @register("approach", "My-dp", defaults={"tau": 0.5})
    def build_mine(tau, seed=0):
        return MyApproach(tau=tau, seed=seed)

See :mod:`repro.registry.core` for the spec grammar and validation
rules, and :mod:`repro.registry.components` for the built-ins.
"""

from __future__ import annotations

from .components import (APPROACHES, DATASETS, ERRORS, IMPUTERS, METRICS,
                         MODELS, ErrorInjector, Metric)
from .core import (Component, Registry, extract_state, format_spec,
                   parse_spec, restore_instance)

#: All registries by family name.
REGISTRIES: dict[str, Registry] = {
    "dataset": DATASETS,
    "model": MODELS,
    "approach": APPROACHES,
    "error": ERRORS,
    "imputer": IMPUTERS,
    "metric": METRICS,
}

__all__ = [
    "APPROACHES", "Component", "DATASETS", "ERRORS", "ErrorInjector",
    "IMPUTERS", "METRICS", "MODELS", "Metric", "REGISTRIES", "Registry",
    "build", "extract_state", "format_spec", "get_registry", "parse_spec",
    "register", "restore_instance",
]


def get_registry(family: str) -> Registry:
    """The registry for a component family (singular or plural name)."""
    name = family.rstrip("s") if family not in REGISTRIES else family
    if name == "approache":  # plural of approach
        name = "approach"
    if name not in REGISTRIES:
        raise KeyError(f"unknown component family {family!r}; choose "
                       f"from {sorted(REGISTRIES)}")
    return REGISTRIES[name]


def register(family: str, key: str, factory=None, **options):
    """Register a component in a family's registry (decorator-friendly).

    ``register("approach", "My-dp", defaults={...})`` returns a
    decorator; passing ``factory`` registers directly.
    """
    return get_registry(family).register(key, factory, **options)


def build(family: str, spec, *, seed: int | None = None, **overrides):
    """Build a component of any family from a spec."""
    return get_registry(family).build(spec, seed=seed, **overrides)
