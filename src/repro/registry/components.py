"""Built-in component registrations for all six families.

Importing this module (which :mod:`repro.registry` does on import)
populates the global registries with every dataset, model, fair
approach, error injector, imputer, and metric the repository ships.
Registrations declare defaults and stochasticity explicitly, so the
registry — not ad-hoc ``lambda seed=0:`` factories — decides whether a
``seed`` reaches a component, and unknown parameters fail loudly.
"""

from __future__ import annotations

import functools
import inspect
from collections.abc import Callable
from dataclasses import dataclass, field

import numpy as np

from ..datasets.dataset import Dataset
from ..datasets.generators import load_adult, load_compas, load_german
from ..errors.extended import (corrupt_missing, corrupt_t4, corrupt_t5,
                               corrupt_t6)
from ..errors.imputers import (impute_constant, impute_iterative, impute_knn,
                               impute_mean, impute_median, impute_mode)
from ..errors.injectors import corrupt_t1, corrupt_t2, corrupt_t3
from ..fairness.inprocessing.agarwal import AgarwalDP, AgarwalEO
from ..fairness.inprocessing.celis import Celis
from ..fairness.inprocessing.kamishima import Kamishima
from ..fairness.inprocessing.kearns import Kearns
from ..fairness.inprocessing.thomas import ThomasDP, ThomasEO
from ..fairness.inprocessing.zafar import ZafarDPAcc, ZafarDPFair, ZafarEOFair
from ..fairness.inprocessing.zhale import ZhaLe
from ..fairness.postprocessing.hardt import Hardt
from ..fairness.postprocessing.kamkar import KamKar
from ..fairness.postprocessing.omnifair import OmniFair
from ..fairness.postprocessing.pleiss import Pleiss
from ..fairness.preprocessing.calders import CaldersVerwer
from ..fairness.preprocessing.calmon import Calmon
from ..fairness.preprocessing.feld import Feld
from ..fairness.preprocessing.kamcal import KamCal
from ..fairness.preprocessing.madras import Madras
from ..fairness.preprocessing.salimi import SalimiMatFac, SalimiMaxSAT
from ..fairness.preprocessing.zhawu import ZhaWuDCE, ZhaWuPSF
from ..models.boosting import GradientBoosting
from ..models.forest import RandomForest
from ..models.knn import KNearestNeighbors
from ..models.logistic import LogisticRegression
from ..models.mlp import MLPClassifier
from ..models.naive_bayes import GaussianNB
from ..models.svm import KernelSVM
from .core import Registry, _accepted_params

__all__ = ["APPROACHES", "DATASETS", "ERRORS", "ErrorInjector", "IMPUTERS",
           "METRICS", "MODELS", "Metric"]

DATASETS = Registry("dataset", "benchmark dataset generators")
MODELS = Registry("model", "downstream model families")
APPROACHES = Registry("approach", "fair-classification variants")
ERRORS = Registry("error", "training-data corruption recipes")
IMPUTERS = Registry("imputer", "missing-value imputers")
METRICS = Registry("metric", "evaluation metrics")


# ----------------------------------------------------------------------
# Datasets
# ----------------------------------------------------------------------
DATASETS.register("adult", load_adult, defaults={},
                  description="synthetic UCI Adult (sex sensitive)")
DATASETS.register("compas", load_compas,
                  description="synthetic ProPublica COMPAS (race sensitive)")
DATASETS.register("german", load_german,
                  description="synthetic German Credit (sex sensitive)")


# ----------------------------------------------------------------------
# Models — built with their own defaults; the per-job seed is *not*
# threaded in (the experiment protocol seeds data and approaches, and
# the paper's models run at fixed internal seeds).
# ----------------------------------------------------------------------
for _key, _cls, _desc in (
        ("lr", LogisticRegression, "logistic regression (paper default)"),
        ("svm", KernelSVM, "RBF-feature kernel SVM"),
        ("knn", KNearestNeighbors, "k-nearest neighbours"),
        ("rf", RandomForest, "random forest"),
        ("mlp", MLPClassifier, "one-hidden-layer MLP"),
        ("nb", GaussianNB, "Gaussian naive Bayes"),
        ("gb", GradientBoosting, "gradient-boosted trees")):
    MODELS.register(_key, _cls, stochastic=False, description=_desc)


# ----------------------------------------------------------------------
# Fair approaches — keys are the paper's variant names.  ``stochastic``
# marks the variants whose fitting is randomised; only those receive
# the experiment seed.  Defaults reproduce the paper's settings.
# ----------------------------------------------------------------------
def _mro_accepts(cls) -> frozenset[str] | None:
    """Constructor parameters of ``cls``, following ``**kwargs`` up the
    MRO (``ZafarDPAcc(gamma, **kwargs)`` forwards to the base Zafar
    constructor, whose parameters are part of the contract).  ``None``
    only if the chain stays open all the way down."""
    names: set[str] = set()
    for klass in cls.__mro__:
        if klass is object:
            return None
        init = klass.__dict__.get("__init__")
        if init is None:
            continue
        open_signature = False
        for parameter in inspect.signature(init).parameters.values():
            if parameter.kind is inspect.Parameter.VAR_KEYWORD:
                open_signature = True
            elif parameter.kind in (
                    inspect.Parameter.POSITIONAL_OR_KEYWORD,
                    inspect.Parameter.KEYWORD_ONLY):
                names.add(parameter.name)
        if not open_signature:
            return frozenset(names - {"self"})
    return None


def _approach(key: str, cls, group: str, defaults: dict | None = None,
              **extra) -> None:
    probe = cls(**(defaults or {}))
    APPROACHES.register(key, cls, defaults=defaults,
                        accepts=_mro_accepts(cls),
                        group=group, stage=probe.stage,
                        notion=probe.notion, **extra)


# The 18 variants of the paper's main evaluation (Figure 5).
_approach("KamCal-dp", KamCal, "main")
_approach("Feld-dp", Feld, "main", defaults={"lam": 1.0})
_approach("Calmon-dp", Calmon, "main")
_approach("ZhaWu-psf", ZhaWuPSF, "main", defaults={"epsilon": 0.05})
_approach("ZhaWu-dce", ZhaWuDCE, "main", defaults={"tau": 0.05})
_approach("Salimi-jf-maxsat", SalimiMaxSAT, "main")
_approach("Salimi-jf-matfac", SalimiMatFac, "main")
_approach("Zafar-dp-fair", ZafarDPFair, "main")
_approach("Zafar-dp-acc", ZafarDPAcc, "main")
_approach("Zafar-eo-fair", ZafarEOFair, "main")
_approach("ZhaLe-eo", ZhaLe, "main")
_approach("Kearns-pe", Kearns, "main", defaults={"gamma": 0.005})
_approach("Celis-pp", Celis, "main", defaults={"tau": 0.8})
_approach("Thomas-dp", ThomasDP, "main", defaults={"delta": 0.05})
_approach("Thomas-eo", ThomasEO, "main", defaults={"delta": 0.05})
_approach("KamKar-dp", KamKar, "main")
_approach("Hardt-eo", Hardt, "main")
_approach("Pleiss-eop", Pleiss, "main")

# The three additional variants of the paper's Appendix B.4.
_approach("Madras-dp", Madras, "additional")
_approach("Agarwal-dp", AgarwalDP, "additional")
_approach("Agarwal-eo", AgarwalEO, "additional")

# Extension variants beyond the paper's evaluation.
_approach("CaldersVerwer-dp", CaldersVerwer, "extension",
          defaults={"level": 1.0})
_approach("Kamishima-pr", Kamishima, "extension", defaults={"eta": 5.0})
_approach("OmniFair-dp", OmniFair, "extension",
          defaults={"metric": "dp", "epsilon": 0.03})


# ----------------------------------------------------------------------
# Error injectors — a recipe key builds an :class:`ErrorInjector`, a
# configured callable applied to a dataset with a seed at corruption
# time (so the same injector reproduces any cell's corruption).
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ErrorInjector:
    """A corruption recipe bound to its parameters."""

    key: str
    recipe: Callable
    params: dict = field(default_factory=dict)

    def __call__(self, dataset: Dataset, seed: int = 0) -> Dataset:
        return self.recipe(dataset, np.random.default_rng(seed),
                           **self.params)


def _register_recipe(key: str, recipe: Callable, description: str,
                     group: str) -> None:
    accepted = _accepted_params(recipe)
    ERRORS.register(
        key, functools.partial(_make_injector, key, recipe),
        accepts=(None if accepted is None
                 else accepted - {"dataset", "rng"}),
        stochastic=False, description=description, group=group)


def _make_injector(key: str, recipe: Callable, **params) -> ErrorInjector:
    return ErrorInjector(key=key, recipe=recipe, params=params)


_register_recipe("t1", corrupt_t1, "swapped attribute values", "paper")
_register_recipe("t2", corrupt_t2, "scaled + noisy attributes", "paper")
_register_recipe("t3", corrupt_t3, "missing S and Y, re-imputed", "paper")
_register_recipe("t4", corrupt_t4, "disproportionate label flips",
                 "extended")
_register_recipe("t5", corrupt_t5, "selection bias (row removal)",
                 "extended")
_register_recipe("t6", corrupt_t6, "outliers + duplicated rows",
                 "extended")
_register_recipe("missing", corrupt_missing,
                 "feature NaNs left for the imputer axis", "extended")


# ----------------------------------------------------------------------
# Imputers — a key builds a configured ``array -> array`` callable.
# ``matrix=True`` metadata marks imputers that consume the whole
# feature matrix (and can borrow across columns); the others fill one
# column at a time.  The sweep executor dispatches on this flag.
# ----------------------------------------------------------------------
def _register_imputer(key: str, fn: Callable, description: str,
                      matrix: bool = False) -> None:
    accepted = _accepted_params(fn)
    IMPUTERS.register(key, functools.partial(_make_imputer, fn),
                      accepts=(None if accepted is None
                               else accepted - {"values", "X"}),
                      stochastic=False, description=description,
                      matrix=matrix)


def _make_imputer(fn: Callable, **params) -> Callable:
    return functools.partial(fn, **params)


_register_imputer("mean", impute_mean, "column mean")
_register_imputer("median", impute_median, "column median")
_register_imputer("mode", impute_mode, "most frequent value")
_register_imputer("constant", impute_constant, "fixed fill value")
_register_imputer("knn", impute_knn, "k-nearest-donor average",
                  matrix=True)
_register_imputer("iterative", impute_iterative,
                  "MICE-style round-robin ridge", matrix=True)


# ----------------------------------------------------------------------
# Metrics — a key builds a :class:`Metric` descriptor that reads its
# value off an :class:`~repro.pipeline.experiment.EvaluationResult`
# (all report columns are on the normalised "1 = best" scale).
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Metric:
    """One report metric: where it lives on a result and how to read it."""

    key: str
    kind: str  # "correctness" | "fairness"
    result_field: str
    higher_is_better: bool = True

    def of(self, result) -> float:
        """The metric's value on an ``EvaluationResult``."""
        return getattr(result, self.result_field)


def _register_metric(key: str, kind: str, result_field: str,
                     description: str) -> None:
    METRICS.register(
        key, functools.partial(Metric, key=key, kind=kind,
                               result_field=result_field),
        accepts=frozenset({"higher_is_better"}), stochastic=False,
        description=description, kind=kind)


_register_metric("accuracy", "correctness", "accuracy",
                 "fraction of correct predictions")
_register_metric("precision", "correctness", "precision",
                 "positive predictive value")
_register_metric("recall", "correctness", "recall",
                 "true positive rate")
_register_metric("f1", "correctness", "f1",
                 "harmonic precision/recall mean")
_register_metric("di_star", "fairness", "di_star",
                 "normalised disparate impact")
_register_metric("tprb", "fairness", "tprb",
                 "1 - |TPR balance|")
_register_metric("tnrb", "fairness", "tnrb",
                 "1 - |TNR balance|")
_register_metric("id", "fairness", "id",
                 "1 - individual discrimination rate")
_register_metric("te", "fairness", "te", "1 - |total effect|")
_register_metric("nde", "fairness", "nde",
                 "1 - |natural direct effect|")
_register_metric("nie", "fairness", "nie",
                 "1 - |natural indirect effect|")
