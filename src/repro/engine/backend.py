"""Pluggable storage backends for the sweep result cache.

:class:`~repro.engine.cache.ResultCache` historically *was* a layout:
sharded JSON files under a directory.  That layout is now one
implementation of the :class:`StoreBackend` protocol —
:class:`FileBackend`, byte-compatible with every existing cache — and
a second implementation, :class:`SqlBackend`, keeps one row per cell
in a single SQLite database so reports over million-cell sweeps
compile to SQL instead of loading every entry into Python (see
:mod:`repro.engine.sqlreport`), and whole caches merge across hosts
with one ``ATTACH`` + ``INSERT OR IGNORE``.

Backends are addressed by URI::

    file:/path/to/dir      sharded-JSON directory (the default)
    sqlite:/path/to/db     single-file SQLite database
    duckdb:/path/to/db     DuckDB database (only when the optional
                           ``duckdb`` package is importable)
    /bare/path             shorthand for file:/bare/path (back-compat)

``parse_store`` resolves any of these (or a ``Path``, or an existing
backend instance) to a backend; ``backend.uri`` round-trips, so worker
processes can rebuild their parent's store from a string.

The SQLite schema stores the full entry payload in ``cells``
(``params``/``result``/``raw``/``attempts`` as JSON text) *plus* the
report axes as real columns and a precomputed ``grid_order`` sort key,
so ``--where`` filters, pivots, and overhead series run as indexed SQL
over columns while ``load()`` still reproduces exactly what the file
backend returns.  Every numeric metric additionally lands in the
``cell_values`` side table twice: as a bound REAL (for ad-hoc SQL,
which can be off in the last ulp — SQLite's text↔float conversions
are not correctly rounded) and as Python's shortest round-trip
``repr`` text, which the compiled report path aggregates so its
floats are bit-identical to the in-memory path's (see
:mod:`repro.engine.sqlreport`).  The artifact-bundle slot is a blob
*reference*: the
bundle itself lives in a ``<db>.artifacts/<fp>/`` sidecar directory
(bundles are directory trees with their own manifest/checksums) and
the row's ``artifact`` column points at it.
"""

from __future__ import annotations

import abc
import dataclasses
import json
import sqlite3
from pathlib import Path

from .. import obs
from ..pipeline.store import (ResultStore, result_from_dict,
                              result_to_dict)

__all__ = ["StoreBackend", "FileBackend", "SqlBackend", "DuckDbBackend",
           "parse_store", "grid_order_key"]

#: Schema version of the SQL cell table (``meta.store_version``).
SQL_STORE_VERSION = 1

#: Report axes materialized as real columns on the ``cells`` table, in
#: declaration order.  Must mirror ``repro.engine.report._JOB_AXES``.
AXIS_COLUMNS = ("dataset", "approach", "model", "error", "imputer",
                "metric", "seed", "rows", "n_features", "audit",
                "chunk_rows", "block_size")

_AXIS_COLUMN_TYPES = {
    "seed": "INTEGER", "rows": "INTEGER", "n_features": "INTEGER",
    "chunk_rows": "INTEGER", "block_size": "INTEGER",
}


def grid_order_key(job) -> str:
    """Serialize a job's grid-sort tuple into one binary-sortable
    string.

    ``ResultCache.outcomes`` orders cells with a Python tuple key
    (``cache._grid_order``); the SQL backend needs the identical order
    from a plain ``ORDER BY``, so this encodes the same fields —
    dataset, rows, n_features, error, imputer, model, baseline-first
    approach, metric, seed — into a ``\\x1f``-separated string whose
    bytewise (BINARY collation) order matches the tuple's: integers
    are zero-padded, optional fields carry a ``0``/``1`` none-first
    prefix, and the separator sorts below every printable character so
    prefix ordering is preserved.  Assumes non-negative rows/seed
    (true of every grid the engine expands).
    """
    def none_first(value) -> str:
        return "0" if value is None else "1" + str(value)

    parts = (job.dataset, f"{job.rows:012d}",
             none_first(job.n_features), none_first(job.error),
             none_first(job.imputer), job.model,
             "1" if job.approach is not None else "0",
             job.approach_label, none_first(job.metric),
             f"{job.seed:012d}")
    return "\x1f".join(parts)


def _axis_values(params: dict) -> tuple[dict | None, str | None]:
    """Reconstruct a stored entry's report-axis column values and grid
    sort key, or ``(None, None)`` when the params no longer parse (a
    component since removed from the registry) — such rows keep their
    payload but are excluded from SQL-compiled reports, exactly as the
    in-memory path skips them."""
    from .report import _JOB_AXES, _axis_value
    from .spec import job_from_params

    try:
        job = job_from_params(params)
    except (KeyError, TypeError, ValueError):
        return None, None
    return ({axis: _axis_value(job, axis) for axis in _JOB_AXES},
            grid_order_key(job))


class StoreBackend(abc.ABC):
    """Where the result cache keeps its entries.

    One entry per cell, addressed by the job's content fingerprint;
    each entry is the ``(results, params)`` pair the original file
    layout stored, plus optional execution ``attempts`` provenance and
    an artifact-bundle slot.  ``load`` raises ``FileNotFoundError`` on
    a missing entry and ``ValueError``/``KeyError`` on a corrupt one —
    the cache maps those to miss/corrupt-miss exactly as before.
    """

    kind: str

    # -- identity ------------------------------------------------------
    @property
    @abc.abstractmethod
    def uri(self) -> str:
        """Round-trippable address (``parse_store(uri)`` rebuilds)."""

    @property
    @abc.abstractmethod
    def location(self) -> str:
        """Human-readable place name for messages."""

    @abc.abstractmethod
    def exists(self) -> bool:
        """Whether the store exists on disk (never creates it)."""

    # -- entries -------------------------------------------------------
    @abc.abstractmethod
    def save(self, fingerprint: str, results, params: dict,
             attempts=()) -> Path:
        """Write one entry (replacing any previous one); returns the
        path holding it (the shard file, or the database)."""

    @abc.abstractmethod
    def load(self, fingerprint: str):
        """Read one entry back as ``(results, params)``."""

    @abc.abstractmethod
    def delete(self, fingerprint: str) -> None:
        """Drop one entry (no-op if absent)."""

    @abc.abstractmethod
    def fingerprints(self) -> list[str]:
        """Fingerprints of every stored entry, sorted."""

    @abc.abstractmethod
    def entry_path(self, fingerprint: str) -> Path:
        """The file a problem report should name for this entry."""

    # -- artifact slots ------------------------------------------------
    @abc.abstractmethod
    def artifact_dir(self, fingerprint: str) -> Path:
        """Directory slot for the cell's artifact bundle."""

    def note_artifact(self, fingerprint: str) -> None:
        """Record that the cell's artifact slot was (re)written."""

    def artifact_fingerprints(self) -> list[str]:
        """Fingerprints that have an artifact slot on disk (intact or
        torn), sorted."""
        return []

    # -- maintenance ---------------------------------------------------
    @abc.abstractmethod
    def corrupt(self, fingerprint: str) -> None:
        """Chaos hook: damage one stored entry in place so reads see a
        corrupt (not missing) entry."""

    def vacuum(self) -> None:
        """Reclaim space after deletions (best-effort no-op default)."""

    def spec_versions(self) -> list[int]:
        """Distinct ``spec_version`` values across stored entries."""
        versions = set()
        for fingerprint in self.fingerprints():
            try:
                _, params = self.load(fingerprint)
            except (FileNotFoundError, ValueError, KeyError):
                continue
            versions.add(int(params.get("spec_version", 0)))
        return sorted(versions)

    def close(self) -> None:
        """Release any held handles (no-op for file stores)."""


class FileBackend(StoreBackend):
    """The original sharded-JSON directory layout, byte-for-byte.

    ``<root>/<fp[:2]>/<fp>.json`` entries written atomically through
    :class:`~repro.pipeline.store.ResultStore`, with artifact bundles
    as ``<fp>.artifacts`` sibling directories.  Existing caches load
    unchanged; ``attempts`` provenance is accepted but not persisted
    (adding it would change entry bytes under old caches' diffs).
    """

    kind = "file"

    def __init__(self, root: str | Path):
        self.root = Path(root)

    @property
    def uri(self) -> str:
        return f"file:{self.root}"

    @property
    def location(self) -> str:
        return str(self.root)

    def exists(self) -> bool:
        return self.root.is_dir()

    def _store(self, fingerprint: str) -> ResultStore:
        return ResultStore(self.root / fingerprint[:2])

    def entry_path(self, fingerprint: str) -> Path:
        return self.root / fingerprint[:2] / f"{fingerprint}.json"

    def save(self, fingerprint: str, results, params: dict,
             attempts=()) -> Path:
        path = self._store(fingerprint).save(fingerprint, results,
                                             params=params)
        obs.add("store.rows")
        obs.add("cache.bytes_written", path.stat().st_size)
        return path

    def load(self, fingerprint: str):
        return self._store(fingerprint).load(fingerprint)

    def delete(self, fingerprint: str) -> None:
        self._store(fingerprint).delete(fingerprint)

    def fingerprints(self) -> list[str]:
        if not self.root.exists():
            return []
        return sorted(p.stem for p in self.root.glob("??/*.json"))

    def artifact_dir(self, fingerprint: str) -> Path:
        return self.root / fingerprint[:2] / f"{fingerprint}.artifacts"

    def artifact_fingerprints(self) -> list[str]:
        if not self.root.exists():
            return []
        return sorted(p.name[:-len(".artifacts")]
                      for p in self.root.glob("??/*.artifacts")
                      if p.is_dir())

    def corrupt(self, fingerprint: str) -> None:
        from .chaos import corrupt_entry
        corrupt_entry(self.entry_path(fingerprint))

    def vacuum(self) -> None:
        """Drop shard directories emptied by deletions."""
        if not self.root.exists():
            return
        for shard in self.root.iterdir():
            if shard.is_dir() and not any(shard.iterdir()):
                shard.rmdir()


class SqlBackend(StoreBackend):
    """One-file SQLite store: a row per cell, reports compiled to SQL.

    WAL journaling with a generous busy timeout, so sweep workers
    noting artifacts and the driver inserting results coexist.  The
    payload columns (``params``/``result``/``raw``/``attempts``) hold
    the exact JSON the file layout stores, so ``load`` is lossless;
    the axis columns and ``grid_order`` are derived at save time for
    the SQL report path.
    """

    kind = "sqlite"

    def __init__(self, path: str | Path):
        self.path = Path(path)
        self._conn: sqlite3.Connection | None = None

    @property
    def uri(self) -> str:
        return f"sqlite:{self.path}"

    @property
    def location(self) -> str:
        return str(self.path)

    def exists(self) -> bool:
        return self.path.is_file()

    def entry_path(self, fingerprint: str) -> Path:
        return self.path

    # ------------------------------------------------------------------
    def connection(self) -> sqlite3.Connection:
        """The (lazily opened) database handle, schema ready.

        A path that exists but is not a SQLite result store raises
        ``ValueError`` — callers treat that like any other corrupt
        store rather than crashing with a driver-specific error.
        """
        if self._conn is not None:
            return self._conn
        self.path.parent.mkdir(parents=True, exist_ok=True)
        conn = sqlite3.connect(self.path, timeout=30.0)
        try:
            conn.execute("PRAGMA journal_mode=WAL")
            conn.execute("PRAGMA synchronous=NORMAL")
            self._init_schema(conn)
        except sqlite3.DatabaseError as exc:
            conn.close()
            raise ValueError(
                f"{self.path} is not a sqlite result store "
                f"({type(exc).__name__}: {exc})") from None
        self._conn = conn
        return conn

    def _init_schema(self, conn: sqlite3.Connection) -> None:
        axis_cols = ", ".join(
            f'"{c}" {_AXIS_COLUMN_TYPES.get(c, "TEXT")}'
            for c in AXIS_COLUMNS)
        conn.execute(f"""
            CREATE TABLE IF NOT EXISTS cells (
                fingerprint TEXT PRIMARY KEY,
                spec_version INTEGER NOT NULL,
                {axis_cols},
                grid_order TEXT,
                params TEXT NOT NULL,
                result TEXT NOT NULL,
                raw TEXT NOT NULL,
                attempts TEXT NOT NULL DEFAULT '[]',
                artifact TEXT
            )""")
        conn.execute("""
            CREATE TABLE IF NOT EXISTS cell_values (
                fingerprint TEXT NOT NULL,
                key TEXT NOT NULL,
                value REAL,
                repr TEXT NOT NULL,
                PRIMARY KEY (fingerprint, key)
            )""")
        conn.execute("CREATE INDEX IF NOT EXISTS cell_values_key "
                     "ON cell_values (key, fingerprint)")
        conn.execute("CREATE TABLE IF NOT EXISTS meta "
                     "(key TEXT PRIMARY KEY, value TEXT)")
        conn.execute(
            "INSERT OR IGNORE INTO meta VALUES ('store_version', ?)",
            (str(SQL_STORE_VERSION),))
        conn.execute("CREATE INDEX IF NOT EXISTS cells_grid_order "
                     "ON cells (grid_order, fingerprint)")
        conn.commit()
        stored = conn.execute(
            "SELECT value FROM meta WHERE key = 'store_version'"
        ).fetchone()[0]
        if int(stored) != SQL_STORE_VERSION:
            raise ValueError(
                f"{self.path} has store version {stored}, expected "
                f"{SQL_STORE_VERSION}")

    def close(self) -> None:
        if self._conn is not None:
            self._conn.close()
            self._conn = None

    # ------------------------------------------------------------------
    def row_values(self, fingerprint: str, results, params: dict,
                   attempts=()) -> tuple:
        """The full ``cells`` row for one entry, in column order."""
        if len(results) != 1:
            raise ValueError(
                f"SQL stores keep one result per cell, got "
                f"{len(results)} for {fingerprint[:12]}…")
        axes, order = _axis_values(params)
        axes = axes or {}
        result = result_to_dict(results[0])
        artifact = self.artifact_dir(fingerprint)
        return (fingerprint, int(params.get("spec_version", 0)),
                *(axes.get(c) for c in AXIS_COLUMNS), order,
                json.dumps(params, sort_keys=True),
                json.dumps(result, sort_keys=True),
                json.dumps(result.get("raw", {}), sort_keys=True),
                json.dumps([dataclasses.asdict(a) for a in attempts]),
                str(artifact)
                if (artifact / "manifest.json").is_file() else None)

    _INSERT = ("INSERT OR REPLACE INTO cells ("
               "fingerprint, spec_version, "
               + ", ".join(f'"{c}"' for c in AXIS_COLUMNS)
               + ", grid_order, params, result, raw, attempts, artifact"
               ") VALUES (" + ", ".join(["?"] * (len(AXIS_COLUMNS) + 8))
               + ")")

    def value_rows(self, fingerprint: str, result: dict) -> list[tuple]:
        """``cell_values`` rows for one entry: every numeric metric
        field and raw key, each carried both as a bound REAL (exact
        IEEE double — never converted through text by SQLite) and as
        Python's shortest round-trip ``repr``, which the compiled
        report path aggregates for bit-parity with the in-memory
        reports."""
        from .report import _METRIC_FIELDS

        values = {name: result.get(name) for name in _METRIC_FIELDS}
        values.update(dict(result.get("raw", {})))
        rows = []
        for key, value in values.items():
            if not isinstance(value, (int, float)) \
                    or isinstance(value, bool):
                continue
            value = float(value)
            rows.append((fingerprint, key, value, repr(value)))
        return rows

    def save(self, fingerprint: str, results, params: dict,
             attempts=()) -> Path:
        conn = self.connection()
        row = self.row_values(fingerprint, results, params, attempts)
        conn.execute(self._INSERT, row)
        conn.execute("DELETE FROM cell_values WHERE fingerprint = ?",
                     (fingerprint,))
        conn.executemany(
            "INSERT INTO cell_values VALUES (?, ?, ?, ?)",
            self.value_rows(fingerprint,
                            result_to_dict(results[0])))
        conn.commit()
        obs.add("store.rows")
        return self.path

    def load(self, fingerprint: str):
        row = self.connection().execute(
            "SELECT result, params FROM cells WHERE fingerprint = ?",
            (fingerprint,)).fetchone()
        if row is None:
            raise FileNotFoundError(
                f"no entry {fingerprint!r} in {self.path}")
        results = [result_from_dict(json.loads(row[0]))]
        return results, dict(json.loads(row[1]))

    def load_attempts(self, fingerprint: str) -> list[dict]:
        """Stored execution provenance for one cell (``[]`` for cells
        written by the file backend or merged from one)."""
        row = self.connection().execute(
            "SELECT attempts FROM cells WHERE fingerprint = ?",
            (fingerprint,)).fetchone()
        if row is None:
            return []
        try:
            return list(json.loads(row[0]))
        except (ValueError, TypeError):
            return []

    def delete(self, fingerprint: str) -> None:
        conn = self.connection()
        conn.execute("DELETE FROM cells WHERE fingerprint = ?",
                     (fingerprint,))
        conn.execute("DELETE FROM cell_values WHERE fingerprint = ?",
                     (fingerprint,))
        conn.commit()

    def fingerprints(self) -> list[str]:
        if not self.exists():
            return []
        return [row[0] for row in self.connection().execute(
            "SELECT fingerprint FROM cells ORDER BY fingerprint")]

    # ------------------------------------------------------------------
    def artifact_root(self) -> Path:
        return self.path.with_name(self.path.name + ".artifacts")

    def artifact_dir(self, fingerprint: str) -> Path:
        return self.artifact_root() / fingerprint

    def note_artifact(self, fingerprint: str) -> None:
        conn = self.connection()
        conn.execute(
            "UPDATE cells SET artifact = ? WHERE fingerprint = ?",
            (str(self.artifact_dir(fingerprint)), fingerprint))
        conn.commit()

    def artifact_fingerprints(self) -> list[str]:
        root = self.artifact_root()
        if not root.is_dir():
            return []
        return sorted(p.name for p in root.iterdir() if p.is_dir())

    # ------------------------------------------------------------------
    def corrupt(self, fingerprint: str) -> None:
        """Chaos hook: tear the row's result payload (mirrors the file
        backend's truncated-shard fault) so reads flag it corrupt.
        The tear covers the cell's report values too, so compiled
        reports drop the cell exactly as the in-memory path skips an
        unreadable entry."""
        conn = self.connection()
        conn.execute(
            "UPDATE cells SET result = substr(result, 1, "
            "max(1, length(result) / 2)) || 'CHAOS' "
            "WHERE fingerprint = ?", (fingerprint,))
        conn.execute("DELETE FROM cell_values WHERE fingerprint = ?",
                     (fingerprint,))
        conn.commit()

    def vacuum(self) -> None:
        conn = self.connection()
        conn.commit()
        conn.execute("VACUUM")

    def spec_versions(self) -> list[int]:
        if not self.exists():
            return []
        return [row[0] for row in self.connection().execute(
            "SELECT DISTINCT spec_version FROM cells "
            "ORDER BY spec_version")]

    def sql_ready(self) -> bool:
        """Whether SQL-compiled reports are exact for this store: every
        row's axis columns parsed, and a single ``spec_version`` (mixed
        versions need the in-memory stale-duplicate collapse; ``repro
        cache compact`` restores the fast path)."""
        conn = self.connection()
        unparsed = conn.execute("SELECT COUNT(*) FROM cells "
                                "WHERE grid_order IS NULL").fetchone()[0]
        if unparsed:
            return False
        versions = conn.execute(
            "SELECT COUNT(DISTINCT spec_version) FROM cells"
        ).fetchone()[0]
        return versions <= 1


class DuckDbBackend(SqlBackend):
    """DuckDB variant of the SQL store (optional dependency).

    Available only when the ``duckdb`` package is importable; the
    schema and queries are shared with :class:`SqlBackend` through
    DuckDB's sqlite-compatible SQL surface.  The constructor fails
    with a clear error otherwise — the stdlib SQLite backend covers
    every environment.
    """

    kind = "duckdb"

    def __init__(self, path: str | Path):
        import importlib.util
        if importlib.util.find_spec("duckdb") is None:
            raise RuntimeError(
                "duckdb: store URIs need the optional 'duckdb' package, "
                "which is not installed; use sqlite:PATH (stdlib) "
                "instead")
        super().__init__(path)

    @property
    def uri(self) -> str:
        return f"duckdb:{self.path}"

    def connection(self):  # pragma: no cover - needs optional duckdb
        if self._conn is not None:
            return self._conn
        import duckdb
        self.path.parent.mkdir(parents=True, exist_ok=True)
        conn = duckdb.connect(str(self.path))
        self._init_schema(conn)
        self._conn = conn
        return conn


def parse_store(store) -> StoreBackend:
    """Resolve a store address to a backend.

    Accepts a backend instance (returned as-is), a ``Path`` (file
    layout), or a string: ``file:DIR``, ``sqlite:PATH``,
    ``duckdb:PATH``, or a bare directory path (file layout, the
    historical spelling every existing call site uses).
    """
    if isinstance(store, StoreBackend):
        return store
    if isinstance(store, Path):
        return FileBackend(store)
    if not isinstance(store, str):
        raise TypeError(f"expected a store URI, path, or backend, "
                        f"got {store!r}")
    scheme, sep, rest = store.partition(":")
    if sep and scheme in ("file", "sqlite", "duckdb"):
        if not rest:
            raise ValueError(f"store URI {store!r} names no path")
        if scheme == "sqlite":
            return SqlBackend(rest)
        if scheme == "duckdb":
            return DuckDbBackend(rest)
        return FileBackend(rest)
    return FileBackend(store)
