"""Declarative scenario grids for the sweep engine.

Every figure in the paper is a grid — (dataset × approach × model ×
error condition × seed) — so the engine's unit of work is one grid
*cell*, a :class:`Job`, and its unit of specification is the
:class:`ScenarioGrid` that expands into the deterministic job list.
Each job carries a stable content fingerprint hashed from its full
parameterization, which is what the result cache keys on: two sweeps
that describe the same cell — whether from the CLI, a benchmark, or an
example script — share one cache entry.
"""

from __future__ import annotations

import hashlib
import json
from collections.abc import Iterable, Sequence
from dataclasses import dataclass, field, fields

__all__ = ["BASELINE_ALIASES", "Job", "ScenarioGrid", "SPEC_VERSION"]

#: Bumped whenever the experimental protocol behind a job changes
#: meaning (it is hashed into every fingerprint, so old cache entries
#: are invalidated rather than silently reused).
SPEC_VERSION = 1

#: Spellings accepted for the fairness-unaware baseline pipeline.
BASELINE_ALIASES = {None, "", "baseline", "none", "LR"}


@dataclass(frozen=True)
class Job:
    """One fully-parameterized grid cell.

    All fields are plain picklable primitives so jobs can cross a
    process boundary and serialise canonically into a fingerprint.
    """

    dataset: str
    approach: str | None = None  # None = fairness-unaware baseline
    model: str = "lr"
    error: str | None = None  # corruption recipe for the training split
    seed: int = 0
    rows: int = 4000
    n_features: int | None = None  # truncate feature set (scalability)
    causal_samples: int = 5000
    test_fraction: float = 0.3

    def params(self) -> dict:
        """The job's full parameterization as a JSON-ready mapping."""
        return {
            "spec_version": SPEC_VERSION,
            "dataset": self.dataset,
            "approach": self.approach,
            "model": self.model,
            "error": self.error,
            "seed": int(self.seed),
            "rows": int(self.rows),
            "n_features": (None if self.n_features is None
                           else int(self.n_features)),
            "causal_samples": int(self.causal_samples),
            "test_fraction": float(self.test_fraction),
        }

    @property
    def fingerprint(self) -> str:
        """Stable content hash of the full parameterization.

        sha256 over the canonical (sorted-key, no-whitespace) JSON of
        :meth:`params` — independent of process, platform, and
        ``PYTHONHASHSEED``, so parallel workers and later sessions
        agree on cache keys.
        """
        canonical = json.dumps(self.params(), sort_keys=True,
                               separators=(",", ":"))
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()

    @property
    def approach_label(self) -> str:
        return self.approach if self.approach is not None else "LR"

    def label(self) -> str:
        """Compact human-readable cell description for progress lines."""
        parts = [self.dataset, self.approach_label, self.model,
                 f"seed={self.seed}"]
        if self.error is not None:
            parts.insert(2, f"error={self.error}")
        if self.n_features is not None:
            parts.append(f"attrs={self.n_features}")
        parts.append(f"n={self.rows}")
        return " ".join(parts)


def _normalise_approach(name: str | None) -> str | None:
    return None if name in BASELINE_ALIASES else name


def _as_tuple(values: Iterable | None, default: tuple) -> tuple:
    if values is None:
        return default
    if isinstance(values, (str, bytes)):
        raise TypeError(f"expected a sequence of values, got {values!r}")
    return tuple(values)


@dataclass
class ScenarioGrid:
    """Declarative cross-product of experimental dimensions.

    Expands to ``datasets × approaches × models × errors × seeds ×
    rows × feature_counts`` jobs, in that (deterministic) nesting
    order, with duplicate cells removed.  Dimension values are
    validated against the live registries at construction so a typo
    fails before any work is scheduled.

    ``approaches`` may contain ``None`` (or the aliases ``"baseline"``
    / ``"LR"``) for the fairness-unaware baseline; most figures want it
    as their first row.
    """

    datasets: Sequence[str]
    approaches: Sequence[str | None] = (None,)
    models: Sequence[str] = ("lr",)
    errors: Sequence[str | None] = (None,)
    seeds: Sequence[int] = (0,)
    rows: Sequence[int] = (4000,)
    feature_counts: Sequence[int | None] = (None,)
    causal_samples: int = 5000
    test_fraction: float = 0.3

    def __post_init__(self) -> None:
        from ..datasets import LOADERS
        from ..errors import RECIPES
        from ..fairness import ALL_APPROACHES
        from ..models import MODEL_FAMILIES

        self.datasets = _as_tuple(self.datasets, ())
        self.approaches = tuple(
            _normalise_approach(a)
            for a in _as_tuple(self.approaches, (None,)))
        self.models = _as_tuple(self.models, ("lr",))
        self.errors = _as_tuple(self.errors, (None,))
        self.seeds = tuple(int(s) for s in _as_tuple(self.seeds, (0,)))
        self.rows = tuple(int(r) for r in _as_tuple(self.rows, (4000,)))
        self.feature_counts = _as_tuple(self.feature_counts, (None,))

        if not self.datasets:
            raise ValueError("a ScenarioGrid needs at least one dataset")
        for pool, values, what in (
                (LOADERS, self.datasets, "dataset"),
                (ALL_APPROACHES, [a for a in self.approaches
                                  if a is not None], "approach"),
                (MODEL_FAMILIES, self.models, "model"),
                (RECIPES, [e for e in self.errors if e is not None],
                 "error recipe")):
            for value in values:
                if value not in pool:
                    raise KeyError(f"unknown {what} {value!r}; choose "
                                   f"from {sorted(pool)}")
        for seed in self.seeds:
            if seed < 0:
                raise ValueError(f"seeds must be non-negative, got {seed}")
        for n in self.rows:
            if n <= 0:
                raise ValueError(f"rows must be positive, got {n}")

    # ------------------------------------------------------------------
    @property
    def size(self) -> int:
        """Number of distinct jobs the grid expands to."""
        return len(self.expand())

    def expand(self) -> list[Job]:
        """The grid's deterministic, duplicate-free job list.

        Nesting order is the declaration order of the dimensions, so
        the list is reproducible across processes and sessions; cells
        that collapse to the same parameterization (e.g. a repeated
        approach name) appear once, at their first position.  The
        expansion is computed once per grid (dimensions are fixed
        after construction).
        """
        cached = getattr(self, "_jobs", None)
        if cached is not None:
            return list(cached)
        jobs: list[Job] = []
        seen: set[tuple] = set()
        for dataset in self.datasets:
            for n_rows in self.rows:
                for n_features in self.feature_counts:
                    for error in self.errors:
                        for model in self.models:
                            for approach in self.approaches:
                                for seed in self.seeds:
                                    job = Job(
                                        dataset=dataset,
                                        approach=approach,
                                        model=model,
                                        error=error,
                                        seed=seed,
                                        rows=n_rows,
                                        n_features=n_features,
                                        causal_samples=self.causal_samples,
                                        test_fraction=self.test_fraction,
                                    )
                                    key = (dataset, approach, model,
                                           error, seed, n_rows,
                                           n_features)
                                    if key not in seen:
                                        seen.add(key)
                                        jobs.append(job)
        self._jobs = jobs
        return list(jobs)

    def describe(self) -> str:
        """One-line summary for logs and CLI output."""
        dims = []
        for name in ("datasets", "approaches", "models", "errors",
                     "seeds", "rows", "feature_counts"):
            values = getattr(self, name)
            if len(values) > 1 or (len(values) == 1
                                   and values[0] is not None):
                dims.append(f"{len(values)} {name}")
        return f"grid of {self.size} cells ({', '.join(dims)})"
