"""Declarative scenario grids for the sweep engine.

Every figure in the paper is a grid — (dataset × approach × model ×
error condition × seed) — so the engine's unit of work is one grid
*cell*, a :class:`Job`, and its unit of specification is the
:class:`ScenarioGrid` that expands into the deterministic job list.
Each job carries a stable content fingerprint hashed from its full
parameterization, which is what the result cache keys on: two sweeps
that describe the same cell — whether from the CLI, a benchmark, a
config file, or an example script — share one cache entry.

Grid dimensions are registry specs: any entry may carry parameter
overrides in the :mod:`repro.registry` spec grammar
(``"Celis-pp(tau=0.9)"``, ``{"key": "knn", "params": {"k": 7}}``), and
those parameters are part of the cell's fingerprint — a changed
``tau`` is a cache miss, not a silent reuse.
"""

from __future__ import annotations

import hashlib
import json
from collections.abc import Iterable, Sequence
from dataclasses import dataclass, field

__all__ = ["AUDITS", "BASELINE_ALIASES", "Job", "ScenarioGrid",
           "SPEC_VERSION", "job_from_params"]

#: Bumped whenever the experimental protocol behind a job changes
#: meaning (it is hashed into every fingerprint, so old cache entries
#: are invalidated rather than silently reused).  Version 2: registry
#: parameter overrides and the optional counterfactual audit joined
#: the parameterization.  Version 3: the imputer and metric families
#: became sweep axes (``imputer``/``metric`` + ``*_params`` fields).
#: Version 4: the pairwise-kernel ``block_size`` knob joined the
#: parameterization (k-NN consumers' tie-breaking can depend on it).
SPEC_VERSION = 4

#: Spellings accepted for the fairness-unaware baseline pipeline.
BASELINE_ALIASES = {None, "", "baseline", "none", "LR"}

#: Recognised per-cell audit extensions (``None`` = paper metrics only).
AUDITS = (None, "counterfactual")

#: Parameters ``audit_params`` may tune (the keyword surface of
#: ``evaluate_counterfactual`` minus what the job protocol owns:
#: approach/model/seed and the explicit ``chunk_rows`` field).
AUDIT_PARAM_NAMES = frozenset({"n_bins", "n_samples", "n_particles",
                               "max_rows"})


def check_audit_params(audit: str | None, params: dict) -> dict:
    """Validate an audit configuration at construction time.

    Unknown parameter names (or audit parameters without an audit to
    consume them) must fail before any cell is scheduled, not
    per-cell inside a worker.
    """
    params = _check_json_params(dict(params), "audit")
    if audit not in AUDITS:
        raise ValueError(f"unknown audit {audit!r}; choose "
                         f"from {[a for a in AUDITS if a]}")
    if params and audit is None:
        raise ValueError(
            f"audit_params {sorted(params)} given without an audit; "
            f"set audit to one of {[a for a in AUDITS if a]}")
    unknown = sorted(set(params) - AUDIT_PARAM_NAMES)
    if unknown:
        raise ValueError(
            f"unknown audit parameter(s) {unknown}; accepted: "
            f"{sorted(AUDIT_PARAM_NAMES)} (seed/chunk_rows/approach/"
            "model are controlled by their own job fields)")
    return params


@dataclass(frozen=True)
class Job:
    """One fully-parameterized grid cell.

    All fields are plain picklable primitives (registry keys, numbers,
    and JSON-ready parameter mappings) so jobs can cross a process
    boundary and serialise canonically into a fingerprint.
    """

    dataset: str
    approach: str | None = None  # None = fairness-unaware baseline
    model: str = "lr"
    error: str | None = None  # corruption recipe for the training split
    imputer: str | None = None  # repairs NaNs left in the train split
    metric: str | None = None  # selected report metric for this cell
    seed: int = 0
    rows: int = 4000
    n_features: int | None = None  # truncate feature set (scalability)
    causal_samples: int = 5000
    test_fraction: float = 0.3
    # Registry parameter overrides (merged over each component's
    # declared defaults); all hash into the fingerprint.
    dataset_params: dict = field(default_factory=dict)
    approach_params: dict = field(default_factory=dict)
    model_params: dict = field(default_factory=dict)
    error_params: dict = field(default_factory=dict)
    imputer_params: dict = field(default_factory=dict)
    metric_params: dict = field(default_factory=dict)
    # Optional per-cell audit extension and its batching knobs.
    audit: str | None = None  # e.g. "counterfactual"
    chunk_rows: int | None = None  # abduction rows per batch
    audit_params: dict = field(default_factory=dict)
    # Pairwise-kernel block size for every k-NN-shaped component the
    # cell builds (knn model/imputer, metric audits); None = default.
    block_size: int | None = None
    # Worker threads over kernel tiles / abduction chunks inside the
    # cell; None = default (REPRO_THREADS or 1).  Purely executional:
    # exact float64 results are thread-count-independent, so this
    # field is deliberately EXCLUDED from params()/fingerprint — two
    # runs at different thread counts share one cache entry.
    threads: int | None = None

    def params(self) -> dict:
        """The job's full parameterization as a JSON-ready mapping.

        Component parameters appear *resolved* — registry defaults
        merged under the job's overrides — so two jobs that build the
        same component share one entry (``Celis-pp`` versus an
        explicit ``Celis-pp(tau=0.8)``), and editing a declared
        default in the registry changes the fingerprint instead of
        silently re-serving results computed under the old default.
        """
        from ..registry import (APPROACHES, DATASETS, ERRORS, IMPUTERS,
                                METRICS, MODELS)

        return {
            "spec_version": SPEC_VERSION,
            "dataset": self.dataset,
            "approach": self.approach,
            "model": self.model,
            "error": self.error,
            "imputer": self.imputer,
            "metric": self.metric,
            "seed": int(self.seed),
            "rows": int(self.rows),
            "n_features": (None if self.n_features is None
                           else int(self.n_features)),
            "causal_samples": int(self.causal_samples),
            "test_fraction": float(self.test_fraction),
            "dataset_params": DATASETS.resolved_params(
                self.dataset, self.dataset_params),
            "approach_params": (
                {} if self.approach is None
                else APPROACHES.resolved_params(self.approach,
                                                self.approach_params)),
            "model_params": MODELS.resolved_params(self.model,
                                                   self.model_params),
            "error_params": (
                {} if self.error is None
                else ERRORS.resolved_params(self.error,
                                            self.error_params)),
            "imputer_params": (
                {} if self.imputer is None
                else IMPUTERS.resolved_params(self.imputer,
                                              self.imputer_params)),
            "metric_params": (
                {} if self.metric is None
                else METRICS.resolved_params(self.metric,
                                             self.metric_params)),
            "audit": self.audit,
            "chunk_rows": (None if self.chunk_rows is None
                           else int(self.chunk_rows)),
            "audit_params": dict(self.audit_params),
            "block_size": (None if self.block_size is None
                           else int(self.block_size)),
            # `threads` intentionally absent: it cannot change results
            # (see the field comment), so it must not split the cache.
        }

    @property
    def fingerprint(self) -> str:
        """Stable content hash of the full parameterization.

        sha256 over the canonical (sorted-key, no-whitespace) JSON of
        :meth:`params` — independent of process, platform, and
        ``PYTHONHASHSEED``, so parallel workers and later sessions
        agree on cache keys.  Parameter overrides are part of the
        hash: ``Celis-pp(tau=0.9)`` and ``Celis-pp`` are different
        cells.
        """
        canonical = json.dumps(self.params(), sort_keys=True,
                               separators=(",", ":"))
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()

    def __hash__(self) -> int:
        return hash(self.fingerprint)

    @property
    def approach_label(self) -> str:
        if self.approach is None:
            return "LR"
        from ..registry import format_spec
        return format_spec(self.approach, self.approach_params)

    def label(self) -> str:
        """Compact human-readable cell description for progress lines."""
        parts = [self.dataset, self.approach_label, self.model,
                 f"seed={self.seed}"]
        if self.imputer is not None:
            parts.insert(2, f"imputer={self.imputer}")
        if self.error is not None:
            parts.insert(2, f"error={self.error}")
        if self.metric is not None:
            parts.append(f"metric={self.metric}")
        if self.n_features is not None:
            parts.append(f"attrs={self.n_features}")
        if self.audit is not None:
            parts.append(f"audit={self.audit}")
        parts.append(f"n={self.rows}")
        return " ".join(parts)


def job_from_params(params) -> Job:
    """Reconstruct a :class:`Job` from a stored cache ``params`` block.

    Inverse of :meth:`Job.params` for the reporting path: a finished
    sweep cache fully describes its cells, so outcomes can be rebuilt
    without re-executing anything.  Stored component parameters are
    *resolved* (registry defaults were merged in at save time);
    entries that merely restate a currently-declared default are
    stripped back to overrides, so reconstructed jobs carry the same
    axis labels — and, for current-``SPEC_VERSION`` entries, the same
    fingerprints — as live ones.  Blocks written under an older
    ``spec_version`` still reconstruct (absent axes default), they just
    fingerprint differently.
    """
    from ..registry import (APPROACHES, DATASETS, ERRORS, IMPUTERS,
                            METRICS, MODELS)

    def overrides(registry, key) -> dict:
        stored = dict(params.get(f"{registry.family}_params") or {})
        if key is None or key not in registry:
            return stored
        defaults = registry.get(key).defaults
        return {name: value for name, value in stored.items()
                if not (name in defaults and defaults[name] == value)}

    dataset = params["dataset"]
    n_features = params.get("n_features")
    chunk_rows = params.get("chunk_rows")
    block_size = params.get("block_size")
    return Job(
        dataset=dataset,
        approach=params.get("approach"),
        model=params.get("model", "lr"),
        error=params.get("error"),
        imputer=params.get("imputer"),
        metric=params.get("metric"),
        seed=int(params.get("seed", 0)),
        rows=int(params.get("rows", 4000)),
        n_features=None if n_features is None else int(n_features),
        causal_samples=int(params.get("causal_samples", 5000)),
        test_fraction=float(params.get("test_fraction", 0.3)),
        dataset_params=overrides(DATASETS, dataset),
        approach_params=overrides(APPROACHES, params.get("approach")),
        model_params=overrides(MODELS, params.get("model", "lr")),
        error_params=overrides(ERRORS, params.get("error")),
        imputer_params=overrides(IMPUTERS, params.get("imputer")),
        metric_params=overrides(METRICS, params.get("metric")),
        audit=params.get("audit"),
        chunk_rows=None if chunk_rows is None else int(chunk_rows),
        audit_params=dict(params.get("audit_params") or {}),
        block_size=None if block_size is None else int(block_size),
    )


def _normalise_approach(name):
    """Map any baseline alias to ``None``; other specs pass through."""
    if name is None or (isinstance(name, str) and name in BASELINE_ALIASES):
        return None
    return name


def _as_tuple(values: Iterable | None, default: tuple) -> tuple:
    if values is None:
        return default
    if isinstance(values, (str, bytes)):
        raise TypeError(f"expected a sequence of values, got {values!r}")
    return tuple(values)


def _check_json_params(params: dict, what: str) -> dict:
    try:
        json.dumps(params, sort_keys=True)
    except (TypeError, ValueError):
        raise ValueError(
            f"{what} parameters must be JSON-serialisable literals, "
            f"got {params!r}") from None
    return params


def check_fingerprintable_params(spec: str, what: str) -> None:
    """Reject spec parameters that cannot enter a fingerprint.

    Parameter values are hashed as canonical JSON; a value that is a
    valid Python literal but not JSON-ready (e.g. a set) must fail at
    construction, not later inside :attr:`Job.fingerprint`.
    """
    from ..registry import parse_spec

    _check_json_params(parse_spec(spec)[1], what)


def check_reserved_params(spec: str | None, reserved: dict[str, str]
                          ) -> None:
    """Reject spec parameters the experiment protocol owns.

    ``reserved`` maps a parameter name to the field that controls it
    (e.g. the grid's ``rows``/``seeds`` dimensions); letting a spec
    set it too would make the cell's parameterization ambiguous.
    """
    if spec is None:
        return
    from ..registry import parse_spec

    key, params = parse_spec(spec)
    for name, owner in reserved.items():
        if name in params:
            raise ValueError(
                f"spec {spec!r} may not set {name!r}: it is controlled "
                f"by {owner}")


@dataclass
class ScenarioGrid:
    """Declarative cross-product of experimental dimensions.

    Expands to ``datasets × approaches × models × errors × imputers ×
    metrics × seeds × rows × feature_counts`` jobs, in a deterministic
    nesting order, with duplicate cells removed.  Dimension values are
    registry specs — a bare key or a parameterized
    ``"key(param=value)"`` string / nested dict — validated against
    the live registries at construction so a typo (in a key *or* a
    parameter name) fails before any work is scheduled.

    ``approaches`` may contain ``None`` (or the aliases ``"baseline"``
    / ``"LR"``) for the fairness-unaware baseline; most figures want it
    as their first row.

    ``imputers`` entries repair any NaNs the error recipe left in the
    training split (``None`` = no repair); ``metrics`` entries select a
    registered report metric whose value each cell surfaces as
    ``raw["metric_value"]`` (``None`` = no selection).  Every metric
    entry is a full grid cell — K metrics run (and cache) each
    experiment K times — so sweep ``metrics`` only when the metric
    must be a first-class grid coordinate (per-metric exports, a
    ``metric`` pivot axis); every result always carries all metric
    fields anyway, and :func:`~repro.engine.report.pivot` reads them
    at report time for free.

    ``audit="counterfactual"`` extends every cell with the rung-3
    counterfactual audit; ``chunk_rows`` bounds its abduction batches
    and ``audit_params`` (``n_particles``, ``max_rows``, ``n_bins``,
    ``n_samples``) tune its cost.  ``block_size`` bounds the pairwise
    kernel's query blocks for every k-NN-shaped component a cell
    builds (the knn model and imputer); ``threads`` parallelises
    those kernel tiles (and abduction chunks) inside each cell —
    execution-only, never part of the fingerprint.
    """

    datasets: Sequence[str]
    approaches: Sequence[str | None] = (None,)
    models: Sequence[str] = ("lr",)
    errors: Sequence[str | None] = (None,)
    imputers: Sequence[str | None] = (None,)
    metrics: Sequence[str | None] = (None,)
    seeds: Sequence[int] = (0,)
    rows: Sequence[int] = (4000,)
    feature_counts: Sequence[int | None] = (None,)
    causal_samples: int = 5000
    test_fraction: float = 0.3
    audit: str | None = None
    chunk_rows: int | None = None
    audit_params: dict = field(default_factory=dict)
    block_size: int | None = None
    threads: int | None = None

    def __post_init__(self) -> None:
        from ..registry import (APPROACHES, DATASETS, ERRORS, IMPUTERS,
                                METRICS, MODELS)

        self.datasets = tuple(
            DATASETS.canonical(d) for d in _as_tuple(self.datasets, ()))
        self.approaches = tuple(
            None if _normalise_approach(a) is None
            else APPROACHES.canonical(a)
            for a in _as_tuple(self.approaches, (None,)))
        self.models = tuple(
            MODELS.canonical(m) for m in _as_tuple(self.models, ("lr",)))
        self.errors = tuple(
            None if e is None else ERRORS.canonical(e)
            for e in _as_tuple(self.errors, (None,)))
        self.imputers = tuple(
            None if i is None else IMPUTERS.canonical(i)
            for i in _as_tuple(self.imputers, (None,)))
        self.metrics = tuple(
            None if m is None else METRICS.canonical(m)
            for m in _as_tuple(self.metrics, (None,)))
        self.seeds = tuple(int(s) for s in _as_tuple(self.seeds, (0,)))
        self.rows = tuple(int(r) for r in _as_tuple(self.rows, (4000,)))
        self.feature_counts = _as_tuple(self.feature_counts, (None,))
        self.audit_params = check_audit_params(self.audit,
                                               self.audit_params)

        if not self.datasets:
            raise ValueError("a ScenarioGrid needs at least one dataset")
        for dataset_spec in self.datasets:
            check_reserved_params(dataset_spec, {
                "n": "the rows dimension", "seed": "the seeds dimension"})
        for approach_spec in self.approaches:
            check_reserved_params(approach_spec,
                                  {"seed": "the seeds dimension"})
        for what, specs in (("dataset", self.datasets),
                            ("approach", self.approaches),
                            ("model", self.models),
                            ("error", self.errors),
                            ("imputer", self.imputers),
                            ("metric", self.metrics)):
            for spec in specs:
                if spec is not None:
                    check_fingerprintable_params(spec, what)
        for seed in self.seeds:
            if seed < 0:
                raise ValueError(f"seeds must be non-negative, got {seed}")
        for n in self.rows:
            if n <= 0:
                raise ValueError(f"rows must be positive, got {n}")
        if self.chunk_rows is not None and self.chunk_rows < 1:
            raise ValueError(
                f"chunk_rows must be positive, got {self.chunk_rows}")
        if self.block_size is not None and self.block_size < 1:
            raise ValueError(
                f"block_size must be positive, got {self.block_size}")
        if self.threads is not None and self.threads < 1:
            raise ValueError(
                f"threads must be positive, got {self.threads}")

    # ------------------------------------------------------------------
    @property
    def size(self) -> int:
        """Number of distinct jobs the grid expands to."""
        return len(self.expand())

    def expand(self) -> list[Job]:
        """The grid's deterministic, duplicate-free job list.

        Nesting order is the declaration order of the dimensions, so
        the list is reproducible across processes and sessions; cells
        that collapse to the same parameterization (e.g. a repeated
        approach name) appear once, at their first position.  The
        expansion is computed once per grid (dimensions are fixed
        after construction).
        """
        cached = getattr(self, "_jobs", None)
        if cached is not None:
            return list(cached)
        from ..registry import parse_spec

        jobs: list[Job] = []
        seen: set[str] = set()
        for dataset_spec in self.datasets:
            dataset, dataset_params = parse_spec(dataset_spec)
            for n_rows in self.rows:
                for n_features in self.feature_counts:
                    for error_spec in self.errors:
                        error, error_params = (
                            (None, {}) if error_spec is None
                            else parse_spec(error_spec))
                        for imputer_spec in self.imputers:
                            imputer, imputer_params = (
                                (None, {}) if imputer_spec is None
                                else parse_spec(imputer_spec))
                            for model_spec in self.models:
                                model, model_params = parse_spec(
                                    model_spec)
                                for approach_spec in self.approaches:
                                    approach, approach_params = (
                                        (None, {})
                                        if approach_spec is None
                                        else parse_spec(approach_spec))
                                    self._expand_cell(
                                        jobs, seen,
                                        dataset, dataset_params,
                                        n_rows, n_features,
                                        error, error_params,
                                        imputer, imputer_params,
                                        model, model_params,
                                        approach, approach_params)
        self._jobs = jobs
        return list(jobs)

    def _expand_cell(self, jobs, seen, dataset, dataset_params, n_rows,
                     n_features, error, error_params, imputer,
                     imputer_params, model, model_params, approach,
                     approach_params) -> None:
        """Innermost expansion: metrics × seeds for one grid point."""
        from ..registry import parse_spec

        for metric_spec in self.metrics:
            metric, metric_params = ((None, {}) if metric_spec is None
                                     else parse_spec(metric_spec))
            for seed in self.seeds:
                job = Job(
                    dataset=dataset, approach=approach, model=model,
                    error=error, imputer=imputer, metric=metric,
                    seed=seed, rows=n_rows, n_features=n_features,
                    causal_samples=self.causal_samples,
                    test_fraction=self.test_fraction,
                    dataset_params=dataset_params,
                    approach_params=approach_params,
                    model_params=model_params,
                    error_params=error_params,
                    imputer_params=imputer_params,
                    metric_params=metric_params,
                    audit=self.audit, chunk_rows=self.chunk_rows,
                    audit_params=dict(self.audit_params),
                    block_size=self.block_size,
                    threads=self.threads,
                )
                fingerprint = job.fingerprint
                if fingerprint not in seen:
                    seen.add(fingerprint)
                    jobs.append(job)

    def describe(self) -> str:
        """One-line summary for logs and CLI output."""
        dims = []
        for name in ("datasets", "approaches", "models", "errors",
                     "imputers", "metrics", "seeds", "rows",
                     "feature_counts"):
            values = getattr(self, name)
            if len(values) > 1 or (len(values) == 1
                                   and values[0] is not None):
                dims.append(f"{len(values)} {name}")
        extras = f", audit={self.audit}" if self.audit else ""
        return f"grid of {self.size} cells ({', '.join(dims)}{extras})"
