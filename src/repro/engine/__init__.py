"""Parallel sweep engine: declarative scenario grids, process-pool
execution, and content-addressed result caching.

The paper's figures are grids — (dataset × approach × model × error ×
seed) — and this subsystem is the one way to run them:

* :mod:`~repro.engine.spec` — :class:`ScenarioGrid` declares the grid
  and expands it to fingerprinted :class:`Job` cells.
* :mod:`~repro.engine.cache` — :class:`ResultCache` skips any cell
  whose fingerprint already has a stored result.
* :mod:`~repro.engine.backend` — pluggable result-store backends
  behind the cache (``file:DIR`` sharded JSON, ``sqlite:PATH`` /
  ``duckdb:PATH`` one-row-per-cell databases) with compaction and
  cross-host merge.
* :mod:`~repro.engine.sqlreport` — report filters, pivots, and
  overhead series compiled to SQL (window functions + ``GROUP BY``)
  on the SQL backends, bit-identical to the in-memory path.
* :mod:`~repro.engine.executor` — :func:`run_sweep` executes cells
  over a process pool with failure isolation and progress/ETA.
* :mod:`~repro.engine.resilience` — :class:`RetryPolicy` adds retries
  with deterministic backoff, per-cell deadlines, pool-crash recovery
  with quarantine, and a circuit breaker.
* :mod:`~repro.engine.chaos` — :class:`FaultPlan` injects
  deterministic faults (errors, hangs, worker kills, shard
  corruption) at exact ``(cell, attempt)`` points for resilience
  testing.
* :mod:`~repro.engine.report` — pivots a finished grid into the
  per-figure tables, filters outcomes by any axis, and exports flat
  records; together with :meth:`ResultCache.outcomes` it turns a
  cache directory into a query surface (``repro report``).
"""

from .backend import (FileBackend, SqlBackend, StoreBackend,
                      parse_store)
from .cache import (CacheProblem, CompactStats, MergeStats,
                    ResultCache)
from .chaos import Fault, FaultPlan
from .executor import (JobOutcome, SweepProgress, SweepReport, cell_attrs,
                       execute_job, run_sweep)
from .resilience import (Attempt, RetryPolicy, TransientError,
                         classify_exception)
from .report import (aggregate_over_seeds, cell_key, export_csv,
                     export_json, filter_outcomes, format_pivot_table,
                     grid_slices, grid_table, group_outcomes,
                     mean_result, outcome_records, overhead_series,
                     pivot)
from .spec import (AUDITS, BASELINE_ALIASES, SPEC_VERSION, Job,
                   ScenarioGrid, job_from_params)

__all__ = [
    "AUDITS", "BASELINE_ALIASES", "Job", "ScenarioGrid", "SPEC_VERSION",
    "job_from_params",
    "CacheProblem", "CompactStats", "MergeStats", "ResultCache",
    "FileBackend", "SqlBackend", "StoreBackend", "parse_store",
    "JobOutcome", "SweepProgress", "SweepReport", "cell_attrs",
    "execute_job", "run_sweep",
    "Attempt", "RetryPolicy", "TransientError", "classify_exception",
    "Fault", "FaultPlan",
    "aggregate_over_seeds", "cell_key", "grid_table", "group_outcomes",
    "mean_result", "overhead_series", "pivot",
    "filter_outcomes", "outcome_records", "export_json", "export_csv",
    "format_pivot_table", "grid_slices",
]
