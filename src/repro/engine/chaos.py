"""Deterministic chaos harness for the sweep engine.

A :class:`FaultPlan` is a list of :class:`Fault` rules, each keyed by
*which cell* (a substring of the job label, or a fingerprint prefix)
and *which attempt* — so a plan is a pure function
``(cell, attempt) -> fault`` with no randomness and no hidden state:
replaying a faulted sweep injects exactly the same faults at exactly
the same points.

Faults model the failure classes a real hours-long sweep hits:

``transient``
    Raise :class:`ChaosTransientError` inside the cell (a retryable
    infrastructure-shaped failure: flaky I/O, resource pressure).
``error``
    Raise :class:`ChaosDeterministicError` (a ``ValueError``): the
    fail-fast path — retrying must *not* happen.
``hang``
    Sleep ``seconds`` inside the cell before doing the work, driving
    it past any per-cell deadline so the parent kills its worker.
``kill``
    ``os._exit`` the worker process mid-cell — the SIGKILL/OOM shape
    that breaks a shared ``ProcessPoolExecutor``.
``corrupt``
    Parent-side: after the cell's result is written to the cache,
    corrupt the shard file on disk (exercises the ``cache.corrupt``
    detection and ``repro cache verify``).

Delivery: the parent serialises the plan into the ``REPRO_CHAOS``
environment variable before creating the worker pool, and
:func:`maybe_fault` (called at the top of every guarded cell
execution) reads it back — so faults reach pool workers, rebuilt
pools, and inline execution through one mechanism.

The invariant the chaos test suite proves: because every retry
re-derives the cell from the job's own seed, a faulted sweep's final
results are **byte-identical** to the fault-free run, with every cell
accounted for.

Plans load from JSON/YAML files (``{"faults": [{"fault": "kill",
"match": "seed=0", "attempt": 0}, ...]}``) or from a compact inline
spec — semicolon-separated ``FAULT[(SECONDS)][:MATCH][@ATTEMPT]``
rules::

    repro sweep ... --retry 3 --timeout 5 \\
        --chaos 'transient:seed=0@0;kill:Hardt@0;hang(30):german@1'
"""

from __future__ import annotations

import json
import os
import re
from contextlib import contextmanager
from dataclasses import dataclass
from pathlib import Path

from .resilience import TransientError

__all__ = ["ChaosDeterministicError", "ChaosTransientError", "ENV_VAR",
           "Fault", "FaultPlan", "activate", "active_plan",
           "corrupt_entry", "maybe_fault"]

#: Environment variable carrying the active plan to worker processes.
ENV_VAR = "REPRO_CHAOS"

#: Recognised fault kinds (see module docstring).
FAULT_KINDS = ("transient", "error", "hang", "kill", "corrupt")

#: Exit status a ``kill`` fault terminates its worker with (any
#: non-zero status breaks the pool; a distinctive one aids debugging).
KILL_STATUS = 77


class ChaosTransientError(TransientError):
    """Injected retryable failure (classified transient)."""


class ChaosDeterministicError(ValueError):
    """Injected fail-fast failure (classified deterministic)."""


@dataclass(frozen=True)
class Fault:
    """One injection rule: fire ``fault`` when a cell whose label
    contains ``match`` (or whose fingerprint starts with it; empty
    matches every cell) executes its ``attempt``-th attempt."""

    fault: str
    match: str = ""
    attempt: int = 0
    seconds: float = 30.0  # hang duration

    def __post_init__(self) -> None:
        if self.fault not in FAULT_KINDS:
            raise ValueError(f"unknown fault {self.fault!r}; choose "
                             f"from {list(FAULT_KINDS)}")
        if self.attempt < 0:
            raise ValueError(
                f"fault attempt must be >= 0, got {self.attempt}")
        if self.seconds <= 0:
            raise ValueError(
                f"fault seconds must be > 0, got {self.seconds}")

    def applies(self, label: str, fingerprint: str, attempt: int) -> bool:
        if attempt != self.attempt:
            return False
        return (self.match == "" or self.match in label
                or fingerprint.startswith(self.match))

    def describe(self) -> str:
        """Render back to the inline-spec syntax (parse-roundtrips)."""
        timing = (f"({self.seconds:g})" if self.fault == "hang" else "")
        target = f":{self.match}" if self.match else ""
        return f"{self.fault}{timing}{target}@{self.attempt}"


_INLINE = re.compile(
    r"^(?P<fault>[a-z]+)"
    r"(?:\((?P<seconds>[0-9.]+)\))?"
    r"(?::(?P<match>[^@]*))?"
    r"(?:@(?P<attempt>\d+))?$")


@dataclass(frozen=True)
class FaultPlan:
    """An ordered set of :class:`Fault` rules (first match wins)."""

    faults: tuple = ()

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def parse(cls, text: str) -> "FaultPlan":
        """Parse the compact inline spec (see module docstring)."""
        faults = []
        for item in text.split(";"):
            item = item.strip()
            if not item:
                continue
            parsed = _INLINE.match(item)
            if parsed is None:
                raise ValueError(
                    f"bad fault spec {item!r}; expected "
                    "FAULT[(SECONDS)][:MATCH][@ATTEMPT], e.g. "
                    "'kill:seed=0@0' or 'hang(30):german'")
            fields = {"fault": parsed["fault"],
                      "match": parsed["match"] or "",
                      "attempt": int(parsed["attempt"] or 0)}
            if parsed["seconds"] is not None:
                fields["seconds"] = float(parsed["seconds"])
            faults.append(Fault(**fields))
        if not faults:
            raise ValueError(f"fault plan {text!r} declares no faults")
        return cls(faults=tuple(faults))

    @classmethod
    def from_config(cls, config) -> "FaultPlan":
        """Build from a ``{"faults": [...]}`` mapping or a bare list of
        fault mappings / inline rule strings."""
        if isinstance(config, dict):
            config = config.get("faults", ())
        faults = []
        for entry in config:
            if isinstance(entry, str):
                faults.extend(cls.parse(entry).faults)
            elif isinstance(entry, dict):
                unknown = sorted(set(entry)
                                 - {"fault", "match", "attempt", "seconds"})
                if unknown:
                    raise ValueError(
                        f"unknown fault field(s) {unknown}; expected "
                        "fault/match/attempt/seconds")
                faults.append(Fault(**entry))
            else:
                raise ValueError(f"bad fault entry {entry!r}")
        if not faults:
            raise ValueError("fault plan declares no faults")
        return cls(faults=tuple(faults))

    @classmethod
    def load(cls, source) -> "FaultPlan":
        """The CLI entry point: a plan file path (JSON/YAML), an inline
        spec string, or an already-built mapping/list."""
        if isinstance(source, FaultPlan):
            return source
        if isinstance(source, (dict, list, tuple)):
            return cls.from_config(source)
        path = Path(source)
        if path.suffix.lower() in (".json", ".yaml", ".yml") \
                or path.exists():
            from ..api import load_config
            return cls.from_config(load_config(path))
        return cls.parse(str(source))

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def find(self, label: str, fingerprint: str, attempt: int,
             kinds=None) -> Fault | None:
        """First fault applying to this (cell, attempt), optionally
        restricted to a subset of kinds."""
        for fault in self.faults:
            if kinds is not None and fault.fault not in kinds:
                continue
            if fault.applies(label, fingerprint, attempt):
                return fault
        return None

    @property
    def needs_pool(self) -> bool:
        """Whether any fault must run in a worker process (``kill``
        would take the parent down; ``hang`` needs a killable host)."""
        return any(f.fault in ("kill", "hang") for f in self.faults)

    def describe(self) -> str:
        return "; ".join(f.describe() for f in self.faults)

    # ------------------------------------------------------------------
    # Env-var delivery
    # ------------------------------------------------------------------
    def to_json(self) -> str:
        return json.dumps([{"fault": f.fault, "match": f.match,
                            "attempt": f.attempt, "seconds": f.seconds}
                           for f in self.faults], sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        return cls.from_config(json.loads(text))


@contextmanager
def activate(plan: FaultPlan | None):
    """Expose ``plan`` through :data:`ENV_VAR` for the duration of the
    block (workers inherit the environment at pool creation, so this
    must wrap the pool's lifetime; rebuilt pools inherit it too).
    ``None`` passes through without touching the environment."""
    if plan is None:
        yield
        return
    previous = os.environ.get(ENV_VAR)
    os.environ[ENV_VAR] = plan.to_json()
    try:
        yield
    finally:
        if previous is None:
            os.environ.pop(ENV_VAR, None)
        else:
            os.environ[ENV_VAR] = previous


_cache: tuple[str, FaultPlan] | None = None


def active_plan() -> FaultPlan | None:
    """The plan delivered through the environment, or ``None``.

    Parsed once per distinct env-var value per process (the common
    case — no chaos — is a single ``os.environ`` probe).
    """
    global _cache
    raw = os.environ.get(ENV_VAR)
    if raw is None:
        return None
    if _cache is None or _cache[0] != raw:
        _cache = (raw, FaultPlan.from_json(raw))
    return _cache[1]


def maybe_fault(label: str, fingerprint: str, attempt: int) -> None:
    """Worker-side injection point, called before a cell executes.

    No-op without an active plan or a matching in-cell fault.
    ``corrupt`` faults are parent-side (see :func:`corrupt_entry`) and
    ignored here.
    """
    plan = active_plan()
    if plan is None:
        return
    fault = plan.find(label, fingerprint, attempt,
                      kinds=("transient", "error", "hang", "kill"))
    if fault is None:
        return
    from .. import obs
    obs.warning("chaos.fault", fault=fault.fault, cell=label,
                attempt=attempt)
    if fault.fault == "transient":
        raise ChaosTransientError(
            f"chaos: injected transient failure (attempt {attempt})")
    if fault.fault == "error":
        raise ChaosDeterministicError(
            f"chaos: injected deterministic failure (attempt {attempt})")
    if fault.fault == "hang":
        import time
        time.sleep(fault.seconds)
        return  # then proceed normally — the deadline decides its fate
    if fault.fault == "kill":
        os._exit(KILL_STATUS)  # simulate SIGKILL/OOM: no cleanup, no pickle


def corrupt_entry(path: str | Path) -> None:
    """Parent-side ``corrupt`` fault: damage a cache shard on disk the
    way an interrupted write or bad sector would — the entry stays
    present but no longer parses."""
    path = Path(path)
    data = path.read_bytes()
    path.write_bytes(data[: max(1, len(data) // 2)] + b"\x00CHAOS")
