"""Process-pool execution of scenario grids.

:func:`run_sweep` drives a job list end to end: cache lookups first,
then fresh cells through a ``ProcessPoolExecutor`` (or inline when
``max_workers=1``).  The properties the experiments rely on:

* **Determinism** — :func:`execute_job` derives *all* randomness from
  the job's own seed, so a 2-worker sweep produces byte-identical
  results to a serial run of the same grid, a cache hit is
  indistinguishable from a recomputation, and a *retried* cell is
  indistinguishable from one that succeeded first try.
* **Failure isolation** — one diverging cell records a traceback in
  its :class:`JobOutcome`; the remaining cells still run.
* **Resilience** — with a :class:`~repro.engine.resilience.RetryPolicy`,
  transient failures retry with deterministic backoff (deterministic
  failures fail fast), cells past their per-cell deadline have their
  worker pool killed and are re-queued, a broken pool (SIGKILLed /
  OOM-killed worker) is rebuilt with its in-flight cells re-queued —
  a cell repeatedly present at pool crashes is quarantined — and a
  ``max_failures`` circuit breaker aborts a hopeless grid instead of
  burning hours on it.  Every execution a cell consumed is recorded
  as an :class:`~repro.engine.resilience.Attempt` on its outcome.
* **Interruptibility** — ``Ctrl-C`` mid-sweep cancels outstanding
  work and returns the partial :class:`SweepReport`
  (``report.interrupted`` set); completed cells are already in the
  cache, so the next invocation resumes from them.
* **Progress** — an optional callback receives a
  :class:`SweepProgress` snapshot (done/cached/failed counts, elapsed,
  ETA) after every finished cell.
* **Telemetry** — with a :class:`~repro.obs.TraceCollector` passed as
  ``trace``, every executed cell records a span tree (phases:
  ``dataset`` / ``error`` / ``impute`` / ``fit`` / ``metrics`` /
  ``audit``) plus counters inside its worker process; the fragment
  travels back with the result pickle, lands on the cell's
  :class:`JobOutcome`, and the collector merges all of them with the
  parent's sweep-scope recording — which now also carries the
  resilience counters (``sweep.retries`` / ``sweep.timeouts`` /
  ``sweep.pool_restarts`` / ``sweep.quarantined`` /
  ``cache.write_failed``).  Without ``trace`` the instrumentation is
  a no-op.

Fault injection for all of the above is deterministic and built in:
pass a :class:`~repro.engine.chaos.FaultPlan` as ``chaos`` (delivered
to workers through the environment) to raise errors, hang cells, kill
workers, or corrupt cache shards at exact ``(cell, attempt)`` points —
see :mod:`repro.engine.chaos`.
"""

from __future__ import annotations

import time
import traceback
from collections.abc import Callable, Sequence
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field

from .. import obs
from ..pipeline.experiment import EvaluationResult
from . import chaos as chaos_module
from .cache import ResultCache
from .resilience import Attempt, RetryPolicy, classify_exception
from .spec import Job

__all__ = ["JobOutcome", "SweepProgress", "SweepReport", "cell_attrs",
           "execute_job", "run_sweep"]


# ----------------------------------------------------------------------
# Single-cell execution (top level: must be picklable for the pool)
# ----------------------------------------------------------------------
def _impute_train(train, imputer_key: str, imputer_params: dict):
    """Repair NaNs in the training features with a registry imputer.

    Column-wise imputers (mean/median/mode/constant) fill each feature
    column independently; matrix imputers (knn/iterative, marked with
    ``matrix=True`` registry metadata) see the whole feature matrix so
    they can borrow across columns.  A train split without NaNs passes
    through untouched — the imputer axis is then a no-op cell.
    """
    import numpy as np

    from ..registry import IMPUTERS

    if not np.isnan(train.X).any():
        return train
    imputer = IMPUTERS.build(imputer_key, **imputer_params)
    table = train.table
    if IMPUTERS.get(imputer_key).metadata.get("matrix", False):
        fixed = imputer(train.X)
        for column, feature in enumerate(train.feature_names):
            table = table.assign(**{feature: fixed[:, column]})
    else:
        for feature in train.feature_names:
            values = table[feature].astype(float)
            if np.isnan(values).any():
                table = table.assign(**{feature: imputer(values)})
    return train.with_table(table)


def execute_job(job: Job) -> EvaluationResult:
    """Run one grid cell: load → (truncate) → split → (corrupt) →
    (impute) → fit → evaluate → (audit).  Deterministic in ``job``
    alone.

    Every component is built through :mod:`repro.registry` from the
    job's key + parameter overrides.  ``job.imputer`` repairs NaNs the
    error recipe left in the training features; ``job.metric`` reads
    the selected report metric off the finished result into
    ``raw["metric_value"]``.  When ``job.audit`` is
    ``"counterfactual"``, the cell additionally runs the batched
    rung-3 audit (abduction in ``chunk_rows``-bounded batches) and
    merges its summary values into the result's ``raw`` mapping under
    ``cf_*`` / ``ctf_*`` keys.  ``job.block_size`` overrides the
    pairwise kernel's block size for the whole cell, reaching every
    k-NN-shaped component (knn model, knn imputer) it builds.
    """
    import dataclasses

    from ..datasets import train_test_split
    from ..metrics import pairwise
    from ..pipeline.experiment import run_experiment
    from ..registry import DATASETS, ERRORS, METRICS, MODELS

    with pairwise.default_block_size(job.block_size), \
            pairwise.default_threads(job.threads):
        # dataset_params may override the protocol's n/seed only on a
        # hand-built Job; grid- and spec-built jobs reject that
        # upstream.
        with obs.span("dataset", dataset=job.dataset, rows=job.rows):
            dataset = DATASETS.build(job.dataset, **{
                "n": job.rows, "seed": job.seed, **job.dataset_params})
            if job.n_features is not None:
                dataset = dataset.select_features(
                    dataset.feature_names[:job.n_features])
            split = train_test_split(dataset,
                                     test_fraction=job.test_fraction,
                                     seed=job.seed)
        train = split.train
        if job.error is not None:
            with obs.span("error", error=job.error):
                injector = ERRORS.build(job.error, **job.error_params)
                train = injector(train, seed=job.seed)
        if job.imputer is not None:
            with obs.span("impute", imputer=job.imputer):
                train = _impute_train(train, job.imputer,
                                      job.imputer_params)
        result = run_experiment(job.approach, train, split.test,
                                model=MODELS.build(job.model,
                                                   **job.model_params),
                                seed=job.seed,
                                causal_samples=job.causal_samples,
                                approach_params=job.approach_params)
        if job.audit == "counterfactual":
            from ..pipeline.counterfactual_eval import \
                evaluate_counterfactual

            with obs.span("audit", audit=job.audit):
                audit = evaluate_counterfactual(
                    job.approach, train, split.test,
                    model=MODELS.build(job.model, **job.model_params),
                    seed=job.seed, chunk_rows=job.chunk_rows,
                    approach_params=job.approach_params,
                    **job.audit_params)
            result = dataclasses.replace(result, raw={
                **result.raw,
                "cf_mean_gap": audit.fairness.mean_gap,
                "cf_max_gap": audit.fairness.max_gap,
                "cf_unfair_fraction": audit.fairness.unfair_fraction,
                "ctf_de": audit.effects.de,
                "ctf_ie": audit.effects.ie,
                "ctf_se": audit.effects.se,
                "ctf_tv": audit.effects.tv,
                "cf_fpr_gap": audit.error_rates.fpr_gap,
                "cf_fnr_gap": audit.error_rates.fnr_gap,
            })
        if job.metric is not None:
            metric = METRICS.build(job.metric, **job.metric_params)
            result = dataclasses.replace(result, raw={
                **result.raw, "metric_value": float(metric.of(result))})
        return result


def cell_attrs(job: Job) -> dict:
    """Grid-axis attributes stamped on a cell's root span and its
    trace record (``None`` axes omitted, so presence of a key tells
    the trace checker which conditional phases to expect)."""
    attrs = {"label": job.label(), "fingerprint": job.fingerprint,
             "dataset": job.dataset, "approach": job.approach_label,
             "model": job.model, "rows": job.rows, "seed": job.seed}
    for axis in ("error", "imputer", "metric", "audit"):
        value = getattr(job, axis)
        if value is not None:
            attrs[axis] = value
    return attrs


def _pack_artifact(job: Job, pack_dir: str) -> None:
    """Worker-side artifact packing for a just-computed cell.

    Packing is best-effort: a failure (disk full, an unserializable
    component) degrades to a structured warning — the cell's metrics
    result is unaffected and the sweep goes on.
    """
    try:
        ResultCache(pack_dir).put_artifact(job)
    except Exception as exc:
        obs.add("artifact.pack_failed")
        obs.warning("artifact.pack_failed", cell=job.label(),
                    reason=f"{type(exc).__name__}: {exc}")


def _guarded_execute(indexed_job: tuple[int, Job], collect: bool = False,
                     trace_memory: bool = False, attempt: int = 0,
                     pack_dir: str | None = None,
                     ) -> tuple[int, EvaluationResult | None, str | None,
                                bool | None, float, dict | None]:
    """Pool worker: never raises, so one bad cell can't kill the sweep.

    Returns ``(index, result, error, transient, seconds, fragment)``;
    ``transient`` is the worker-side classification of a failure
    (:func:`~repro.engine.resilience.classify_exception` sees the live
    exception object, which the traceback text can't preserve across
    the pool pickle) and ``None`` on success.  ``attempt`` keys the
    deterministic chaos harness: an active fault plan may raise, hang,
    or kill this execution at exactly this ``(cell, attempt)`` point.

    With ``collect=True`` the cell executes under a fresh recorder
    whose snapshot (spans, counters, events — plain picklable dicts)
    rides back as the last tuple element; a failing cell still ships
    the spans it closed before dying.

    With ``pack_dir`` set, a successful cell also refits and packs its
    serving-artifact bundle into the cache's artifact slot, here in
    the worker so packing parallelizes with the sweep.  Pack time is
    excluded from the cell's reported seconds, and pack spans stay out
    of the cell's trace fragment (the trace checker budgets the cell
    phase set).
    """
    index, job = indexed_job
    start = time.perf_counter()
    if not collect:
        try:
            chaos_module.maybe_fault(job.label(), job.fingerprint,
                                     attempt)
            result = execute_job(job)
            seconds = time.perf_counter() - start
            if pack_dir is not None:
                _pack_artifact(job, pack_dir)
            return index, result, None, None, seconds, None
        except Exception as exc:
            return index, None, traceback.format_exc(), \
                classify_exception(exc) == "transient", \
                time.perf_counter() - start, None
    with obs.recording(trace_memory=trace_memory) as rec:
        error, transient, result = None, None, None
        try:
            with obs.span("cell", **cell_attrs(job)):
                chaos_module.maybe_fault(job.label(), job.fingerprint,
                                         attempt)
                result = execute_job(job)
        except Exception as exc:
            result, error = None, traceback.format_exc()
            transient = classify_exception(exc) == "transient"
    seconds = time.perf_counter() - start
    if result is not None and pack_dir is not None:
        _pack_artifact(job, pack_dir)
    return index, result, error, transient, seconds, rec.snapshot()


def _error_summary(error: str | None) -> str | None:
    """Last traceback line (``ExcType: message``) for attempt records."""
    if not error:
        return error
    lines = error.strip().splitlines()
    return lines[-1] if lines else error


# ----------------------------------------------------------------------
# Outcomes and progress
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class JobOutcome:
    """What happened to one cell of the grid."""

    job: Job
    result: EvaluationResult | None = None
    error: str | None = None  # traceback text when the cell failed
    cached: bool = False
    seconds: float = 0.0
    #: Trace fragment recorded in the executing worker (spans,
    #: counters, events), when the sweep ran with trace collection.
    trace: dict | None = None
    #: Execution history under the retry policy, oldest first; empty
    #: for cache hits, a single ``ok``/``error`` entry for ordinary
    #: cells, longer when the cell was retried, timed out, or crashed
    #: its worker (see :class:`~repro.engine.resilience.Attempt`).
    attempts: tuple = ()

    @property
    def ok(self) -> bool:
        return self.result is not None

    @property
    def retried(self) -> bool:
        """Whether the cell consumed more than one execution."""
        return len(self.attempts) > 1


@dataclass(frozen=True)
class SweepProgress:
    """Snapshot handed to the progress callback after each cell."""

    done: int
    total: int
    cached: int
    failed: int
    elapsed: float
    outcome: JobOutcome

    @property
    def remaining(self) -> int:
        return self.total - self.done

    @property
    def eta_seconds(self) -> float:
        """Linear time-to-finish estimate from throughput so far.

        Cache hits are excluded from the throughput denominator — the
        remaining cells are all real computations, so counting
        near-instant hits (which run first) would wildly underestimate
        a partially-warm sweep.
        """
        executed = self.done - self.cached
        if executed == 0 or self.remaining == 0:
            return 0.0
        return self.elapsed / executed * self.remaining

    def line(self) -> str:
        """Default one-line rendering for CLI/log progress."""
        status = ("cached" if self.outcome.cached
                  else "FAILED" if not self.outcome.ok
                  else f"{self.outcome.seconds:.1f}s")
        if self.outcome.retried:
            status += f" [{len(self.outcome.attempts)} attempts]"
        eta = (f" eta {self.eta_seconds:.0f}s" if self.remaining else "")
        return (f"[{self.done}/{self.total}] "
                f"{self.outcome.job.label()} — {status}{eta}")


@dataclass
class SweepReport:
    """All outcomes of a finished sweep, in grid (job-list) order."""

    outcomes: list[JobOutcome] = field(default_factory=list)
    elapsed: float = 0.0
    #: ``True`` when the sweep was cut short by ``KeyboardInterrupt``:
    #: the outcomes list holds only the cells that finished (their
    #: results are already cached), the rest were cancelled.
    interrupted: bool = False

    @property
    def results(self) -> list[EvaluationResult]:
        """Results of the successful cells, in grid order."""
        return [o.result for o in self.outcomes if o.ok]

    @property
    def failures(self) -> list[JobOutcome]:
        return [o for o in self.outcomes if not o.ok]

    @property
    def cached_count(self) -> int:
        return sum(1 for o in self.outcomes if o.cached)

    @property
    def computed_count(self) -> int:
        return sum(1 for o in self.outcomes if o.ok and not o.cached)

    @property
    def retried_count(self) -> int:
        """Cells that consumed more than one execution attempt."""
        return sum(1 for o in self.outcomes if o.retried)

    def summary(self) -> str:
        parts = [f"{len(self.outcomes)} cells",
                 f"{self.computed_count} computed",
                 f"{self.cached_count} cached"]
        if self.retried_count:
            parts.append(f"{self.retried_count} retried")
        if self.failures:
            parts.append(f"{len(self.failures)} FAILED")
        line = f"{', '.join(parts)} in {self.elapsed:.1f}s"
        if self.interrupted:
            line += " — INTERRUPTED (partial report; completed cells "\
                    "are cached)"
        return line


# ----------------------------------------------------------------------
# The sweep driver
# ----------------------------------------------------------------------
ProgressCallback = Callable[[SweepProgress], None]

#: Scheduler wake-up bound while deadlines or backoffs are pending (s).
_MAX_TICK = 0.25


def run_sweep(jobs: Sequence[Job], *, cache: ResultCache | None = None,
              max_workers: int = 1, resume: bool = True,
              progress: ProgressCallback | None = None,
              trace=None, policy: RetryPolicy | None = None,
              chaos=None, pack: bool = False) -> SweepReport:
    """Execute a job list, reusing and filling the cache.

    Parameters
    ----------
    jobs:
        Cells to run (typically ``grid.expand()``).
    cache:
        Optional content-addressed cache.  With ``resume=True``
        (default) cells whose fingerprint is already stored are
        skipped; freshly computed cells are always written back.  A
        failing write-back (disk full, permissions) degrades to a
        structured ``cache.write_failed`` warning — the computed
        result stays on the outcome.
    max_workers:
        ``1`` runs inline in this process; ``>1`` fans out over a
        ``ProcessPoolExecutor`` with at most that many workers.  (A
        per-cell ``policy.timeout`` or a process-level chaos fault
        forces the pool path regardless, since enforcement needs a
        killable worker.)
    resume:
        Set ``False`` to recompute every cell even on a warm cache
        (entries are refreshed with the new results).
    progress:
        Called with a :class:`SweepProgress` after every finished cell
        (cache hits included), in completion order.
    trace:
        Optional :class:`~repro.obs.TraceCollector`.  When given,
        every executed cell records its span tree + counters in its
        worker, the parent records a ``sweep`` scope (cache probes,
        write-backs, retry/timeout/pool-restart counters), and the
        collector ends up holding the merged trace — call
        ``trace.write(dir)`` for the JSONL + Chrome exports.
        Fragments are also attached to each :class:`JobOutcome`
        (``outcome.trace``); a retried cell carries its *final*
        attempt's fragment.
    policy:
        Optional :class:`~repro.engine.resilience.RetryPolicy`
        (retries with deterministic backoff, per-cell deadlines,
        pool-crash quarantine, circuit breaker).  ``None`` keeps the
        historical single-attempt behaviour.
    chaos:
        Optional :class:`~repro.engine.chaos.FaultPlan` (or anything
        ``FaultPlan.load`` accepts): deterministic fault injection for
        resilience testing and soak runs.  Delivered to workers via
        the environment for the duration of the sweep.
    pack:
        With ``True`` (requires ``cache``), every freshly computed
        cell also packs its fitted serving components into the cache's
        artifact slot (``<fp>.artifacts`` bundle) so ``repro pack``
        can later build a bundle without refitting.  Cache hits are
        not re-packed.
    """
    if max_workers < 1:
        raise ValueError(f"max_workers must be >= 1, got {max_workers}")
    if pack and cache is None:
        raise ValueError("pack=True needs a cache to store artifacts in")
    pack_dir = cache.uri if pack else None
    policy = RetryPolicy() if policy is None else policy
    if chaos is not None:
        chaos = chaos_module.FaultPlan.load(chaos)
    with chaos_module.activate(chaos):
        if trace is None:
            return _run_sweep(jobs, cache=cache, max_workers=max_workers,
                              resume=resume, progress=progress,
                              policy=policy, chaos_plan=chaos,
                              pack_dir=pack_dir)
        with obs.recording(trace_memory=trace.trace_memory) as rec:
            with obs.span("sweep", cells=len(jobs), workers=max_workers):
                report = _run_sweep(jobs, cache=cache,
                                    max_workers=max_workers,
                                    resume=resume, progress=progress,
                                    collect=True,
                                    trace_memory=trace.trace_memory,
                                    policy=policy, chaos_plan=chaos,
                                    pack_dir=pack_dir)
    trace.add_scope("sweep", rec.snapshot())
    for outcome in report.outcomes:
        trace.add_cell(outcome.job.label(), fragment=outcome.trace,
                       attrs=cell_attrs(outcome.job),
                       elapsed=outcome.seconds, cached=outcome.cached,
                       failed=not outcome.ok)
    return report


@dataclass
class _Cell:
    """Scheduler bookkeeping for one not-yet-finished grid cell."""

    index: int
    job: Job
    ready_at: float = 0.0  # perf_counter time the cell may (re)start
    crashes: int = 0  # pool breakages this cell was in flight for


class _SweepState:
    """Mutable driver state shared by the inline and pool paths."""

    def __init__(self, jobs, cache, progress, policy, chaos_plan):
        self.jobs = jobs
        self.cache = cache
        self.progress = progress
        self.policy = policy
        self.chaos_plan = chaos_plan
        self.start = time.perf_counter()
        self.slots: list[JobOutcome | None] = [None] * len(jobs)
        self.done = self.cached = self.failed_cells = 0
        self.failures = 0  # terminal failures (circuit-breaker input)
        self.tripped = False
        self.interrupted = False
        self.attempts: dict[int, list[Attempt]] = {}

    # ------------------------------------------------------------------
    def history(self, index: int) -> list[Attempt]:
        return self.attempts.setdefault(index, [])

    def attempts_used(self, index: int) -> int:
        """Executions counting against ``max_attempts`` (pool crashes
        are governed by the quarantine bound instead)."""
        return sum(1 for a in self.history(index) if a.kind != "crash")

    # ------------------------------------------------------------------
    def record(self, index: int, outcome: JobOutcome) -> None:
        self.slots[index] = outcome
        self.done += 1
        self.cached += outcome.cached
        self.failed_cells += not outcome.ok
        if self.progress is not None:
            self.progress(SweepProgress(
                done=self.done, total=len(self.jobs),
                cached=self.cached, failed=self.failed_cells,
                elapsed=time.perf_counter() - self.start,
                outcome=outcome))

    def finish_ok(self, index: int, job: Job, result, seconds: float,
                  fragment: dict | None, attempt: int) -> None:
        self.history(index).append(Attempt(kind="ok", seconds=seconds))
        if self.cache is not None:
            self._cache_put(job, result, attempt,
                            attempts=tuple(self.history(index)))
        self.record(index, JobOutcome(
            job=job, result=result, seconds=seconds, trace=fragment,
            attempts=tuple(self.history(index))))

    def fail(self, index: int, job: Job, error: str, seconds: float = 0.0,
             fragment: dict | None = None) -> None:
        """Terminal failure: record the outcome and feed the breaker."""
        self.record(index, JobOutcome(
            job=job, error=error, seconds=seconds, trace=fragment,
            attempts=tuple(self.history(index))))
        self.failures += 1
        if self.policy.tripped(self.failures) and not self.tripped:
            self.tripped = True
            obs.warning("sweep.circuit_open", failures=self.failures,
                        max_failures=self.policy.max_failures)

    def abort(self, cell: _Cell) -> None:
        """Mark a cell the circuit breaker prevented from finishing."""
        self.record(cell.index, JobOutcome(
            job=cell.job, attempts=tuple(self.history(cell.index)),
            error=f"sweep aborted: circuit breaker opened after "
                  f"{self.failures} failed cells "
                  f"(max_failures={self.policy.max_failures})"))

    # ------------------------------------------------------------------
    def _cache_put(self, job: Job, result, attempt: int,
                   attempts=()) -> None:
        """Write-back that degrades instead of killing the sweep: a
        full disk or permission error on one shard must not discard a
        computed result, let alone the rest of the grid.  The cell's
        attempt history rides along as provenance (persisted by
        backends that keep it)."""
        try:
            self.cache.put(job, result, attempts=attempts)
        except Exception as exc:
            obs.add("cache.write_failed")
            obs.warning("cache.write_failed", cell=job.label(),
                        reason=f"{type(exc).__name__}: {exc}")
            return
        if self.chaos_plan is not None:
            fault = self.chaos_plan.find(job.label(), job.fingerprint,
                                         attempt, kinds=("corrupt",))
            if fault is not None:
                obs.warning("chaos.fault", fault="corrupt",
                            cell=job.label(), attempt=attempt)
                self.cache.chaos_corrupt(job)

    # ------------------------------------------------------------------
    def on_error(self, cell: _Cell, error: str, transient: bool,
                 seconds: float, fragment: dict | None) -> bool:
        """Handle an in-cell failure; returns ``True`` to re-queue."""
        self.history(cell.index).append(Attempt(
            kind="error", seconds=seconds,
            error=_error_summary(error), transient=transient))
        used = self.attempts_used(cell.index)
        if self.policy.should_retry_error(transient, used):
            obs.add("sweep.retries")
            obs.warning("sweep.retry", cell=cell.job.label(),
                        attempt=used, error=_error_summary(error))
            cell.ready_at = (time.perf_counter()
                             + self.policy.backoff_seconds(used))
            return True
        self.fail(cell.index, cell.job, error, seconds, fragment)
        return False

    def on_timeout(self, cell: _Cell, seconds: float) -> bool:
        """Handle a deadline kill; returns ``True`` to re-queue."""
        self.history(cell.index).append(Attempt(
            kind="timeout", seconds=seconds,
            error=f"exceeded {self.policy.timeout:g}s deadline"))
        obs.add("sweep.timeouts")
        obs.warning("sweep.timeout", cell=cell.job.label(),
                    seconds=round(seconds, 2),
                    deadline=self.policy.timeout)
        used = self.attempts_used(cell.index)
        if self.policy.should_retry_timeout(used):
            cell.ready_at = (time.perf_counter()
                             + self.policy.backoff_seconds(used))
            return True
        self.fail(cell.index, cell.job,
                  f"cell timed out: exceeded the "
                  f"{self.policy.timeout:g}s deadline on all "
                  f"{used} attempt(s)", seconds)
        return False

    def on_crash(self, cell: _Cell, seconds: float, reason: str) -> bool:
        """Handle a pool-breakage victim; returns ``True`` to
        re-queue."""
        cell.crashes += 1
        self.history(cell.index).append(Attempt(
            kind="crash", seconds=seconds, error=reason))
        if self.policy.should_retry_crash(cell.crashes):
            cell.ready_at = (time.perf_counter()
                             + self.policy.backoff_seconds(cell.crashes))
            return True
        obs.add("sweep.quarantined")
        obs.warning("sweep.quarantine", cell=cell.job.label(),
                    crashes=cell.crashes)
        self.fail(cell.index, cell.job,
                  f"quarantined: the worker pool crashed "
                  f"{cell.crashes} times while this cell was in "
                  f"flight (last: {reason})", seconds)
        return False

    # ------------------------------------------------------------------
    def report(self) -> SweepReport:
        return SweepReport(
            outcomes=[o for o in self.slots if o is not None],
            elapsed=time.perf_counter() - self.start,
            interrupted=self.interrupted)


def _run_sweep(jobs: Sequence[Job], *, cache: ResultCache | None,
               max_workers: int, resume: bool,
               progress: ProgressCallback | None,
               collect: bool = False, trace_memory: bool = False,
               policy: RetryPolicy | None = None,
               chaos_plan=None, pack_dir: str | None = None
               ) -> SweepReport:
    policy = RetryPolicy() if policy is None else policy
    state = _SweepState(jobs, cache, progress, policy, chaos_plan)

    pending: list[_Cell] = []
    for index, job in enumerate(jobs):
        hit = cache.get(job) if (cache is not None and resume) else None
        if hit is not None:
            state.record(index,
                         JobOutcome(job=job, result=hit, cached=True))
        else:
            pending.append(_Cell(index, job))

    # Deadlines and process-level chaos faults need a killable worker,
    # so they force the pool path even for serial/single-cell runs.
    needs_pool = (policy.timeout is not None
                  or (chaos_plan is not None and chaos_plan.needs_pool))
    if pending:
        if (max_workers == 1 or len(pending) <= 1) and not needs_pool:
            _run_inline(state, pending, collect, trace_memory, pack_dir)
        else:
            _run_pool(state, pending, max_workers, collect, trace_memory,
                      pack_dir)
    return state.report()


def _run_inline(state: _SweepState, pending: list[_Cell],
                collect: bool, trace_memory: bool,
                pack_dir: str | None = None) -> None:
    """Serial path: execute cells in-process, with retries/backoff."""
    for position, cell in enumerate(pending):
        if state.tripped:
            for remaining in pending[position:]:
                state.abort(remaining)
            return
        while True:
            attempt = len(state.history(cell.index))
            try:
                _, result, error, transient, seconds, fragment = \
                    _guarded_execute((cell.index, cell.job), collect,
                                     trace_memory, attempt, pack_dir)
            except KeyboardInterrupt:
                state.interrupted = True
                return
            if error is None:
                state.finish_ok(cell.index, cell.job, result, seconds,
                                fragment, attempt)
                break
            if not state.on_error(cell, error, bool(transient), seconds,
                                  fragment):
                break
            delay = cell.ready_at - time.perf_counter()
            if delay > 0:
                try:
                    time.sleep(delay)
                except KeyboardInterrupt:
                    state.interrupted = True
                    return


def _run_pool(state: _SweepState, pending: list[_Cell],
              max_workers: int, collect: bool,
              trace_memory: bool, pack_dir: str | None = None) -> None:
    """Pool path: slot-limited scheduling with deadline enforcement,
    broken-pool recovery, and crash-suspect serialization.

    At most ``workers`` cells are submitted at a time (so a future's
    submit timestamp *is* its start timestamp — deadlines and crash
    attribution stay accurate), and at most one previously-crashed
    cell runs at a time, so a repeat offender is identified and
    quarantined instead of repeatedly taking innocent neighbours
    down with it.
    """
    policy = state.policy
    workers = max(1, min(max_workers, len(pending)))
    queue: list[_Cell] = list(pending)
    running: dict[object, tuple[_Cell, float]] = {}
    pool = ProcessPoolExecutor(max_workers=workers)

    def restart_pool(reason: str, expired: set[int]) -> None:
        """Kill and rebuild the pool; triage every in-flight cell."""
        nonlocal pool
        obs.add("sweep.pool_restarts")
        obs.warning("sweep.pool_restart", reason=reason,
                    in_flight=len(running))
        _stop_pool(pool, force=True)
        now = time.perf_counter()
        victims = list(running.values())
        running.clear()
        for cell, submitted in victims:
            elapsed = now - submitted
            if cell.index in expired:
                if state.on_timeout(cell, elapsed):
                    queue.append(cell)
            elif reason == "deadline":
                # Innocent bystander of a deadline kill: the guilty
                # cell is known precisely, so re-queue without
                # consuming an attempt or a crash credit.
                cell.ready_at = 0.0
                queue.append(cell)
            else:
                if state.on_crash(cell, elapsed, reason):
                    queue.append(cell)
        pool = ProcessPoolExecutor(max_workers=workers)

    def submit_eligible() -> bool:
        """Fill free slots; returns ``False`` when the pool broke."""
        now = time.perf_counter()
        suspect_in_flight = any(c.crashes for c, _ in running.values())
        position = 0
        while position < len(queue) and len(running) < workers:
            cell = queue[position]
            if cell.ready_at > now or (cell.crashes
                                       and suspect_in_flight):
                position += 1
                continue
            queue.pop(position)
            attempt = len(state.history(cell.index))
            try:
                future = pool.submit(_guarded_execute,
                                     (cell.index, cell.job), collect,
                                     trace_memory, attempt, pack_dir)
            except BrokenProcessPool:
                queue.insert(0, cell)
                return False
            running[future] = (cell, time.perf_counter())
            suspect_in_flight = suspect_in_flight or bool(cell.crashes)
        return True

    def wait_tick() -> float | None:
        """Longest safe sleep inside ``wait`` before the scheduler
        must look at deadlines or backoff wake-ups again."""
        now = time.perf_counter()
        ticks = []
        if policy.timeout is not None:
            ticks.extend(submitted + policy.timeout - now
                         for _, submitted in running.values())
        ticks.extend(cell.ready_at - now for cell in queue
                     if cell.ready_at > now)
        if not ticks:
            return None
        return min(max(0.01, min(ticks) + 0.01), _MAX_TICK)

    try:
        while queue or running:
            if state.tripped:
                for cell, _ in running.values():
                    state.abort(cell)
                for cell in queue:
                    state.abort(cell)
                running.clear()
                queue.clear()
                break
            if not submit_eligible():
                restart_pool("worker pool broke at submit", set())
                continue
            if not running:
                # Everything eligible is backing off; sleep until the
                # earliest wake-up.
                now = time.perf_counter()
                wake = min(cell.ready_at for cell in queue)
                time.sleep(min(max(0.0, wake - now), _MAX_TICK))
                continue
            done, _ = wait(set(running), timeout=wait_tick(),
                           return_when=FIRST_COMPLETED)
            broken: BaseException | None = None
            for future in done:
                cell, submitted = running.pop(future)
                exc = future.exception()
                if exc is not None:
                    # A dead worker poisons every in-flight future
                    # with BrokenProcessPool; fold this future's cell
                    # back into `running` so the restart triages the
                    # whole in-flight set uniformly.
                    broken = exc
                    running[future] = (cell, submitted)
                    continue
                _, result, error, transient, seconds, fragment = \
                    future.result()
                attempt = len(state.history(cell.index))
                if error is None:
                    state.finish_ok(cell.index, cell.job, result,
                                    seconds, fragment, attempt)
                elif state.on_error(cell, error, bool(transient),
                                    seconds, fragment):
                    queue.append(cell)
            if broken is not None:
                restart_pool(f"worker crashed: {broken!r}", set())
                continue
            if policy.timeout is not None and running:
                now = time.perf_counter()
                expired = {cell.index
                           for cell, submitted in running.values()
                           if now - submitted > policy.timeout}
                if expired:
                    restart_pool("deadline", expired)
    except KeyboardInterrupt:
        state.interrupted = True
        for future in running:
            future.cancel()
        _stop_pool(pool, force=True)
    else:
        _stop_pool(pool, force=False)


def _stop_pool(pool: ProcessPoolExecutor, force: bool) -> None:
    """Shut a pool down; ``force`` kills worker processes first (the
    deadline-enforcement path — a hung worker would never drain)."""
    if force:
        processes = getattr(pool, "_processes", None) or {}
        for process in list(processes.values()):
            try:
                process.kill()
            except Exception:  # already reaped
                pass
    try:
        pool.shutdown(wait=not force, cancel_futures=True)
    except Exception:
        pass
