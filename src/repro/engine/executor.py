"""Process-pool execution of scenario grids.

:func:`run_sweep` drives a job list end to end: cache lookups first,
then fresh cells through a ``ProcessPoolExecutor`` (or inline when
``max_workers=1``).  Three properties the experiments rely on:

* **Determinism** — :func:`execute_job` derives *all* randomness from
  the job's own seed, so a 2-worker sweep produces byte-identical
  results to a serial run of the same grid, and a cache hit is
  indistinguishable from a recomputation.
* **Failure isolation** — one diverging cell records a traceback in
  its :class:`JobOutcome`; the remaining cells still run.
* **Progress** — an optional callback receives a
  :class:`SweepProgress` snapshot (done/cached/failed counts, elapsed,
  ETA) after every finished cell.
* **Telemetry** — with a :class:`~repro.obs.TraceCollector` passed as
  ``trace``, every executed cell records a span tree (phases:
  ``dataset`` / ``error`` / ``impute`` / ``fit`` / ``metrics`` /
  ``audit``) plus counters inside its worker process; the fragment
  travels back with the result pickle, lands on the cell's
  :class:`JobOutcome`, and the collector merges all of them with the
  parent's sweep-scope recording (cache probes and write-backs).
  Without ``trace`` the instrumentation is a no-op.
"""

from __future__ import annotations

import time
import traceback
from collections.abc import Callable, Sequence
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass, field

from .. import obs
from ..pipeline.experiment import EvaluationResult
from .cache import ResultCache
from .spec import Job

__all__ = ["JobOutcome", "SweepProgress", "SweepReport", "cell_attrs",
           "execute_job", "run_sweep"]


# ----------------------------------------------------------------------
# Single-cell execution (top level: must be picklable for the pool)
# ----------------------------------------------------------------------
def _impute_train(train, imputer_key: str, imputer_params: dict):
    """Repair NaNs in the training features with a registry imputer.

    Column-wise imputers (mean/median/mode/constant) fill each feature
    column independently; matrix imputers (knn/iterative, marked with
    ``matrix=True`` registry metadata) see the whole feature matrix so
    they can borrow across columns.  A train split without NaNs passes
    through untouched — the imputer axis is then a no-op cell.
    """
    import numpy as np

    from ..registry import IMPUTERS

    if not np.isnan(train.X).any():
        return train
    imputer = IMPUTERS.build(imputer_key, **imputer_params)
    table = train.table
    if IMPUTERS.get(imputer_key).metadata.get("matrix", False):
        fixed = imputer(train.X)
        for column, feature in enumerate(train.feature_names):
            table = table.assign(**{feature: fixed[:, column]})
    else:
        for feature in train.feature_names:
            values = table[feature].astype(float)
            if np.isnan(values).any():
                table = table.assign(**{feature: imputer(values)})
    return train.with_table(table)


def execute_job(job: Job) -> EvaluationResult:
    """Run one grid cell: load → (truncate) → split → (corrupt) →
    (impute) → fit → evaluate → (audit).  Deterministic in ``job``
    alone.

    Every component is built through :mod:`repro.registry` from the
    job's key + parameter overrides.  ``job.imputer`` repairs NaNs the
    error recipe left in the training features; ``job.metric`` reads
    the selected report metric off the finished result into
    ``raw["metric_value"]``.  When ``job.audit`` is
    ``"counterfactual"``, the cell additionally runs the batched
    rung-3 audit (abduction in ``chunk_rows``-bounded batches) and
    merges its summary values into the result's ``raw`` mapping under
    ``cf_*`` / ``ctf_*`` keys.  ``job.block_size`` overrides the
    pairwise kernel's block size for the whole cell, reaching every
    k-NN-shaped component (knn model, knn imputer) it builds.
    """
    import dataclasses

    from ..datasets import train_test_split
    from ..metrics import pairwise
    from ..pipeline.experiment import run_experiment
    from ..registry import DATASETS, ERRORS, METRICS, MODELS

    with pairwise.default_block_size(job.block_size):
        # dataset_params may override the protocol's n/seed only on a
        # hand-built Job; grid- and spec-built jobs reject that
        # upstream.
        with obs.span("dataset", dataset=job.dataset, rows=job.rows):
            dataset = DATASETS.build(job.dataset, **{
                "n": job.rows, "seed": job.seed, **job.dataset_params})
            if job.n_features is not None:
                dataset = dataset.select_features(
                    dataset.feature_names[:job.n_features])
            split = train_test_split(dataset,
                                     test_fraction=job.test_fraction,
                                     seed=job.seed)
        train = split.train
        if job.error is not None:
            with obs.span("error", error=job.error):
                injector = ERRORS.build(job.error, **job.error_params)
                train = injector(train, seed=job.seed)
        if job.imputer is not None:
            with obs.span("impute", imputer=job.imputer):
                train = _impute_train(train, job.imputer,
                                      job.imputer_params)
        result = run_experiment(job.approach, train, split.test,
                                model=MODELS.build(job.model,
                                                   **job.model_params),
                                seed=job.seed,
                                causal_samples=job.causal_samples,
                                approach_params=job.approach_params)
        if job.audit == "counterfactual":
            from ..pipeline.counterfactual_eval import \
                evaluate_counterfactual

            with obs.span("audit", audit=job.audit):
                audit = evaluate_counterfactual(
                    job.approach, train, split.test,
                    model=MODELS.build(job.model, **job.model_params),
                    seed=job.seed, chunk_rows=job.chunk_rows,
                    approach_params=job.approach_params,
                    **job.audit_params)
            result = dataclasses.replace(result, raw={
                **result.raw,
                "cf_mean_gap": audit.fairness.mean_gap,
                "cf_max_gap": audit.fairness.max_gap,
                "cf_unfair_fraction": audit.fairness.unfair_fraction,
                "ctf_de": audit.effects.de,
                "ctf_ie": audit.effects.ie,
                "ctf_se": audit.effects.se,
                "ctf_tv": audit.effects.tv,
                "cf_fpr_gap": audit.error_rates.fpr_gap,
                "cf_fnr_gap": audit.error_rates.fnr_gap,
            })
        if job.metric is not None:
            metric = METRICS.build(job.metric, **job.metric_params)
            result = dataclasses.replace(result, raw={
                **result.raw, "metric_value": float(metric.of(result))})
        return result


def cell_attrs(job: Job) -> dict:
    """Grid-axis attributes stamped on a cell's root span and its
    trace record (``None`` axes omitted, so presence of a key tells
    the trace checker which conditional phases to expect)."""
    attrs = {"label": job.label(), "fingerprint": job.fingerprint,
             "dataset": job.dataset, "approach": job.approach_label,
             "model": job.model, "rows": job.rows, "seed": job.seed}
    for axis in ("error", "imputer", "metric", "audit"):
        value = getattr(job, axis)
        if value is not None:
            attrs[axis] = value
    return attrs


def _guarded_execute(indexed_job: tuple[int, Job], collect: bool = False,
                     trace_memory: bool = False,
                     ) -> tuple[int, EvaluationResult | None, str | None,
                                float, dict | None]:
    """Pool worker: never raises, so one bad cell can't kill the sweep.

    With ``collect=True`` the cell executes under a fresh recorder
    whose snapshot (spans, counters, events — plain picklable dicts)
    rides back as the fifth tuple element; a failing cell still ships
    the spans it closed before dying.
    """
    index, job = indexed_job
    start = time.perf_counter()
    if not collect:
        try:
            result = execute_job(job)
            return index, result, None, time.perf_counter() - start, None
        except Exception:
            return index, None, traceback.format_exc(), \
                time.perf_counter() - start, None
    with obs.recording(trace_memory=trace_memory) as rec:
        error = None
        try:
            with obs.span("cell", **cell_attrs(job)):
                result = execute_job(job)
        except Exception:
            result, error = None, traceback.format_exc()
    return index, result, error, time.perf_counter() - start, \
        rec.snapshot()


# ----------------------------------------------------------------------
# Outcomes and progress
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class JobOutcome:
    """What happened to one cell of the grid."""

    job: Job
    result: EvaluationResult | None = None
    error: str | None = None  # traceback text when the cell failed
    cached: bool = False
    seconds: float = 0.0
    #: Trace fragment recorded in the executing worker (spans,
    #: counters, events), when the sweep ran with trace collection.
    trace: dict | None = None

    @property
    def ok(self) -> bool:
        return self.result is not None


@dataclass(frozen=True)
class SweepProgress:
    """Snapshot handed to the progress callback after each cell."""

    done: int
    total: int
    cached: int
    failed: int
    elapsed: float
    outcome: JobOutcome

    @property
    def remaining(self) -> int:
        return self.total - self.done

    @property
    def eta_seconds(self) -> float:
        """Linear time-to-finish estimate from throughput so far.

        Cache hits are excluded from the throughput denominator — the
        remaining cells are all real computations, so counting
        near-instant hits (which run first) would wildly underestimate
        a partially-warm sweep.
        """
        executed = self.done - self.cached
        if executed == 0 or self.remaining == 0:
            return 0.0
        return self.elapsed / executed * self.remaining

    def line(self) -> str:
        """Default one-line rendering for CLI/log progress."""
        status = ("cached" if self.outcome.cached
                  else "FAILED" if not self.outcome.ok
                  else f"{self.outcome.seconds:.1f}s")
        eta = (f" eta {self.eta_seconds:.0f}s" if self.remaining else "")
        return (f"[{self.done}/{self.total}] "
                f"{self.outcome.job.label()} — {status}{eta}")


@dataclass
class SweepReport:
    """All outcomes of a finished sweep, in grid (job-list) order."""

    outcomes: list[JobOutcome] = field(default_factory=list)
    elapsed: float = 0.0

    @property
    def results(self) -> list[EvaluationResult]:
        """Results of the successful cells, in grid order."""
        return [o.result for o in self.outcomes if o.ok]

    @property
    def failures(self) -> list[JobOutcome]:
        return [o for o in self.outcomes if not o.ok]

    @property
    def cached_count(self) -> int:
        return sum(1 for o in self.outcomes if o.cached)

    @property
    def computed_count(self) -> int:
        return sum(1 for o in self.outcomes if o.ok and not o.cached)

    def summary(self) -> str:
        parts = [f"{len(self.outcomes)} cells",
                 f"{self.computed_count} computed",
                 f"{self.cached_count} cached"]
        if self.failures:
            parts.append(f"{len(self.failures)} FAILED")
        return f"{', '.join(parts)} in {self.elapsed:.1f}s"


# ----------------------------------------------------------------------
# The sweep driver
# ----------------------------------------------------------------------
ProgressCallback = Callable[[SweepProgress], None]


def run_sweep(jobs: Sequence[Job], *, cache: ResultCache | None = None,
              max_workers: int = 1, resume: bool = True,
              progress: ProgressCallback | None = None,
              trace=None) -> SweepReport:
    """Execute a job list, reusing and filling the cache.

    Parameters
    ----------
    jobs:
        Cells to run (typically ``grid.expand()``).
    cache:
        Optional content-addressed cache.  With ``resume=True``
        (default) cells whose fingerprint is already stored are
        skipped; freshly computed cells are always written back.
    max_workers:
        ``1`` runs inline in this process; ``>1`` fans out over a
        ``ProcessPoolExecutor`` with at most that many workers.
    resume:
        Set ``False`` to recompute every cell even on a warm cache
        (entries are refreshed with the new results).
    progress:
        Called with a :class:`SweepProgress` after every finished cell
        (cache hits included), in completion order.
    trace:
        Optional :class:`~repro.obs.TraceCollector`.  When given,
        every executed cell records its span tree + counters in its
        worker, the parent records a ``sweep`` scope (cache probes,
        write-backs), and the collector ends up holding the merged
        trace — call ``trace.write(dir)`` for the JSONL + Chrome
        exports.  Fragments are also attached to each
        :class:`JobOutcome` (``outcome.trace``).
    """
    if max_workers < 1:
        raise ValueError(f"max_workers must be >= 1, got {max_workers}")
    if trace is None:
        return _run_sweep(jobs, cache=cache, max_workers=max_workers,
                          resume=resume, progress=progress)
    with obs.recording(trace_memory=trace.trace_memory) as rec:
        with obs.span("sweep", cells=len(jobs), workers=max_workers):
            report = _run_sweep(jobs, cache=cache,
                                max_workers=max_workers, resume=resume,
                                progress=progress, collect=True,
                                trace_memory=trace.trace_memory)
    trace.add_scope("sweep", rec.snapshot())
    for outcome in report.outcomes:
        trace.add_cell(outcome.job.label(), fragment=outcome.trace,
                       attrs=cell_attrs(outcome.job),
                       elapsed=outcome.seconds, cached=outcome.cached,
                       failed=not outcome.ok)
    return report


def _run_sweep(jobs: Sequence[Job], *, cache: ResultCache | None,
               max_workers: int, resume: bool,
               progress: ProgressCallback | None,
               collect: bool = False,
               trace_memory: bool = False) -> SweepReport:
    start = time.perf_counter()
    slots: list[JobOutcome | None] = [None] * len(jobs)
    counts = {"done": 0, "cached": 0, "failed": 0}

    def record(index: int, outcome: JobOutcome) -> None:
        slots[index] = outcome
        counts["done"] += 1
        counts["cached"] += outcome.cached
        counts["failed"] += not outcome.ok
        if progress is not None:
            progress(SweepProgress(
                done=counts["done"], total=len(jobs),
                cached=counts["cached"], failed=counts["failed"],
                elapsed=time.perf_counter() - start, outcome=outcome))

    pending: list[tuple[int, Job]] = []
    for index, job in enumerate(jobs):
        hit = cache.get(job) if (cache is not None and resume) else None
        if hit is not None:
            record(index, JobOutcome(job=job, result=hit, cached=True))
        else:
            pending.append((index, job))

    def finish(index: int, job: Job, result: EvaluationResult | None,
               error: str | None, seconds: float,
               fragment: dict | None = None) -> None:
        if result is not None and cache is not None:
            cache.put(job, result)
        record(index, JobOutcome(job=job, result=result, error=error,
                                 seconds=seconds, trace=fragment))

    if max_workers == 1 or len(pending) <= 1:
        for index, job in pending:
            _, result, error, seconds, fragment = _guarded_execute(
                (index, job), collect, trace_memory)
            finish(index, job, result, error, seconds, fragment)
    else:
        workers = min(max_workers, len(pending))
        with ProcessPoolExecutor(max_workers=workers) as pool:
            futures = {pool.submit(_guarded_execute, item, collect,
                                   trace_memory): item
                       for item in pending}
            not_done = set(futures)
            while not_done:
                done, not_done = wait(not_done,
                                      return_when=FIRST_COMPLETED)
                for future in done:
                    index, job = futures[future]
                    exc = future.exception()
                    if exc is not None:  # e.g. worker killed by signal
                        finish(index, job, None,
                               f"worker crashed: {exc!r}", 0.0)
                    else:
                        _, result, error, seconds, fragment = \
                            future.result()
                        finish(index, job, result, error, seconds,
                               fragment)

    return SweepReport(outcomes=[o for o in slots if o is not None],
                       elapsed=time.perf_counter() - start)
