"""Report queries compiled to SQL for the SQL store backends.

The in-memory report path (:mod:`repro.engine.report`) loads every
cache entry into Python and pivots with dicts — fine for file caches,
fatal at million-cell sweeps.  On a :class:`~repro.engine.backend
.SqlBackend` the same questions compile to SQL over the ``cells``
table: ``--where`` filters become ``WHERE`` clauses on the axis
columns, pivots group with ``GROUP BY`` over a ``ROW_NUMBER()``
window that restores the grid order, and the overhead series rides
the same machinery before the baseline subtraction.

Bit-parity with the in-memory path is a hard contract (the golden
tests diff rendered tables and exports byte-for-byte), which rules
out two SQL conveniences.  ``AVG()`` folds left-to-right while
:func:`statistics.fmean` computes the correctly-rounded exact sum, so
the final mean never happens in SQL.  And SQLite's text↔float
conversions (``json_extract`` on a number, ``printf('%.17g')``) are
not correctly rounded — they drift in the last ulp — so metric values
never pass through them: the backend stores each value's Python
``repr`` (shortest round-trip text) in the ``cell_values`` side table
at save time, the ``GROUP BY`` concatenates those exact strings per
group, and Python applies ``float`` + ``fmean``.  SQL does the scan,
filter, grouping, and ordering; Python does one exact parse-and-fold
per cell.
"""

from __future__ import annotations

from statistics import fmean

from .report import (_JOB_AXES, _METRIC_FIELDS, _normalise_axis_query)

__all__ = ["compile_where", "sql_pivot", "sql_overhead_series"]


def compile_where(where) -> tuple[str, list]:
    """Compile an ``axis=value`` mapping to a SQL predicate.

    Returns ``(clause, parameters)`` where ``clause`` starts with
    `` AND `` (queries append it to their base predicate).  Axes are
    validated and values normalised exactly like
    :func:`~repro.engine.report.filter_outcomes` — unknown axes raise
    the same ``KeyError``, ``none`` spellings become ``IS NULL``, and
    component specs canonicalise through the registry before binding.
    """
    where = dict(where or {})
    unknown = sorted(set(where) - set(_JOB_AXES))
    if unknown:
        raise KeyError(f"unknown report axis(es) {unknown}; choose "
                       f"from {sorted(_JOB_AXES)}")
    clauses, parameters = [], []
    for axis, value in where.items():
        value = _normalise_axis_query(axis, value)
        if value is None:
            clauses.append(f'"{axis}" IS NULL')
        else:
            clauses.append(f'"{axis}" = ?')
            parameters.append(value)
    clause = "".join(f" AND {c}" for c in clauses)
    return clause, parameters


def _axis_expr(axis: str) -> str:
    """A pivot axis as a column reference (validated against the job
    axes; the in-memory path raises ``AttributeError`` for unknown
    axes via ``getattr``, so this does too)."""
    if axis not in _JOB_AXES:
        raise AttributeError(f"unknown report axis {axis!r}; choose "
                             f"from {sorted(_JOB_AXES)}")
    return f'"{axis}"'


_PIVOT_SQL = """
WITH ordered AS (
    SELECT {row_expr} AS row_v, {col_expr} AS col_v,
           v.repr AS val,
           ROW_NUMBER() OVER (ORDER BY c.grid_order, c.fingerprint)
               AS rn
    FROM cells AS c
    JOIN cell_values AS v
        ON v.fingerprint = c.fingerprint AND v.key = ?
    WHERE c.grid_order IS NOT NULL{where}
)
SELECT row_v, col_v,
       group_concat(val, '|') AS vals,
       MIN(rn) AS cell_rn,
       MIN(MIN(rn)) OVER (PARTITION BY row_v) AS row_rn
FROM ordered
GROUP BY row_v, col_v
ORDER BY row_rn, cell_rn
"""


def _raw_keys(backend, where_sql: str, parameters: list) -> set[str]:
    """Union of stored raw keys over the selection (the unknown-metric
    error path needs them for its message)."""
    import json

    keys: set[str] = set()
    rows = backend.connection().execute(
        "SELECT raw FROM cells WHERE grid_order IS NOT NULL"
        + where_sql, parameters)
    for (raw,) in rows:
        try:
            keys.update(json.loads(raw))
        except (ValueError, TypeError):
            continue
    return keys


def sql_pivot(backend, index: str, columns: str, value: str,
              where=None) -> dict:
    """:func:`~repro.engine.report.pivot` compiled to SQL.

    Same return shape and semantics: ``{index: {column: mean}}`` with
    both axes in first-seen grid order, seeds averaged, outcomes
    lacking a raw ``value`` skipped, and an unknown ``value`` raising
    ``KeyError`` naming everything available.
    """
    where_sql, parameters = compile_where(where)
    query = _PIVOT_SQL.format(row_expr=_axis_expr(index),
                              col_expr=_axis_expr(columns),
                              where=where_sql)
    table: dict = {}
    for row_v, col_v, vals, _, _ in backend.connection().execute(
            query, [value, *parameters]):
        cells = table.setdefault(row_v, {})
        cells[col_v] = fmean(float(v) for v in vals.split("|"))
    if not table and value not in _METRIC_FIELDS:
        raw_keys = _raw_keys(backend, where_sql, parameters)
        raise KeyError(f"unknown metric {value!r}; choose from "
                       f"{sorted(_METRIC_FIELDS)} or a raw key "
                       f"({sorted(raw_keys) or 'none stored'})")
    return table


def sql_overhead_series(backend, sweep: str = "rows",
                        where=None) -> dict:
    """:func:`~repro.engine.report.overhead_series` on the SQL path.

    The per-(approach, sweep-point) mean fit times come from
    :func:`sql_pivot` (window-ordered, SQL-grouped); the baseline
    subtraction then mirrors the in-memory implementation exactly —
    drop sweep points whose baseline cell is missing, clamp at zero.
    """
    fit_times = sql_pivot(backend, index="approach", columns=sweep,
                          value="fit_seconds", where=where)
    if None not in fit_times:
        raise ValueError("overhead_series needs the baseline "
                         "(approach=None) in the grid")
    baseline = fit_times.pop(None)
    series: dict = {}
    for approach, points in fit_times.items():
        series[approach] = {
            point: max(seconds - baseline[point], 0.0)
            for point, seconds in points.items() if point in baseline}
    return series
