"""Aggregation of finished grids into the paper's tables.

The executor hands back flat :class:`JobOutcome` lists; the figures
want pivots — approaches × metrics per dataset (Figure 7), approaches ×
sweep-points of runtime overhead (Figure 8), seed-averaged cells
everywhere.  These helpers do that reshaping on outcomes (job + result
pairs), since the job carries the grid coordinates the result dataclass
doesn't (rows, feature count, error recipe, seed).
"""

from __future__ import annotations

import dataclasses
from collections.abc import Iterable, Sequence
from statistics import fmean

from ..pipeline.experiment import EvaluationResult
from ..pipeline.report import format_results_table
from .executor import JobOutcome

__all__ = ["cell_key", "group_outcomes", "mean_result",
           "aggregate_over_seeds", "pivot", "grid_table",
           "overhead_series"]

#: EvaluationResult fields a pivot can aggregate.
_METRIC_FIELDS = ("accuracy", "precision", "recall", "f1", "di_star",
                  "tprb", "tnrb", "id", "te", "nde", "nie",
                  "fit_seconds")


def _axis_value(job, attr: str):
    """A job attribute as a grouping value.

    Component axes (dataset/approach/model/error) include their
    registry parameter overrides — rendered as the canonical spec
    string — so ``Celis-pp(tau=0.7)`` and ``Celis-pp(tau=0.9)`` land
    in different rows instead of being silently averaged.
    Parameter-free cells keep the bare key.
    """
    if attr in ("dataset", "approach", "model", "error"):
        key = getattr(job, attr)
        params = getattr(job, f"{attr}_params")
        if key is None or not params:
            return key
        from ..registry import format_spec
        return format_spec(key, params)
    return getattr(job, attr)


def cell_key(outcome: JobOutcome) -> tuple:
    """Grid coordinates of a cell with the seed dimension removed.

    Parameter overrides and the audit configuration are part of the
    coordinates: cells that differ only in ``tau`` (or in
    ``audit``/``chunk_rows``) aggregate separately.
    """
    job = outcome.job
    return (_axis_value(job, "dataset"), _axis_value(job, "approach"),
            _axis_value(job, "model"), _axis_value(job, "error"),
            job.rows, job.n_features, job.audit, job.chunk_rows)


def group_outcomes(outcomes: Iterable[JobOutcome], attr: str
                   ) -> dict[object, list[JobOutcome]]:
    """Partition successful outcomes by one job attribute, preserving
    first-seen order of the attribute values."""
    groups: dict[object, list[JobOutcome]] = {}
    for outcome in outcomes:
        if outcome.ok:
            groups.setdefault(getattr(outcome.job, attr), []).append(
                outcome)
    return groups


def mean_result(results: Sequence[EvaluationResult]) -> EvaluationResult:
    """Metric-wise mean of results from one cell across seeds.

    Identity fields (approach, dataset, stage) come from the first
    result; every numeric metric — including the raw signed values —
    is averaged.
    """
    if not results:
        raise ValueError("cannot average an empty result list")
    if len(results) == 1:
        return results[0]
    first = results[0]
    averaged = {name: fmean(getattr(r, name) for r in results)
                for name in _METRIC_FIELDS}
    raw = {key: fmean(r.raw[key] for r in results)
           for key in first.raw if all(key in r.raw for r in results)}
    return dataclasses.replace(first, raw=raw, **averaged)


def aggregate_over_seeds(outcomes: Iterable[JobOutcome]
                         ) -> list[EvaluationResult]:
    """Collapse the seed dimension: one mean result per distinct cell,
    in the grid's first-seen order.  Failed cells are dropped.

    Cells run with approach parameter overrides get the parameterized
    label (``Celis-pp(tau=0.9)``) as their ``approach`` so table rows
    stay distinguishable.
    """
    groups: dict[tuple, list[JobOutcome]] = {}
    for outcome in outcomes:
        if outcome.ok:
            groups.setdefault(cell_key(outcome), []).append(outcome)
    aggregated = []
    for cell in groups.values():
        result = mean_result([o.result for o in cell])
        if cell[0].job.approach_params:
            result = dataclasses.replace(
                result, approach=cell[0].job.approach_label)
        aggregated.append(result)
    return aggregated


def pivot(outcomes: Iterable[JobOutcome], index: str, columns: str,
          value: str) -> dict[object, dict[object, float]]:
    """Generic two-way pivot of a metric over two job attributes.

    Returns ``{index_value: {column_value: mean metric}}`` with both
    axes in first-seen grid order; cells observed under several seeds
    are averaged.  ``value`` is any numeric ``EvaluationResult`` field.
    """
    if value not in _METRIC_FIELDS:
        raise KeyError(f"unknown metric {value!r}; choose from "
                       f"{sorted(_METRIC_FIELDS)}")
    acc: dict[object, dict[object, list[float]]] = {}
    for outcome in outcomes:
        if not outcome.ok:
            continue
        row = _axis_value(outcome.job, index)
        col = _axis_value(outcome.job, columns)
        acc.setdefault(row, {}).setdefault(col, []).append(
            getattr(outcome.result, value))
    return {row: {col: fmean(vals) for col, vals in cols.items()}
            for row, cols in acc.items()}


def grid_table(outcomes: Iterable[JobOutcome], dataset: str | None = None,
               title: str = "") -> str:
    """Render a grid slice as the paper's results table (Figure 7
    shape): one row per approach, seed-averaged, baseline first when
    the grid listed it first."""
    selected = [o for o in outcomes
                if dataset is None or o.job.dataset == dataset]
    return format_results_table(aggregate_over_seeds(selected),
                                title=title)


def overhead_series(outcomes: Iterable[JobOutcome], sweep: str = "rows"
                    ) -> dict[str, dict[int, float]]:
    """Figure 8 shape: per-approach fit-time overhead over the plain
    baseline along one sweeping job attribute.

    ``{approach: {sweep_value: max(fit - baseline_fit, 0)}}`` — the
    grid must include the baseline (``approach=None``), which supplies
    the subtracted plain-model fit time.  Sweep points whose baseline
    cell is missing (e.g. it failed) are dropped rather than reported
    as raw fit times masquerading as overhead.
    """
    fit_times = pivot(outcomes, index="approach", columns=sweep,
                      value="fit_seconds")
    if None not in fit_times:
        raise ValueError("overhead_series needs the baseline "
                         "(approach=None) in the grid")
    baseline = fit_times.pop(None)
    series: dict[str, dict[int, float]] = {}
    for approach, points in fit_times.items():
        series[approach] = {
            point: max(seconds - baseline[point], 0.0)
            for point, seconds in points.items() if point in baseline}
    return series
