"""Aggregation of finished grids into the paper's tables.

The executor hands back flat :class:`JobOutcome` lists; the figures
want pivots — approaches × metrics per dataset (Figure 7), approaches ×
sweep-points of runtime overhead (Figure 8), seed-averaged cells
everywhere.  These helpers do that reshaping on outcomes (job + result
pairs), since the job carries the grid coordinates the result dataclass
doesn't (rows, feature count, error recipe, seed).
"""

from __future__ import annotations

import csv
import dataclasses
import json
from collections.abc import Iterable, Mapping, Sequence
from pathlib import Path
from statistics import fmean

from ..pipeline.experiment import EvaluationResult
from ..pipeline.report import format_results_table
from .executor import JobOutcome

__all__ = ["cell_key", "group_outcomes", "mean_result",
           "aggregate_over_seeds", "pivot", "grid_table",
           "overhead_series", "filter_outcomes", "outcome_records",
           "export_json", "export_csv", "format_pivot_table",
           "grid_slices"]

#: EvaluationResult fields a pivot can aggregate directly; any other
#: ``value`` resolves through ``result.raw`` (audit metrics like
#: ``cf_mean_gap``/``ctf_de``, the signed fairness values, the metric
#: axis's ``metric_value``).
_METRIC_FIELDS = ("accuracy", "precision", "recall", "f1", "di_star",
                  "tprb", "tnrb", "id", "te", "nde", "nie",
                  "fit_seconds")

#: Job axes a report can group, pivot, or filter on.
_COMPONENT_AXES = ("dataset", "approach", "model", "error", "imputer",
                   "metric")
_JOB_AXES = (*_COMPONENT_AXES, "seed", "rows", "n_features", "audit",
             "chunk_rows", "block_size")


def _axis_value(job, attr: str):
    """A job attribute as a grouping value.

    Component axes (dataset/approach/model/error/imputer/metric)
    include their registry parameter overrides — rendered as the
    canonical spec string — so ``Celis-pp(tau=0.7)`` and
    ``Celis-pp(tau=0.9)`` land in different rows instead of being
    silently averaged.  Parameter-free cells keep the bare key.
    """
    if attr in _COMPONENT_AXES:
        key = getattr(job, attr)
        params = getattr(job, f"{attr}_params")
        if key is None or not params:
            return key
        from ..registry import format_spec
        return format_spec(key, params)
    return getattr(job, attr)


def cell_key(outcome: JobOutcome) -> tuple:
    """Grid coordinates of a cell with the seed dimension removed.

    Parameter overrides and the audit configuration are part of the
    coordinates: cells that differ only in ``tau`` (or in
    ``audit``/``chunk_rows``) aggregate separately.
    """
    job = outcome.job
    return (*(_axis_value(job, axis) for axis in _COMPONENT_AXES),
            job.rows, job.n_features, job.audit, job.chunk_rows,
            job.block_size)


def group_outcomes(outcomes: Iterable[JobOutcome], attr: str
                   ) -> dict[object, list[JobOutcome]]:
    """Partition successful outcomes by one job axis, preserving
    first-seen order of the axis values.

    Component axes group by the parameterized label (via
    ``_axis_value``), exactly like :func:`cell_key` and :func:`pivot`:
    ``Celis-pp(tau=0.7)`` and ``Celis-pp(tau=0.9)`` outcomes form two
    groups, not one silently merged ``Celis-pp``.
    """
    groups: dict[object, list[JobOutcome]] = {}
    for outcome in outcomes:
        if outcome.ok:
            groups.setdefault(_axis_value(outcome.job, attr), []).append(
                outcome)
    return groups


def mean_result(results: Sequence[EvaluationResult]) -> EvaluationResult:
    """Metric-wise mean of results from one cell across seeds.

    Identity fields (approach, dataset, stage) come from the first
    result; every numeric metric — including the raw signed values —
    is averaged.  A ``raw`` key missing from some results (e.g. an
    audit that failed on one seed) is averaged over the seeds that do
    carry it, so partial audit coverage stays visible instead of the
    key vanishing from the aggregate without trace.
    """
    if not results:
        raise ValueError("cannot average an empty result list")
    if len(results) == 1:
        return results[0]
    first = results[0]
    averaged = {name: fmean(getattr(r, name) for r in results)
                for name in _METRIC_FIELDS}
    raw_values: dict[str, list[float]] = {}
    for result in results:
        for key, value in result.raw.items():
            raw_values.setdefault(key, []).append(value)
    raw = {key: fmean(values) for key, values in raw_values.items()}
    return dataclasses.replace(first, raw=raw, **averaged)


def aggregate_over_seeds(outcomes: Iterable[JobOutcome]
                         ) -> list[EvaluationResult]:
    """Collapse the seed dimension: one mean result per distinct cell,
    in the grid's first-seen order.  Failed cells are dropped.

    Cells run with approach parameter overrides get the parameterized
    label (``Celis-pp(tau=0.9)``) as their ``approach`` so table rows
    stay distinguishable.
    """
    groups: dict[tuple, list[JobOutcome]] = {}
    for outcome in outcomes:
        if outcome.ok:
            groups.setdefault(cell_key(outcome), []).append(outcome)
    aggregated = []
    for cell in groups.values():
        result = mean_result([o.result for o in cell])
        if cell[0].job.approach_params:
            result = dataclasses.replace(
                result, approach=cell[0].job.approach_label)
        aggregated.append(result)
    return aggregated


def pivot(outcomes: Iterable[JobOutcome], index: str, columns: str,
          value: str) -> dict[object, dict[object, float]]:
    """Generic two-way pivot of a metric over two job attributes.

    Returns ``{index_value: {column_value: mean metric}}`` with both
    axes in first-seen grid order; cells observed under several seeds
    are averaged.  ``value`` is a numeric ``EvaluationResult`` field
    or any ``result.raw`` key (``"di"``, ``"cf_mean_gap"``,
    ``"ctf_de"``, ``"metric_value"``, …); outcomes lacking the raw key
    are skipped, and a ``value`` no outcome carries raises ``KeyError``
    naming everything available.
    """
    from_field = value in _METRIC_FIELDS
    raw_keys: set[str] = set()
    acc: dict[object, dict[object, list[float]]] = {}
    for outcome in outcomes:
        if not outcome.ok:
            continue
        if from_field:
            metric = getattr(outcome.result, value)
        else:
            raw_keys.update(outcome.result.raw)
            metric = outcome.result.raw.get(value)
            if metric is None:
                continue
        row = _axis_value(outcome.job, index)
        col = _axis_value(outcome.job, columns)
        acc.setdefault(row, {}).setdefault(col, []).append(metric)
    if not from_field and not acc:
        raise KeyError(f"unknown metric {value!r}; choose from "
                       f"{sorted(_METRIC_FIELDS)} or a raw key "
                       f"({sorted(raw_keys) or 'none stored'})")
    return {row: {col: fmean(vals) for col, vals in cols.items()}
            for row, cols in acc.items()}


def grid_table(outcomes: Iterable[JobOutcome], dataset: str | None = None,
               title: str = "") -> str:
    """Render a grid slice as the paper's results table (Figure 7
    shape): one row per approach, seed-averaged, baseline first when
    the grid listed it first."""
    selected = [o for o in outcomes
                if dataset is None or o.job.dataset == dataset]
    return format_results_table(aggregate_over_seeds(selected),
                                title=title)


def overhead_series(outcomes: Iterable[JobOutcome], sweep: str = "rows"
                    ) -> dict[str, dict[int, float]]:
    """Figure 8 shape: per-approach fit-time overhead over the plain
    baseline along one sweeping job attribute.

    ``{approach: {sweep_value: max(fit - baseline_fit, 0)}}`` — the
    grid must include the baseline (``approach=None``), which supplies
    the subtracted plain-model fit time.  Sweep points whose baseline
    cell is missing (e.g. it failed) are dropped rather than reported
    as raw fit times masquerading as overhead.
    """
    fit_times = pivot(outcomes, index="approach", columns=sweep,
                      value="fit_seconds")
    if None not in fit_times:
        raise ValueError("overhead_series needs the baseline "
                         "(approach=None) in the grid")
    baseline = fit_times.pop(None)
    series: dict[str, dict[int, float]] = {}
    for approach, points in fit_times.items():
        series[approach] = {
            point: max(seconds - baseline[point], 0.0)
            for point, seconds in points.items() if point in baseline}
    return series


# ----------------------------------------------------------------------
# Querying and exporting cached sweeps
# ----------------------------------------------------------------------
_NONE_SPELLINGS = frozenset({"none", "null", ""})


def _normalise_axis_query(axis: str, value):
    """Normalise a user-supplied ``axis=value`` constraint to the form
    :func:`_axis_value` produces, so string queries from the CLI match
    jobs exactly (``approach="Celis-pp(tau=0.8)"`` matches the bare
    ``Celis-pp`` because 0.8 restates the declared default)."""
    if isinstance(value, str) and value.lower() in _NONE_SPELLINGS:
        value = None
    if axis in ("seed", "rows", "n_features", "chunk_rows",
                "block_size"):
        return None if value is None else int(value)
    if value is None or axis == "audit":
        return value
    from ..registry import (APPROACHES, DATASETS, ERRORS, IMPUTERS,
                            METRICS, MODELS)
    registry = {"dataset": DATASETS, "approach": APPROACHES,
                "model": MODELS, "error": ERRORS, "imputer": IMPUTERS,
                "metric": METRICS}[axis]
    if axis == "approach":
        from .spec import _normalise_approach
        if _normalise_approach(value) is None:
            return None
    return registry.canonical(value)


def filter_outcomes(outcomes: Iterable[JobOutcome],
                    where: Mapping[str, object]) -> list[JobOutcome]:
    """Outcomes whose job matches every ``axis=value`` constraint.

    Axes are the job's grid coordinates (:data:`_JOB_AXES`); component
    values may be bare keys or parameterized specs and are
    canonicalised through the registry before matching, numeric axes
    accept strings, and ``none``/``null`` select cells where the axis
    is unset.  Unknown axes raise ``KeyError`` before any matching.
    """
    unknown = sorted(set(where) - set(_JOB_AXES))
    if unknown:
        raise KeyError(f"unknown report axis(es) {unknown}; choose "
                       f"from {sorted(_JOB_AXES)}")
    constraints = {axis: _normalise_axis_query(axis, value)
                   for axis, value in where.items()}
    return [outcome for outcome in outcomes
            if all(_axis_value(outcome.job, axis) == value
                   for axis, value in constraints.items())]


#: Axes grid_slices partitions on — everything that distinguishes
#: Figure-7 table rows except the approach (the row label) and the
#: seed (aggregated away).
_SLICE_AXES = ("dataset", "error", "imputer", "metric", "rows",
               "n_features", "audit", "chunk_rows", "block_size")


def grid_slices(outcomes: Iterable[JobOutcome],
                axes: Sequence[str] = _SLICE_AXES
                ) -> list[tuple[str, list[JobOutcome]]]:
    """Partition outcomes into per-table slices by the axes that vary.

    A Figure-7 table labels rows only by approach, so a mixed cache
    (several errors, imputers, row counts …) would render duplicate
    indistinguishable rows in one table.  This returns ``(label,
    outcomes)`` slices — one per distinct combination of the *varying*
    axes, in first-seen order, with the label naming just those axes
    (``"error=missing imputer=knn"``; ``""`` when nothing varies) —
    so each slice renders as one unambiguous table.
    """
    outcomes = list(outcomes)
    seen: dict[str, list] = {axis: [] for axis in axes}
    for outcome in outcomes:
        for axis in axes:
            value = _axis_value(outcome.job, axis)
            if value not in seen[axis]:
                seen[axis].append(value)
    varying = [axis for axis in axes if len(seen[axis]) > 1]
    if not varying:
        return [("", outcomes)]
    slices: dict[tuple, list[JobOutcome]] = {}
    for outcome in outcomes:
        key = tuple(_axis_value(outcome.job, axis) for axis in varying)
        slices.setdefault(key, []).append(outcome)
    return [(" ".join(f"{axis}={'none' if value is None else value}"
                      for axis, value in zip(varying, key)), cells)
            for key, cells in slices.items()]


def outcome_records(outcomes: Iterable[JobOutcome]) -> list[dict]:
    """Flatten successful outcomes to JSON/CSV-ready records.

    One record per cell (seeds are *not* aggregated): every job axis,
    every ``EvaluationResult`` metric field, the stage, the execution
    provenance (``attempts`` consumed and whether the cell was
    ``retried`` — cache hits report the zero/false resting values),
    and the raw / audit values under ``raw.<key>`` columns.
    """
    records = []
    for outcome in outcomes:
        if not outcome.ok:
            continue
        record = {axis: _axis_value(outcome.job, axis)
                  for axis in _JOB_AXES}
        record["stage"] = outcome.result.stage
        record["attempts"] = len(outcome.attempts)
        record["retried"] = outcome.retried
        record.update({name: getattr(outcome.result, name)
                       for name in _METRIC_FIELDS})
        record.update({f"raw.{key}": value
                       for key, value in outcome.result.raw.items()})
        records.append(record)
    return records


def export_json(outcomes: Iterable[JobOutcome], path: str | Path) -> Path:
    """Write the flattened records as a JSON array; returns the path."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(outcome_records(outcomes), indent=2,
                               sort_keys=True))
    return path


def export_csv(outcomes: Iterable[JobOutcome], path: str | Path) -> Path:
    """Write the flattened records as CSV; returns the path.

    Columns are the union over all records — job axes first, then
    stage and the metric fields, then the raw keys sorted — so sparse
    audit metrics appear as empty cells rather than ragged rows.
    """
    records = outcome_records(outcomes)
    raw_columns = sorted({column for record in records
                          for column in record
                          if column.startswith("raw.")})
    columns = [*_JOB_AXES, "stage", "attempts", "retried",
               *_METRIC_FIELDS, *raw_columns]
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", newline="") as handle:
        writer = csv.DictWriter(handle, fieldnames=columns,
                                restval="")
        writer.writeheader()
        writer.writerows(records)
    return path


def format_pivot_table(table: Mapping[object, Mapping[object, float]],
                       index: str, columns: str, value: str) -> str:
    """Render a :func:`pivot` result as a fixed-width text table."""
    def label(axis: str, key) -> str:
        if key is None:
            return "LR" if axis == "approach" else "-"
        return str(key)

    column_keys: list[object] = []
    for cells in table.values():
        for key in cells:
            if key not in column_keys:
                column_keys.append(key)
    rows = [(label(index, key), cells) for key, cells in table.items()]
    name_width = max([len(name) for name, _ in rows] + [len(index), 8])
    headers = [label(columns, key) for key in column_keys]
    width = max([len(h) for h in headers] + [9])
    lines = [f"{value} by {index} × {columns}",
             f"{index:<{name_width}s} " + " ".join(
                 f"{h:>{width}s}" for h in headers),
             "-" * (name_width + (width + 1) * len(headers))]
    for name, cells in rows:
        rendered = " ".join(
            f"{cells[key]:>{width}.3f}" if key in cells
            else f"{'--':>{width}s}" for key in column_keys)
        lines.append(f"{name:<{name_width}s} {rendered}")
    return "\n".join(lines)
