"""Content-addressed result cache for sweep jobs.

A thin layer over :class:`~repro.pipeline.store.ResultStore` that keys
each stored :class:`~repro.pipeline.experiment.EvaluationResult` by the
producing job's content fingerprint.  Any sweep — CLI, benchmark, or
example — that describes the same cell hits the same entry, so a grid
re-run (or a crashed sweep resumed) refits nothing that already
finished.

Layout::

    <root>/<fp[:2]>/<fp>.json    # one run file per cell, sharded by
                                 # the first fingerprint byte so no
                                 # directory grows unboundedly

Each entry is an ordinary one-result run file (the ``params`` block
holds the job's full parameterization), so cached cells remain
greppable and loadable with the plain ``ResultStore`` API.
"""

from __future__ import annotations

from pathlib import Path

from ..pipeline.experiment import EvaluationResult
from ..pipeline.store import ResultStore
from .spec import Job

__all__ = ["ResultCache"]


class ResultCache:
    """Fingerprint-addressed store of finished grid cells."""

    def __init__(self, root: str | Path):
        self.root = Path(root)

    def _store(self, fingerprint: str) -> ResultStore:
        return ResultStore(self.root / fingerprint[:2])

    # ------------------------------------------------------------------
    def get(self, job: Job) -> EvaluationResult | None:
        """The cached result for a job, or ``None`` on a miss.

        A malformed entry (interrupted write predating atomic saves,
        disk corruption, stale format version) counts as a miss rather
        than poisoning the sweep.
        """
        fingerprint = job.fingerprint
        try:
            results, params = self._store(fingerprint).load(fingerprint)
        except (FileNotFoundError, ValueError, KeyError):
            return None
        if params.get("fingerprint") != fingerprint or not results:
            return None
        return results[0]

    def put(self, job: Job, result: EvaluationResult) -> Path:
        """Store a finished cell; returns the entry's path."""
        fingerprint = job.fingerprint
        params = {"fingerprint": fingerprint, **job.params()}
        return self._store(fingerprint).save(fingerprint, [result],
                                             params=params)

    def __contains__(self, job: Job) -> bool:
        return self.get(job) is not None

    # ------------------------------------------------------------------
    def fingerprints(self) -> list[str]:
        """Fingerprints of every cached cell, sorted."""
        if not self.root.exists():
            return []
        return sorted(p.stem for p in self.root.glob("??/*.json"))

    def __len__(self) -> int:
        return len(self.fingerprints())

    def evict(self, job: Job) -> None:
        """Drop one cell (no-op if absent)."""
        fingerprint = job.fingerprint
        self._store(fingerprint).delete(fingerprint)
