"""Content-addressed result cache for sweep jobs.

A thin layer over :class:`~repro.pipeline.store.ResultStore` that keys
each stored :class:`~repro.pipeline.experiment.EvaluationResult` by the
producing job's content fingerprint.  Any sweep — CLI, benchmark, or
example — that describes the same cell hits the same entry, so a grid
re-run (or a crashed sweep resumed) refits nothing that already
finished.

Layout::

    <root>/<fp[:2]>/<fp>.json       # one run file per cell, sharded by
                                    # the first fingerprint byte so no
                                    # directory grows unboundedly
    <root>/<fp[:2]>/<fp>.artifacts  # optional artifact bundle (fitted
                                    # components) for the same cell,
                                    # written by sweeps run with
                                    # --pack-artifacts

Each entry is an ordinary one-result run file (the ``params`` block
holds the job's full parameterization), so cached cells remain
greppable and loadable with the plain ``ResultStore`` API.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path

from .. import obs
from ..pipeline.experiment import EvaluationResult
from ..pipeline.store import ResultStore
from .spec import Job

__all__ = ["CacheProblem", "ResultCache"]


def _none_first(value) -> tuple:
    return (value is not None, "" if value is None else str(value))


def _grid_order(outcome) -> tuple:
    """Sort key restoring a grid-like order over reconstructed cells."""
    job = outcome.job
    return (job.dataset, job.rows, _none_first(job.n_features),
            _none_first(job.error), _none_first(job.imputer), job.model,
            job.approach is not None, job.approach_label,
            _none_first(job.metric), job.seed)


#: Problem kinds :meth:`ResultCache.verify` reports.
PROBLEM_KINDS = ("unreadable", "empty", "mismatch", "unparseable",
                 "stale")


@dataclass(frozen=True)
class CacheProblem:
    """One defective cache entry found by :meth:`ResultCache.verify`.

    ``kind`` is one of :data:`PROBLEM_KINDS`:

    ``unreadable``
        The shard file no longer parses (truncated write, disk
        corruption, chaos ``corrupt`` fault).
    ``empty``
        The entry parses but holds no results.
    ``mismatch``
        The stored fingerprint disagrees with the file name, or the
        entry's own params re-fingerprint to a different value — the
        content no longer matches its address.
    ``unparseable``
        The params block no longer reconstructs a :class:`Job` (a
        component since removed from the registry).
    ``stale``
        Written under an older ``SPEC_VERSION``; a current sweep can
        never address it, so it only takes up disk.
    """

    fingerprint: str
    path: Path
    kind: str
    detail: str

    def describe(self) -> str:
        return f"{self.kind}: {self.path} ({self.detail})"


class ResultCache:
    """Fingerprint-addressed store of finished grid cells."""

    def __init__(self, root: str | Path):
        self.root = Path(root)

    def _store(self, fingerprint: str) -> ResultStore:
        return ResultStore(self.root / fingerprint[:2])

    def _path(self, fingerprint: str) -> Path:
        return self.root / fingerprint[:2] / f"{fingerprint}.json"

    def _corrupt(self, fingerprint: str, exc: Exception) -> None:
        obs.add("cache.corrupt")
        obs.warning("cache.corrupt", path=str(self._path(fingerprint)),
                    reason=f"{type(exc).__name__}: {exc}")

    # ------------------------------------------------------------------
    def get(self, job: Job) -> EvaluationResult | None:
        """The cached result for a job, or ``None`` on a miss.

        A malformed entry (interrupted write predating atomic saves,
        disk corruption, stale format version) counts as a miss rather
        than poisoning the sweep, and is reported as a structured
        ``cache.corrupt`` warning naming the shard file and the decode
        failure.
        """
        fingerprint = job.fingerprint
        try:
            results, params = self._store(fingerprint).load(fingerprint)
        except FileNotFoundError:
            obs.add("cache.misses")
            return None
        except (ValueError, KeyError) as exc:
            obs.add("cache.misses")
            self._corrupt(fingerprint, exc)
            return None
        if params.get("fingerprint") != fingerprint or not results:
            obs.add("cache.misses")
            self._corrupt(fingerprint, ValueError(
                "entry fingerprint mismatch" if results
                else "entry holds no results"))
            return None
        obs.add("cache.hits")
        return results[0]

    def put(self, job: Job, result: EvaluationResult) -> Path:
        """Store a finished cell; returns the entry's path."""
        fingerprint = job.fingerprint
        params = {"fingerprint": fingerprint, **job.params()}
        path = self._store(fingerprint).save(fingerprint, [result],
                                             params=params)
        obs.add("cache.bytes_written", path.stat().st_size)
        return path

    def __contains__(self, job: Job) -> bool:
        return self.get(job) is not None

    # ------------------------------------------------------------------
    # Artifact payloads (optional, next to the metrics entry)
    # ------------------------------------------------------------------
    def artifact_path(self, job: Job | str) -> Path:
        """Where a cell's artifact bundle lives (a sibling directory of
        its metrics shard): ``<root>/<fp[:2]>/<fp>.artifacts``."""
        fingerprint = job if isinstance(job, str) else job.fingerprint
        return self.root / fingerprint[:2] / f"{fingerprint}.artifacts"

    def put_artifact(self, job: Job, components=None) -> Path:
        """Pack the cell's fitted components into its artifact slot.

        With ``components=None`` they are refit deterministically from
        the job (see :func:`repro.artifacts.build_serving_components`).
        Overwrites any previous payload for the fingerprint.
        """
        from ..artifacts import pack_bundle  # local: avoids an
        # import cycle (artifacts.pack imports the engine for Job)

        return pack_bundle(job, self.artifact_path(job),
                           components=components, overwrite=True)

    def get_artifact(self, job: Job | str) -> Path | None:
        """The cell's artifact-bundle path, or ``None`` when the sweep
        stored no payload (or left a torn one behind)."""
        path = self.artifact_path(job)
        if (path / "manifest.json").is_file():
            return path
        return None

    def has_artifact(self, job: Job | str) -> bool:
        return self.get_artifact(job) is not None

    # ------------------------------------------------------------------
    def fingerprints(self) -> list[str]:
        """Fingerprints of every cached cell, sorted."""
        if not self.root.exists():
            return []
        return sorted(p.stem for p in self.root.glob("??/*.json"))

    def entries(self):
        """Iterate ``(fingerprint, result, params)`` over every
        readable cached cell (malformed files are skipped, as in
        :meth:`get`)."""
        for fingerprint in self.fingerprints():
            try:
                results, params = self._store(fingerprint).load(
                    fingerprint)
            except FileNotFoundError:
                continue
            except (ValueError, KeyError) as exc:
                self._corrupt(fingerprint, exc)
                continue
            if not results:
                self._corrupt(fingerprint,
                              ValueError("entry holds no results"))
                continue
            yield fingerprint, results[0], params

    def outcomes(self):
        """Reconstruct every cached cell as a :class:`JobOutcome`.

        This is the reporting path: each entry's stored ``params``
        block fully describes its job, so a finished sweep cache loads
        back as outcomes — grid tables, pivots, and exports all work
        with zero job re-executions.  Entries whose params no longer
        parse (e.g. a component since removed from the registry) are
        skipped.  Outcomes come back in a deterministic grid-like
        order — dataset, rows, error, imputer, model, then approaches
        with the baseline first — so rendered tables match a live
        sweep's layout regardless of fingerprint order on disk.

        A cache that survived a ``SPEC_VERSION`` bump can hold the
        same logical cell twice (the old entry plus its re-computed
        replacement under the new fingerprint); such duplicates
        reconstruct to equal jobs and are collapsed to the entry
        written under the newest spec version, so the old protocol's
        results are never silently averaged into the new ones.
        """
        from .executor import JobOutcome
        from .spec import job_from_params

        best: dict[str, tuple[int, object]] = {}
        for _, result, params in self.entries():
            try:
                job = job_from_params(params)
            except (KeyError, TypeError, ValueError):
                continue
            version = int(params.get("spec_version", 0))
            key = job.fingerprint
            if key in best and best[key][0] >= version:
                continue
            best[key] = (version, JobOutcome(job=job, result=result,
                                             cached=True))
        return sorted((outcome for _, outcome in best.values()),
                      key=_grid_order)

    def verify(self, repair: bool = False) -> list[CacheProblem]:
        """Audit every shard; optionally delete the defective ones.

        Walks all entries and reports the ones a sweep could not (or
        should not) use — see :class:`CacheProblem` for the taxonomy.
        Healthy entries are never touched.  With ``repair=True`` each
        problem file is deleted (a later sweep then recomputes exactly
        those cells); deletions are counted on the
        ``cache.repaired`` counter.
        """
        from .spec import SPEC_VERSION, job_from_params

        problems: list[CacheProblem] = []

        def flag(fingerprint: str, kind: str, detail: str) -> None:
            problems.append(CacheProblem(
                fingerprint=fingerprint, path=self._path(fingerprint),
                kind=kind, detail=detail))

        for fingerprint in self.fingerprints():
            try:
                results, params = self._store(fingerprint).load(
                    fingerprint)
            except FileNotFoundError:
                continue  # raced with eviction
            except (ValueError, KeyError) as exc:
                self._corrupt(fingerprint, exc)
                flag(fingerprint, "unreadable",
                     f"{type(exc).__name__}: {exc}")
                continue
            if not results:
                flag(fingerprint, "empty", "entry holds no results")
                continue
            if params.get("fingerprint") != fingerprint:
                flag(fingerprint, "mismatch",
                     f"entry names fingerprint "
                     f"{params.get('fingerprint')!r}")
                continue
            version = int(params.get("spec_version", 0))
            if version != SPEC_VERSION:
                flag(fingerprint, "stale",
                     f"spec_version {version} (current {SPEC_VERSION})")
                continue
            try:
                job = job_from_params(params)
            except (KeyError, TypeError, ValueError) as exc:
                flag(fingerprint, "unparseable",
                     f"{type(exc).__name__}: {exc}")
                continue
            if job.fingerprint != fingerprint:
                flag(fingerprint, "mismatch",
                     "params re-fingerprint to "
                     f"{job.fingerprint[:12]}…")
        if repair:
            for problem in problems:
                try:
                    problem.path.unlink()
                except FileNotFoundError:
                    continue
                obs.add("cache.repaired")
                obs.warning("cache.repaired", path=str(problem.path),
                            kind=problem.kind)
        return problems

    def __len__(self) -> int:
        return len(self.fingerprints())

    def evict(self, job: Job) -> None:
        """Drop one cell, metrics and artifact payload both (no-op if
        absent)."""
        import shutil

        fingerprint = job.fingerprint
        self._store(fingerprint).delete(fingerprint)
        artifact = self.artifact_path(fingerprint)
        if artifact.exists():
            shutil.rmtree(artifact, ignore_errors=True)
