"""Content-addressed result cache for sweep jobs.

A thin layer over a pluggable :class:`~repro.engine.backend
.StoreBackend` that keys each stored
:class:`~repro.pipeline.experiment.EvaluationResult` by the producing
job's content fingerprint.  Any sweep — CLI, benchmark, or example —
that describes the same cell hits the same entry, so a grid re-run
(or a crashed sweep resumed) refits nothing that already finished.

Two backends ship (see :mod:`repro.engine.backend`):

* ``file:DIR`` (default) — the original sharded-JSON directory,
  byte-compatible with every existing cache::

      <root>/<fp[:2]>/<fp>.json       # one run file per cell
      <root>/<fp[:2]>/<fp>.artifacts  # optional artifact bundle

* ``sqlite:PATH`` (``duckdb:PATH`` when importable) — one database
  row per cell; reports compile to SQL
  (:mod:`repro.engine.sqlreport`), and whole caches merge across
  hosts (:meth:`ResultCache.merge_from`) or fold stale spec-version
  duplicates in place (:meth:`ResultCache.compact`).

File entries remain ordinary one-result run files (the ``params``
block holds the job's full parameterization), so cached cells stay
greppable and loadable with the plain ``ResultStore`` API.
"""

from __future__ import annotations

import shutil
from dataclasses import dataclass
from pathlib import Path

from .. import obs
from ..pipeline.experiment import EvaluationResult
from .backend import SqlBackend, StoreBackend, parse_store
from .spec import Job

__all__ = ["CacheProblem", "CompactStats", "MergeStats", "ResultCache"]


def _none_first(value) -> tuple:
    return (value is not None, "" if value is None else str(value))


def _grid_order(outcome) -> tuple:
    """Sort key restoring a grid-like order over reconstructed cells."""
    job = outcome.job
    return (job.dataset, job.rows, _none_first(job.n_features),
            _none_first(job.error), _none_first(job.imputer), job.model,
            job.approach is not None, job.approach_label,
            _none_first(job.metric), job.seed)


#: Problem kinds :meth:`ResultCache.verify` reports.
PROBLEM_KINDS = ("unreadable", "empty", "mismatch", "unparseable",
                 "stale", "orphaned")


@dataclass(frozen=True)
class CacheProblem:
    """One defective cache entry found by :meth:`ResultCache.verify`.

    ``kind`` is one of :data:`PROBLEM_KINDS`:

    ``unreadable``
        The entry no longer parses (truncated write, disk corruption,
        chaos ``corrupt`` fault).
    ``empty``
        The entry parses but holds no results.
    ``mismatch``
        The stored fingerprint disagrees with the entry's address, or
        the entry's own params re-fingerprint to a different value —
        the content no longer matches its address.
    ``unparseable``
        The params block no longer reconstructs a :class:`Job` (a
        component since removed from the registry).
    ``stale``
        Written under an older ``SPEC_VERSION``; a current sweep can
        never address it, so it only takes up disk.
    ``orphaned``
        An artifact bundle whose metrics entry is gone (e.g. a prior
        ``--repair`` removed a defective shard and left the bundle
        behind); nothing can ever address it.
    """

    fingerprint: str
    path: Path
    kind: str
    detail: str

    def describe(self) -> str:
        return f"{self.kind}: {self.path} ({self.detail})"


@dataclass(frozen=True)
class CompactStats:
    """What :meth:`ResultCache.compact` did."""

    folded: int  # stale spec-version duplicates removed
    kept: int  # entries remaining after the fold

    def describe(self) -> str:
        return (f"folded {self.folded} stale duplicate(s), "
                f"{self.kept} entries kept")


@dataclass(frozen=True)
class MergeStats:
    """What :meth:`ResultCache.merge_from` did."""

    merged: int  # entries copied in (fingerprint absent from dst)
    replaced: int  # dst entries replaced by a newer spec_version
    skipped: int  # src entries already present (or unreadable)
    artifacts: int  # intact artifact bundles copied

    def describe(self) -> str:
        return (f"merged {self.merged} new cell(s), {self.replaced} "
                f"replaced by newer spec_version, {self.skipped} "
                f"already present, {self.artifacts} artifact bundle(s) "
                f"copied")


class ResultCache:
    """Fingerprint-addressed store of finished grid cells.

    ``store`` is a backend URI (``file:DIR`` / ``sqlite:PATH`` /
    ``duckdb:PATH``), a bare directory path (file layout — the
    historical spelling), a ``Path``, or a constructed
    :class:`~repro.engine.backend.StoreBackend`.
    """

    def __init__(self, store: str | Path | StoreBackend):
        self.backend = parse_store(store)

    # -- identity ------------------------------------------------------
    @property
    def root(self) -> Path:
        """The store's on-disk anchor (the directory for file caches,
        the database file for SQL caches)."""
        if isinstance(self.backend, SqlBackend):
            return self.backend.path
        return self.backend.root

    @property
    def uri(self) -> str:
        """Round-trippable address: ``ResultCache(cache.uri)`` opens
        the same store (workers rebuild their parent's cache from
        this)."""
        return self.backend.uri

    @property
    def location(self) -> str:
        """Human-readable place name for messages."""
        return self.backend.location

    def exists(self) -> bool:
        return self.backend.exists()

    def close(self) -> None:
        self.backend.close()

    def _corrupt(self, fingerprint: str, exc: Exception) -> None:
        obs.add("cache.corrupt")
        obs.warning("cache.corrupt",
                    path=str(self.backend.entry_path(fingerprint)),
                    reason=f"{type(exc).__name__}: {exc}")

    # ------------------------------------------------------------------
    def get(self, job: Job) -> EvaluationResult | None:
        """The cached result for a job, or ``None`` on a miss.

        A malformed entry (interrupted write predating atomic saves,
        disk corruption, stale format version) counts as a miss rather
        than poisoning the sweep, and is reported as a structured
        ``cache.corrupt`` warning naming the entry and the decode
        failure.
        """
        fingerprint = job.fingerprint
        try:
            results, params = self.backend.load(fingerprint)
        except FileNotFoundError:
            obs.add("cache.misses")
            return None
        except (ValueError, KeyError) as exc:
            obs.add("cache.misses")
            self._corrupt(fingerprint, exc)
            return None
        if params.get("fingerprint") != fingerprint or not results:
            obs.add("cache.misses")
            self._corrupt(fingerprint, ValueError(
                "entry fingerprint mismatch" if results
                else "entry holds no results"))
            return None
        obs.add("cache.hits")
        return results[0]

    def put(self, job: Job, result: EvaluationResult,
            attempts=()) -> Path:
        """Store a finished cell; returns the path holding the entry.

        ``attempts`` is the cell's execution provenance
        (:class:`~repro.engine.resilience.Attempt` history); SQL
        backends persist it in the entry's ``attempts`` column, the
        file backend ignores it to stay byte-compatible with existing
        caches.
        """
        fingerprint = job.fingerprint
        params = {"fingerprint": fingerprint, **job.params()}
        return self.backend.save(fingerprint, [result], params,
                                 attempts=attempts)

    def __contains__(self, job: Job) -> bool:
        return self.get(job) is not None

    def chaos_corrupt(self, job: Job) -> None:
        """Chaos-harness hook: damage the job's stored entry in place
        (backend-appropriately) so later reads see corruption."""
        self.backend.corrupt(job.fingerprint)

    # ------------------------------------------------------------------
    # Artifact payloads (optional, next to the metrics entry)
    # ------------------------------------------------------------------
    def artifact_path(self, job: Job | str) -> Path:
        """Where a cell's artifact bundle lives: the sibling
        ``<root>/<fp[:2]>/<fp>.artifacts`` directory for file caches,
        a ``<db>.artifacts/<fp>`` sidecar slot for SQL caches."""
        fingerprint = job if isinstance(job, str) else job.fingerprint
        return self.backend.artifact_dir(fingerprint)

    def put_artifact(self, job: Job, components=None) -> Path:
        """Pack the cell's fitted components into its artifact slot.

        With ``components=None`` they are refit deterministically from
        the job (see :func:`repro.artifacts.build_serving_components`).
        Overwrites any previous payload for the fingerprint.
        """
        from ..artifacts import pack_bundle  # local: avoids an
        # import cycle (artifacts.pack imports the engine for Job)

        path = pack_bundle(job, self.artifact_path(job),
                           components=components, overwrite=True)
        self.backend.note_artifact(job.fingerprint)
        return path

    def get_artifact(self, job: Job | str) -> Path | None:
        """The cell's artifact-bundle path, or ``None`` when the sweep
        stored no payload (or left a torn one behind)."""
        path = self.artifact_path(job)
        if (path / "manifest.json").is_file():
            return path
        return None

    def has_artifact(self, job: Job | str) -> bool:
        return self.get_artifact(job) is not None

    # ------------------------------------------------------------------
    def fingerprints(self) -> list[str]:
        """Fingerprints of every cached cell, sorted."""
        return self.backend.fingerprints()

    def entries(self):
        """Iterate ``(fingerprint, result, params)`` over every
        readable cached cell (malformed entries are skipped, as in
        :meth:`get`)."""
        for fingerprint in self.fingerprints():
            try:
                results, params = self.backend.load(fingerprint)
            except FileNotFoundError:
                continue
            except (ValueError, KeyError) as exc:
                self._corrupt(fingerprint, exc)
                continue
            if not results:
                self._corrupt(fingerprint,
                              ValueError("entry holds no results"))
                continue
            yield fingerprint, results[0], params

    def outcomes(self, where=None):
        """Reconstruct every cached cell as a :class:`JobOutcome`.

        This is the reporting path: each entry's stored ``params``
        block fully describes its job, so a finished sweep cache loads
        back as outcomes — grid tables, pivots, and exports all work
        with zero job re-executions.  Entries whose params no longer
        parse (e.g. a component since removed from the registry) are
        skipped.  Outcomes come back in a deterministic grid-like
        order — dataset, rows, error, imputer, model, then approaches
        with the baseline first — so rendered tables match a live
        sweep's layout regardless of fingerprint order on disk.

        ``where`` filters by job axes before returning (same axes and
        normalisation as :func:`~repro.engine.report.filter_outcomes`);
        on SQL backends the filter is pushed down into the row scan.

        A cache that survived a ``SPEC_VERSION`` bump can hold the
        same logical cell twice (the old entry plus its re-computed
        replacement under the new fingerprint); such duplicates
        reconstruct to equal jobs and are collapsed to the entry
        written under the newest spec version, so the old protocol's
        results are never silently averaged into the new ones.
        """
        from .executor import JobOutcome
        from .report import filter_outcomes
        from .spec import job_from_params

        entries = self.entries()
        filtered_in_sql = False
        if where and isinstance(self.backend, SqlBackend) \
                and self.backend.exists():
            from .sqlreport import compile_where
            where_sql, parameters = compile_where(where)
            entries = self._sql_entries(where_sql, parameters)
            filtered_in_sql = True
        elif where:
            # Validate (and fail on) unknown axes before any I/O, like
            # the SQL path does.
            filter_outcomes([], where)

        best: dict[str, tuple[int, object]] = {}
        for _, result, params in entries:
            try:
                job = job_from_params(params)
            except (KeyError, TypeError, ValueError):
                continue
            version = int(params.get("spec_version", 0))
            key = job.fingerprint
            if key in best and best[key][0] >= version:
                continue
            best[key] = (version, JobOutcome(job=job, result=result,
                                             cached=True))
        outcomes = sorted((outcome for _, outcome in best.values()),
                          key=_grid_order)
        if where and not filtered_in_sql:
            outcomes = filter_outcomes(outcomes, where)
        return outcomes

    def _sql_entries(self, where_sql: str, parameters: list):
        """``entries()`` with a compiled ``WHERE`` pushed into the row
        scan (SQL backends only).  Rows whose axis columns never
        parsed (``grid_order IS NULL``) may still match NULL-matching
        constraints, but ``outcomes()`` drops them at job
        reconstruction anyway, exactly like the in-memory path."""
        import json

        from ..pipeline.store import result_from_dict

        rows = self.backend.connection().execute(
            "SELECT fingerprint, result, params FROM cells WHERE 1=1"
            + where_sql + " ORDER BY fingerprint", parameters)
        for fingerprint, result, params in rows:
            try:
                yield (fingerprint,
                       result_from_dict(json.loads(result)),
                       dict(json.loads(params)))
            except (ValueError, KeyError, TypeError) as exc:
                self._corrupt(fingerprint, exc)
                continue

    # ------------------------------------------------------------------
    # Report compilation (SQL pushdown with an in-memory fallback)
    # ------------------------------------------------------------------
    def _sql_ready(self) -> bool:
        return (isinstance(self.backend, SqlBackend)
                and self.backend.exists()
                and self.backend.sql_ready())

    def pivot(self, index: str, columns: str, value: str, where=None,
              outcomes=None):
        """A :func:`~repro.engine.report.pivot` over the cache.

        On SQL backends holding a single ``spec_version`` the pivot
        compiles to SQL (``GROUP BY`` + a ``ROW_NUMBER()`` window
        restoring grid order) and never materializes outcomes; other
        stores — and mixed-version SQL stores, which need the stale
        -duplicate collapse — fall back to the in-memory path over
        ``outcomes`` (loaded via :meth:`outcomes` when not supplied).
        Both paths return bit-identical tables.
        """
        from .report import pivot as memory_pivot

        if self._sql_ready():
            from .sqlreport import sql_pivot
            return sql_pivot(self.backend, index, columns, value,
                             where=where)
        if outcomes is None:
            outcomes = self.outcomes(where=where)
        return memory_pivot(outcomes, index=index, columns=columns,
                            value=value)

    def overhead_series(self, sweep: str = "rows", where=None,
                        outcomes=None):
        """A :func:`~repro.engine.report.overhead_series` over the
        cache, SQL-compiled when the backend allows (same dispatch
        rules as :meth:`pivot`)."""
        from .report import overhead_series as memory_series

        if self._sql_ready():
            from .sqlreport import sql_overhead_series
            return sql_overhead_series(self.backend, sweep=sweep,
                                       where=where)
        if outcomes is None:
            outcomes = self.outcomes(where=where)
        return memory_series(outcomes, sweep=sweep)

    # ------------------------------------------------------------------
    def verify(self, repair: bool = False) -> list[CacheProblem]:
        """Audit every entry; optionally delete the defective ones.

        Walks all entries and reports the ones a sweep could not (or
        should not) use — see :class:`CacheProblem` for the taxonomy,
        including artifact bundles orphaned by an earlier repair.
        Healthy entries are never touched.  With ``repair=True`` each
        problem entry is deleted *together with its artifact bundle*
        (a later sweep then recomputes exactly those cells); deletions
        are counted on the ``cache.repaired`` counter.
        """
        from .spec import SPEC_VERSION, job_from_params

        problems: list[CacheProblem] = []

        def flag(fingerprint: str, kind: str, detail: str,
                 path: Path | None = None) -> None:
            problems.append(CacheProblem(
                fingerprint=fingerprint,
                path=path if path is not None
                else self.backend.entry_path(fingerprint),
                kind=kind, detail=detail))

        fingerprints = self.fingerprints()
        for fingerprint in fingerprints:
            try:
                results, params = self.backend.load(fingerprint)
            except FileNotFoundError:
                continue  # raced with eviction
            except (ValueError, KeyError) as exc:
                self._corrupt(fingerprint, exc)
                flag(fingerprint, "unreadable",
                     f"{type(exc).__name__}: {exc}")
                continue
            if not results:
                flag(fingerprint, "empty", "entry holds no results")
                continue
            if params.get("fingerprint") != fingerprint:
                flag(fingerprint, "mismatch",
                     f"entry names fingerprint "
                     f"{params.get('fingerprint')!r}")
                continue
            version = int(params.get("spec_version", 0))
            if version != SPEC_VERSION:
                flag(fingerprint, "stale",
                     f"spec_version {version} (current {SPEC_VERSION})")
                continue
            try:
                job = job_from_params(params)
            except (KeyError, TypeError, ValueError) as exc:
                flag(fingerprint, "unparseable",
                     f"{type(exc).__name__}: {exc}")
                continue
            if job.fingerprint != fingerprint:
                flag(fingerprint, "mismatch",
                     "params re-fingerprint to "
                     f"{job.fingerprint[:12]}…")
        # Artifact bundles whose metrics entry is gone: nothing can
        # address them, they only take up disk.
        stored = set(fingerprints)
        for fingerprint in self.backend.artifact_fingerprints():
            if fingerprint not in stored:
                flag(fingerprint, "orphaned",
                     "artifact bundle has no cache entry",
                     path=self.backend.artifact_dir(fingerprint))
        if repair:
            for problem in problems:
                if problem.kind == "orphaned":
                    shutil.rmtree(problem.path, ignore_errors=True)
                else:
                    self.backend.delete(problem.fingerprint)
                    artifact = self.backend.artifact_dir(
                        problem.fingerprint)
                    if artifact.exists():
                        shutil.rmtree(artifact, ignore_errors=True)
                obs.add("cache.repaired")
                obs.warning("cache.repaired", path=str(problem.path),
                            kind=problem.kind)
        return problems

    # ------------------------------------------------------------------
    # Maintenance: compaction and cross-host merge
    # ------------------------------------------------------------------
    def _logical_groups(self) -> dict[str, list[tuple]]:
        """Entries grouped by *reconstructed* job fingerprint: each
        group holds ``(spec_version, stored_fingerprint)`` pairs, so a
        cache that survived a ``SPEC_VERSION`` bump shows its logical
        duplicates (the stale entry plus its replacement)."""
        from .spec import job_from_params

        groups: dict[str, list[tuple]] = {}
        for fingerprint, _, params in self.entries():
            try:
                job = job_from_params(params)
            except (KeyError, TypeError, ValueError):
                continue
            version = int(params.get("spec_version", 0))
            groups.setdefault(job.fingerprint, []).append(
                (version, fingerprint))
        return groups

    def compact(self) -> CompactStats:
        """Fold stale spec-version duplicates and reclaim space.

        For every logical cell stored more than once (a cache that
        survived ``SPEC_VERSION`` bumps), keep the entry written under
        the newest spec version — preferring the one whose stored
        fingerprint matches the current protocol's — and delete the
        rest along with their artifact bundles.  Finishes with the
        backend's vacuum (``VACUUM`` for SQL stores, empty-shard
        cleanup for file stores), and counts removals on the
        ``store.compacted`` counter.  Also restores the pure-SQL
        report fast path, which mixed-version stores disable.
        """
        folded = 0
        for logical, entries in self._logical_groups().items():
            if len(entries) < 2:
                continue
            # Newest version wins; at equal versions prefer the entry
            # addressed by the current protocol, then the largest
            # fingerprint for determinism.
            entries.sort(key=lambda e: (e[0], e[1] == logical, e[1]))
            for _, fingerprint in entries[:-1]:
                self.backend.delete(fingerprint)
                artifact = self.backend.artifact_dir(fingerprint)
                if artifact.exists():
                    shutil.rmtree(artifact, ignore_errors=True)
                folded += 1
        if folded:
            obs.add("store.compacted", folded)
        self.backend.vacuum()
        return CompactStats(folded=folded, kept=len(self))

    def merge_from(self, src: "ResultCache | str | Path") -> MergeStats:
        """Merge another cache's cells into this one (cross-host
        sharding: run half the grid per machine, merge, report once).

        Insert-or-ignore on fingerprint — an entry this cache already
        holds is kept — except that a source entry carrying a *newer*
        ``spec_version`` for the same fingerprint replaces the local
        one (newest protocol wins).  Intact artifact bundles ride
        along; torn ones (no manifest) are skipped.  Merging is
        idempotent: a second merge of the same source changes nothing.
        Works across backends (file → sqlite and back); counts merged
        rows on the ``store.merged`` counter.
        """
        if not isinstance(src, ResultCache):
            src = ResultCache(src)
        merged = replaced = skipped = artifacts = 0
        mine = set(self.fingerprints())
        for fingerprint in src.fingerprints():
            try:
                results, params = src.backend.load(fingerprint)
            except (FileNotFoundError, ValueError, KeyError) as exc:
                src._corrupt(fingerprint, exc)
                skipped += 1
                continue
            attempts = ()
            if isinstance(src.backend, SqlBackend):
                attempts = tuple(
                    _attempt_from_dict(a)
                    for a in src.backend.load_attempts(fingerprint))
            if fingerprint in mine:
                try:
                    _, local = self.backend.load(fingerprint)
                    local_version = int(local.get("spec_version", 0))
                except (FileNotFoundError, ValueError, KeyError):
                    local_version = -1
                if int(params.get("spec_version", 0)) <= local_version:
                    skipped += 1
                    continue
                replaced += 1
            else:
                merged += 1
            self.backend.save(fingerprint, results, params,
                              attempts=attempts)
            if src.get_artifact(fingerprint) is not None:
                target = self.backend.artifact_dir(fingerprint)
                if target.exists():
                    shutil.rmtree(target, ignore_errors=True)
                shutil.copytree(src.backend.artifact_dir(fingerprint),
                                target)
                self.backend.note_artifact(fingerprint)
                artifacts += 1
        if merged or replaced:
            obs.add("store.merged", merged + replaced)
        return MergeStats(merged=merged, replaced=replaced,
                          skipped=skipped, artifacts=artifacts)

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.fingerprints())

    def evict(self, job: Job) -> None:
        """Drop one cell, metrics and artifact payload both (no-op if
        absent)."""
        fingerprint = job.fingerprint
        self.backend.delete(fingerprint)
        artifact = self.artifact_path(fingerprint)
        if artifact.exists():
            shutil.rmtree(artifact, ignore_errors=True)


def _attempt_from_dict(data: dict):
    """Rehydrate a stored :class:`~repro.engine.resilience.Attempt`
    (unknown fields from future formats are dropped)."""
    import dataclasses as _dc

    from .resilience import Attempt

    fields = {f.name for f in _dc.fields(Attempt)}
    return Attempt(**{k: v for k, v in dict(data).items()
                      if k in fields})
