"""Resilience policy for sweep execution: retries, deadlines, breakers.

An hours-long grid sweep hits failures that have nothing to do with
the cell being computed — an OOM-killed worker, a hung BLAS call, a
flaky disk — and failures that are entirely the cell's fault — a bad
parameterization raising ``ValueError`` on every attempt.  The
:class:`RetryPolicy` separates the two:

* **Transient** failures (a crashed worker process, a cell past its
  deadline, an ``OSError``/``MemoryError``-shaped exception, or
  anything raising :class:`TransientError`) are retried with
  deterministic exponential backoff, up to ``max_attempts``.
* **Deterministic** failures (everything else: ``ValueError``,
  ``KeyError``, assertion errors, …) fail fast on the first attempt —
  retrying them would burn wall-clock to reach the same traceback.

The classification is *worker-side* (:func:`classify_exception` sees
the live exception object), so the policy itself never crosses the
process boundary; the parent only consumes the resulting kind string.

Determinism matters here: retries re-derive everything from the job's
own seed (see :func:`~repro.engine.executor.execute_job`), so a cell
that succeeds on attempt 3 is byte-identical to one that succeeded on
attempt 1, and the backoff schedule is a pure function of the attempt
number — no jitter, no clock dependence — so a chaos-harness run
replays identically.

Every attempt a cell consumed is recorded as an :class:`Attempt` on
its :class:`~repro.engine.executor.JobOutcome` (``outcome.attempts``),
so reporting and telemetry can surface *how* a result was obtained,
not just that it was.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["Attempt", "RetryPolicy", "TransientError",
           "classify_exception"]


class TransientError(RuntimeError):
    """Marker for failures worth retrying (infrastructure, not input).

    Raise (or subclass) this from inside a cell to tell the retry
    machinery the failure is expected to go away on a re-run.  The
    chaos harness's injected faults derive from it.
    """


#: Exception families treated as transient without an explicit
#: :class:`TransientError`: resource pressure and I/O flakiness.
#: ``OSError`` covers disk/pipe/connection errors (``ConnectionError``
#: and friends subclass it); ``MemoryError`` is the in-process shape
#: of the pressure that kills workers outright; ``TimeoutError`` and
#: ``EOFError`` are the usual IPC casualties.
_TRANSIENT_TYPES = (TransientError, OSError, MemoryError, TimeoutError,
                    EOFError)

#: Attempt kinds (``Attempt.kind``): how one execution of a cell ended.
ATTEMPT_KINDS = ("ok", "error", "timeout", "crash")


def classify_exception(exc: BaseException) -> str:
    """``"transient"`` or ``"deterministic"`` for an in-cell exception.

    Runs in the worker, where the live exception object is available;
    the parent only ever sees the resulting string (tracebacks don't
    preserve class identity across the pool pickle).
    """
    return ("transient" if isinstance(exc, _TRANSIENT_TYPES)
            else "deterministic")


@dataclass(frozen=True)
class Attempt:
    """One execution attempt of one grid cell.

    ``kind`` is ``"ok"`` (succeeded), ``"error"`` (raised inside the
    cell), ``"timeout"`` (exceeded the per-cell deadline and had its
    worker killed), or ``"crash"`` (its worker died — pool breakage).
    ``seconds`` is real elapsed wall time measured by the parent from
    submission, so crashed and timed-out attempts report how long they
    actually held a worker.  ``error`` carries the first line of the
    failure for attempt histories (the full traceback of the *final*
    failure lives on the outcome itself).
    """

    kind: str
    seconds: float = 0.0
    error: str | None = None
    transient: bool | None = None  # classification of "error" attempts

    def describe(self) -> str:
        detail = f": {self.error}" if self.error else ""
        return f"{self.kind} after {self.seconds:.2f}s{detail}"


@dataclass(frozen=True)
class RetryPolicy:
    """How a sweep responds to failing, hanging, and crashing cells.

    The default policy is the engine's historical behaviour — one
    attempt, no deadline, never give up on the sweep — so existing
    callers pay nothing; every knob is opt-in.

    Parameters
    ----------
    max_attempts:
        Executions a cell may consume on transient failures and
        timeouts (deterministic failures always fail fast).  ``1``
        disables retries.
    backoff:
        Base seconds slept before retry *k* (1-indexed):
        ``backoff * backoff_factor ** (k - 1)``.  Deterministic — no
        jitter — so fault-plan replays are reproducible.
    backoff_factor:
        Exponential growth of the backoff schedule.
    timeout:
        Per-cell deadline in seconds, enforced by the parent: a cell
        running past it has its worker pool killed and is re-queued
        (consuming an attempt).  ``None`` disables deadlines.
        Enforcement needs worker processes, so a sweep with a timeout
        always runs through the pool path.
    max_failures:
        Circuit breaker: once more than this many cells have
        terminally failed, the sweep stops scheduling work and marks
        everything unfinished as aborted — graceful degradation
        instead of burning hours on a broken grid.  ``None`` never
        trips; ``0`` aborts on the first failure.
    quarantine:
        Pool crashes a single cell may be involved in before it is
        quarantined (marked failed, never re-queued).  Crash retries
        are governed by this bound — not ``max_attempts`` — because a
        pool rebuild must re-queue in-flight victims even when
        retries are disabled.  After a crash, previously-crashed cells
        are re-run one at a time (at most one suspect in flight), so a
        repeat offender is identified and quarantined instead of
        taking innocent neighbours down with it.
    """

    max_attempts: int = 1
    backoff: float = 0.0
    backoff_factor: float = 2.0
    timeout: float | None = None
    max_failures: int | None = None
    quarantine: int = 2

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError(
                f"max_attempts must be >= 1, got {self.max_attempts}")
        if self.backoff < 0:
            raise ValueError(f"backoff must be >= 0, got {self.backoff}")
        if self.backoff_factor <= 0:
            raise ValueError(f"backoff_factor must be > 0, "
                             f"got {self.backoff_factor}")
        if self.timeout is not None and self.timeout <= 0:
            raise ValueError(f"timeout must be > 0, got {self.timeout}")
        if self.max_failures is not None and self.max_failures < 0:
            raise ValueError(
                f"max_failures must be >= 0, got {self.max_failures}")
        if self.quarantine < 1:
            raise ValueError(
                f"quarantine must be >= 1, got {self.quarantine}")

    # ------------------------------------------------------------------
    def backoff_seconds(self, retry: int) -> float:
        """Sleep before the ``retry``-th re-execution (1-indexed).

        A pure function of the retry number — replaying a fault plan
        reproduces the schedule exactly.
        """
        if retry < 1 or self.backoff == 0.0:
            return 0.0
        return self.backoff * self.backoff_factor ** (retry - 1)

    def should_retry_error(self, transient: bool, attempts_used: int
                           ) -> bool:
        """Retry an in-cell failure?  Deterministic failures never
        retry; transient ones retry while attempts remain."""
        return transient and attempts_used < self.max_attempts

    def should_retry_timeout(self, attempts_used: int) -> bool:
        """Timeouts are transient by definition (the work was killed
        mid-flight, not rejected)."""
        return attempts_used < self.max_attempts

    def should_retry_crash(self, crashes: int) -> bool:
        """Pool-crash victims re-queue until the quarantine bound —
        independent of ``max_attempts``, because rebuilding the pool
        must not strand innocent in-flight cells even with retries
        disabled."""
        return crashes < self.quarantine

    def tripped(self, failures: int) -> bool:
        """Has the circuit breaker opened?"""
        return self.max_failures is not None and failures > self.max_failures

    @property
    def active(self) -> bool:
        """Whether any knob differs from the no-op default (used to
        keep the disabled path free of bookkeeping)."""
        return (self.max_attempts > 1 or self.timeout is not None
                or self.max_failures is not None)
