"""Weighted MaxSAT: clause representation and a WalkSAT-style solver.

Salimi's justifiable-fairness repair reduces the minimal
insertion/deletion repair of a database to weighted maximum
satisfiability (its MaxSAT variant).  The instances produced by that
reduction are small-to-medium (one variable per candidate tuple
operation), so a stochastic local-search solver with greedy
initialisation recovers high-quality assignments; tiny instances are
solved exactly by enumeration.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np


@dataclass(frozen=True)
class Clause:
    """A weighted disjunction of literals.

    ``literals`` holds non-zero ints: ``+i`` means variable ``i`` true,
    ``−i`` means variable ``i`` false (variables are 1-indexed, DIMACS
    style).  ``weight`` is the cost of leaving the clause unsatisfied;
    ``hard`` clauses must be satisfied (infinite weight).
    """

    literals: tuple[int, ...]
    weight: float = 1.0
    hard: bool = False

    def __post_init__(self):
        if not self.literals:
            raise ValueError("clause needs at least one literal")
        if any(lit == 0 for lit in self.literals):
            raise ValueError("literal 0 is not allowed (1-indexed variables)")
        if self.weight < 0:
            raise ValueError("clause weight must be non-negative")

    def satisfied(self, assignment: np.ndarray) -> bool:
        """True if the clause holds under a boolean assignment array
        (index 0 unused)."""
        return any(
            assignment[abs(lit)] == (lit > 0) for lit in self.literals
        )


@dataclass
class MaxSatInstance:
    """A weighted partial MaxSAT instance."""

    n_vars: int
    clauses: list[Clause] = field(default_factory=list)

    def add_clause(self, literals, weight: float = 1.0,
                   hard: bool = False) -> None:
        clause = Clause(tuple(int(l) for l in literals), weight, hard)
        if any(abs(lit) > self.n_vars for lit in clause.literals):
            raise ValueError("literal references a variable beyond n_vars")
        self.clauses.append(clause)

    def cost(self, assignment: np.ndarray) -> float:
        """Total weight of unsatisfied soft clauses; ``inf`` if any hard
        clause is violated."""
        total = 0.0
        for clause in self.clauses:
            if clause.satisfied(assignment):
                continue
            if clause.hard:
                return float("inf")
            total += clause.weight
        return total


@dataclass(frozen=True)
class MaxSatSolution:
    """Best assignment found and its soft-clause cost."""

    assignment: np.ndarray  # bool array, index 0 unused
    cost: float

    def value(self, var: int) -> bool:
        return bool(self.assignment[var])


def _greedy_initial(instance: MaxSatInstance,
                    rng: np.random.Generator) -> np.ndarray:
    """Start from a majority-literal greedy assignment."""
    score = np.zeros(instance.n_vars + 1)
    for clause in instance.clauses:
        w = 1e6 if clause.hard else clause.weight
        for lit in clause.literals:
            score[abs(lit)] += w if lit > 0 else -w
    assignment = np.zeros(instance.n_vars + 1, dtype=bool)
    assignment[1:] = score[1:] > 0
    ties = score[1:] == 0
    assignment[1:][ties] = rng.random(int(ties.sum())) < 0.5
    return assignment


def _solve_all_unit(instance: MaxSatInstance) -> MaxSatSolution:
    """Exact solution when every clause is a unit clause.

    With only unit clauses the variables decouple: each variable
    independently takes the polarity with the larger total weight
    (hard unit clauses force their polarity).
    """
    pos = np.zeros(instance.n_vars + 1)
    neg = np.zeros(instance.n_vars + 1)
    forced = np.zeros(instance.n_vars + 1, dtype=int)  # 0 free, ±1 forced
    for clause in instance.clauses:
        lit = clause.literals[0]
        var = abs(lit)
        if clause.hard:
            forced[var] = 1 if lit > 0 else -1
        elif lit > 0:
            pos[var] += clause.weight
        else:
            neg[var] += clause.weight
    assignment = np.zeros(instance.n_vars + 1, dtype=bool)
    assignment[1:] = pos[1:] >= neg[1:]
    assignment[forced == 1] = True
    assignment[forced == -1] = False
    return MaxSatSolution(assignment=assignment,
                          cost=instance.cost(assignment))


def solve_maxsat(instance: MaxSatInstance, max_flips: int = 20000,
                 noise: float = 0.2, seed: int = 0,
                 exhaustive_limit: int = 14) -> MaxSatSolution:
    """Solve a weighted MaxSAT instance.

    Pure-unit-clause instances (the shape Salimi's cell-rounding
    reduction produces) decouple per variable and are solved exactly in
    linear time.  Other instances with at most ``exhaustive_limit``
    variables are solved exactly by enumeration; larger ones by
    WalkSAT-style local search (greedy start, then repeatedly pick an
    unsatisfied clause and flip either a random literal, with
    probability ``noise``, or the literal whose flip most decreases
    cost).
    """
    rng = np.random.default_rng(seed)
    if instance.clauses and all(len(c.literals) == 1
                                for c in instance.clauses):
        return _solve_all_unit(instance)
    if instance.n_vars <= exhaustive_limit:
        best: np.ndarray | None = None
        best_cost = float("inf")
        for bits in range(1 << instance.n_vars):
            assignment = np.zeros(instance.n_vars + 1, dtype=bool)
            for v in range(instance.n_vars):
                assignment[v + 1] = bool(bits >> v & 1)
            cost = instance.cost(assignment)
            if cost < best_cost:
                best, best_cost = assignment, cost
        return MaxSatSolution(assignment=best, cost=best_cost)

    assignment = _greedy_initial(instance, rng)
    cost = instance.cost(assignment)
    best = assignment.copy()
    best_cost = cost
    for _ in range(max_flips):
        # Zero-weight clauses cost nothing, so only positively weighted
        # unsatisfied clauses drive the search.
        unsatisfied = [c for c in instance.clauses
                       if (c.hard or c.weight > 0)
                       and not c.satisfied(assignment)]
        if not unsatisfied:
            break
        weights = np.array([1e6 if c.hard else c.weight
                            for c in unsatisfied])
        pick = rng.choice(len(unsatisfied), p=weights / weights.sum())
        clause = unsatisfied[pick]
        if rng.random() < noise:
            flip = abs(clause.literals[rng.integers(len(clause.literals))])
        else:
            flip = None
            flip_cost = float("inf")
            for lit in clause.literals:
                var = abs(lit)
                assignment[var] = ~assignment[var]
                candidate = instance.cost(assignment)
                assignment[var] = ~assignment[var]
                if candidate < flip_cost:
                    flip, flip_cost = var, candidate
        assignment[flip] = ~assignment[flip]
        cost = instance.cost(assignment)
        if cost < best_cost:
            best, best_cost = assignment.copy(), cost
    return MaxSatSolution(assignment=best, cost=best_cost)
