"""Non-negative matrix factorisation (Lee–Seung multiplicative updates).

Salimi's MatFac repair variant factorises the (weighted) contingency
tensor of the training data to obtain a low-rank, fairness-constrained
completion.  This module provides the generic weighted-NMF primitive.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class NMFResult:
    """Factorisation ``A ≈ W @ H`` with the final Frobenius error."""

    W: np.ndarray
    H: np.ndarray
    error: float

    def reconstruct(self) -> np.ndarray:
        return self.W @ self.H


def nmf(A: np.ndarray, rank: int, n_iter: int = 300,
        mask: np.ndarray | None = None, seed: int = 0,
        tol: float = 1e-8) -> NMFResult:
    """Factorise a non-negative matrix as ``W @ H``.

    Parameters
    ----------
    A:
        Non-negative matrix to factorise.
    rank:
        Inner dimension of the factorisation.
    n_iter:
        Maximum multiplicative-update rounds.
    mask:
        Optional 0/1 matrix; zero entries of the mask are ignored by
        the objective (weighted NMF — used for matrix *completion* of
        cells the repair may rewrite).
    seed:
        Initialisation seed.
    tol:
        Early stop when the masked error improves less than this.
    """
    A = np.asarray(A, dtype=float)
    if A.ndim != 2:
        raise ValueError("A must be a matrix")
    if np.any(A < 0):
        raise ValueError("A must be non-negative")
    if rank < 1 or rank > min(A.shape):
        raise ValueError(f"rank must be in [1, {min(A.shape)}]")
    M = np.ones_like(A) if mask is None else np.asarray(mask, dtype=float)
    if M.shape != A.shape:
        raise ValueError("mask must match A's shape")

    rng = np.random.default_rng(seed)
    scale = np.sqrt(max(A.mean(), 1e-12) / rank)
    W = rng.random((A.shape[0], rank)) * scale + 1e-6
    H = rng.random((rank, A.shape[1])) * scale + 1e-6
    eps = 1e-12
    previous = np.inf
    for _ in range(n_iter):
        WH = W @ H
        H *= (W.T @ (M * A)) / (W.T @ (M * WH) + eps)
        WH = W @ H
        W *= ((M * A) @ H.T) / ((M * WH) @ H.T + eps)
        error = float(np.sum(M * (A - W @ H) ** 2))
        if previous - error < tol:
            break
        previous = error
    error = float(np.sum(M * (A - W @ H) ** 2))
    return NMFResult(W=W, H=H, error=error)
