"""Constrained smooth minimisation via quadratic penalties.

The Zafar and Celis in-processing approaches solve problems of the form

    minimise  L(θ)   subject to  g_i(θ) ≤ 0

where ``L`` and the ``g_i`` are smooth in the classifier parameters.
The original implementations use cvxpy/DCCP; here we use the classic
quadratic-penalty method: minimise ``L(θ) + μ Σ max(0, g_i(θ))²`` for an
increasing schedule of μ, with L-BFGS-B (scipy) as the inner solver.
"""

from __future__ import annotations

from collections.abc import Callable, Sequence
from dataclasses import dataclass

import numpy as np
from scipy import optimize

Objective = Callable[[np.ndarray], tuple[float, np.ndarray]]
"""Returns ``(value, gradient)`` at a parameter vector."""


@dataclass(frozen=True)
class PenaltyResult:
    """Outcome of a penalty-method solve."""

    theta: np.ndarray
    objective: float
    max_violation: float
    n_outer: int


def minimize_penalty(loss: Objective,
                     constraints: Sequence[Objective],
                     theta0: np.ndarray,
                     mu0: float = 1.0,
                     mu_growth: float = 10.0,
                     n_outer: int = 6,
                     tol: float = 1e-6,
                     inner_maxiter: int = 200) -> PenaltyResult:
    """Minimise ``loss`` subject to ``g_i(θ) ≤ 0`` for each constraint.

    Parameters
    ----------
    loss, constraints:
        Smooth functions returning ``(value, gradient)``.
    theta0:
        Starting parameters.
    mu0, mu_growth, n_outer:
        Penalty schedule: μ starts at ``mu0`` and multiplies by
        ``mu_growth`` each outer round.
    tol:
        Constraint-violation target; outer loop stops early below it.
    """
    theta = np.asarray(theta0, dtype=float).copy()
    mu = mu0
    outer_done = 0
    for _ in range(n_outer):
        outer_done += 1

        def penalised(t: np.ndarray) -> tuple[float, np.ndarray]:
            value, grad = loss(t)
            total = value
            total_grad = grad.copy()
            for g in constraints:
                gv, ggrad = g(t)
                if gv > 0:
                    total += mu * gv * gv
                    total_grad += 2 * mu * gv * ggrad
            return total, total_grad

        result = optimize.minimize(
            penalised, theta, jac=True, method="L-BFGS-B",
            options={"maxiter": inner_maxiter})
        theta = result.x
        violation = max((g(theta)[0] for g in constraints), default=0.0)
        if violation <= tol:
            break
        mu *= mu_growth

    final_loss, _ = loss(theta)
    final_violation = max((g(theta)[0] for g in constraints), default=0.0)
    return PenaltyResult(theta=theta, objective=float(final_loss),
                         max_violation=float(max(final_violation, 0.0)),
                         n_outer=outer_done)


def projected_gradient(grad: Callable[[np.ndarray], np.ndarray],
                       project: Callable[[np.ndarray], np.ndarray],
                       x0: np.ndarray, step: float = 0.1,
                       n_iter: int = 500, tol: float = 1e-8) -> np.ndarray:
    """Minimise a smooth function over a convex set by projected GD.

    Used by the Calmon distribution repair, whose feasible region is a
    product of probability simplices.
    """
    x = np.asarray(x0, dtype=float).copy()
    for _ in range(n_iter):
        new = project(x - step * grad(x))
        if np.max(np.abs(new - x)) < tol:
            return new
        x = new
    return x


def project_simplex(v: np.ndarray) -> np.ndarray:
    """Euclidean projection of a vector onto the probability simplex."""
    v = np.asarray(v, dtype=float)
    if v.ndim != 1:
        raise ValueError("project_simplex expects a vector")
    u = np.sort(v)[::-1]
    css = np.cumsum(u) - 1.0
    rho = np.flatnonzero(u - css / (np.arange(len(v)) + 1) > 0)[-1]
    tau = css[rho] / (rho + 1)
    return np.maximum(v - tau, 0.0)
