"""Optimisation substrate: penalty-method convex solver, weighted
MaxSAT local search, and non-negative matrix factorisation."""

from .convex import (PenaltyResult, minimize_penalty, project_simplex,
                     projected_gradient)
from .matfac import NMFResult, nmf
from .maxsat import Clause, MaxSatInstance, MaxSatSolution, solve_maxsat

__all__ = [
    "minimize_penalty", "PenaltyResult", "projected_gradient",
    "project_simplex",
    "Clause", "MaxSatInstance", "MaxSatSolution", "solve_maxsat",
    "nmf", "NMFResult",
]
