"""Logging-based sweep progress emitter.

The CLI's sweep path used to ``print`` every
:class:`~repro.engine.executor.SweepProgress` line to stdout, where it
interleaved with the result tables.  :class:`LoggingProgress` routes
the per-cell lines through :mod:`logging` (logger ``repro.sweep``,
i.e. stderr under the CLI's basic config) with a verbosity knob:

* ``verbosity < 0`` (``repro sweep --quiet``): no per-cell lines —
  only the final summary and tables on stdout.
* ``verbosity == 0`` (default): the classic one line per finished
  cell.
* ``verbosity >= 1`` (``-v``): the line plus the cell's per-phase
  timings, read from the trace fragment the engine attaches to each
  executed outcome when trace collection is on.
"""

from __future__ import annotations

import logging

__all__ = ["LoggingProgress", "phase_breakdown"]


def phase_breakdown(outcome) -> str:
    """``"dataset 0.01s · fit 0.31s · metrics 0.88s"`` for an outcome
    carrying a trace fragment (empty string otherwise)."""
    fragment = getattr(outcome, "trace", None)
    if not fragment:
        return ""
    phases = sorted((s for s in fragment["spans"] if s["depth"] == 1),
                    key=lambda s: s["ts"])
    return " · ".join(f"{s['name']} {s['dur']:.2f}s" for s in phases)


class LoggingProgress:
    """A :func:`~repro.engine.executor.run_sweep` progress callback
    emitting through ``logging``."""

    def __init__(self, verbosity: int = 0,
                 logger: logging.Logger | None = None):
        self.verbosity = verbosity
        self.logger = logger or logging.getLogger("repro.sweep")

    def __call__(self, progress) -> None:
        if self.verbosity < 0:
            return
        line = progress.line()
        if self.verbosity >= 1:
            detail = phase_breakdown(progress.outcome)
            if detail:
                line += f"  [{detail}]"
        self.logger.info(line)
