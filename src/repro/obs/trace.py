"""Trace collection and export: merge worker fragments, write files.

The sweep engine records one :class:`~repro.obs.core.Recorder`
fragment per executed cell (inside the worker process) plus one
sweep-scope fragment in the parent (cache probes, scheduling).  A
:class:`TraceCollector` merges them and writes two artifacts into a
trace directory:

``events.jsonl``
    One JSON object per line: a ``header`` line first (schema version,
    :func:`~repro.obs.doctor.environment_info` block, sweep metadata),
    then per cell a ``cell`` line (label, grid-axis attributes,
    cached/failed flags, recorded elapsed) followed by its ``span``,
    ``counter``, and ``event`` lines.  This is the machine-readable
    record ``repro trace`` summarizes.

``trace.json``
    The same spans in Chrome trace-event format (``"X"`` complete
    events, one synthetic thread per cell named by its label) — load
    it in ``chrome://tracing`` or https://ui.perfetto.dev to see the
    sweep's timeline.

Span timestamps are wall-clock anchored (see :class:`Recorder`), so
fragments recorded in different worker processes land on one shared
timeline.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

__all__ = ["SCHEMA", "TraceCollector"]

#: Version of the events.jsonl schema (bump on breaking layout change).
SCHEMA = 1


class TraceCollector:
    """Accumulates per-cell trace fragments and writes the exports.

    Parameters
    ----------
    env:
        Environment header block; defaults to
        :func:`~repro.obs.doctor.environment_info`.
    meta:
        Free-form sweep metadata stamped into the header (grid
        description, worker count, ...).
    trace_memory:
        Ask the engine to record per-span ``tracemalloc`` peaks.
    """

    def __init__(self, env: dict | None = None, meta: dict | None = None,
                 trace_memory: bool = False):
        if env is None:
            from .doctor import environment_info
            env = environment_info()
        self.env = env
        self.meta = dict(meta or {})
        self.trace_memory = bool(trace_memory)
        self.created = time.time()
        self.cells: list[dict] = []
        self.scopes: list[dict] = []

    # ------------------------------------------------------------------
    def add_cell(self, label: str, *, fragment: dict | None = None,
                 attrs: dict | None = None, elapsed: float = 0.0,
                 cached: bool = False, failed: bool = False) -> None:
        """Attach one grid cell's recording (``fragment=None`` for
        cache hits, which execute nothing)."""
        self.cells.append({
            "id": len(self.cells),
            "label": label,
            "attrs": dict(attrs or {}),
            "elapsed": float(elapsed),
            "cached": bool(cached),
            "failed": bool(failed),
            "fragment": fragment,
        })

    def add_scope(self, name: str, fragment: dict) -> None:
        """Attach a non-cell recording (e.g. the parent sweep scope:
        cache probes, scheduling, cache write-backs)."""
        self.scopes.append({"name": name, "fragment": fragment})

    # ------------------------------------------------------------------
    def counters(self) -> dict[str, float]:
        """All counters, merged across every cell and scope."""
        merged: dict[str, float] = {}
        for fragment in self._fragments():
            for name, value in fragment["counters"].items():
                merged[name] = merged.get(name, 0) + value
        return merged

    def _fragments(self):
        for scope in self.scopes:
            if scope["fragment"] is not None:
                yield scope["fragment"]
        for cell in self.cells:
            if cell["fragment"] is not None:
                yield cell["fragment"]

    # ------------------------------------------------------------------
    def header(self) -> dict:
        return {"type": "header", "schema": SCHEMA,
                "created": self.created, "env": self.env,
                "meta": self.meta}

    def events(self):
        """Yield every ``events.jsonl`` line as a dict, header first."""
        yield self.header()
        for scope in self.scopes:
            yield from self._fragment_events(scope["fragment"],
                                             scope=scope["name"])
        for cell in self.cells:
            yield {"type": "cell", "cell_id": cell["id"],
                   "label": cell["label"], "attrs": cell["attrs"],
                   "elapsed": cell["elapsed"], "cached": cell["cached"],
                   "failed": cell["failed"]}
            yield from self._fragment_events(cell["fragment"],
                                             cell_id=cell["id"])

    @staticmethod
    def _fragment_events(fragment: dict | None, **where):
        if fragment is None:
            return
        for span in fragment["spans"]:
            yield {"type": "span", **where, **span}
        for name, value in sorted(fragment["counters"].items()):
            yield {"type": "counter", **where, "name": name,
                   "value": value}
        for event in fragment["events"]:
            yield {**event, **where}

    # ------------------------------------------------------------------
    def chrome_trace(self) -> dict:
        """The recording in Chrome trace-event (JSON object) format."""
        trace_events: list[dict] = []
        starts = [span["ts"] for fragment in self._fragments()
                  for span in fragment["spans"]]
        base = min(starts) if starts else self.created

        def emit(fragment: dict, tid: int, name: str, cat: str) -> None:
            trace_events.append({
                "ph": "M", "name": "thread_name", "pid": 1, "tid": tid,
                "args": {"name": name}})
            for span in fragment["spans"]:
                args = dict(span["attrs"])
                if "mem_peak" in span:
                    args["mem_peak"] = span["mem_peak"]
                if "error" in span:
                    args["error"] = span["error"]
                trace_events.append({
                    "ph": "X", "name": span["name"], "cat": cat,
                    "pid": 1, "tid": tid,
                    "ts": round((span["ts"] - base) * 1e6, 1),
                    "dur": round(span["dur"] * 1e6, 1),
                    "args": args})

        trace_events.append({"ph": "M", "name": "process_name",
                             "pid": 1, "tid": 0,
                             "args": {"name": "repro sweep"}})
        tid = 0
        for scope in self.scopes:
            if scope["fragment"] is not None:
                emit(scope["fragment"], tid, scope["name"], "scope")
            tid += 1
        for cell in self.cells:
            if cell["fragment"] is not None:
                emit(cell["fragment"], tid, cell["label"], "cell")
                tid += 1
        return {"traceEvents": trace_events, "displayTimeUnit": "ms",
                "otherData": {"schema": SCHEMA, "env": self.env,
                              "meta": self.meta}}

    # ------------------------------------------------------------------
    def write(self, directory: str | Path) -> Path:
        """Write ``events.jsonl`` + ``trace.json`` into ``directory``
        (created if needed); returns the directory."""
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        with open(directory / "events.jsonl", "w") as handle:
            for event in self.events():
                handle.write(json.dumps(event) + "\n")
        with open(directory / "trace.json", "w") as handle:
            json.dump(self.chrome_trace(), handle)
        return directory
