"""Observability: spans, counters, trace export, and diagnostics.

The telemetry layer the sweep engine (and every hot kernel under it)
is instrumented with.  Disabled by default with near-zero overhead —
:func:`span` and :func:`add` are cheap no-ops until a recorder is
installed — and process-safe: each worker records its own fragment,
the parent merges them into a :class:`TraceCollector`, and the result
exports as a JSON-lines event log plus a Chrome trace-event file
(``chrome://tracing`` / Perfetto).

Entry points::

    repro sweep --trace DIR      # record a sweep
    repro trace DIR              # summarize it (and --check in CI)
    repro doctor                 # the environment block traces embed

    from repro import obs
    with obs.recording() as rec:
        with obs.span("fit", model="lr"):
            ...
    rec.snapshot()
"""

from .core import (Recorder, add, enabled, recorder, recording, span,
                   warning)
from .doctor import THREAD_ENV_VARS, environment_info, format_doctor
from .progress import LoggingProgress, phase_breakdown
from .summary import (check_trace, format_summary, load_trace,
                      merged_counters, phase_totals, phase_totals_by)
from .trace import SCHEMA, TraceCollector

__all__ = [
    "Recorder", "add", "enabled", "recorder", "recording", "span",
    "warning",
    "THREAD_ENV_VARS", "environment_info", "format_doctor",
    "LoggingProgress", "phase_breakdown",
    "check_trace", "format_summary", "load_trace", "merged_counters",
    "phase_totals", "phase_totals_by",
    "SCHEMA", "TraceCollector",
]
