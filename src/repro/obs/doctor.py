"""Environment diagnostics: ``repro doctor`` and trace headers.

Performance numbers are only interpretable together with the
environment that produced them — BLAS backend, thread pinning, numpy
version, default kernel block sizes.  :func:`environment_info`
collects that block once; ``repro doctor`` prints it, and every trace
written by :class:`repro.obs.trace.TraceCollector` embeds it in the
header so a trace file is self-describing.
"""

from __future__ import annotations

import os
import platform

__all__ = ["THREAD_ENV_VARS", "environment_info", "format_doctor"]

#: Thread-count environment variables the numerical stack honours
#: (``REPRO_THREADS`` is this library's own kernel-tile knob).
THREAD_ENV_VARS = (
    "OMP_NUM_THREADS",
    "OPENBLAS_NUM_THREADS",
    "MKL_NUM_THREADS",
    "VECLIB_MAXIMUM_THREADS",
    "NUMEXPR_NUM_THREADS",
    "BLIS_NUM_THREADS",
    "REPRO_THREADS",
)


def _blas_info() -> dict:
    """Best-effort BLAS/LAPACK identification from numpy's build
    config (shape varies across numpy versions, hence the guards)."""
    import numpy as np

    try:
        config = np.show_config(mode="dicts")
    except TypeError:  # pragma: no cover - numpy < 1.25
        return {"detail": "unavailable (numpy too old for mode='dicts')"}
    except Exception as exc:  # pragma: no cover - exotic builds
        return {"detail": f"unavailable ({exc})"}
    info: dict = {}
    dependencies = (config or {}).get("Build Dependencies", {})
    for kind in ("blas", "lapack"):
        block = dependencies.get(kind)
        if isinstance(block, dict):
            info[kind] = {key: block[key]
                          for key in ("name", "version", "openblas configuration")
                          if key in block}
    return info or {"detail": "unavailable"}


def environment_info() -> dict:
    """One JSON-safe block describing the numerical environment.

    Includes the package version, interpreter and platform, numpy and
    its BLAS backend, the thread-count environment variables (value or
    ``None`` when unset), CPU count, and the library's default
    block/chunk sizes — the knobs every perf trace depends on.
    """
    import numpy as np

    from .. import __version__
    from ..metrics.individual import _MAX_BATCH
    from ..metrics.pairwise import (DEFAULT_BLOCK_SIZE,
                                    resolve_memory_budget,
                                    resolve_threads)

    def _resolved(resolve):
        # The doctor exists to surface misconfiguration: a malformed
        # REPRO_THREADS / REPRO_DENSE_BUDGET_MB must show up in the
        # report, not crash it.
        try:
            return resolve(None)
        except ValueError as exc:
            return f"(invalid: {exc})"

    return {
        "repro": __version__,
        "python": platform.python_version(),
        "platform": platform.platform(),
        "machine": platform.machine(),
        "cpu_count": os.cpu_count(),
        "numpy": np.__version__,
        "blas": _blas_info(),
        "threads": {var: os.environ.get(var) for var in THREAD_ENV_VARS},
        "defaults": {
            "pairwise_block_size": DEFAULT_BLOCK_SIZE,
            "abduction_max_batch": _MAX_BATCH,
            # Resolved defaults (REPRO_THREADS / REPRO_DENSE_BUDGET_MB
            # applied); None budget = dense outputs never spill.
            "pairwise_threads": _resolved(resolve_threads),
            "dense_spill_budget_mb": _resolved(resolve_memory_budget),
        },
    }


def format_doctor(info: dict | None = None) -> str:
    """Human-readable rendering of :func:`environment_info`."""
    info = environment_info() if info is None else info
    lines = [
        f"repro {info['repro']}",
        f"python {info['python']} on {info['platform']}",
        f"cpus: {info['cpu_count']}",
        f"numpy {info['numpy']}",
    ]
    blas = info.get("blas", {})
    if "detail" in blas:
        lines.append(f"blas: {blas['detail']}")
    else:
        for kind, block in sorted(blas.items()):
            name = block.get("name", "?")
            version = block.get("version", "?")
            lines.append(f"{kind}: {name} {version}")
    lines.append("thread environment:")
    for var, value in info["threads"].items():
        lines.append(f"  {var} = {value if value is not None else '(unset)'}")
    lines.append("defaults:")
    for knob, value in info["defaults"].items():
        lines.append(f"  {knob} = {value}")
    return "\n".join(lines)
