"""Telemetry core: nestable spans, counters, and structured events.

The subsystem is **off by default** and compiles to a no-op when no
:class:`Recorder` is installed: :func:`span` returns a shared
singleton context manager and :func:`add` falls through on a single
``None`` check, so instrumented hot paths (the pairwise kernel's block
loop, the abduction chunk loop) pay one attribute load per call and
allocate nothing that survives the call.  The engine installs a fresh
recorder per executed cell (each worker process records independently;
fragments are merged in the parent — see
:class:`repro.obs.trace.TraceCollector`).

Usage::

    from repro import obs

    with obs.recording() as rec:
        with obs.span("fit", model="lr"):
            ...
        obs.add("pairwise.blocks")
    fragment = rec.snapshot()          # plain dicts, picklable

Span records carry wall-clock timestamps (the recorder anchors a
``perf_counter`` offset to ``time.time()`` once, so spans from
different processes merge onto one timeline), durations, nesting depth
and parent ids, arbitrary JSON-safe attributes, and — when the
recorder was created with ``trace_memory=True`` — the ``tracemalloc``
peak observed while the span was open.

:func:`warning` is the structured-warning channel: it always emits
through :mod:`logging` (logger ``repro.obs``) so problems surface even
without an active recorder, and additionally records an event into the
trace when one is recording.
"""

from __future__ import annotations

import logging
import time
import tracemalloc
from contextlib import contextmanager

__all__ = ["Recorder", "add", "enabled", "recorder", "recording",
           "span", "warning"]

_log = logging.getLogger("repro.obs")

#: The process-wide active recorder (``None`` = telemetry disabled).
_active: "Recorder | None" = None


def enabled() -> bool:
    """Whether a recorder is currently installed in this process."""
    return _active is not None


def recorder() -> "Recorder | None":
    """The active recorder, or ``None`` when telemetry is disabled."""
    return _active


# ----------------------------------------------------------------------
# Spans
# ----------------------------------------------------------------------
class _NoopSpan:
    """Shared do-nothing span handed out while telemetry is disabled."""

    __slots__ = ()

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, *exc) -> bool:
        return False

    def set(self, **attrs) -> "_NoopSpan":
        return self


_NOOP = _NoopSpan()


class _Span:
    """A live span bound to one recorder.  Use via :func:`span`."""

    __slots__ = ("_rec", "name", "attrs", "id", "parent", "depth",
                 "_start", "_wall", "_peak")

    def __init__(self, rec: "Recorder", name: str, attrs: dict):
        self._rec = rec
        self.name = name
        self.attrs = attrs
        self._peak = 0

    def set(self, **attrs) -> "_Span":
        """Attach attributes after entry (e.g. values known only once
        the work inside ran)."""
        self.attrs.update(attrs)
        return self

    def __enter__(self) -> "_Span":
        rec = self._rec
        stack = rec._stack
        self.parent = stack[-1].id if stack else None
        self.depth = len(stack)
        self.id = rec._take_id()
        if rec.trace_memory:
            rec._flush_peak()
        stack.append(self)
        self._wall = rec.now()
        self._start = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        duration = time.perf_counter() - self._start
        rec = self._rec
        if rec.trace_memory:
            rec._flush_peak()
        stack = rec._stack
        # Normal unwinding pops exactly this span; mispaired exits
        # (a span closed out of order) unwind defensively rather than
        # corrupting depths for the rest of the recording.
        while stack:
            closed = stack.pop()
            if closed is self:
                break
        record = {"name": self.name, "ts": self._wall, "dur": duration,
                  "depth": self.depth, "id": self.id,
                  "parent": self.parent, "attrs": self.attrs}
        if exc_type is not None:
            record["error"] = exc_type.__name__
        if rec.trace_memory:
            record["mem_peak"] = int(self._peak)
        rec.spans.append(record)
        return False


def span(name: str, **attrs):
    """A context manager timing one named region.

    No-op (a shared, allocation-free singleton) when telemetry is
    disabled; otherwise records wall start, duration, nesting depth,
    parent span, and ``attrs`` into the active recorder on exit —
    including when the body raises (the span then carries an ``error``
    field with the exception type).
    """
    rec = _active
    if rec is None:
        return _NOOP
    return _Span(rec, name, attrs)


# ----------------------------------------------------------------------
# Counters and events
# ----------------------------------------------------------------------
def add(name: str, value: float = 1) -> None:
    """Increment a named counter on the active recorder (no-op when
    telemetry is disabled)."""
    rec = _active
    if rec is None:
        return
    counters = rec.counters
    counters[name] = counters.get(name, 0) + value


def warning(name: str, **attrs) -> None:
    """Emit a structured warning.

    Always logs through ``logging.getLogger("repro.obs")`` — corrupt
    cache shards and friends must surface even in untraced runs — and
    records a trace event when a recorder is active.
    """
    detail = " ".join(f"{key}={value}" for key, value in attrs.items())
    _log.warning("%s%s", name, f": {detail}" if detail else "")
    rec = _active
    if rec is not None:
        rec.events.append({"type": "warning", "name": name,
                           "ts": rec.now(), "attrs": attrs})


# ----------------------------------------------------------------------
# The recorder
# ----------------------------------------------------------------------
class Recorder:
    """Collects one process's spans, counters, and events.

    Spans are appended in completion order; :meth:`snapshot` returns
    everything as plain dicts so worker processes can ship their
    recording back through a ``ProcessPoolExecutor`` result pickle.
    """

    def __init__(self, trace_memory: bool = False):
        self.trace_memory = bool(trace_memory)
        self.epoch_wall = time.time()
        self.epoch_perf = time.perf_counter()
        self.spans: list[dict] = []
        self.counters: dict[str, float] = {}
        self.events: list[dict] = []
        self._stack: list[_Span] = []
        self._next_id = 0

    def _take_id(self) -> int:
        span_id = self._next_id
        self._next_id += 1
        return span_id

    def now(self) -> float:
        """Wall-clock seconds, monotonic within this recorder."""
        return self.epoch_wall + (time.perf_counter() - self.epoch_perf)

    def _flush_peak(self) -> None:
        """Fold the tracemalloc peak since the last flush into every
        open span, then reset it (so siblings don't inherit each
        other's peaks)."""
        if not tracemalloc.is_tracing():
            return
        _, peak = tracemalloc.get_traced_memory()
        for open_span in self._stack:
            if peak > open_span._peak:
                open_span._peak = peak
        tracemalloc.reset_peak()

    def snapshot(self) -> dict:
        """The recording as picklable plain data (a *trace fragment*)."""
        return {"spans": list(self.spans),
                "counters": dict(self.counters),
                "events": list(self.events)}


@contextmanager
def recording(trace_memory: bool = False):
    """Install a fresh :class:`Recorder` for the duration of the block.

    Nests: the previous recorder (if any) is restored on exit, so a
    serial sweep can record per-cell fragments inside a parent
    sweep-scope recording exactly like isolated worker processes do.
    ``trace_memory=True`` starts :mod:`tracemalloc` if it is not
    already tracing (and stops it again on exit if it started it).
    """
    global _active
    rec = Recorder(trace_memory=trace_memory)
    started_tracemalloc = False
    if trace_memory and not tracemalloc.is_tracing():
        tracemalloc.start()
        started_tracemalloc = True
    previous = _active
    _active = rec
    try:
        yield rec
    finally:
        _active = previous
        if started_tracemalloc:
            tracemalloc.stop()
