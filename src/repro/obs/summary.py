"""Read back and summarize a written trace (`repro trace`).

:func:`load_trace` parses an ``events.jsonl`` (or the directory
holding one) back into header + per-cell records;
:func:`format_summary` renders the analyst's view — per-phase totals,
counters, slowest cells, top individual spans, optionally per-phase
totals grouped by a grid axis — and :func:`check_trace` is the CI
gate: every computed cell must carry the phase spans its job implies,
and the phase spans must account for (cover) the cell's recorded
elapsed time.
"""

from __future__ import annotations

import json
from pathlib import Path

__all__ = ["check_trace", "format_summary", "load_trace",
           "phase_totals", "phase_totals_by"]

#: Phase spans every computed cell records, plus the ones implied by
#: the cell's grid axes (attribute name -> span name).
ALWAYS_PHASES = ("dataset", "fit", "metrics")
CONDITIONAL_PHASES = (("error", "error"), ("imputer", "impute"),
                      ("audit", "audit"))


def load_trace(path: str | Path) -> dict:
    """Parse a trace back into ``{"header", "cells", "scopes"}``.

    ``path`` may be the trace directory (containing ``events.jsonl``)
    or the events file itself.

    Raises
    ------
    FileNotFoundError
        If no events file is found.
    ValueError
        If the file does not start with a header line or a line is not
        valid JSON.
    """
    path = Path(path)
    if path.is_dir():
        path = path / "events.jsonl"
    if not path.exists():
        raise FileNotFoundError(f"no trace events at {path}")
    header = None
    cells: dict[int, dict] = {}
    scopes: dict[str, dict] = {}

    def bucket(line: dict) -> dict:
        if "cell_id" in line:
            return cells.setdefault(line["cell_id"], _empty_cell())
        name = line.get("scope", "?")
        return scopes.setdefault(name, {"name": name, **_empty_cell()})

    for number, raw in enumerate(path.read_text().splitlines(), start=1):
        if not raw.strip():
            continue
        try:
            line = json.loads(raw)
        except json.JSONDecodeError as exc:
            raise ValueError(f"{path}:{number}: invalid JSON ({exc})")
        kind = line.get("type")
        if kind == "header":
            header = line
        elif kind == "cell":
            cell = cells.setdefault(line["cell_id"], _empty_cell())
            cell.update({key: line[key] for key in
                         ("label", "attrs", "elapsed", "cached", "failed")})
            cell["id"] = line["cell_id"]
        elif kind == "span":
            bucket(line)["spans"].append(line)
        elif kind == "counter":
            target = bucket(line)["counters"]
            target[line["name"]] = target.get(line["name"], 0) \
                + line["value"]
        else:
            bucket(line)["events"].append(line)
    if header is None:
        raise ValueError(f"{path} has no header line")
    return {"header": header,
            "cells": [cells[key] for key in sorted(cells)],
            "scopes": list(scopes.values())}


def _empty_cell() -> dict:
    return {"label": "?", "attrs": {}, "elapsed": 0.0, "cached": False,
            "failed": False, "spans": [], "counters": {}, "events": []}


# ----------------------------------------------------------------------
# Aggregations
# ----------------------------------------------------------------------
def _cell_phases(cell: dict) -> list[dict]:
    """The cell's phase spans (direct children of the root span)."""
    return sorted((s for s in cell["spans"] if s["depth"] == 1),
                  key=lambda s: s["ts"])


def phase_totals(trace: dict) -> dict[str, dict]:
    """Aggregate spans by name over every cell: count/total/mean/max."""
    totals: dict[str, dict] = {}
    for cell in trace["cells"]:
        for span in cell["spans"]:
            entry = totals.setdefault(
                span["name"], {"count": 0, "total": 0.0, "max": 0.0})
            entry["count"] += 1
            entry["total"] += span["dur"]
            entry["max"] = max(entry["max"], span["dur"])
    for entry in totals.values():
        entry["mean"] = entry["total"] / entry["count"]
    return totals


def phase_totals_by(trace: dict, axis: str) -> dict[str, dict[str, float]]:
    """Per-phase total seconds grouped by a cell attribute (grid
    axis), e.g. ``axis="approach"`` or ``"dataset"``."""
    grouped: dict[str, dict[str, float]] = {}
    for cell in trace["cells"]:
        value = str(cell["attrs"].get(axis, "-"))
        target = grouped.setdefault(value, {})
        for span in _cell_phases(cell):
            target[span["name"]] = target.get(span["name"], 0.0) \
                + span["dur"]
    return grouped


def merged_counters(trace: dict) -> dict[str, float]:
    merged: dict[str, float] = {}
    for holder in (*trace["scopes"], *trace["cells"]):
        for name, value in holder["counters"].items():
            merged[name] = merged.get(name, 0) + value
    return merged


def _coverage(cell: dict) -> float | None:
    """Fraction of the cell's recorded elapsed covered by its phase
    spans (``None`` when the cell recorded no elapsed time)."""
    if cell["elapsed"] <= 0:
        return None
    return sum(s["dur"] for s in _cell_phases(cell)) / cell["elapsed"]


# ----------------------------------------------------------------------
# The CI gate
# ----------------------------------------------------------------------
def check_trace(trace: dict, *, min_coverage: float = 0.9,
                coverage_floor_s: float = 0.5) -> list[str]:
    """Structural problems with a trace (empty list = pass).

    Every computed (non-cached, non-failed) cell must record the
    ``cell`` root span, the unconditional phases (``dataset`` /
    ``fit`` / ``metrics``), and each phase its grid attributes imply
    (``error``/``impute``/``audit``); its phase spans must sum to at
    least ``min_coverage`` of the recorded elapsed (only enforced for
    cells slower than ``coverage_floor_s`` — on sub-second cells the
    fixed per-cell overhead outside any phase is mostly noise).
    """
    problems = []
    for cell in trace["cells"]:
        if cell["cached"] or cell["failed"]:
            continue
        names = {s["name"] for s in cell["spans"]}
        expected = {"cell", *ALWAYS_PHASES}
        expected.update(phase for attr, phase in CONDITIONAL_PHASES
                        if cell["attrs"].get(attr) is not None)
        missing = expected - names
        if missing:
            problems.append(f"cell {cell['label']!r}: missing span(s) "
                            f"{sorted(missing)}")
        coverage = _coverage(cell)
        if (coverage is not None and cell["elapsed"] >= coverage_floor_s
                and coverage < min_coverage):
            problems.append(
                f"cell {cell['label']!r}: phase spans cover only "
                f"{coverage:.0%} of the recorded {cell['elapsed']:.2f}s "
                f"(need {min_coverage:.0%})")
    if not trace["cells"]:
        problems.append("trace contains no cells")
    return problems


# ----------------------------------------------------------------------
# Rendering
# ----------------------------------------------------------------------
def _fmt_table(rows: list[tuple], headers: tuple) -> list[str]:
    widths = [max(len(str(row[i])) for row in (headers, *rows))
              for i in range(len(headers))]
    lines = ["  " + "  ".join(f"{headers[i]:<{widths[i]}}"
                              for i in range(len(headers)))]
    for row in rows:
        lines.append("  " + "  ".join(f"{str(row[i]):<{widths[i]}}"
                                      for i in range(len(row))))
    return lines


def format_summary(trace: dict, *, top: int = 10,
                   by: str | None = None) -> str:
    """Analyst-readable trace summary (the ``repro trace`` output)."""
    header = trace["header"]
    env = header.get("env", {})
    cells = trace["cells"]
    computed = [c for c in cells if not c["cached"] and not c["failed"]]
    cached = sum(1 for c in cells if c["cached"])
    failed = sum(1 for c in cells if c["failed"])
    lines = [
        f"trace schema {header.get('schema')} · repro "
        f"{env.get('repro')} · numpy {env.get('numpy')} · python "
        f"{env.get('python')}",
        f"{len(cells)} cells: {len(computed)} computed, {cached} "
        f"cached, {failed} failed · executed wall "
        f"{sum(c['elapsed'] for c in cells):.2f}s",
    ]

    totals = phase_totals(trace)
    if totals:
        rows = [(name, entry["count"], f"{entry['total']:.3f}s",
                 f"{entry['mean']:.3f}s", f"{entry['max']:.3f}s")
                for name, entry in sorted(totals.items(),
                                          key=lambda kv: -kv[1]["total"])]
        lines += ["", "span totals:"]
        lines += _fmt_table(rows, ("span", "count", "total", "mean",
                                   "max"))

    if by is not None:
        grouped = phase_totals_by(trace, by)
        lines += ["", f"phase totals by {by}:"]
        phases = sorted({phase for target in grouped.values()
                         for phase in target})
        rows = [(value, *(f"{target.get(p, 0.0):.3f}s" for p in phases))
                for value, target in sorted(grouped.items())]
        lines += _fmt_table(rows, (by, *phases))

    counters = merged_counters(trace)
    if counters:
        lines += ["", "counters:"]
        for name, value in sorted(counters.items()):
            rendered = f"{value:.0f}" if value == int(value) \
                else f"{value:.3f}"
            lines.append(f"  {name} = {rendered}")

    if computed:
        lines += ["", "slowest cells:"]
        for cell in sorted(computed, key=lambda c: -c["elapsed"])[:top]:
            phases = " · ".join(f"{s['name']} {s['dur']:.2f}s"
                                for s in _cell_phases(cell))
            coverage = _coverage(cell)
            covered = (f", phases cover {coverage:.0%}"
                       if coverage is not None else "")
            lines.append(f"  {cell['label']} — {cell['elapsed']:.2f}s"
                         f"{covered}")
            if phases:
                lines.append(f"    {phases}")

    all_spans = [(span, cell) for cell in cells for span in cell["spans"]
                 if span["depth"] >= 1]
    if all_spans:
        lines += ["", f"top {min(top, len(all_spans))} spans:"]
        for span, cell in sorted(all_spans,
                                 key=lambda sc: -sc[0]["dur"])[:top]:
            lines.append(f"  {span['name']} {span['dur']:.3f}s — "
                         f"{cell['label']}")

    warnings = [event for holder in (*trace["scopes"], *cells)
                for event in holder["events"]
                if event.get("type") == "warning"]
    if warnings:
        lines += ["", f"{len(warnings)} warning(s):"]
        for event in warnings[:top]:
            lines.append(f"  {event['name']}: {event.get('attrs', {})}")
    return "\n".join(lines)
