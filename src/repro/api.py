"""Declarative experiment API: specs, config files, one-call runs.

This is the public facade over the registry + engine stack.  A single
experiment is an :class:`ExperimentSpec`, a whole grid is a
:class:`SweepSpec`; both load from / dump to plain mappings, so JSON
and YAML scenario files fully describe a run::

    from repro import api

    result = api.ExperimentSpec(dataset="compas",
                                approach="Celis-pp(tau=0.9)").run()

    report = api.sweep("examples/sweep.yaml",
                       progress=lambda p: print(p.line()))

Config schema (YAML shown; JSON is isomorphic)::

    sweep:
      datasets: [german]                    # registry specs
      approaches: [baseline, Hardt-eo, "Celis-pp(tau=0.9)"]
      models: [lr]
      errors: [null, t1]                    # null = clean data
      imputers: [null, mean, "knn(k=7)"]    # repairs NaNs (e.g. after
                                            # the `missing` recipe)
      metrics: [accuracy, di_star]          # per-cell metric_value
      seeds: [0, 1]                         # or an int: seeds 0..N-1
      rows: [400]
      causal_samples: 300
      audit: counterfactual                 # optional rung-3 audit
      chunk_rows: 256                       # abduction batch bound
      audit_params: {n_particles: 20, max_rows: 40}
      block_size: 1024                      # pairwise-kernel blocks
      threads: 4                            # kernel/abduction worker
                                            # threads per cell (results
                                            # identical at any count,
                                            # so not fingerprinted)
    engine:
      jobs: 2
      cache_dir: .sweep-cache               # or store: sqlite:results.db
                                            # (any backend URI; `store`
                                            # and `cache_dir` are the
                                            # same knob)
      resume: true
      retry: 3                              # attempts per cell on
                                            # transient failures
      timeout: 600                          # per-cell deadline (s)
      backoff: 1.0                          # retry backoff base (s)
      max_failures: 10                      # circuit breaker
      pack_artifacts: true                  # store fitted components
                                            # next to each cached cell

A finished cache loads back without re-execution::

    report = api.report(".sweep-cache",
                        where={"dataset": "german", "error": "none"})

Every component entry is a :mod:`repro.registry` spec — a bare key,
a parameterized ``"key(param=value)"`` string, or the nested
``{key: ..., params: {...}}`` mapping — and the parameters feed the
cells' cache fingerprints, so a changed ``tau`` recomputes instead of
silently reusing a cached cell.
"""

from __future__ import annotations

import dataclasses
import json
from collections.abc import Mapping
from dataclasses import dataclass, field
from pathlib import Path

from .engine import (Job, ResultCache, RetryPolicy, ScenarioGrid,
                     SweepReport, execute_job, run_sweep)
from .engine.spec import (_normalise_approach, check_audit_params,
                          check_fingerprintable_params,
                          check_reserved_params)
from .pipeline.experiment import EvaluationResult
from .registry import (APPROACHES, DATASETS, ERRORS, IMPUTERS, METRICS,
                       MODELS, parse_spec)

__all__ = ["ExperimentSpec", "SweepSpec", "load_config", "report",
           "run_spec", "sweep"]


# ----------------------------------------------------------------------
# Config files
# ----------------------------------------------------------------------
def load_config(path: str | Path) -> dict:
    """Load a JSON or YAML config file into a mapping.

    ``.json`` parses with the stdlib; ``.yaml``/``.yml`` needs PyYAML
    and fails with a clear message when it is missing.  Other suffixes
    try JSON first, then YAML.
    """
    path = Path(path)
    text = path.read_text()
    suffix = path.suffix.lower()
    if suffix == ".json":
        return json.loads(text)
    if suffix in (".yaml", ".yml"):
        return _parse_yaml(text, path)
    try:
        return json.loads(text)
    except json.JSONDecodeError:
        return _parse_yaml(text, path)


def _parse_yaml(text: str, path: Path) -> dict:
    try:
        import yaml
    except ImportError:  # pragma: no cover - environment-dependent
        raise RuntimeError(
            f"cannot load {path}: PyYAML is not installed; use a JSON "
            "config or install pyyaml") from None
    try:
        config = yaml.safe_load(text)
    except yaml.YAMLError as exc:
        raise ValueError(f"invalid YAML in {path}: {exc}") from None
    if not isinstance(config, Mapping):
        raise ValueError(f"config {path} must be a mapping, "
                         f"got {type(config).__name__}")
    return dict(config)


def _as_mapping(config, section: str) -> dict:
    """Accept a mapping, a config path, or a ``{section: {...}}``
    wrapper; return the flat field mapping (plus siblings)."""
    if isinstance(config, (str, Path)):
        config = load_config(config)
    if not isinstance(config, Mapping):
        raise TypeError(f"expected a mapping or config path, "
                        f"got {config!r}")
    config = dict(config)
    if section in config:
        inner = dict(config.pop(section) or {})
        overlap = set(inner) & set(config)
        if overlap:
            raise ValueError(
                f"fields {sorted(overlap)} appear both inside and "
                f"outside the {section!r} section")
        config.update(inner)
    return config


def _check_fields(config: Mapping, allowed: set[str], what: str) -> None:
    unknown = sorted(set(config) - allowed)
    if unknown:
        raise ValueError(f"unknown {what} config field(s) {unknown}; "
                         f"expected a subset of {sorted(allowed)}")


# ----------------------------------------------------------------------
# Single experiments
# ----------------------------------------------------------------------
@dataclass
class ExperimentSpec:
    """One fully-described experiment cell, config-file round-trippable.

    Component fields (``dataset``/``approach``/``model``/``error``) are
    registry specs and are canonicalised (and validated) at
    construction; ``approach`` accepts the baseline aliases
    (``None``/``"baseline"``/``"LR"``).
    """

    dataset: str = "compas"
    approach: str | None = None
    model: str = "lr"
    error: str | None = None
    imputer: str | None = None
    metric: str | None = None
    seed: int = 0
    rows: int = 4000
    n_features: int | None = None
    causal_samples: int = 5000
    test_fraction: float = 0.3
    audit: str | None = None
    chunk_rows: int | None = None
    audit_params: dict = field(default_factory=dict)
    block_size: int | None = None
    threads: int | None = None

    def __post_init__(self) -> None:
        self.dataset = DATASETS.canonical(self.dataset)
        approach = _normalise_approach(self.approach)
        self.approach = (None if approach is None
                         else APPROACHES.canonical(approach))
        self.model = MODELS.canonical(self.model)
        self.error = (None if self.error is None
                      else ERRORS.canonical(self.error))
        self.imputer = (None if self.imputer is None
                        else IMPUTERS.canonical(self.imputer))
        self.metric = (None if self.metric is None
                       else METRICS.canonical(self.metric))
        check_reserved_params(self.dataset, {
            "n": "the rows field", "seed": "the seed field"})
        check_reserved_params(self.approach,
                              {"seed": "the seed field"})
        for what, spec in (("dataset", self.dataset),
                           ("approach", self.approach),
                           ("model", self.model),
                           ("error", self.error),
                           ("imputer", self.imputer),
                           ("metric", self.metric)):
            if spec is not None:
                check_fingerprintable_params(spec, what)
        self.seed = int(self.seed)
        self.rows = int(self.rows)
        self.audit_params = check_audit_params(self.audit,
                                               self.audit_params)
        if self.chunk_rows is not None and self.chunk_rows < 1:
            raise ValueError(
                f"chunk_rows must be positive, got {self.chunk_rows}")
        if self.block_size is not None and self.block_size < 1:
            raise ValueError(
                f"block_size must be positive, got {self.block_size}")
        if self.threads is not None and self.threads < 1:
            raise ValueError(
                f"threads must be positive, got {self.threads}")

    # ------------------------------------------------------------------
    @classmethod
    def from_config(cls, config) -> "ExperimentSpec":
        """Build from a mapping, a ``{"experiment": {...}}`` wrapper,
        or a JSON/YAML config path."""
        fields = _as_mapping(config, "experiment")
        allowed = {f.name for f in dataclasses.fields(cls)}
        _check_fields(fields, allowed, "experiment")
        return cls(**fields)

    def to_config(self) -> dict:
        """The spec as a JSON/YAML-ready mapping (full round trip:
        ``ExperimentSpec.from_config(spec.to_config()) == spec``)."""
        return dataclasses.asdict(self)

    # ------------------------------------------------------------------
    def to_job(self) -> Job:
        """The engine job this spec describes (same fingerprinting as
        a sweep cell, so single runs share the sweep cache)."""
        dataset, dataset_params = parse_spec(self.dataset)
        model, model_params = parse_spec(self.model)
        approach, approach_params = (
            (None, {}) if self.approach is None
            else parse_spec(self.approach))
        error, error_params = ((None, {}) if self.error is None
                               else parse_spec(self.error))
        imputer, imputer_params = ((None, {}) if self.imputer is None
                                   else parse_spec(self.imputer))
        metric, metric_params = ((None, {}) if self.metric is None
                                 else parse_spec(self.metric))
        return Job(dataset=dataset, approach=approach, model=model,
                   error=error, imputer=imputer, metric=metric,
                   seed=self.seed, rows=self.rows,
                   n_features=self.n_features,
                   causal_samples=self.causal_samples,
                   test_fraction=self.test_fraction,
                   dataset_params=dataset_params,
                   approach_params=approach_params,
                   model_params=model_params, error_params=error_params,
                   imputer_params=imputer_params,
                   metric_params=metric_params,
                   audit=self.audit, chunk_rows=self.chunk_rows,
                   audit_params=dict(self.audit_params),
                   block_size=self.block_size,
                   threads=self.threads)

    def run(self) -> EvaluationResult:
        """Execute the experiment (load → split → corrupt → fit →
        evaluate → optional audit), deterministically in the spec."""
        return execute_job(self.to_job())


# ----------------------------------------------------------------------
# Sweeps
# ----------------------------------------------------------------------
_ENGINE_FIELDS = ("jobs", "cache_dir", "store", "resume", "retry",
                  "timeout", "backoff", "max_failures",
                  "pack_artifacts")


@dataclass
class SweepSpec:
    """A declarative scenario grid plus engine options.

    The grid fields mirror :class:`~repro.engine.ScenarioGrid` (every
    dimension entry is a registry spec); ``jobs``/``cache_dir``/
    ``resume`` configure execution.  Construction validates everything
    against the live registries, so a typo in a key or parameter fails
    before any cell is scheduled.
    """

    datasets: tuple
    approaches: tuple = (None,)
    models: tuple = ("lr",)
    errors: tuple = (None,)
    imputers: tuple = (None,)
    metrics: tuple = (None,)
    seeds: tuple = (0,)
    rows: tuple = (4000,)
    feature_counts: tuple = (None,)
    causal_samples: int = 5000
    test_fraction: float = 0.3
    audit: str | None = None
    chunk_rows: int | None = None
    audit_params: dict = field(default_factory=dict)
    block_size: int | None = None
    threads: int | None = None
    jobs: int = 1
    cache_dir: str | None = None
    store: str | None = None
    resume: bool = True
    retry: int = 1
    timeout: float | None = None
    backoff: float = 0.0
    max_failures: int | None = None
    pack_artifacts: bool = False

    def __post_init__(self) -> None:
        grid = self.to_grid()  # validates + canonicalises
        self.datasets = grid.datasets
        self.approaches = grid.approaches
        self.models = grid.models
        self.errors = grid.errors
        self.imputers = grid.imputers
        self.metrics = grid.metrics
        self.seeds = grid.seeds
        self.rows = grid.rows
        self.feature_counts = grid.feature_counts
        self.audit_params = dict(grid.audit_params)
        self.jobs = int(self.jobs)
        if self.jobs < 1:
            raise ValueError(f"jobs must be at least 1, got {self.jobs}")
        if self.store is not None:
            # `store` is the backend-URI spelling of `cache_dir`
            # (file:DIR / sqlite:PATH / duckdb:PATH); fold it in so
            # the rest of the engine sees one field.
            if self.cache_dir is not None \
                    and self.cache_dir != self.store:
                raise ValueError(
                    f"cache_dir {self.cache_dir!r} and store "
                    f"{self.store!r} disagree; set only one")
            self.cache_dir = self.store
            self.store = None
        self.retry = int(self.retry)
        self.to_policy()  # validates retry/timeout/backoff/max_failures

    # ------------------------------------------------------------------
    @classmethod
    def from_config(cls, config) -> "SweepSpec":
        """Build from a ``{"sweep": {...}, "engine": {...}}`` mapping,
        a flat mapping, or a JSON/YAML config path.

        ``seeds`` may be an integer N (meaning seeds ``0..N-1``).
        """
        fields = _as_mapping(config, "sweep")
        fields = _as_mapping(fields, "engine")
        allowed = {f.name for f in dataclasses.fields(cls)}
        _check_fields(fields, allowed, "sweep")
        seeds = fields.get("seeds")
        if isinstance(seeds, int):
            if seeds < 1:
                raise ValueError(f"seeds count must be at least 1, "
                                 f"got {seeds}")
            fields["seeds"] = list(range(seeds))
        return cls(**fields)

    def to_config(self) -> dict:
        """``{"sweep": {...}, "engine": {...}}`` mapping (full round
        trip: ``SweepSpec.from_config(spec.to_config()) == spec``)."""
        config = dataclasses.asdict(self)
        engine = {name: config.pop(name) for name in _ENGINE_FIELDS}
        config = {name: (list(value) if isinstance(value, tuple)
                         else value)
                  for name, value in config.items()}
        return {"sweep": config, "engine": engine}

    # ------------------------------------------------------------------
    def to_grid(self) -> ScenarioGrid:
        """The :class:`ScenarioGrid` this spec declares."""
        return ScenarioGrid(
            datasets=self.datasets, approaches=self.approaches,
            models=self.models, errors=self.errors,
            imputers=self.imputers, metrics=self.metrics,
            seeds=self.seeds,
            rows=self.rows, feature_counts=self.feature_counts,
            causal_samples=self.causal_samples,
            test_fraction=self.test_fraction, audit=self.audit,
            chunk_rows=self.chunk_rows,
            audit_params=dict(self.audit_params),
            block_size=self.block_size,
            threads=self.threads)

    def to_policy(self) -> RetryPolicy:
        """The :class:`~repro.engine.RetryPolicy` the engine fields
        declare (the no-op default policy when none are set)."""
        return RetryPolicy(max_attempts=self.retry,
                           timeout=self.timeout, backoff=self.backoff,
                           max_failures=self.max_failures)

    def run(self, progress=None, max_workers: int | None = None,
            cache: ResultCache | None = None,
            resume: bool | None = None, trace=None,
            chaos=None) -> SweepReport:
        """Expand and execute the grid with the spec's engine options
        (each keyword argument overrides its spec field).

        ``trace`` turns on telemetry: pass a directory path to record
        the sweep and write ``events.jsonl`` + ``trace.json`` there, or
        a :class:`~repro.obs.TraceCollector` to collect without writing
        (inspect or ``.write()`` it yourself).

        ``chaos`` injects deterministic faults for resilience testing:
        a :class:`~repro.engine.FaultPlan`, an inline spec string, or
        a plan file path (see :mod:`repro.engine.chaos`).

        With ``pack_artifacts: true`` (engine section) each computed
        cell's fitted components are packed into its cache artifact
        slot, so ``repro pack`` later builds serving bundles without
        re-fitting (requires ``cache_dir``).
        """
        if cache is None and self.cache_dir not in (None, "none"):
            cache = ResultCache(self.cache_dir)
        trace_dir, collector = _resolve_trace(trace)
        report = run_sweep(
            self.to_grid().expand(), cache=cache,
            max_workers=self.jobs if max_workers is None else max_workers,
            resume=self.resume if resume is None else resume,
            progress=progress, trace=collector,
            policy=self.to_policy(), chaos=chaos,
            pack=self.pack_artifacts)
        if trace_dir is not None:
            collector.write(trace_dir)
        return report


# ----------------------------------------------------------------------
# One-call conveniences
# ----------------------------------------------------------------------
def _resolve_trace(trace):
    """Normalise a ``trace`` argument: ``None`` → no telemetry, a
    path → fresh collector written there after the run, a
    :class:`~repro.obs.TraceCollector` → used as-is (caller writes)."""
    if trace is None:
        return None, None
    from . import obs

    if isinstance(trace, obs.TraceCollector):
        return None, trace
    return Path(trace), obs.TraceCollector(env=obs.environment_info())


def run_spec(config) -> EvaluationResult:
    """Run a single experiment from a spec, mapping, or config path."""
    if isinstance(config, ExperimentSpec):
        return config.run()
    return ExperimentSpec.from_config(config).run()


def sweep(config, progress=None, trace=None, chaos=None) -> SweepReport:
    """Run a sweep from a spec, mapping, or config path.

    ``trace`` records telemetry: a directory path (events + Chrome
    trace written there) or a :class:`~repro.obs.TraceCollector`.
    ``chaos`` injects deterministic faults (plan, inline spec, or plan
    file — see :mod:`repro.engine.chaos`).
    """
    spec = (config if isinstance(config, SweepSpec)
            else SweepSpec.from_config(config))
    return spec.run(progress=progress, trace=trace, chaos=chaos)


def report(cache_dir, where: Mapping | None = None) -> SweepReport:
    """Load a finished sweep cache as a :class:`SweepReport` — the
    cache is the query surface, nothing is re-executed.

    ``cache_dir`` is a directory path or any store URI (``file:DIR``,
    ``sqlite:PATH``, ``duckdb:PATH``) — see
    :mod:`repro.engine.backend`.  Every cached cell's stored
    ``params`` block is reconstructed into its job, so the returned
    outcomes support the full aggregation toolkit
    (``grid_table``/``pivot``/``overhead_series``/exports) exactly
    like a live sweep's, with the baseline ordered first per dataset.
    ``where`` filters by any job axis before returning, e.g.
    ``{"dataset": "adult", "approach": "Celis-pp(tau=0.9)"}`` (pushed
    down into the SQL row scan on SQL backends).

    Raises
    ------
    FileNotFoundError
        If the store does not exist (an existing-but-empty cache
        returns an empty report instead).
    """
    cache = ResultCache(cache_dir)
    if not cache.exists():
        raise FileNotFoundError(f"no sweep cache at {cache.location}")
    outcomes = cache.outcomes(where=where or None)
    return SweepReport(outcomes=outcomes)
