"""Data substrate: tabular container, annotated datasets, generators,
real-CSV loaders, encoders, CSV IO, and splitting utilities."""

from .dataset import Dataset
from .dependencies import MvdReport, check_mvd
from .encoding import (EqualFrequencyDiscretizer, FeatureEncoder,
                       OneHotEncoder, StandardScaler, discretize_dataset,
                       encode_features)
from .generators import (LOADERS, load, load_admissions, load_adult,
                         load_compas, load_german)
from .io import format_csv, parse_csv, read_csv, write_csv
from .real import (load_adult_csv, load_compas_csv, load_dataset,
                   load_german_csv)
from .splits import (Split, k_fold, stratified_k_fold, train_test_split,
                     train_validation_test_split)
from .table import AGGREGATIONS, GroupBy, Table, crosstab, value_counts

__all__ = [
    "Dataset", "Table", "GroupBy", "AGGREGATIONS", "crosstab",
    "value_counts", "MvdReport", "check_mvd",
    "StandardScaler", "OneHotEncoder", "EqualFrequencyDiscretizer",
    "FeatureEncoder",
    "discretize_dataset", "encode_features",
    "load", "load_adult", "load_compas", "load_german", "load_admissions",
    "LOADERS",
    "load_dataset", "load_adult_csv", "load_compas_csv", "load_german_csv",
    "read_csv", "write_csv", "parse_csv", "format_csv",
    "Split", "train_test_split", "train_validation_test_split",
    "k_fold", "stratified_k_fold",
]
