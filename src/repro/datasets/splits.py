"""Train/test splitting and cross-validation folds.

Reproduces the paper's evaluation protocol: random 70/30 train-test
splits (Section 4.1) and 5-fold cross validation with 50/20/30
train/validation/test partitions (Appendix D).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .dataset import Dataset


@dataclass(frozen=True)
class Split:
    """A train/test (and optionally validation) partition of a dataset."""

    train: Dataset
    test: Dataset
    validation: Dataset | None = None


def train_test_split(dataset: Dataset, test_fraction: float = 0.3,
                     seed: int = 0) -> Split:
    """Randomly split a dataset into train and test parts.

    The paper's default protocol: 70% train / 30% test by uniform
    random selection.
    """
    if not 0.0 < test_fraction < 1.0:
        raise ValueError(f"test_fraction must be in (0, 1), got {test_fraction}")
    rng = np.random.default_rng(seed)
    perm = rng.permutation(dataset.n_rows)
    n_test = int(round(dataset.n_rows * test_fraction))
    return Split(
        train=dataset.take(perm[n_test:]),
        test=dataset.take(perm[:n_test]),
    )


def train_validation_test_split(dataset: Dataset,
                                validation_fraction: float = 0.2,
                                test_fraction: float = 0.3,
                                seed: int = 0) -> Split:
    """Random 50/20/30-style three-way split (Appendix D protocol)."""
    if validation_fraction + test_fraction >= 1.0:
        raise ValueError("validation + test fractions must sum below 1")
    rng = np.random.default_rng(seed)
    perm = rng.permutation(dataset.n_rows)
    n_test = int(round(dataset.n_rows * test_fraction))
    n_val = int(round(dataset.n_rows * validation_fraction))
    return Split(
        train=dataset.take(perm[n_test + n_val:]),
        validation=dataset.take(perm[n_test:n_test + n_val]),
        test=dataset.take(perm[:n_test]),
    )


def k_fold(dataset: Dataset, k: int = 5, seed: int = 0) -> list[Split]:
    """Return ``k`` cross-validation splits (each fold once as test)."""
    if k < 2:
        raise ValueError("k must be at least 2")
    if k > dataset.n_rows:
        raise ValueError(f"cannot make {k} folds from {dataset.n_rows} rows")
    rng = np.random.default_rng(seed)
    perm = rng.permutation(dataset.n_rows)
    folds = np.array_split(perm, k)
    splits = []
    for i, fold in enumerate(folds):
        rest = np.concatenate([f for j, f in enumerate(folds) if j != i])
        splits.append(Split(train=dataset.take(rest), test=dataset.take(fold)))
    return splits


def stratified_k_fold(dataset: Dataset, k: int = 5,
                      seed: int = 0) -> list[Split]:
    """k-fold splits stratified jointly on ``(S, Y)``.

    Keeps every sensitive-group/label cell represented in each fold,
    which the fairness metrics need to stay well defined on small data.
    """
    if k < 2:
        raise ValueError("k must be at least 2")
    rng = np.random.default_rng(seed)
    cell = dataset.s * 2 + dataset.y
    fold_indices: list[list[int]] = [[] for _ in range(k)]
    for value in np.unique(cell):
        members = np.flatnonzero(cell == value)
        members = members[rng.permutation(members.size)]
        for i, chunk in enumerate(np.array_split(members, k)):
            fold_indices[i].extend(chunk.tolist())
    splits = []
    for i in range(k):
        test_idx = np.array(sorted(fold_indices[i]), dtype=int)
        train_idx = np.array(sorted(
            x for j in range(k) if j != i for x in fold_indices[j]), dtype=int)
        splits.append(Split(train=dataset.take(train_idx),
                            test=dataset.take(test_idx)))
    return splits
