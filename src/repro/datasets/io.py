"""CSV input/output for :class:`~repro.datasets.table.Table`.

A small, dependency-free CSV layer with the behaviours the loaders
need: header handling, per-column type inference (int → float →
string), configurable missing-value markers (surfaced as NaN for
numeric columns), and round-tripping via :func:`write_csv`.
"""

from __future__ import annotations

import csv
import io
from collections.abc import Iterable, Sequence
from pathlib import Path

import numpy as np

from .table import Table

__all__ = ["read_csv", "write_csv", "parse_csv", "format_csv"]

#: Cell values treated as missing by default (after stripping).
DEFAULT_NA_VALUES = ("", "?", "NA", "N/A", "nan", "NaN", "null")


def _infer_column(raw: list[str], na_values: frozenset[str]) -> np.ndarray:
    """Convert raw string cells to the narrowest sensible dtype.

    Numeric columns with missing cells become float with NaN; string
    columns keep the missing marker as the empty string.
    """
    cleaned = [cell.strip() for cell in raw]
    present = [c for c in cleaned if c not in na_values]
    has_missing = len(present) != len(cleaned)

    def try_parse(cast):
        out = []
        for cell in cleaned:
            if cell in na_values:
                out.append(float("nan"))
            else:
                out.append(cast(cell))
        return out

    if present:
        try:
            values = try_parse(int)
            if has_missing:
                return np.asarray(values, dtype=float)
            return np.asarray(values, dtype=int)
        except ValueError:
            pass
        try:
            return np.asarray(try_parse(float), dtype=float)
        except ValueError:
            pass
    return np.asarray(
        ["" if c in na_values else c for c in cleaned], dtype=object)


def parse_csv(text: str, delimiter: str = ",",
              na_values: Iterable[str] = DEFAULT_NA_VALUES,
              header: Sequence[str] | None = None) -> Table:
    """Parse CSV text into a :class:`Table`.

    Parameters
    ----------
    text:
        The raw CSV content.
    delimiter:
        Field separator.
    na_values:
        Cell values (after whitespace stripping) treated as missing.
    header:
        Column names to use when the file has no header row; when
        ``None`` the first row is the header.

    Raises
    ------
    ValueError
        On empty input, duplicate column names, or ragged rows.
    """
    reader = csv.reader(io.StringIO(text), delimiter=delimiter)
    rows = [row for row in reader if row]
    if not rows:
        raise ValueError("CSV input is empty")
    if header is None:
        names = [c.strip() for c in rows[0]]
        body = rows[1:]
    else:
        names = list(header)
        body = rows
    if len(set(names)) != len(names):
        raise ValueError(f"duplicate column names in header: {names}")
    for i, row in enumerate(body):
        if len(row) != len(names):
            raise ValueError(
                f"row {i + 1} has {len(row)} fields, expected {len(names)}"
            )
    na = frozenset(na_values)
    columns = {
        name: _infer_column([row[j] for row in body], na)
        for j, name in enumerate(names)
    }
    return Table(columns)


def read_csv(path: str | Path, delimiter: str = ",",
             na_values: Iterable[str] = DEFAULT_NA_VALUES,
             header: Sequence[str] | None = None) -> Table:
    """Read a CSV file into a :class:`Table` (see :func:`parse_csv`)."""
    return parse_csv(Path(path).read_text(), delimiter=delimiter,
                     na_values=na_values, header=header)


def format_csv(table: Table, delimiter: str = ",",
               float_format: str = "{:g}") -> str:
    """Serialise a table to CSV text (header row included)."""
    out = io.StringIO()
    writer = csv.writer(out, delimiter=delimiter, lineterminator="\n")
    writer.writerow(table.columns)
    columns = [table[name] for name in table.columns]

    def fmt(value) -> str:
        if isinstance(value, (float, np.floating)):
            if np.isnan(value):
                return ""
            return float_format.format(float(value))
        return str(value)

    for i in range(table.n_rows):
        writer.writerow([fmt(col[i]) for col in columns])
    return out.getvalue()


def write_csv(table: Table, path: str | Path, delimiter: str = ",",
              float_format: str = "{:g}") -> None:
    """Write a table to a CSV file (see :func:`format_csv`)."""
    Path(path).write_text(
        format_csv(table, delimiter=delimiter, float_format=float_format))
