"""Synthetic dataset generators mirroring the paper's three benchmarks.

The original study evaluates on UCI Adult, ProPublica COMPAS, and the
German Credit dataset.  Those CSVs are not available offline, so each
dataset is replaced by a structural-causal-model generator built on the
causal graphs the paper itself uses (its Figure 14) and calibrated to
the bias statistics it reports:

* **Adult** — sex is the sensitive attribute; 11% of women vs 32% of
  men have the favorable label (income ≥ 50K).
* **COMPAS** — race is the sensitive attribute; 51% of the unprivileged
  group reoffends vs 39% of the privileged group (favorable label = no
  recidivism, so base rates 49% vs 61%).
* **German** — sex is the sensitive attribute; 65% of women vs 71% of
  men have good credit risk (70% overall).

Because the SCM is known exactly, causal metrics (TE/NDE/NIE) can be
computed by true intervention rather than estimated — a strictly
stronger setting than the original study's learned causal models.

All generators take ``n`` and ``seed`` so that the scalability,
data-efficiency, and stability experiments can draw arbitrarily sized
i.i.d. samples from a single fixed population distribution.
"""

from __future__ import annotations

import numpy as np

from ..causal.graph import CausalGraph
from ..causal.scm import Mechanism, StructuralCausalModel
from .dataset import Dataset
from .table import Table


def _sigmoid(z: np.ndarray) -> np.ndarray:
    return 1.0 / (1.0 + np.exp(-z))


def _bernoulli(p: np.ndarray | float, n: int,
               rng: np.random.Generator) -> np.ndarray:
    return (rng.random(n) < p).astype(float)


def _categorical(logit_columns, rng: np.random.Generator) -> np.ndarray:
    """Sample a category per row from unnormalised per-category logits.

    ``logit_columns`` is a sequence with one entry per category; each
    entry is a per-row array or a scalar (broadcast to all rows).
    """
    columns = [np.asarray(c, dtype=float) for c in logit_columns]
    n = max((c.shape[0] for c in columns if c.ndim == 1), default=1)
    logits = np.column_stack([
        np.full(n, c) if c.ndim == 0 else c for c in columns])
    z = logits - logits.max(axis=1, keepdims=True)
    p = np.exp(z)
    p /= p.sum(axis=1, keepdims=True)
    u = rng.random((p.shape[0], 1))
    return (p.cumsum(axis=1) < u).sum(axis=1).astype(float)


# ----------------------------------------------------------------------
# Adult (US census income)
# ----------------------------------------------------------------------
def _adult_scm() -> StructuralCausalModel:
    graph = CausalGraph(edges=[
        ("sex", "occupation"), ("sex", "hours_per_week"),
        ("sex", "education_level"), ("sex", "marital_status"),
        ("sex", "relationship"), ("sex", "income"),
        ("age", "education_level"), ("age", "marital_status"),
        ("age", "workclass"), ("age", "income"),
        ("race", "education_level"), ("race", "income"),
        ("native_country", "education_level"),
        ("education_level", "occupation"), ("education_level", "income"),
        ("occupation", "income"), ("occupation", "hours_per_week"),
        ("hours_per_week", "income"),
        ("marital_status", "relationship"), ("marital_status", "income"),
        ("relationship", "income"), ("workclass", "income"),
    ])

    mechanisms: dict[str, Mechanism] = {
        # Roots.  sex: 1 = male (privileged, ~67% as in Adult).
        "sex": lambda p, rng: _bernoulli(0.67, _root_n(rng), rng),
        "age": lambda p, rng: np.clip(
            rng.normal(38.5, 13.0, _root_n(rng)), 17, 90).round(),
        "race": lambda p, rng: _bernoulli(0.85, _root_n(rng), rng),
        "native_country": lambda p, rng: _bernoulli(0.90, _root_n(rng), rng),
        # Education level 0..4 rises with age, sex, race, native country.
        "education_level": lambda p, rng: _categorical([
                1.2 - 0.35 * p["sex"] - 0.3 * p["race"],
                1.5,
                1.0 + 0.02 * (p["age"] - 38),
                0.4 + 0.45 * p["sex"] + 0.3 * p["race"]
                + 0.3 * p["native_country"],
                -0.6 + 0.55 * p["sex"] + 0.02 * (p["age"] - 38),
            ], rng),
        # Marital status: 1 = married.
        "marital_status": lambda p, rng: _bernoulli(
            _sigmoid(-0.8 + 0.9 * p["sex"] + 0.045 * (p["age"] - 25)),
            len(p["sex"]), rng),
        # Relationship: 1 = husband/wife household role.
        "relationship": lambda p, rng: _bernoulli(
            _sigmoid(-1.6 + 2.6 * p["marital_status"] + 0.5 * p["sex"]),
            len(p["sex"]), rng),
        # Workclass 0..2 (private / gov / self-employed).
        "workclass": lambda p, rng: _categorical([
                np.full(len(p["age"]), 1.6),
                np.full(len(p["age"]), 0.3),
                -0.4 + 0.02 * (p["age"] - 38),
            ], rng),
        # Occupation 0..3 (service / clerical / skilled / professional).
        "occupation": lambda p, rng: _categorical([
                1.0 - 0.5 * p["sex"] - 0.3 * p["education_level"],
                1.0 - 0.45 * p["sex"],
                0.2 + 0.75 * p["sex"] + 0.1 * p["education_level"],
                -0.9 + 0.25 * p["sex"] + 0.75 * p["education_level"],
            ], rng),
        "hours_per_week": lambda p, rng: np.clip(
            rng.normal(34 + 6.0 * p["sex"] + 1.5 * p["occupation"], 9.0),
            1, 99).round(),
        # Income ≥ 50K.  Calibrated to ~11% female / ~32% male positives.
        "income": lambda p, rng: _bernoulli(
            _sigmoid(
                -5.3
                + 0.70 * p["sex"]
                + 0.75 * p["education_level"]
                + 0.45 * p["occupation"]
                + 0.032 * (p["hours_per_week"] - 40)
                + 0.028 * (p["age"] - 38)
                + 0.9 * p["marital_status"]
                + 0.35 * p["relationship"]
                + 0.25 * p["race"]
                + 0.15 * p["workclass"]
            ), len(p["sex"]), rng),
    }
    return StructuralCausalModel(graph, mechanisms)


def _root_n(rng) -> int:
    """Sample size for root mechanisms (read off the SCM's SizedRNG)."""
    return rng.n


def _sample_scm(scm: StructuralCausalModel, n: int,
                rng: np.random.Generator,
                overrides=None) -> dict[str, np.ndarray]:
    return scm.sample(n, rng, overrides=overrides)


_ADULT_FEATURES = ("age", "workclass", "education_level", "marital_status",
                   "occupation", "relationship", "race", "hours_per_week",
                   "native_country")


def load_adult(n: int = 5000, seed: int = 0) -> Dataset:
    """Synthetic Adult: predict income ≥ 50K; sensitive attribute sex."""
    scm = _adult_scm()
    columns = _sample_scm(scm, n, np.random.default_rng(seed))
    table = Table({name: columns[name] for name in
                   (*_ADULT_FEATURES, "sex", "income")})
    return Dataset(
        table=table,
        feature_names=_ADULT_FEATURES,
        sensitive="sex",
        label="income",
        name="adult",
        causal_graph=scm.graph,
        scm=scm,
        categorical=("workclass", "education_level", "marital_status",
                     "occupation", "relationship", "race", "native_country"),
        admissible=("age", "workclass", "education_level", "occupation",
                    "hours_per_week", "native_country"),
    )


# ----------------------------------------------------------------------
# COMPAS (recidivism risk)
# ----------------------------------------------------------------------
def _compas_scm() -> StructuralCausalModel:
    graph = CausalGraph(edges=[
        ("race", "prior_convictions"), ("race", "risk"),
        ("age", "prior_convictions"), ("age", "risk"),
        ("sex", "prior_convictions"), ("sex", "risk"),
        ("prior_convictions", "risk"),
    ])
    mechanisms: dict[str, Mechanism] = {
        # race: 1 = privileged ("other races" in the paper, ~49% of rows).
        "race": lambda p, rng: _bernoulli(0.49, _root_n(rng), rng),
        "sex": lambda p, rng: _bernoulli(0.81, _root_n(rng), rng),
        "age": lambda p, rng: np.clip(
            rng.gamma(4.5, 7.6, _root_n(rng)) + 18, 18, 96).round(),
        # Priors rise for the unprivileged group (over-policing proxy),
        # young defendants, and men.
        "prior_convictions": lambda p, rng: np.clip(rng.poisson(
            np.exp(0.45 - 0.55 * p["race"] - 0.022 * (p["age"] - 30)
                   + 0.35 * p["sex"])), 0, 38).astype(float),
        # Favorable label = no recidivism within two years.  Calibrated
        # to ~49% for the unprivileged vs ~61% for the privileged group.
        "risk": lambda p, rng: _bernoulli(
            _sigmoid(-0.12 + 0.34 * p["race"] + 0.022 * (p["age"] - 30)
                     - 0.16 * p["prior_convictions"] - 0.18 * p["sex"]),
            len(p["race"]), rng),
    }
    return StructuralCausalModel(graph, mechanisms)


_COMPAS_FEATURES = ("age", "sex", "prior_convictions")


def load_compas(n: int = 5000, seed: int = 0) -> Dataset:
    """Synthetic COMPAS: predict non-recidivism; sensitive attribute race."""
    scm = _compas_scm()
    columns = _sample_scm(scm, n, np.random.default_rng(seed))
    table = Table({name: columns[name] for name in
                   (*_COMPAS_FEATURES, "race", "risk")})
    return Dataset(
        table=table,
        feature_names=_COMPAS_FEATURES,
        sensitive="race",
        label="risk",
        name="compas",
        causal_graph=scm.graph,
        scm=scm,
        categorical=("sex",),
        admissible=("age", "prior_convictions"),
    )


# ----------------------------------------------------------------------
# German credit
# ----------------------------------------------------------------------
def _german_scm() -> StructuralCausalModel:
    graph = CausalGraph(edges=[
        ("sex", "credit_amount"), ("sex", "savings"), ("sex", "status"),
        ("sex", "credit_risk"),
        ("age", "credit_history"), ("age", "savings"), ("age", "housing"),
        ("age", "credit_risk"),
        ("credit_amount", "credit_risk"), ("investment", "credit_risk"),
        ("savings", "credit_risk"), ("housing", "credit_risk"),
        ("property", "credit_risk"), ("month", "credit_risk"),
        ("status", "credit_risk"), ("credit_history", "credit_risk"),
        ("credit_amount", "month"), ("property", "housing"),
    ])
    mechanisms: dict[str, Mechanism] = {
        "sex": lambda p, rng: _bernoulli(0.69, _root_n(rng), rng),
        "age": lambda p, rng: np.clip(
            rng.gamma(5.0, 7.1, _root_n(rng)) + 19, 19, 75).round(),
        "investment": lambda p, rng: rng.integers(
            0, 4, _root_n(rng)).astype(float),
        "property": lambda p, rng: rng.integers(
            0, 4, _root_n(rng)).astype(float),
        "credit_amount": lambda p, rng: np.clip(
            rng.lognormal(7.7 + 0.12 * p["sex"], 0.8), 250, 20000).round(),
        "savings": lambda p, rng: _categorical([
                1.3 - 0.25 * p["sex"],
                np.full(len(p["sex"]), 0.8),
                0.1 + 0.25 * p["sex"] + 0.012 * (p["age"] - 35),
                -0.6 + 0.3 * p["sex"] + 0.015 * (p["age"] - 35),
            ], rng),
        "housing": lambda p, rng: _bernoulli(
            _sigmoid(-1.2 + 0.04 * (p["age"] - 35) + 0.5 * p["property"]),
            len(p["age"]), rng),
        "status": lambda p, rng: _categorical([
                1.0 - 0.3 * p["sex"],
                np.full(len(p["sex"]), 0.9),
                0.2 + 0.35 * p["sex"],
            ], rng),
        "credit_history": lambda p, rng: _categorical([
                0.8 - 0.012 * (p["age"] - 35),
                np.full(len(p["age"]), 1.2),
                0.3 + 0.02 * (p["age"] - 35),
            ], rng),
        "month": lambda p, rng: np.clip(
            rng.normal(12 + 0.0012 * p["credit_amount"], 8), 4, 72).round(),
        # Good credit risk ≈ 70% overall; ~65% female vs ~71% male.
        "credit_risk": lambda p, rng: _bernoulli(
            _sigmoid(-0.27 + 0.18 * p["sex"] + 0.012 * (p["age"] - 35)
                     + 0.30 * p["savings"] + 0.25 * p["status"]
                     + 0.22 * p["credit_history"] + 0.12 * p["housing"]
                     + 0.05 * p["investment"] + 0.04 * p["property"]
                     - 0.00006 * p["credit_amount"]
                     - 0.012 * (p["month"] - 20)),
            len(p["sex"]), rng),
    }
    return StructuralCausalModel(graph, mechanisms)


_GERMAN_FEATURES = ("age", "credit_amount", "investment", "savings",
                    "housing", "property", "month", "status",
                    "credit_history")


def load_german(n: int = 1000, seed: int = 0) -> Dataset:
    """Synthetic German credit: predict good risk; sensitive attribute sex."""
    scm = _german_scm()
    columns = _sample_scm(scm, n, np.random.default_rng(seed))
    table = Table({name: columns[name] for name in
                   (*_GERMAN_FEATURES, "sex", "credit_risk")})
    return Dataset(
        table=table,
        feature_names=_GERMAN_FEATURES,
        sensitive="sex",
        label="credit_risk",
        name="german",
        causal_graph=scm.graph,
        scm=scm,
        categorical=("investment", "savings", "housing", "property",
                     "status", "credit_history"),
        admissible=("credit_amount", "investment", "savings", "property",
                    "month", "status", "credit_history"),
    )


# ----------------------------------------------------------------------
# Admissions toy data (the paper's running example, Figures 11–13)
# ----------------------------------------------------------------------
def load_admissions() -> Dataset:
    """The 12-applicant admissions table of the paper's Figure 12.

    ``sat``: 1 = High, 0 = Average.  ``dept_choice``: 0 = Physics,
    1 = Mathematics.  ``gender``: 1 = Male (privileged).  The label
    column holds the classifier predictions of the example, so the
    metric unit tests can check the hand-computed numbers.
    """
    graph = CausalGraph(edges=[
        ("gender", "dept_choice"), ("gender", "admitted"),
        ("dept_choice", "admitted"), ("sat", "admitted"),
    ])
    table = Table({
        "sat": [1, 1, 0, 1, 1, 0, 1, 0, 1, 1, 0, 0],
        "dept_choice": [0, 1, 0, 1, 0, 1, 1, 1, 1, 0, 1, 0],
        "gender": [1, 1, 1, 1, 1, 1, 0, 0, 0, 0, 0, 0],
        "admitted": [1, 0, 1, 1, 1, 0, 0, 0, 1, 1, 0, 1],
    })
    return Dataset(
        table=table,
        feature_names=("sat", "dept_choice"),
        sensitive="gender",
        label="admitted",
        name="admissions",
        causal_graph=graph,
        categorical=("dept_choice",),
        admissible=("sat",),
    )


LOADERS = {"adult": load_adult, "compas": load_compas, "german": load_german}


def load(name: str, n: int | None = None, seed: int = 0) -> Dataset:
    """Load a benchmark dataset by name (``adult``/``compas``/``german``)."""
    if name not in LOADERS:
        raise KeyError(f"unknown dataset {name!r}; choose from {sorted(LOADERS)}")
    loader = LOADERS[name]
    return loader(seed=seed) if n is None else loader(n=n, seed=seed)
