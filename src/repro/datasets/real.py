"""Loaders for the *real* Adult / COMPAS / German CSV files.

The synthetic generators in :mod:`repro.datasets.generators` are the
default data source (no network access is assumed), but a user who has
downloaded the original files can load them here.  Each loader applies
the paper's preprocessing — binary sensitive attribute and label,
integer-coded categoricals, the paper's feature set (its Figure 6) —
and emits a :class:`~repro.datasets.dataset.Dataset` with the *same
schema and causal graph* as the synthetic counterpart, so every
pipeline, metric, and benchmark in the repository runs unchanged on
real data.

Expected file formats:

* ``load_adult_csv`` — the UCI ``adult.data``/``adult.csv`` layout
  (14 attributes + income, comma separated, ``?`` for missing);
* ``load_compas_csv`` — ProPublica's ``compas-scores-two-years.csv``
  (only the columns the paper uses are read);
* ``load_german_csv`` — the Kaggle ``german_credit_data.csv`` layout
  with a ``Risk`` column.

``load_dataset`` is the high-level entry point: it tries the real file
when a path is given and otherwise falls back to the synthetic
generator.
"""

from __future__ import annotations

from collections.abc import Mapping
from pathlib import Path

import numpy as np

from .dataset import Dataset
from .generators import (_adult_scm, _compas_scm, _german_scm, load_adult,
                         load_compas, load_german)
from .io import read_csv
from .table import Table

__all__ = [
    "load_adult_csv",
    "load_compas_csv",
    "load_german_csv",
    "load_dataset",
]


def _require_columns(table: Table, needed: list[str], path: Path) -> None:
    missing = [c for c in needed if c not in table]
    if missing:
        raise ValueError(
            f"{path} is missing expected columns {missing}; "
            f"found {table.columns}"
        )


def _strings(table: Table, name: str) -> np.ndarray:
    """Column as lower-cased stripped strings (robust to spacing)."""
    return np.asarray([str(v).strip().lower() for v in table[name]],
                      dtype=object)


def _code(values: np.ndarray, mapping: Mapping[str, float],
          default: float) -> np.ndarray:
    """Map string categories to numeric codes with a default bucket."""
    return np.asarray([mapping.get(v, default) for v in values], dtype=float)


def _binary(values: np.ndarray, positives: tuple[str, ...]) -> np.ndarray:
    return np.isin(values, positives).astype(int)


# ----------------------------------------------------------------------
# Adult
# ----------------------------------------------------------------------
_ADULT_RAW_COLUMNS = [
    "age", "workclass", "fnlwgt", "education", "education-num",
    "marital-status", "occupation", "relationship", "race", "sex",
    "capital-gain", "capital-loss", "hours-per-week", "native-country",
    "income",
]

_ADULT_OCCUPATION = {
    # service → 0, clerical → 1, skilled/manual → 2, professional → 3
    "other-service": 0, "priv-house-serv": 0, "handlers-cleaners": 0,
    "protective-serv": 0, "armed-forces": 0,
    "adm-clerical": 1, "sales": 1, "tech-support": 1,
    "craft-repair": 2, "machine-op-inspct": 2, "transport-moving": 2,
    "farming-fishing": 2,
    "prof-specialty": 3, "exec-managerial": 3,
}

_ADULT_WORKCLASS = {
    "private": 0,
    "federal-gov": 1, "state-gov": 1, "local-gov": 1,
    "self-emp-not-inc": 2, "self-emp-inc": 2, "without-pay": 2,
    "never-worked": 2,
}


def load_adult_csv(path: str | Path, header_in_file: bool = False) -> Dataset:
    """Load the UCI Adult census file into the paper's Adult schema.

    Parameters
    ----------
    path:
        Location of ``adult.data`` / ``adult.csv``.
    header_in_file:
        ``adult.data`` ships without a header row (the default); set
        True if your copy has one with the standard UCI column names.

    Notes
    -----
    Rows with missing values in the used columns are dropped, matching
    the paper's 45,222-row cleaned Adult.  ``education_level`` is
    ``education-num`` bucketed to the generator's 0–4 scale.
    """
    path = Path(path)
    table = read_csv(path, header=None if header_in_file
                     else _ADULT_RAW_COLUMNS)
    _require_columns(table, ["age", "education-num", "marital-status",
                             "occupation", "relationship", "race", "sex",
                             "workclass", "hours-per-week",
                             "native-country", "income"], path)

    occupation = _strings(table, "occupation")
    workclass = _strings(table, "workclass")
    keep = (occupation != "") & (workclass != "")
    table = table.filter(keep)
    occupation, workclass = occupation[keep], workclass[keep]

    edu_num = np.asarray(table["education-num"], dtype=float)
    education_level = np.clip(((edu_num - 1) / 3.2).astype(int), 0, 4)

    columns = {
        "age": np.asarray(table["age"], dtype=float),
        "workclass": _code(workclass, _ADULT_WORKCLASS, 0),
        "education_level": education_level.astype(float),
        "marital_status": _binary(
            _strings(table, "marital-status"),
            ("married-civ-spouse", "married-af-spouse")).astype(float),
        "relationship": _binary(
            _strings(table, "relationship"),
            ("husband", "wife")).astype(float),
        "race": _binary(_strings(table, "race"), ("white",)).astype(float),
        "occupation": _code(occupation, _ADULT_OCCUPATION, 0),
        "hours_per_week": np.asarray(table["hours-per-week"], dtype=float),
        "native_country": _binary(
            _strings(table, "native-country"),
            ("united-states",)).astype(float),
        "sex": _binary(_strings(table, "sex"), ("male",)),
        "income": _binary(_strings(table, "income"), (">50k", ">50k.")),
    }
    template = load_adult(4, seed=0)
    return Dataset(
        table=Table({name: columns[name] for name in
                     (*template.feature_names, "sex", "income")}),
        feature_names=template.feature_names,
        sensitive="sex",
        label="income",
        name="adult-real",
        causal_graph=_adult_scm().graph,
        categorical=template.categorical,
        admissible=template.admissible,
    )


# ----------------------------------------------------------------------
# COMPAS
# ----------------------------------------------------------------------
def load_compas_csv(path: str | Path) -> Dataset:
    """Load ProPublica's two-year COMPAS file into the paper's schema.

    Reads ``race``, ``age``, ``sex``, ``priors_count``, and
    ``two_year_recid``; the favorable label ``risk = 1`` means *no*
    recidivism within two years, matching the generator.
    """
    path = Path(path)
    table = read_csv(path)
    _require_columns(table, ["race", "age", "sex", "priors_count",
                             "two_year_recid"], path)
    recid = np.asarray(table["two_year_recid"], dtype=float)
    columns = {
        "age": np.asarray(table["age"], dtype=float),
        "sex": _binary(_strings(table, "sex"), ("male",)).astype(float),
        "prior_convictions": np.asarray(table["priors_count"], dtype=float),
        # African-American is the unprivileged group (0), all others 1.
        "race": 1 - _binary(_strings(table, "race"), ("african-american",)),
        "risk": (1 - recid).astype(int),
    }
    template = load_compas(4, seed=0)
    return Dataset(
        table=Table({name: columns[name] for name in
                     (*template.feature_names, "race", "risk")}),
        feature_names=template.feature_names,
        sensitive="race",
        label="risk",
        name="compas-real",
        causal_graph=_compas_scm().graph,
        categorical=template.categorical,
        admissible=template.admissible,
    )


# ----------------------------------------------------------------------
# German credit
# ----------------------------------------------------------------------
_GERMAN_SAVINGS = {"little": 0, "moderate": 1, "quite rich": 2, "rich": 3}
_GERMAN_STATUS = {"little": 0, "moderate": 1, "rich": 2}
_GERMAN_HOUSING = {"rent": 0, "free": 1, "own": 2}


def load_german_csv(path: str | Path) -> Dataset:
    """Load the Kaggle German credit file into the paper's schema.

    Expects the ``german_credit_data.csv`` layout with columns ``Age``,
    ``Sex``, ``Job``, ``Housing``, ``Saving accounts``, ``Checking
    account``, ``Credit amount``, ``Duration``, and ``Risk``.  Two of
    the paper's nine German features (``property``,
    ``credit_history``) are absent from this public export; they are
    filled with their modal synthetic values, which is recorded in the
    dataset name so downstream reports can flag it.
    """
    path = Path(path)
    table = read_csv(path)
    _require_columns(table, ["Age", "Sex", "Job", "Housing",
                             "Saving accounts", "Checking account",
                             "Credit amount", "Duration", "Risk"], path)
    n = table.n_rows
    columns = {
        "age": np.asarray(table["Age"], dtype=float),
        "credit_amount": np.asarray(table["Credit amount"], dtype=float),
        "investment": np.asarray(table["Job"], dtype=float),
        "savings": _code(_strings(table, "Saving accounts"),
                         _GERMAN_SAVINGS, 0),
        "housing": _code(_strings(table, "Housing"), _GERMAN_HOUSING, 0),
        "property": np.full(n, 1.0),        # absent from this export
        "month": np.asarray(table["Duration"], dtype=float),
        "status": _code(_strings(table, "Checking account"),
                        _GERMAN_STATUS, 0),
        "credit_history": np.full(n, 1.0),  # absent from this export
        "sex": _binary(_strings(table, "Sex"), ("male",)),
        "credit_risk": _binary(_strings(table, "Risk"), ("good",)),
    }
    template = load_german(4, seed=0)
    return Dataset(
        table=Table({name: columns[name] for name in
                     (*template.feature_names, "sex", "credit_risk")}),
        feature_names=template.feature_names,
        sensitive="sex",
        label="credit_risk",
        name="german-real",
        causal_graph=_german_scm().graph,
        categorical=template.categorical,
        admissible=template.admissible,
    )


# ----------------------------------------------------------------------
# Unified entry point
# ----------------------------------------------------------------------
_REAL_LOADERS = {
    "adult": load_adult_csv,
    "compas": load_compas_csv,
    "german": load_german_csv,
}

_SYNTHETIC_LOADERS = {
    "adult": load_adult,
    "compas": load_compas,
    "german": load_german,
}


def load_dataset(name: str, path: str | Path | None = None,
                 n: int = 5000, seed: int = 0) -> Dataset:
    """Load a benchmark dataset, real if a path is given else synthetic.

    Parameters
    ----------
    name:
        ``"adult"``, ``"compas"``, or ``"german"``.
    path:
        Optional location of the original CSV; when given, the real
        loader is used and ``n``/``seed`` are ignored.
    n, seed:
        Size and seed of the synthetic sample (path-less mode).

    Raises
    ------
    KeyError
        On an unknown dataset name.
    FileNotFoundError
        When ``path`` is given but does not exist.
    """
    key = name.lower()
    if key not in _SYNTHETIC_LOADERS:
        raise KeyError(
            f"unknown dataset {name!r}; choose from "
            f"{sorted(_SYNTHETIC_LOADERS)}"
        )
    if path is None:
        return _SYNTHETIC_LOADERS[key](n, seed=seed)
    path = Path(path)
    if not path.exists():
        raise FileNotFoundError(
            f"{path} does not exist; omit `path` to use the synthetic "
            f"{key} generator"
        )
    return _REAL_LOADERS[key](path)
