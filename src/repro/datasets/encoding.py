"""Feature encoding and scaling transforms.

Fit-on-train / apply-on-test transforms used by the model pipelines:
standard scaling for numeric features, one-hot encoding for categorical
codes, and equal-frequency discretisation (used by the approaches that
need small discrete domains, e.g. Calmon and Salimi).
"""

from __future__ import annotations

import numpy as np

from .dataset import Dataset
from .table import Table


class StandardScaler:
    """Column-wise zero-mean unit-variance scaling of a matrix."""

    def __init__(self):
        self.mean_: np.ndarray | None = None
        self.scale_: np.ndarray | None = None

    def fit(self, X: np.ndarray) -> "StandardScaler":
        X = np.asarray(X, dtype=float)
        self.mean_ = X.mean(axis=0)
        scale = X.std(axis=0)
        scale[scale == 0] = 1.0
        self.scale_ = scale
        return self

    def transform(self, X: np.ndarray) -> np.ndarray:
        if self.mean_ is None:
            raise RuntimeError("scaler not fitted")
        return (np.asarray(X, dtype=float) - self.mean_) / self.scale_

    def fit_transform(self, X: np.ndarray) -> np.ndarray:
        return self.fit(X).transform(X)


class OneHotEncoder:
    """One-hot encoding of integer-coded categorical columns.

    Values unseen at fit time map to the all-zeros vector for their
    column block, which keeps the transform total on shifted test data.
    """

    def __init__(self):
        self.categories_: list[np.ndarray] | None = None

    def fit(self, X: np.ndarray) -> "OneHotEncoder":
        X = np.asarray(X)
        self.categories_ = [np.unique(X[:, j]) for j in range(X.shape[1])]
        return self

    def transform(self, X: np.ndarray) -> np.ndarray:
        if self.categories_ is None:
            raise RuntimeError("encoder not fitted")
        X = np.asarray(X)
        blocks = []
        for j, cats in enumerate(self.categories_):
            block = (X[:, j][:, None] == cats[None, :]).astype(float)
            blocks.append(block)
        return np.hstack(blocks) if blocks else np.empty((X.shape[0], 0))

    def fit_transform(self, X: np.ndarray) -> np.ndarray:
        return self.fit(X).transform(X)


class EqualFrequencyDiscretizer:
    """Bin numeric columns into (at most) ``n_bins`` quantile buckets."""

    def __init__(self, n_bins: int = 4):
        if n_bins < 2:
            raise ValueError("need at least 2 bins")
        self.n_bins = n_bins
        self.edges_: list[np.ndarray] | None = None

    def fit(self, X: np.ndarray) -> "EqualFrequencyDiscretizer":
        X = np.asarray(X, dtype=float)
        quantiles = np.linspace(0, 1, self.n_bins + 1)[1:-1]
        self.edges_ = [np.unique(np.quantile(X[:, j], quantiles))
                       for j in range(X.shape[1])]
        return self

    def transform(self, X: np.ndarray) -> np.ndarray:
        if self.edges_ is None:
            raise RuntimeError("discretizer not fitted")
        X = np.asarray(X, dtype=float)
        out = np.empty_like(X)
        for j, edges in enumerate(self.edges_):
            out[:, j] = np.searchsorted(edges, X[:, j], side="right")
        return out

    def fit_transform(self, X: np.ndarray) -> np.ndarray:
        return self.fit(X).transform(X)


def discretize_dataset(dataset: Dataset, n_bins: int = 4) -> Dataset:
    """Return a copy of ``dataset`` with every feature binned to a small
    discrete domain (categorical features are kept as-is)."""
    numeric = [f for f in dataset.feature_names if f not in dataset.categorical]
    if not numeric:
        return dataset
    binned = EqualFrequencyDiscretizer(n_bins).fit_transform(
        dataset.table.to_matrix(numeric))
    table = dataset.table.assign(
        **{name: binned[:, j] for j, name in enumerate(numeric)})
    return dataset.with_table(table)


class FeatureEncoder:
    """Fit-on-train feature encoder for model pipelines.

    One-hot encodes the categorical features and standardises the
    numeric ones; the fitted state is reusable on any dataset with the
    same schema (test splits, SCM counterfactual samples, ...).
    """

    def __init__(self, scale: bool = True):
        self.scale = scale
        self._numeric: list[str] | None = None
        self._categorical: list[str] | None = None
        self._scaler: StandardScaler | None = None
        self._onehot: OneHotEncoder | None = None

    def fit(self, dataset: Dataset) -> "FeatureEncoder":
        self._numeric = [f for f in dataset.feature_names
                         if f not in dataset.categorical]
        self._categorical = [f for f in dataset.feature_names
                             if f in dataset.categorical]
        if self._numeric and self.scale:
            self._scaler = StandardScaler().fit(
                dataset.table.to_matrix(self._numeric))
        if self._categorical:
            self._onehot = OneHotEncoder().fit(
                dataset.table.to_matrix(self._categorical))
        return self

    def transform(self, dataset: Dataset) -> np.ndarray:
        if self._numeric is None:
            raise RuntimeError("encoder not fitted")
        parts: list[np.ndarray] = []
        if self._numeric:
            numeric = dataset.table.to_matrix(self._numeric)
            parts.append(self._scaler.transform(numeric)
                         if self._scaler else numeric)
        if self._categorical:
            parts.append(self._onehot.transform(
                dataset.table.to_matrix(self._categorical)))
        return (np.hstack(parts) if parts
                else np.empty((dataset.n_rows, 0)))

    def fit_transform(self, dataset: Dataset) -> np.ndarray:
        return self.fit(dataset).transform(dataset)


def encode_features(train: Dataset, test: Dataset | None = None,
                    scale: bool = True):
    """Encode train (and optionally test) features into model matrices.

    Categorical features are one-hot encoded, numeric ones standardised
    (fit on train only).  Returns ``(X_train, X_test)`` where ``X_test``
    is ``None`` when no test set is given.
    """
    numeric = [f for f in train.feature_names if f not in train.categorical]
    categorical = [f for f in train.feature_names if f in train.categorical]

    parts_train: list[np.ndarray] = []
    parts_test: list[np.ndarray] = []
    if numeric:
        scaler = StandardScaler() if scale else None
        num_train = train.table.to_matrix(numeric)
        parts_train.append(scaler.fit_transform(num_train)
                           if scaler else num_train)
        if test is not None:
            num_test = test.table.to_matrix(numeric)
            parts_test.append(scaler.transform(num_test)
                              if scaler else num_test)
    if categorical:
        encoder = OneHotEncoder()
        parts_train.append(encoder.fit_transform(
            train.table.to_matrix(categorical)))
        if test is not None:
            parts_test.append(encoder.transform(
                test.table.to_matrix(categorical)))

    X_train = (np.hstack(parts_train) if parts_train
               else np.empty((train.n_rows, 0)))
    if test is None:
        return X_train, None
    X_test = (np.hstack(parts_test) if parts_test
              else np.empty((test.n_rows, 0)))
    return X_train, X_test
