"""The annotated dataset abstraction of the paper (schema ``(X, S; Y)``).

A :class:`Dataset` wraps a :class:`~repro.datasets.table.Table` together
with the fairness-relevant schema: which column is the binary sensitive
attribute ``S`` (1 = privileged group), which is the binary ground-truth
label ``Y`` (1 = favorable), and which columns form the feature set
``X``.  Optionally it carries the causal graph of the data-generating
process, which the causal repair approaches and the causal fairness
metrics (TE/NDE/NIE) consume.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

import numpy as np

from .table import Table


@dataclass(frozen=True)
class Dataset:
    """An annotated dataset with schema ``(X, S; Y)``.

    Attributes
    ----------
    table:
        The underlying tabular data.  All columns are numeric (encoded).
    feature_names:
        The columns forming ``X``, in model input order.
    sensitive:
        Name of the binary sensitive column ``S`` (1 = privileged).
    label:
        Name of the binary ground-truth column ``Y`` (1 = favorable).
    name:
        A human-readable dataset name (``"adult"`` etc.).
    causal_graph:
        Optional :class:`~repro.causal.graph.CausalGraph` over
        ``feature_names + [sensitive, label]`` describing the data
        generating process.
    scm:
        Optional :class:`~repro.causal.scm.StructuralCausalModel`
        realising ``causal_graph`` — present for the synthetic datasets,
        where the generating process is known exactly.  Causal metrics
        use it to audit classifiers under interventions.
    categorical:
        Names of the features that are categorical codes rather than
        ordered numeric quantities.
    admissible:
        Features through which influence of ``S`` on ``Y`` is deemed
        non-discriminatory (used by Salimi's justifiable fairness).
    """

    table: Table
    feature_names: tuple[str, ...]
    sensitive: str
    label: str
    name: str = "dataset"
    causal_graph: object | None = None
    scm: object | None = None
    categorical: tuple[str, ...] = ()
    admissible: tuple[str, ...] = field(default=())

    def __post_init__(self):
        missing = [c for c in (*self.feature_names, self.sensitive, self.label)
                   if c not in self.table]
        if missing:
            raise ValueError(f"schema columns missing from table: {missing}")
        for col in (self.sensitive, self.label):
            values = np.unique(self.table[col])
            if not np.all(np.isin(values, (0, 1))):
                raise ValueError(f"column {col!r} must be binary 0/1, got {values}")

    # ------------------------------------------------------------------
    # Convenience accessors
    # ------------------------------------------------------------------
    @property
    def n_rows(self) -> int:
        return self.table.n_rows

    @property
    def n_features(self) -> int:
        return len(self.feature_names)

    @property
    def X(self) -> np.ndarray:
        """Feature matrix (``n_rows × n_features`` float array)."""
        return self.table.to_matrix(self.feature_names)

    @property
    def s(self) -> np.ndarray:
        """Sensitive attribute vector as ints (1 = privileged)."""
        return self.table[self.sensitive].astype(int)

    @property
    def y(self) -> np.ndarray:
        """Ground-truth labels as ints (1 = favorable)."""
        return self.table[self.label].astype(int)

    def features_with_sensitive(self) -> np.ndarray:
        """Feature matrix with ``S`` appended as the last column."""
        return np.column_stack([self.X, self.s.astype(float)])

    @property
    def inadmissible(self) -> tuple[str, ...]:
        """Features not marked admissible (plus none of S, Y)."""
        return tuple(f for f in self.feature_names if f not in self.admissible)

    def base_rate(self, group: int | None = None) -> float:
        """P(Y=1), optionally restricted to a sensitive group."""
        y = self.y
        if group is not None:
            y = y[self.s == group]
        return float(np.mean(y)) if y.size else float("nan")

    # ------------------------------------------------------------------
    # Derivation (all return new datasets sharing the schema)
    # ------------------------------------------------------------------
    def with_table(self, table: Table) -> "Dataset":
        """Return a dataset with the same schema over a new table."""
        return replace(self, table=table)

    def with_labels(self, y: np.ndarray) -> "Dataset":
        """Return a dataset whose label column is replaced by ``y``."""
        return self.with_table(self.table.assign(**{self.label: np.asarray(y, int)}))

    def take(self, indices) -> "Dataset":
        return self.with_table(self.table.take(indices))

    def filter(self, mask) -> "Dataset":
        return self.with_table(self.table.filter(mask))

    def head(self, n: int) -> "Dataset":
        return self.with_table(self.table.head(n))

    def sample(self, n: int, rng: np.random.Generator,
               replace: bool = False) -> "Dataset":
        return self.with_table(self.table.sample(n, rng, replace=replace))

    def shuffle(self, rng: np.random.Generator) -> "Dataset":
        return self.with_table(self.table.shuffle(rng))

    def select_features(self, names) -> "Dataset":
        """Return a dataset restricted to a subset of the features."""
        names = tuple(names)
        unknown = [n for n in names if n not in self.feature_names]
        if unknown:
            raise ValueError(f"not features of this dataset: {unknown}")
        keep = (*names, self.sensitive, self.label)
        return replace(
            self,
            table=self.table.select(keep),
            feature_names=names,
            categorical=tuple(c for c in self.categorical if c in names),
            admissible=tuple(a for a in self.admissible if a in names),
        )

    def __repr__(self) -> str:
        return (f"Dataset({self.name!r}, {self.n_rows} rows, "
                f"{self.n_features} features, S={self.sensitive}, Y={self.label})")
