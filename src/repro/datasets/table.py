"""A lightweight, column-oriented tabular container.

``Table`` is the repository's substitute for a pandas ``DataFrame``: a
mapping from column names to equal-length one-dimensional numpy arrays.
It supports exactly the operations the fair-classification pipelines
need — column selection, boolean filtering, row sampling, column
assignment, and conversion to a dense feature matrix — while staying
immutable-by-convention (every operation returns a new ``Table``).
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping, Sequence

import numpy as np


class Table:
    """An ordered collection of named, equal-length columns.

    Parameters
    ----------
    columns:
        Mapping from column name to a 1-D array-like.  Order is
        preserved and becomes the column order of the table.

    Raises
    ------
    ValueError
        If columns have differing lengths or a column is not 1-D.
    """

    def __init__(self, columns: Mapping[str, Sequence | np.ndarray]):
        data: dict[str, np.ndarray] = {}
        n_rows: int | None = None
        for name, values in columns.items():
            arr = np.asarray(values)
            if arr.ndim != 1:
                raise ValueError(f"column {name!r} must be 1-D, got shape {arr.shape}")
            if n_rows is None:
                n_rows = arr.shape[0]
            elif arr.shape[0] != n_rows:
                raise ValueError(
                    f"column {name!r} has length {arr.shape[0]}, expected {n_rows}"
                )
            data[name] = arr
        self._data = data
        self._n_rows = n_rows or 0

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def columns(self) -> list[str]:
        """Column names, in insertion order."""
        return list(self._data)

    @property
    def n_rows(self) -> int:
        """Number of rows in the table."""
        return self._n_rows

    def __len__(self) -> int:
        return self._n_rows

    def __contains__(self, name: str) -> bool:
        return name in self._data

    def __getitem__(self, name: str) -> np.ndarray:
        """Return the column array for ``name`` (a view, not a copy)."""
        try:
            return self._data[name]
        except KeyError:
            raise KeyError(
                f"no column {name!r}; available: {self.columns}"
            ) from None

    def column(self, name: str) -> np.ndarray:
        """Alias of ``table[name]``."""
        return self[name]

    def __repr__(self) -> str:
        return f"Table({self.n_rows} rows × {len(self._data)} cols: {self.columns})"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Table):
            return NotImplemented
        if self.columns != other.columns or self.n_rows != other.n_rows:
            return False
        return all(np.array_equal(self[c], other[c]) for c in self.columns)

    # ------------------------------------------------------------------
    # Row operations (all return new tables)
    # ------------------------------------------------------------------
    def take(self, indices: np.ndarray | Sequence[int]) -> "Table":
        """Return a new table containing the rows at ``indices`` (with
        repetition allowed, so this also implements resampling)."""
        idx = np.asarray(indices)
        return Table({name: col[idx] for name, col in self._data.items()})

    def filter(self, mask: np.ndarray) -> "Table":
        """Return the rows where the boolean ``mask`` is true."""
        mask = np.asarray(mask, dtype=bool)
        if mask.shape != (self.n_rows,):
            raise ValueError(f"mask shape {mask.shape} != ({self.n_rows},)")
        return self.take(np.flatnonzero(mask))

    def head(self, n: int) -> "Table":
        """Return the first ``n`` rows."""
        return self.take(np.arange(min(n, self.n_rows)))

    def sample(self, n: int, rng: np.random.Generator,
               replace: bool = False) -> "Table":
        """Return ``n`` rows drawn at random using ``rng``."""
        idx = rng.choice(self.n_rows, size=n, replace=replace)
        return self.take(idx)

    def shuffle(self, rng: np.random.Generator) -> "Table":
        """Return the table with rows in a random permutation."""
        return self.take(rng.permutation(self.n_rows))

    # ------------------------------------------------------------------
    # Column operations (all return new tables)
    # ------------------------------------------------------------------
    def select(self, names: Iterable[str]) -> "Table":
        """Return a table with only the given columns, in that order."""
        return Table({name: self[name] for name in names})

    def drop(self, names: Iterable[str]) -> "Table":
        """Return a table without the given columns."""
        dropped = set(names)
        return Table({n: c for n, c in self._data.items() if n not in dropped})

    def assign(self, **columns: Sequence | np.ndarray) -> "Table":
        """Return a table with columns added or replaced.

        ``table.assign(y=new_labels)`` replaces column ``y`` in place
        (keeping its position) or appends it if new.
        """
        new = dict(self._data)
        for name, values in columns.items():
            arr = np.asarray(values)
            if arr.shape != (self.n_rows,):
                raise ValueError(
                    f"column {name!r} has shape {arr.shape}, expected ({self.n_rows},)"
                )
            new[name] = arr
        return Table(new)

    def rename(self, mapping: Mapping[str, str]) -> "Table":
        """Return a table with columns renamed per ``mapping``."""
        return Table({mapping.get(n, n): c for n, c in self._data.items()})

    # ------------------------------------------------------------------
    # Ordering and aggregation
    # ------------------------------------------------------------------
    def sort_by(self, names: str | Sequence[str],
                ascending: bool = True) -> "Table":
        """Return the table sorted by one or more columns.

        Later names break ties of earlier ones (lexicographic order),
        and the sort is stable, so equal keys keep their input order.
        """
        names = [names] if isinstance(names, str) else list(names)
        if not names:
            raise ValueError("need at least one sort column")
        order = np.lexsort([self[n] for n in reversed(names)])
        if not ascending:
            order = order[::-1]
        return self.take(order)

    def group_by(self, names: str | Sequence[str]) -> "GroupBy":
        """Group rows by the distinct values of one or more columns.

        >>> table.group_by("s").agg(y="mean")      # doctest: +SKIP
        """
        names = [names] if isinstance(names, str) else list(names)
        if not names:
            raise ValueError("need at least one grouping column")
        for n in names:
            self[n]  # raises KeyError with the available columns
        return GroupBy(self, names)

    def describe(self, names: Iterable[str] | None = None) -> "Table":
        """Per-column summary statistics (count/mean/std/min/max).

        Returns a table with one row per described column.  Non-numeric
        columns are skipped.
        """
        names = self.columns if names is None else list(names)
        rows = {"column": [], "count": [], "mean": [], "std": [],
                "min": [], "max": []}
        for name in names:
            col = self[name]
            if not np.issubdtype(col.dtype, np.number):
                continue
            values = col.astype(float)
            rows["column"].append(name)
            rows["count"].append(values.size)
            rows["mean"].append(float(values.mean()) if values.size else
                                float("nan"))
            rows["std"].append(float(values.std(ddof=1))
                               if values.size > 1 else float("nan"))
            rows["min"].append(float(values.min()) if values.size else
                               float("nan"))
            rows["max"].append(float(values.max()) if values.size else
                               float("nan"))
        return Table({k: np.asarray(v) for k, v in rows.items()})

    def distinct(self, names: Iterable[str] | None = None) -> "Table":
        """Return the distinct rows (optionally projected to ``names``).

        This is relational projection-with-dedup, written ``Π`` in the
        paper's multi-valued-dependency formula for justifiable
        fairness.  Row order follows first occurrence.
        """
        projected = self if names is None else self.select(names)
        if projected.n_rows == 0:
            return projected
        matrix = np.column_stack(
            [np.asarray(projected[c]) for c in projected.columns])
        _, first = np.unique(matrix.astype("U"), axis=0, return_index=True)
        return projected.take(np.sort(first))

    def join(self, other: "Table", on: str | Sequence[str],
             how: str = "inner") -> "Table":
        """Relational join on one or more key columns.

        Parameters
        ----------
        other:
            Right-hand table.  Its non-key columns must not collide
            with this table's columns.
        on:
            Key column name(s), present in both tables.
        how:
            ``"inner"`` (drop unmatched left rows) or ``"left"``
            (keep them; right columns get NaN / empty string).

        Notes
        -----
        Multiple matches multiply rows, exactly as in SQL — which is
        what the MVD check ``D = Π_AY(D) ⋈ Π_YI(D)`` needs.
        """
        keys = [on] if isinstance(on, str) else list(on)
        if not keys:
            raise ValueError("need at least one join key")
        for key in keys:
            if key not in self or key not in other:
                raise KeyError(f"join key {key!r} missing from a table")
        right_extra = [c for c in other.columns if c not in keys]
        collisions = [c for c in right_extra if c in self]
        if collisions:
            raise ValueError(f"column name collision: {collisions}")
        if how not in ("inner", "left"):
            raise ValueError(f"unsupported join type {how!r}")

        def key_tuples(table: "Table") -> list[tuple]:
            cols = [table[k] for k in keys]
            return [tuple(col[i] for col in cols)
                    for i in range(table.n_rows)]

        right_index: dict[tuple, list[int]] = {}
        for j, key in enumerate(key_tuples(other)):
            right_index.setdefault(key, []).append(j)

        left_rows: list[int] = []
        right_rows: list[int] = []
        for i, key in enumerate(key_tuples(self)):
            matches = right_index.get(key, [])
            if matches:
                left_rows.extend([i] * len(matches))
                right_rows.extend(matches)
            elif how == "left":
                left_rows.append(i)
                right_rows.append(-1)

        left_part = self.take(np.asarray(left_rows, dtype=int)
                              if left_rows else np.empty(0, dtype=int))
        data = left_part.to_dict()
        r_idx = np.asarray(right_rows, dtype=int)
        for name in right_extra:
            col = other[name]
            if np.issubdtype(col.dtype, np.number):
                values = np.full(r_idx.shape[0], np.nan)
                filler = values
            else:
                values = np.full(r_idx.shape[0], "", dtype=object)
                filler = values
            matched = r_idx >= 0
            filler[matched] = col[r_idx[matched]]
            data[name] = values
        return Table(data)

    # ------------------------------------------------------------------
    # Combination
    # ------------------------------------------------------------------
    @staticmethod
    def concat(tables: Sequence["Table"]) -> "Table":
        """Stack tables vertically.  All must share the same columns."""
        if not tables:
            raise ValueError("need at least one table")
        columns = tables[0].columns
        for t in tables[1:]:
            if t.columns != columns:
                raise ValueError(f"column mismatch: {t.columns} vs {columns}")
        return Table({
            name: np.concatenate([t[name] for t in tables]) for name in columns
        })

    # ------------------------------------------------------------------
    # Conversion
    # ------------------------------------------------------------------
    def to_matrix(self, names: Iterable[str] | None = None,
                  dtype=np.float64) -> np.ndarray:
        """Return the given columns (default: all) as a dense 2-D array."""
        names = self.columns if names is None else list(names)
        if not names:
            return np.empty((self.n_rows, 0), dtype=dtype)
        return np.column_stack([self[n].astype(dtype) for n in names])

    def to_dict(self) -> dict[str, np.ndarray]:
        """Return a shallow copy of the underlying column mapping."""
        return dict(self._data)

    def rows(self) -> Iterable[tuple]:
        """Iterate over rows as tuples (column order)."""
        cols = [self._data[n] for n in self.columns]
        for i in range(self.n_rows):
            yield tuple(col[i] for col in cols)

    def copy(self) -> "Table":
        """Return a deep copy (arrays are copied)."""
        return Table({n: c.copy() for n, c in self._data.items()})


#: Named aggregation functions accepted by :meth:`GroupBy.agg`.
AGGREGATIONS = {
    "mean": lambda v: float(np.mean(v)),
    "sum": lambda v: float(np.sum(v)),
    "min": lambda v: float(np.min(v)),
    "max": lambda v: float(np.max(v)),
    "std": lambda v: float(np.std(v, ddof=1)) if v.size > 1 else float("nan"),
    "count": lambda v: float(v.size),
    "median": lambda v: float(np.median(v)),
}


class GroupBy:
    """Deferred grouping of a :class:`Table` (obtained via
    :meth:`Table.group_by`).

    Groups are the distinct value combinations of the key columns, in
    sorted key order.
    """

    def __init__(self, table: Table, keys: Sequence[str]):
        self._table = table
        self._keys = list(keys)
        matrix = np.column_stack(
            [np.asarray(table[k], dtype=float) for k in self._keys])
        self._combos, self._inverse = np.unique(
            matrix, axis=0, return_inverse=True)

    @property
    def n_groups(self) -> int:
        return self._combos.shape[0]

    def groups(self) -> Iterable[tuple[tuple, Table]]:
        """Iterate over ``(key_values, sub_table)`` pairs."""
        for g in range(self.n_groups):
            key = tuple(self._combos[g])
            yield key, self._table.filter(self._inverse == g)

    def size(self) -> Table:
        """Row counts per group, as a table of keys plus ``count``."""
        counts = np.bincount(self._inverse, minlength=self.n_groups)
        data = {k: self._combos[:, i] for i, k in enumerate(self._keys)}
        data["count"] = counts
        return Table(data)

    def agg(self, **specs: str) -> Table:
        """Aggregate columns per group.

        Each keyword is ``column_name="agg_name"`` where the
        aggregation is one of ``mean/sum/min/max/std/count/median``.
        Returns a table with the key columns followed by one aggregated
        column per spec (named ``{column}_{agg}``).

        >>> table.group_by("s").agg(y="mean", age="max")  # doctest: +SKIP
        """
        if not specs:
            raise ValueError("need at least one aggregation spec")
        for col, agg in specs.items():
            self._table[col]
            if agg not in AGGREGATIONS:
                raise ValueError(
                    f"unknown aggregation {agg!r}; "
                    f"choose from {sorted(AGGREGATIONS)}"
                )
        data: dict[str, np.ndarray] = {
            k: self._combos[:, i] for i, k in enumerate(self._keys)}
        for col, agg in specs.items():
            fn = AGGREGATIONS[agg]
            values = np.asarray(self._table[col], dtype=float)
            data[f"{col}_{agg}"] = np.asarray([
                fn(values[self._inverse == g]) for g in range(self.n_groups)
            ])
        return Table(data)


def value_counts(values: np.ndarray) -> dict:
    """Return ``{value: count}`` for a 1-D array, in descending count order."""
    uniques, counts = np.unique(np.asarray(values), return_counts=True)
    order = np.argsort(-counts, kind="stable")
    return {uniques[i].item() if hasattr(uniques[i], "item") else uniques[i]:
            int(counts[i]) for i in order}


def crosstab(a: np.ndarray, b: np.ndarray) -> dict[tuple, int]:
    """Return joint counts ``{(va, vb): count}`` of two aligned columns."""
    a = np.asarray(a)
    b = np.asarray(b)
    if a.shape != b.shape:
        raise ValueError("columns must be aligned")
    out: dict[tuple, int] = {}
    for va in np.unique(a):
        mask = a == va
        for vb, cnt in value_counts(b[mask]).items():
            key_a = va.item() if hasattr(va, "item") else va
            out[(key_a, vb)] = cnt
    return out
