"""Multi-valued dependency (MVD) checking for justifiable fairness.

Salimi et al. reduce justifiable fairness to an integrity constraint:
with admissible attributes ``A``, inadmissible attributes ``I``, and
label ``Y``, the training data is fair iff (under a uniform empirical
distribution) the multi-valued dependency

    D = Π_{A ∪ Y}(D) ⋈ Π_{Y ∪ I}(D)        (join on A... on Y? — on
                                             the shared attributes)

holds, i.e. ``Y ⫫ I | A`` as a saturated conditional independence:
within every ``A``-stratum, every observed ``Y``-value combines with
every observed ``I``-value.  This module checks that constraint
directly with the :class:`~repro.datasets.table.Table` relational
operators (``distinct`` + ``join``), and reports *where* it fails —
which strata, and how many missing tuples a lossless-join repair would
need to insert.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

from .table import Table

__all__ = ["MvdReport", "check_mvd"]


@dataclass(frozen=True)
class MvdReport:
    """Outcome of an MVD check ``A →→ B | rest`` on a table.

    Attributes
    ----------
    holds:
        True when the decomposition joins back losslessly to exactly
        the original distinct rows.
    n_distinct:
        Distinct rows of the original projection ``A ∪ B ∪ C``.
    n_joined:
        Rows of ``Π_{A∪B} ⋈ Π_{A∪C}`` — always ≥ ``n_distinct``.
    missing:
        ``n_joined − n_distinct``: the tuples a repair would have to
        *insert* for the dependency to hold (Salimi's MaxSAT repair
        chooses between inserting these and deleting originals).
    """

    holds: bool
    n_distinct: int
    n_joined: int

    @property
    def missing(self) -> int:
        return self.n_joined - self.n_distinct


def check_mvd(table: Table, key: Sequence[str], left: Sequence[str],
              right: Sequence[str]) -> MvdReport:
    """Check the embedded MVD ``key →→ left`` (equivalently ``right``).

    The dependency holds iff the projection of the table onto
    ``key ∪ left ∪ right`` equals the join of its two projections
    ``key ∪ left`` and ``key ∪ right`` — the classic lossless-join
    test.  Justifiable fairness (``Y ⫫ I | A``) is the instantiation

    >>> check_mvd(table, key=list(admissible), left=[label],
    ...           right=list(inadmissible))            # doctest: +SKIP

    Raises
    ------
    ValueError
        On empty/overlapping column groups or unknown columns.
    """
    key, left, right = list(key), list(left), list(right)
    if not key:
        raise ValueError("need at least one key column")
    if not left or not right:
        raise ValueError("left and right column groups must be non-empty "
                         "(the MVD is trivial otherwise)")
    groups = key + left + right
    if len(set(groups)) != len(groups):
        raise ValueError("key/left/right column groups must be disjoint")
    for name in groups:
        table[name]  # raises KeyError with available columns

    left_proj = table.distinct([*key, *left])
    right_proj = table.distinct([*key, *right])
    joined = left_proj.join(right_proj, on=key, how="inner")
    original = table.distinct([*key, *left, *right])
    return MvdReport(
        holds=joined.n_rows == original.n_rows,
        n_distinct=original.n_rows,
        n_joined=joined.n_rows,
    )
