"""The experiment runner: uniform pipelines over all stages + metrics.

Every evaluated variant is composed into the same flow

    repair (pre) → encode → model / in-processor → adjust (post)

so correctness, fairness, runtime, robustness, sensitivity, stability,
and data-efficiency experiments all measure approaches identically,
as in the paper's Section 4.1 protocol (logistic regression as the
downstream model for pre/post, predictions thresholded at 0.5, and the
plain-LR baseline subtracted in runtime experiments).
"""

from __future__ import annotations

import dataclasses
import time
from dataclasses import dataclass, field

import numpy as np

from ..datasets.dataset import Dataset
from ..datasets.encoding import FeatureEncoder
from ..datasets.table import Table
from ..fairness.base import (FairApproach, InProcessor, PostProcessor,
                             Preprocessor, Stage)
from ..metrics.correctness import CorrectnessReport
from ..metrics.fairness import (causal_effects_of_predictions,
                                disparate_impact,
                                true_negative_rate_balance,
                                true_positive_rate_balance)
from ..metrics.normalize import di_star, one_minus_abs
from ..models.base import Classifier
from ..models.logistic import LogisticRegression


@dataclass(frozen=True)
class EvaluationResult:
    """All metric values for one (approach, dataset, model) run.

    Fairness metrics are reported on the paper's normalised "1 = fair"
    scale (DI*, 1−|TPRB|, 1−|TNRB|, 1−ID, 1−|TE|, 1−|NDE|, 1−|NIE|);
    the raw signed values are kept alongside for diagnostics.
    """

    approach: str
    dataset: str
    stage: str
    # correctness
    accuracy: float
    precision: float
    recall: float
    f1: float
    # normalised fairness
    di_star: float
    tprb: float
    tnrb: float
    id: float
    te: float
    nde: float
    nie: float
    # raw fairness values (signed / ratio scale)
    raw: dict[str, float] = field(default_factory=dict)
    fit_seconds: float = 0.0

    def fairness_scores(self) -> dict[str, float]:
        return {"di_star": self.di_star, "tprb": self.tprb,
                "tnrb": self.tnrb, "id": self.id, "te": self.te,
                "nde": self.nde, "nie": self.nie}

    def correctness_scores(self) -> dict[str, float]:
        return {"accuracy": self.accuracy, "precision": self.precision,
                "recall": self.recall, "f1": self.f1}


class FairPipeline:
    """A fit/predict pipeline wrapping one fair approach (or none).

    Parameters
    ----------
    approach:
        A pre-, in-, or post-processing approach; ``None`` runs the
        fairness-unaware baseline.
    model:
        Downstream classifier for the baseline and for pre-/post-
        processing approaches (defaults to logistic regression, the
        paper's choice).  Ignored by in-processing approaches.
    seed:
        Seed for the randomised post-processing adjustments.
    """

    def __init__(self, approach: FairApproach | None = None,
                 model: Classifier | None = None, seed: int = 0):
        self.approach = approach
        self.model = model if model is not None else LogisticRegression()
        self.seed = seed
        self._encoder: FeatureEncoder | None = None
        self._schema: Dataset | None = None
        self.fit_seconds_: float = 0.0
        self._fitted = False

    # ------------------------------------------------------------------
    @property
    def stage(self) -> Stage | None:
        return self.approach.stage if self.approach is not None else None

    @property
    def name(self) -> str:
        return self.approach.name if self.approach is not None else "LR"

    @property
    def stage_name(self) -> str:
        """Human-readable stage label for reports."""
        return self.stage.value if self.stage else "baseline"

    def _uses_sensitive(self) -> bool:
        if self.approach is None:
            return True  # baseline LR sees all attributes incl. S
        return self.approach.uses_sensitive_feature

    # ------------------------------------------------------------------
    def fit(self, train: Dataset) -> "FairPipeline":
        start = time.perf_counter()
        self._schema = train
        approach = self.approach

        if approach is None or isinstance(approach, PostProcessor):
            model_train = train
        elif isinstance(approach, Preprocessor):
            model_train = approach.repair(train)
        elif isinstance(approach, InProcessor):
            model_train = train
        else:
            raise TypeError(f"unsupported approach type {type(approach)}")

        self._encoder = FeatureEncoder().fit(model_train)
        X = self._encoder.transform(model_train)

        if isinstance(approach, InProcessor):
            approach.fit(model_train, X)
        elif isinstance(approach, PostProcessor):
            # Fit the adjustment on scores of a held-out slice of the
            # training data, so the learned mixing/thresholds see the
            # score distribution the model produces out of sample (the
            # in-sample distribution of flexible models is degenerate).
            rng = np.random.default_rng(self.seed)
            perm = rng.permutation(model_train.n_rows)
            n_holdout = max(1, int(0.3 * model_train.n_rows))
            fit_idx, holdout_idx = perm[n_holdout:], perm[:n_holdout]
            features = self._model_features(X, model_train.s)
            self.model.fit(features[fit_idx], model_train.y[fit_idx])
            holdout_scores = self.model.predict_proba(
                features[holdout_idx])
            approach.fit(model_train.y[holdout_idx], holdout_scores,
                         model_train.s[holdout_idx])
            # Refit the model on all training rows for deployment.
            self.model.fit(features, model_train.y)
        else:
            features = self._model_features(X, model_train.s)
            self.model.fit(features, model_train.y)
        self.fit_seconds_ = time.perf_counter() - start
        self._fitted = True
        return self

    def _model_features(self, X: np.ndarray, s: np.ndarray) -> np.ndarray:
        if self._uses_sensitive():
            return np.column_stack([X, np.asarray(s, float)])
        return X

    # ------------------------------------------------------------------
    def predict(self, dataset: Dataset,
                s_override: np.ndarray | None = None) -> np.ndarray:
        """Hard predictions for an annotated dataset.

        ``s_override`` replaces the sensitive column *as seen by the
        model and post-processor* (the intervention of the ID metric);
        data transforms still use the dataset's recorded group.
        """
        return self._predict(dataset, s_override, proba=False)

    def predict_proba(self, dataset: Dataset) -> np.ndarray:
        """Positive-class scores before any randomised adjustment."""
        return self._predict(dataset, None, proba=True)

    def _predict(self, dataset: Dataset, s_override, proba: bool
                 ) -> np.ndarray:
        if not self._fitted:
            raise RuntimeError("pipeline not fitted")
        approach = self.approach
        s = dataset.s if s_override is None else np.asarray(
            s_override).astype(int)

        if isinstance(approach, Preprocessor):
            dataset = approach.transform(dataset)
        X = self._encoder.transform(dataset)

        if isinstance(approach, InProcessor):
            if proba:
                return approach.predict_proba(X, s)
            return approach.predict(X, s)

        features = self._model_features(X, s)
        scores = self.model.predict_proba(features)
        if proba or not isinstance(approach, PostProcessor):
            return scores if proba else (scores >= 0.5).astype(int)
        rng = np.random.default_rng(self.seed)
        return approach.adjust(scores, s, rng)

    # ------------------------------------------------------------------
    # Serialization (the artifact-bundle state protocol)
    # ------------------------------------------------------------------
    def get_state(self) -> dict:
        state = dict(self.__dict__)
        schema = state.get("_schema")
        if schema is not None:
            # Prediction needs only the schema's column roles and causal
            # graph, not the training rows or the synthetic-generator
            # mechanisms (callables, unserializable).  A one-row head
            # keeps the Dataset invariants (binary s/y) satisfied.
            state["_schema"] = dataclasses.replace(schema.head(1), scm=None)
        return state

    def set_state(self, state: dict) -> None:
        self.__dict__.update(state)

    # ------------------------------------------------------------------
    def predict_columns(self, columns: dict[str, np.ndarray]) -> np.ndarray:
        """Predictions over raw generator columns (SCM interventions).

        Builds a dataset with the training schema from sampled columns
        and runs the full pipeline — this is how the causal metrics
        audit the deployed pipeline under ``do(S)``.
        """
        schema = self._schema
        n = len(next(iter(columns.values())))
        table_cols = {}
        for name in (*schema.feature_names, schema.sensitive, schema.label):
            if name not in columns:
                raise KeyError(f"sampled columns missing {name!r}")
            values = np.asarray(columns[name])
            if name in (schema.sensitive, schema.label):
                values = values.astype(int)
            table_cols[name] = values
        dataset = schema.with_table(Table(table_cols))
        return self.predict(dataset)


# ----------------------------------------------------------------------
# End-to-end evaluation
# ----------------------------------------------------------------------
def _individual_discrimination(pipeline: FairPipeline, test: Dataset,
                               confidence: float = 0.99,
                               error_bound: float = 0.01,
                               seed: int = 0) -> float:
    from ..metrics.fairness import id_sample_size

    needed = id_sample_size(confidence, error_bound)
    dataset = test
    if test.n_rows > needed:
        rng = np.random.default_rng(seed)
        dataset = test.take(rng.choice(test.n_rows, needed, replace=False))
    original = pipeline.predict(dataset)
    flipped = pipeline.predict(dataset, s_override=1 - dataset.s)
    return float(np.mean(original != flipped))


def evaluate_pipeline(pipeline: FairPipeline, test: Dataset,
                      causal_samples: int = 20000,
                      seed: int = 0) -> EvaluationResult:
    """Score a fitted pipeline on held-out data with all paper metrics."""
    y = test.y
    s = test.s
    y_hat = pipeline.predict(test)

    correctness = CorrectnessReport.from_predictions(y, y_hat)
    di = disparate_impact(y_hat, s)
    tprb = true_positive_rate_balance(y, y_hat, s)
    tnrb = true_negative_rate_balance(y, y_hat, s)
    id_value = _individual_discrimination(pipeline, test, seed=seed)
    effects = causal_effects_of_predictions(
        test, y_hat, predict=pipeline.predict_columns,
        n_samples=causal_samples, seed=seed)

    return EvaluationResult(
        approach=pipeline.name,
        dataset=test.name,
        stage=pipeline.stage_name,
        accuracy=correctness.accuracy,
        precision=correctness.precision,
        recall=correctness.recall,
        f1=correctness.f1,
        di_star=di_star(di),
        tprb=one_minus_abs(tprb),
        tnrb=one_minus_abs(tnrb),
        id=one_minus_abs(id_value),
        te=one_minus_abs(effects.te),
        nde=one_minus_abs(effects.nde),
        nie=one_minus_abs(effects.nie),
        raw={"di": di, "tprb": tprb, "tnrb": tnrb, "id": id_value,
             "te": effects.te, "nde": effects.nde, "nie": effects.nie},
        fit_seconds=pipeline.fit_seconds_,
    )


def run_experiment(approach_name: str | None, train: Dataset,
                   test: Dataset, model: Classifier | None = None,
                   seed: int = 0, causal_samples: int = 20000,
                   approach_params: dict | None = None) -> EvaluationResult:
    """Fit and evaluate one variant by registry spec (None = baseline).

    ``approach_name`` may be a bare registry key or a parameterized
    spec (``"Celis-pp(tau=0.9)"``); ``approach_params`` merges on top.
    The seed reaches the approach factory only when the registry
    declares the variant stochastic.
    """
    from .. import obs
    from ..registry import APPROACHES

    approach = (APPROACHES.build(approach_name, seed=seed,
                                 **(approach_params or {}))
                if approach_name is not None else None)
    pipeline = FairPipeline(approach, model=model, seed=seed)
    with obs.span("fit", approach=pipeline.name,
                  stage=pipeline.stage_name):
        pipeline.fit(train)
    with obs.span("metrics", approach=pipeline.name):
        return evaluate_pipeline(pipeline, test,
                                 causal_samples=causal_samples,
                                 seed=seed)
