"""Plain-text reporting of experiment results as the paper's tables.

The benchmark harness prints rows shaped like the paper's figures:
correctness + normalised fairness per approach (Figures 7/15/16–18),
runtime overhead sweeps (Figure 8), and robustness deltas (Figure 9).
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

from .experiment import EvaluationResult

CORRECTNESS_COLUMNS = ("accuracy", "precision", "recall", "f1")
FAIRNESS_COLUMNS = ("di_star", "tprb", "tnrb", "id", "te", "nde", "nie")
HEADER_LABELS = {
    "accuracy": "Acc", "precision": "Prec", "recall": "Rec", "f1": "F1",
    "di_star": "DI*", "tprb": "1-|TPRB|", "tnrb": "1-|TNRB|",
    "id": "1-ID", "te": "1-|TE|", "nde": "1-|NDE|", "nie": "1-|NIE|",
}


def _fmt(value: float) -> str:
    if value != value:  # NaN
        return "   --"
    return f"{value:5.2f}"


def format_results_table(results: Sequence[EvaluationResult],
                         title: str = "",
                         columns: Iterable[str] | None = None) -> str:
    """Render results as a fixed-width table (one row per approach)."""
    columns = list(columns) if columns is not None else \
        [*CORRECTNESS_COLUMNS, *FAIRNESS_COLUMNS]
    name_width = max([len(r.approach) for r in results] + [10])
    lines = []
    if title:
        lines.append(title)
    header = " ".join(f"{HEADER_LABELS.get(c, c):>8s}" for c in columns)
    lines.append(f"{'approach':<{name_width}s} {'stage':<6s} {header}")
    lines.append("-" * (name_width + 7 + 9 * len(columns)))
    for r in results:
        values = {**r.correctness_scores(), **r.fairness_scores()}
        row = " ".join(f"{_fmt(values[c]):>8s}" for c in columns)
        stage = {"pre-processing": "pre", "in-processing": "in",
                 "post-processing": "post"}.get(r.stage, "base")
        lines.append(f"{r.approach:<{name_width}s} {stage:<6s} {row}")
    return "\n".join(lines)


def format_runtime_table(rows: Sequence[tuple[str, dict[int, float]]],
                         sweep_label: str, title: str = "") -> str:
    """Render a runtime sweep: one approach per row, one sweep value
    per column (seconds of overhead over the baseline)."""
    if not rows:
        return title
    sweep_values = sorted({v for _, series in rows for v in series})
    name_width = max(len(name) for name, _ in rows)
    lines = []
    if title:
        lines.append(title)
    header = " ".join(f"{v:>9d}" for v in sweep_values)
    lines.append(f"{'approach':<{name_width}s}  {sweep_label}: {header}")
    lines.append("-" * (name_width + 12 + 10 * len(sweep_values)))
    for name, series in rows:
        cells = " ".join(
            f"{series[v]:9.3f}" if v in series else f"{'--':>9s}"
            for v in sweep_values)
        lines.append(f"{name:<{name_width}s}  {' ' * len(sweep_label)}  "
                     f"{cells}")
    return "\n".join(lines)


def format_delta_table(clean: Sequence[EvaluationResult],
                       corrupted: Sequence[EvaluationResult],
                       columns: Iterable[str], title: str = "") -> str:
    """Render corrupted-vs-clean metric deltas (robustness, Figure 9)."""
    columns = list(columns)
    by_name = {r.approach: r for r in clean}
    name_width = max([len(r.approach) for r in corrupted] + [10])
    lines = []
    if title:
        lines.append(title)
    header = " ".join(f"Δ{HEADER_LABELS.get(c, c):>8s}" for c in columns)
    lines.append(f"{'approach':<{name_width}s} {header}")
    lines.append("-" * (name_width + 10 * len(columns)))
    for r in corrupted:
        base = by_name.get(r.approach)
        if base is None:
            continue
        merged_r = {**r.correctness_scores(), **r.fairness_scores()}
        merged_b = {**base.correctness_scores(), **base.fairness_scores()}
        row = " ".join(f"{merged_r[c] - merged_b[c]:+9.3f}"
                       for c in columns)
        lines.append(f"{r.approach:<{name_width}s} {row}")
    return "\n".join(lines)
