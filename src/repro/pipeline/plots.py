"""Terminal plotting: ASCII renderings of the paper's figures.

No plotting backend is assumed offline, so the benchmark harness
renders its Figure 7-style grouped bars and Figure 8-style runtime
curves as plain text.  The functions here are deterministic and
unit-tested: given the same data they emit the same characters, which
also makes them usable as golden-file fixtures.
"""

from __future__ import annotations

import math
from collections.abc import Mapping, Sequence

__all__ = [
    "bar_chart",
    "grouped_bar_chart",
    "line_chart",
]

_FULL = "█"
_PART = " ▏▎▍▌▋▊▉█"


def _bar(value: float, vmax: float, width: int) -> str:
    """Render ``value``/``vmax`` as a sub-character-precision bar."""
    if vmax <= 0:
        return ""
    cells = max(0.0, min(1.0, value / vmax)) * width
    whole = int(cells)
    frac = cells - whole
    partial = _PART[round(frac * 8)] if whole < width else ""
    return _FULL * whole + partial.rstrip()


def bar_chart(labels: Sequence[str], values: Sequence[float],
              width: int = 40, title: str = "",
              vmax: float | None = None,
              value_format: str = "{:.3f}") -> str:
    """A horizontal bar chart, one row per label.

    Parameters
    ----------
    labels, values:
        Aligned bar names and non-negative magnitudes.
    width:
        Maximum bar length in characters.
    title:
        Optional heading line.
    vmax:
        Scale maximum (defaults to the largest value; pass 1.0 for the
        paper's normalised fairness metrics).
    value_format:
        Format spec for the numeric annotation.
    """
    if len(labels) != len(values):
        raise ValueError("labels and values must be aligned")
    if not labels:
        raise ValueError("need at least one bar")
    if any(v < 0 for v in values):
        raise ValueError("bar values must be non-negative")
    scale = max(values) if vmax is None else vmax
    if scale <= 0:
        scale = 1.0
    label_width = max(len(str(lab)) for lab in labels)
    lines = [title] if title else []
    for lab, val in zip(labels, values):
        bar = _bar(val, scale, width)
        lines.append(f"{str(lab):<{label_width}} |{bar:<{width}}| "
                     + value_format.format(val))
    return "\n".join(lines)


def grouped_bar_chart(data: Mapping[str, Mapping[str, float]],
                      width: int = 40, vmax: float = 1.0,
                      title: str = "") -> str:
    """Figure 7-style output: per approach, one bar per metric.

    ``data`` maps group name (approach) → {metric: value}.  Groups are
    separated by blank lines; every group shows its metrics in the
    order of first appearance.
    """
    if not data:
        raise ValueError("need at least one group")
    blocks = [title] if title else []
    for group, metrics in data.items():
        if not metrics:
            raise ValueError(f"group {group!r} has no metrics")
        blocks.append(group)
        blocks.append(bar_chart(list(metrics), list(metrics.values()),
                                width=width, vmax=vmax))
        blocks.append("")
    return "\n".join(blocks).rstrip("\n")


def line_chart(x: Sequence[float], series: Mapping[str, Sequence[float]],
               height: int = 12, width: int = 60, log_y: bool = False,
               title: str = "", x_label: str = "",
               y_format: str = "{:g}") -> str:
    """An ASCII scatter/line panel for runtime-style curves (Figure 8).

    Parameters
    ----------
    x:
        Shared x positions.
    series:
        Name → y values (aligned with ``x``); each series is drawn
        with its own marker character (a, b, c, ...).
    height, width:
        Canvas size in characters.
    log_y:
        Plot ``log10(y)`` (the paper's runtime axes are log scale);
        non-positive values are clamped to the smallest positive one.
    """
    if not series:
        raise ValueError("need at least one series")
    x = [float(v) for v in x]
    if len(x) < 2:
        raise ValueError("need at least two x positions")
    for name, ys in series.items():
        if len(ys) != len(x):
            raise ValueError(f"series {name!r} is not aligned with x")

    def prep(ys: Sequence[float]) -> list[float]:
        values = [float(v) for v in ys]
        if log_y:
            positive = [v for v in values if v > 0]
            floor = min(positive) if positive else 1e-9
            values = [math.log10(max(v, floor)) for v in values]
        return values

    prepared = {name: prep(ys) for name, ys in series.items()}
    all_y = [v for ys in prepared.values() for v in ys]
    y_lo, y_hi = min(all_y), max(all_y)
    if y_hi == y_lo:
        y_hi = y_lo + 1.0
    x_lo, x_hi = min(x), max(x)

    grid = [[" "] * width for _ in range(height)]
    markers = "abcdefghijklmnopqrstuvwxyz"
    for (name, ys), marker in zip(prepared.items(), markers):
        for xv, yv in zip(x, ys):
            col = round((xv - x_lo) / (x_hi - x_lo) * (width - 1))
            row = round((yv - y_lo) / (y_hi - y_lo) * (height - 1))
            grid[height - 1 - row][col] = marker

    top = y_hi if not log_y else 10 ** y_hi
    bottom = y_lo if not log_y else 10 ** y_lo
    lines = [title] if title else []
    lines.append(y_format.format(top))
    lines.extend("|" + "".join(row) for row in grid)
    lines.append(y_format.format(bottom)
                 + (f"  ({x_label}: {x_lo:g} .. {x_hi:g})" if x_label
                    else f"  (x: {x_lo:g} .. {x_hi:g})"))
    legend = ", ".join(f"{marker}={name}" for (name, _), marker
                       in zip(prepared.items(), markers))
    lines.append("legend: " + legend)
    return "\n".join(lines)
