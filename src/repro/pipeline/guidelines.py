"""The Section 5 advisor: map application constraints to approaches.

The paper closes with "general guidelines towards selecting suitable
fair classification approaches in different settings".  This module
operationalises those guidelines: an :class:`ApplicationProfile`
captures the practical constraints the paper discusses (is the model
replaceable?  may training data be modified?  how dirty is the data?
is a causal model available?  what is dimensionality like?), and
:func:`recommend` scores the three stages against the paper's findings
and returns a ranked recommendation with the reason for every
adjustment, each tied to the section of the paper it comes from.

The advisor is deliberately transparent — a scored rule list, not a
learned model — because its purpose is to make the paper's lessons
executable, not to replace reading them.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..fairness.base import Stage

__all__ = [
    "ApplicationProfile",
    "Recommendation",
    "StageScore",
    "recommend",
]


@dataclass(frozen=True)
class ApplicationProfile:
    """Practical constraints of a deployment, per the paper's Section 5.

    Attributes
    ----------
    model_replaceable:
        The learning algorithm may be swapped or re-implemented
        (in-processing requires this).
    model_retrainable:
        The model can be retrained at all (pre-processing requires
        this; post-processing does not).
    data_modifiable:
        Training data may legally/practically be altered
        (pre-processing requires this; anti-discrimination law
        sometimes forbids it).
    target_notion:
        The fairness notion family the application must enforce:
        ``"demographic-parity"``, ``"error-rate"`` (equalized odds and
        kin), ``"causal"``, or ``"individual"``.
    causal_model_available:
        A causal graph (or domain knowledge to build one) exists.
    high_dimensional:
        Many attributes (paper: pre-processing runtime grows steeply
        with attribute count).
    large_data:
        Many rows (paper: in-processing runtime rises sharpest with
        data size).
    dirty_data:
        Data-quality issues are expected in training data.
    runtime_critical:
        Training-time budget is tight.
    fairness_priority:
        Fairness outweighs raw accuracy when they conflict (otherwise
        the accuracy side of the tradeoff is weighted).
    """

    model_replaceable: bool = True
    model_retrainable: bool = True
    data_modifiable: bool = True
    target_notion: str = "demographic-parity"
    causal_model_available: bool = False
    high_dimensional: bool = False
    large_data: bool = False
    dirty_data: bool = False
    runtime_critical: bool = False
    fairness_priority: bool = True

    _NOTIONS = ("demographic-parity", "error-rate", "causal", "individual")

    def __post_init__(self):
        if self.target_notion not in self._NOTIONS:
            raise ValueError(
                f"target_notion must be one of {self._NOTIONS}, "
                f"got {self.target_notion!r}"
            )


@dataclass
class StageScore:
    """A stage's running score plus the reasons that moved it."""

    stage: Stage
    score: float = 0.0
    reasons: list[str] = field(default_factory=list)
    excluded: bool = False

    def adjust(self, delta: float, reason: str) -> None:
        self.score += delta
        sign = "+" if delta >= 0 else ""
        self.reasons.append(f"[{sign}{delta:g}] {reason}")

    def exclude(self, reason: str) -> None:
        self.excluded = True
        self.reasons.append(f"[excluded] {reason}")


@dataclass(frozen=True)
class Recommendation:
    """Ranked stages and concrete candidate approaches.

    Attributes
    ----------
    ranking:
        Stage scores, best first; excluded stages last.
    approaches:
        Registry names of candidate variants in the winning stage that
        support the target notion family.
    """

    ranking: list[StageScore]
    approaches: list[str]

    @property
    def best_stage(self) -> Stage | None:
        viable = [s for s in self.ranking if not s.excluded]
        return viable[0].stage if viable else None

    def summary(self) -> str:
        """Human-readable multi-line report."""
        lines = []
        for entry in self.ranking:
            status = ("excluded" if entry.excluded
                      else f"score {entry.score:+.1f}")
            lines.append(f"{entry.stage.value} ({status})")
            lines.extend(f"  {r}" for r in entry.reasons)
        if self.approaches:
            lines.append("candidate approaches: "
                         + ", ".join(self.approaches))
        else:
            lines.append("candidate approaches: none match the target "
                         "notion in the winning stage")
        return "\n".join(lines)


# Notion families per registry notion value (see fairness.base.Notion).
_NOTION_FAMILY = {
    "demographic parity": "demographic-parity",
    "equalized odds": "error-rate",
    "equal opportunity": "error-rate",
    "predictive equality": "error-rate",
    "predictive parity": "error-rate",
    "path-specific fairness": "causal",
    "direct causal effect": "causal",
    "justifiable fairness": "causal",
}


def _candidates(stage: Stage, family: str) -> list[str]:
    from ..registry import APPROACHES

    return [name for name in APPROACHES.keys(stage=stage)
            if _NOTION_FAMILY.get(
                APPROACHES.get(name).metadata["notion"].value) == family]


def recommend(profile: ApplicationProfile) -> Recommendation:
    """Rank the three stages for a deployment profile.

    Every rule cites the paper finding it encodes; read
    :meth:`Recommendation.summary` for the full trace.
    """
    pre = StageScore(Stage.PRE)
    inp = StageScore(Stage.IN)
    post = StageScore(Stage.POST)

    # --- hard feasibility ------------------------------------------------
    if not profile.data_modifiable:
        pre.exclude("training data may not be modified (legal/practical "
                    "constraint, §5)")
    if not profile.model_retrainable:
        pre.exclude("pre-processing needs the model retrained on repaired "
                    "data (§3.1)")
        inp.exclude("in-processing replaces the training procedure (§3.2)")
    elif not profile.model_replaceable:
        inp.exclude("in-processing is model-specific and needs a "
                    "replaceable model (§3.2)")

    # --- notion support ---------------------------------------------------
    if profile.target_notion == "error-rate":
        pre.adjust(-2, "pre-processing cannot enforce error-rate notions "
                       "(equalized odds etc.) before predictions exist (§5)")
        inp.adjust(+1, "in-processing enforces error-rate notions with "
                       "direct constraints (§3.2)")
        post.adjust(+1, "post-processing (Hardt/Pleiss) targets error-rate "
                        "notions directly (§3.3)")
    if profile.target_notion == "causal":
        if profile.causal_model_available:
            pre.adjust(+2, "causal repairs (Zha-Wu, Salimi) live in "
                           "pre-processing and use the causal model (§3.1)")
        else:
            pre.adjust(-1, "causal notions need domain knowledge that is "
                           "not available (§5)")
        inp.adjust(-1, "no evaluated in-processing approach targets causal "
                       "notions (Figure 5)")
        post.adjust(-2, "no evaluated post-processing approach targets "
                        "causal notions (Figure 5)")
    if profile.target_notion == "individual":
        post.adjust(-2, "post-processing significantly violates individual "
                        "fairness (§4.2)")
        pre.adjust(+1, "several pre-processing approaches trivially "
                       "satisfy ID by discarding S (§4.2)")

    # --- scalability ------------------------------------------------------
    if profile.high_dimensional:
        pre.adjust(-2, "pre-processing runtime grows steeply with the "
                       "number of attributes (§4.3, Fig. 8d)")
        inp.adjust(-0.5, "in-processing also slows with attributes, but "
                         "more gracefully (§4.3)")
        post.adjust(+1, "post-processing is unaffected by attribute "
                        "count (§4.3, Fig. 8f)")
    if profile.large_data:
        inp.adjust(-1.5, "in-processing runtime rises sharpest with data "
                         "size (§4.3, Fig. 8b)")
        post.adjust(+1, "post-processing scales best with data size "
                        "(§4.3, Fig. 8c)")
    if profile.runtime_critical:
        post.adjust(+1.5, "post-processing is the most efficient stage "
                          "overall (§4.3)")
        pre.adjust(-0.5, "causal/optimisation-based pre-processing incurs "
                         "the largest runtimes (§4.3)")

    # --- robustness ---------------------------------------------------
    if profile.dirty_data:
        post.adjust(+2, "post-processing is most robust to training-data "
                        "errors (§4.4)")
        pre.adjust(-1, "pre-processing generalises poorly under data "
                       "errors (§4.4)")
        inp.adjust(-1, "in-processing fairness guarantees break under "
                       "data errors (§4.4)")

    # --- correctness-fairness balance ----------------------------------
    if profile.fairness_priority:
        pre.adjust(+1, "pre-/in-processing balance correctness and "
                       "fairness better than post (§4.2)")
        inp.adjust(+1, "in-processing adjusts the objective directly and "
                       "can offer guarantees (§3.2)")
        post.adjust(-1, "post-processing trades 2–5% extra accuracy for "
                        "its simplicity (§4.2)")
    if not profile.model_replaceable and profile.model_retrainable:
        pre.adjust(+1, "pre-processing is model-agnostic: works with the "
                       "fixed downstream model (§3.1)")

    ranking = sorted([pre, inp, post],
                     key=lambda e: (e.excluded, -e.score))
    best = next((e for e in ranking if not e.excluded), None)
    approaches = (_candidates(best.stage, profile.target_notion)
                  if best is not None else [])
    return Recommendation(ranking=ranking, approaches=approaches)
