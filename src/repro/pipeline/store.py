"""Persisting experiment results to disk as JSON.

Benchmark runs are expensive (the Figure 7 sweep alone fits 19
pipelines per dataset), so the harness persists every
:class:`~repro.pipeline.experiment.EvaluationResult` with the
parameters that produced it.  The store is a plain directory of JSON
files — greppable, diffable, and safe to commit — with one file per
experiment run keyed by a caller-chosen run name.
"""

from __future__ import annotations

import dataclasses
import json
import os
import tempfile
from collections.abc import Mapping, Sequence
from pathlib import Path

from .experiment import EvaluationResult

__all__ = [
    "result_to_dict",
    "result_from_dict",
    "ResultStore",
]

_FORMAT_VERSION = 1


def result_to_dict(result: EvaluationResult) -> dict:
    """Serialise an evaluation result to plain JSON-compatible types."""
    out = dataclasses.asdict(result)
    out["raw"] = {k: float(v) for k, v in result.raw.items()}
    return out


def result_from_dict(data: Mapping) -> EvaluationResult:
    """Inverse of :func:`result_to_dict`.

    Raises
    ------
    ValueError
        If required fields are missing (e.g. hand-edited files).
    """
    fields = {f.name for f in dataclasses.fields(EvaluationResult)}
    missing = fields - set(data)
    # `raw` and `fit_seconds` have defaults; everything else is required.
    required_missing = missing - {"raw", "fit_seconds"}
    if required_missing:
        raise ValueError(f"result record is missing {sorted(required_missing)}")
    kwargs = {k: v for k, v in data.items() if k in fields}
    return EvaluationResult(**kwargs)


class ResultStore:
    """A directory of named experiment runs.

    Each run file holds the run's parameters and its list of results::

        {"version": 1, "run": "fig7-compas", "params": {...},
         "results": [...]}

    Parameters
    ----------
    root:
        Directory to store runs in (created on first save).
    """

    def __init__(self, root: str | Path):
        self.root = Path(root)

    def _path(self, run: str) -> Path:
        if not run or any(sep in run for sep in "/\\"):
            raise ValueError(f"invalid run name {run!r}")
        return self.root / f"{run}.json"

    def save(self, run: str, results: Sequence[EvaluationResult],
             params: Mapping | None = None) -> Path:
        """Write a run file; returns its path.  Overwrites silently so
        re-running an experiment refreshes its record.

        The write is atomic (temp file in the same directory, then
        ``os.replace``): a crash mid-save — e.g. a killed sweep worker
        — leaves either the old complete file or the new one, never a
        truncated JSON that :meth:`load` would choke on.
        """
        self.root.mkdir(parents=True, exist_ok=True)
        payload = {
            "version": _FORMAT_VERSION,
            "run": run,
            "params": dict(params or {}),
            "results": [result_to_dict(r) for r in results],
        }
        path = self._path(run)
        fd, tmp_name = tempfile.mkstemp(dir=self.root,
                                        prefix=f".{run}.", suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as handle:
                handle.write(json.dumps(payload, indent=2, sort_keys=True))
            os.replace(tmp_name, path)
        except BaseException:
            os.unlink(tmp_name)
            raise
        return path

    def load(self, run: str) -> tuple[list[EvaluationResult], dict]:
        """Read a run file back as ``(results, params)``.

        Raises
        ------
        FileNotFoundError
            If the run does not exist (see :meth:`runs`).
        ValueError
            On version mismatch or malformed records.
        """
        path = self._path(run)
        if not path.exists():
            raise FileNotFoundError(
                f"no run {run!r} in {self.root}; available: {self.runs()}")
        payload = json.loads(path.read_text())
        if not isinstance(payload, dict):
            raise ValueError(
                f"run {run!r} is malformed: expected a JSON object, "
                f"got {type(payload).__name__}")
        version = payload.get("version")
        if version != _FORMAT_VERSION:
            raise ValueError(
                f"run {run!r} has format version {version}, "
                f"expected {_FORMAT_VERSION}")
        results = [result_from_dict(r) for r in payload["results"]]
        return results, dict(payload.get("params", {}))

    def runs(self) -> list[str]:
        """Names of all stored runs, sorted."""
        if not self.root.exists():
            return []
        return sorted(p.stem for p in self.root.glob("*.json"))

    def delete(self, run: str) -> None:
        """Remove a stored run (no-op if absent)."""
        self._path(run).unlink(missing_ok=True)
