"""Composing fairness mechanisms across stages (paper Section 5).

The paper's discussion notes that "combining multiple approaches is
possible, but faces practical hurdles such as substantial penalties in
correctness [and] runtime overhead".  This module makes that claim
testable: :class:`ChainedPreprocessor` sequences several data repairs,
and :class:`ComposedPipeline` runs the full
``pre-repair(s) → model → post-adjustment`` stack — the combination
the paper never measures — with the same evaluation interface as
:class:`~repro.pipeline.experiment.FairPipeline`, so
:func:`~repro.pipeline.experiment.evaluate_pipeline` scores it
unchanged.
"""

from __future__ import annotations

import time
from collections.abc import Sequence

import numpy as np

from ..datasets.dataset import Dataset
from ..datasets.encoding import FeatureEncoder
from ..datasets.table import Table
from ..fairness.base import PostProcessor, Preprocessor
from ..models.base import Classifier
from ..models.logistic import LogisticRegression

__all__ = ["ChainedPreprocessor", "ComposedPipeline"]


class ChainedPreprocessor(Preprocessor):
    """Run several pre-processing repairs in sequence.

    The chained repair applies each member's ``repair`` to the output
    of the previous one (and likewise for test-time ``transform``).
    Order matters: e.g. reweighing after attribute repair sees the
    repaired marginals.

    The chain reports the *first* member's notion (used only for
    figure annotations).
    """

    def __init__(self, members: Sequence[Preprocessor]):
        if not members:
            raise ValueError("chain needs at least one preprocessor")
        for member in members:
            if not isinstance(member, Preprocessor):
                raise TypeError(
                    f"{type(member).__name__} is not a Preprocessor")
        self.members = list(members)
        self.notion = self.members[0].notion
        self.uses_sensitive_feature = any(
            m.uses_sensitive_feature for m in self.members)

    @property
    def name(self) -> str:
        return "+".join(m.name for m in self.members)

    def repair(self, train: Dataset) -> Dataset:
        out = train
        for member in self.members:
            out = member.repair(out)
        return out

    def transform(self, test: Dataset) -> Dataset:
        out = test
        for member in self.members:
            out = member.transform(out)
        return out


class ComposedPipeline:
    """A full cross-stage stack: pre-repair(s), a model, post-adjustment.

    Parameters
    ----------
    pre:
        A :class:`~repro.fairness.base.Preprocessor` (or a
        :class:`ChainedPreprocessor`); ``None`` skips the repair.
    post:
        A :class:`~repro.fairness.base.PostProcessor`; ``None`` skips
        the adjustment.
    model:
        Downstream classifier (defaults to logistic regression, the
        paper's choice).
    seed:
        Seed for the post-processor's holdout split and randomised
        adjustments.

    Notes
    -----
    The fit protocol mirrors
    :class:`~repro.pipeline.experiment.FairPipeline`: the post-
    processor is fitted on out-of-sample scores from a 30% holdout of
    the (repaired) training data, then the model is refitted on all of
    it for deployment.
    """

    def __init__(self, pre: Preprocessor | None = None,
                 post: PostProcessor | None = None,
                 model: Classifier | None = None, seed: int = 0):
        if pre is None and post is None:
            raise ValueError(
                "composition needs at least one of pre/post; use "
                "FairPipeline for the plain baseline")
        if pre is not None and not isinstance(pre, Preprocessor):
            raise TypeError(f"{type(pre).__name__} is not a Preprocessor")
        if post is not None and not isinstance(post, PostProcessor):
            raise TypeError(f"{type(post).__name__} is not a PostProcessor")
        self.pre = pre
        self.post = post
        self.model = model if model is not None else LogisticRegression()
        self.seed = seed
        self._encoder: FeatureEncoder | None = None
        self._schema: Dataset | None = None
        self.fit_seconds_: float = 0.0
        self._fitted = False

    # ------------------------------------------------------------------
    @property
    def name(self) -> str:
        parts = []
        if self.pre is not None:
            parts.append(self.pre.name)
        if self.post is not None:
            parts.append(self.post.name)
        return " → ".join(parts)

    @property
    def stage(self):
        return None

    @property
    def stage_name(self) -> str:
        if self.pre is not None and self.post is not None:
            return "pre+post"
        return "pre" if self.pre is not None else "post"

    def _uses_sensitive(self) -> bool:
        if self.pre is not None and not self.pre.uses_sensitive_feature:
            return False
        return True

    # ------------------------------------------------------------------
    def fit(self, train: Dataset) -> "ComposedPipeline":
        start = time.perf_counter()
        self._schema = train
        repaired = self.pre.repair(train) if self.pre is not None else train
        self._encoder = FeatureEncoder().fit(repaired)
        X = self._encoder.transform(repaired)
        features = self._features(X, repaired.s)

        if self.post is not None:
            rng = np.random.default_rng(self.seed)
            perm = rng.permutation(repaired.n_rows)
            n_holdout = max(1, int(0.3 * repaired.n_rows))
            fit_idx, holdout_idx = perm[n_holdout:], perm[:n_holdout]
            self.model.fit(features[fit_idx], repaired.y[fit_idx])
            holdout_scores = self.model.predict_proba(features[holdout_idx])
            self.post.fit(repaired.y[holdout_idx], holdout_scores,
                          repaired.s[holdout_idx])
        self.model.fit(features, repaired.y)
        self.fit_seconds_ = time.perf_counter() - start
        self._fitted = True
        return self

    def _features(self, X: np.ndarray, s: np.ndarray) -> np.ndarray:
        if self._uses_sensitive():
            return np.column_stack([X, np.asarray(s, float)])
        return X

    # ------------------------------------------------------------------
    def predict(self, dataset: Dataset,
                s_override: np.ndarray | None = None) -> np.ndarray:
        """Hard predictions through the full stack."""
        if not self._fitted:
            raise RuntimeError("pipeline not fitted")
        s = dataset.s if s_override is None else np.asarray(
            s_override).astype(int)
        if self.pre is not None:
            dataset = self.pre.transform(dataset)
        X = self._encoder.transform(dataset)
        scores = self.model.predict_proba(self._features(X, s))
        if self.post is None:
            return (scores >= 0.5).astype(int)
        rng = np.random.default_rng(self.seed)
        return self.post.adjust(scores, s, rng)

    def predict_columns(self, columns: dict[str, np.ndarray]) -> np.ndarray:
        """Predictions over raw generator columns (for causal metrics)."""
        schema = self._schema
        table_cols = {}
        for name in (*schema.feature_names, schema.sensitive, schema.label):
            if name not in columns:
                raise KeyError(f"sampled columns missing {name!r}")
            values = np.asarray(columns[name])
            if name in (schema.sensitive, schema.label):
                values = values.astype(int)
            table_cols[name] = values
        return self.predict(schema.with_table(Table(table_cols)))
